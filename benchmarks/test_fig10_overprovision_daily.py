"""Fig 10: over-provisioning requirement, LB/MF/SF × 3 SLAs, daily."""

from conftest import run_once

from repro.reporting.figures import fig10_overprovision


def test_fig10_overprovision_daily(benchmark, paper_context, record):
    figure = run_once(benchmark, fig10_overprovision, paper_context, 24.0)
    record("fig10_overprovision_daily", figure.render())

    lb = dict(zip(figure.labels, figure.values("LB")))
    mf = dict(zip(figure.labels, figure.values("MF")))
    sf = dict(zip(figure.labels, figure.values("SF")))

    for label in figure.labels:
        # LB <= MF <= SF at every SLA/workload (Fig 10's bar ordering).
        assert lb[label] <= mf[label] + 1e-6
        assert mf[label] <= sf[label] + 1e-6

    # "Less than half the over-provisioned capacity [of SF] for the SLA
    # of 100% availability ... very close to the lower bound" (W1).
    assert mf["W1@100%"] < 0.7 * sf["W1@100%"]
    assert mf["W6@100%"] < 0.8 * sf["W6@100%"]

    # "The spare capacity estimated by the SF for the compute workload is
    # nearly half that of the storage workload."
    assert sf["W1@100%"] < 0.5 * sf["W6@100%"]
