"""CI autonomics smoke: the closed loop acts, and prediction pays off.

Usage::

    PYTHONPATH=src python benchmarks/autonomics_smoke.py [--scale S]
        [--days N] [--budget SECONDS]

Replays one seed under the reactive and predictive controllers through
the full closed loop — stepping session, event feed, streaming
monitors, spare ledger — and checks the ROADMAP's closed-loop claim on
the default scenario: acting on predictions must meet or beat break/fix
on SLA attainment (equivalently: SLA shortfall no worse) at
equal-or-lower TCO.  Exits non-zero if either leg of the verdict fails,
the loop never acts, or the wall clock exceeds the budget.
"""

from __future__ import annotations

import argparse
import sys
import time

import repro
from repro.autonomics import compare_policies, render_autonomics


def run_smoke(scale: float, days: int, budget_s: float) -> int:
    start = time.perf_counter()
    payload = compare_policies(
        repro.SimulationConfig.small(seed=0, scale=scale, n_days=days),
        policies=("reactive", "predictive"),
    )
    elapsed = time.perf_counter() - start

    print(render_autonomics(payload))
    print(f"\nshakedown-train + 2 policy replays: {elapsed:.2f}s")

    rows = {row["policy"]: row for row in payload["policies"]}
    reactive, predictive = rows["reactive"], rows["predictive"]
    verdict = payload["verdict"]

    if predictive["n_actions"] == 0 or reactive["n_actions"] == 0:
        print("FAIL: a controller never acted — the loop is not closed",
              file=sys.stderr)
        return 1
    reactive_shortfall = 1.0 - reactive["sla_attainment"]
    predictive_shortfall = 1.0 - predictive["sla_attainment"]
    if predictive_shortfall > reactive_shortfall:
        print(f"FAIL: predictive SLA shortfall {predictive_shortfall:.4%} "
              f"exceeds reactive {reactive_shortfall:.4%}", file=sys.stderr)
        return 1
    if not verdict["predictive_tco_leq_reactive"]:
        print(f"FAIL: predictive TCO {predictive['tco_units']:,.0f} exceeds "
              f"reactive {reactive['tco_units']:,.0f}", file=sys.stderr)
        return 1
    if elapsed > budget_s:
        print(f"FAIL: {elapsed:.2f}s exceeds the {budget_s:.0f}s budget",
              file=sys.stderr)
        return 1
    print(f"OK: prediction beats break/fix "
          f"({verdict['sla_attainment_delta']:+.2%} SLA, "
          f"{verdict['tco_delta_units']:+,.0f} TCO units) "
          f"within the {budget_s:.0f}s budget")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.2,
                        help="fleet scale factor (default 0.2)")
    parser.add_argument("--days", type=int, default=270,
                        help="simulated days (default 270)")
    parser.add_argument("--budget", type=float, default=120.0,
                        help="wall-clock budget in seconds")
    args = parser.parse_args(argv)
    if args.scale <= 0 or args.days < 60 or args.budget <= 0:
        parser.error("--scale must be > 0, --days >= 60, --budget > 0")
    return run_smoke(args.scale, args.days, args.budget)


if __name__ == "__main__":
    raise SystemExit(main())
