"""CI predict smoke: train, score and live-monitor on a budget.

Usage::

    PYTHONPATH=src python benchmarks/predict_smoke.py [--scale S]
        [--days N] [--budget SECONDS]

Runs the full online-prediction loop end to end on one fresh fleet:
streams features over every event, builds the labelled snapshot
dataset, trains the two-stage predictor behind the embargoed time
split, scores the held-out tail exactly, checks the proactive decision
sweep against the reactive baseline, and replays the stream through a
live :class:`~repro.predict.PredictiveMonitor` attached to the
analyzer.  Exits non-zero if any invariant breaks or the wall-clock
(simulation excluded) exceeds the budget.
"""

from __future__ import annotations

import argparse
import sys
import time

import repro
from repro.predict import (
    PredictiveMonitor,
    build_feature_dataset,
    proactive_comparison,
    score_predictions,
    train_predictor,
)
from repro.stream import (
    AlertKind,
    StreamAnalyzer,
    StreamInventory,
    blocks_from_result,
)


def run_smoke(scale: float, days: int, budget_s: float) -> int:
    sim_start = time.perf_counter()
    run = repro.simulate(
        repro.SimulationConfig.small(seed=50, scale=scale, n_days=days)
    )
    n_events = sum(len(block) for block in blocks_from_result(run))
    print(f"simulated scale={scale:g} days={days}: {n_events:,} events "
          f"in {time.perf_counter() - sim_start:.1f}s")

    start = time.perf_counter()
    dataset = build_feature_dataset(run)
    model, _, test = train_predictor(dataset)
    metrics = score_predictions(model, test)
    scores = model.score(test)
    comparison = proactive_comparison(run, test, scores, horizon_days=3)

    inventory = StreamInventory.from_result(run)
    analyzer = StreamAnalyzer(inventory)
    analyzer.attach_monitor(PredictiveMonitor(inventory, model))
    analyzer.consume_blocks(blocks_from_result(run))
    analyzer.finish()
    predicted = sum(1 for alert in analyzer.alerts
                    if alert.kind is AlertKind.PREDICTED_FAILURE)
    elapsed = time.perf_counter() - start

    print(f"dataset {dataset.n_rows:,} rows, eval {metrics['n_test']:,} "
          f"rows, auc {metrics['auc']:.3f}, "
          f"base rate {metrics['base_rate']:.4f}")
    print(f"proactive: reactive_cost {comparison['reactive_cost']:,.0f}, "
          f"beats_reactive {comparison['beats_reactive']}")
    print(f"live monitor: {predicted:,} predicted-failure alerts over "
          f"{analyzer.events_seen:,} events")
    print(f"train+score+monitor: {elapsed:.2f}s")

    if metrics["auc"] is None or metrics["auc"] <= 0.55:
        print(f"FAIL: auc {metrics['auc']} does not beat chance",
              file=sys.stderr)
        return 1
    if not comparison["beats_reactive"]:
        print("FAIL: no proactive operating point beats the reactive "
              "baseline", file=sys.stderr)
        return 1
    if predicted == 0:
        print("FAIL: the live monitor emitted no alerts", file=sys.stderr)
        return 1
    if elapsed > budget_s:
        print(f"FAIL: {elapsed:.2f}s exceeds the {budget_s:.0f}s budget",
              file=sys.stderr)
        return 1
    print(f"OK: within the {budget_s:.0f}s budget")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.25,
                        help="fleet scale factor (default 0.25)")
    parser.add_argument("--days", type=int, default=365,
                        help="simulated days (default 365)")
    parser.add_argument("--budget", type=float, default=120.0,
                        help="train+score+monitor wall-clock budget in "
                             "seconds")
    args = parser.parse_args(argv)
    if args.scale <= 0 or args.days < 30 or args.budget <= 0:
        parser.error("--scale must be > 0, --days >= 30, --budget > 0")
    return run_smoke(args.scale, args.days, args.budget)


if __name__ == "__main__":
    raise SystemExit(main())
