"""Lint engine bench: cold vs warm vs one-module-incremental analysis.

The incremental-lint claim mirrors the artifact DAG's: re-analysis cost
scales with what changed.  A cold ``repro lint`` parses and walks every
module; a warm run against the same fragment cache re-analyzes nothing;
editing one module re-analyzes exactly that module (the whole-program
phase — summary linking plus interprocedural rules — always re-runs, by
design).  All three land in one ``BENCH_engine.json`` entry
(warm/incremental in ``extra``, rendered as a sub-row by
``bench_summary.py``); the warm run is gated at >= 5x faster than cold.
"""

import pathlib
import shutil
import time

from repro.staticcheck import lint_paths, load_baseline

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def _lint(tree, cache_dir, baseline):
    return lint_paths([tree], baseline=baseline, cache_dir=cache_dir)


def test_perf_lint_cold_warm_incremental(benchmark, tmp_path):
    """Full-tree lint: cold build, warm cache hit, one-module edit."""
    tree = tmp_path / "repro"
    shutil.copytree(SRC, tree)
    cache_dir = tmp_path / "lintcache"
    baseline = load_baseline()

    cold_report = benchmark.pedantic(
        _lint, args=(tree, cache_dir, baseline), rounds=1, iterations=1,
    )
    assert cold_report.ok
    assert cold_report.cached_modules == 0
    cold_s = benchmark.stats.stats.mean

    start = time.perf_counter()
    warm_report = _lint(tree, cache_dir, baseline)
    warm_s = time.perf_counter() - start
    assert warm_report.analyzed_modules == 0
    assert warm_report.cached_modules == cold_report.n_modules

    target = tree / "telemetry" / "stats.py"
    target.write_text(target.read_text() + "\n# touched by lint bench\n")
    start = time.perf_counter()
    incremental_report = _lint(tree, cache_dir, baseline)
    incremental_s = time.perf_counter() - start
    assert incremental_report.analyzed_modules == 1
    assert incremental_report.ok

    assert cold_s / warm_s >= 5.0, (
        f"warm lint only {cold_s / warm_s:.1f}x faster than cold "
        f"({cold_s:.2f}s -> {warm_s:.2f}s); incremental cache regressed"
    )

    benchmark.extra_info["warm_s"] = warm_s
    benchmark.extra_info["incremental_s"] = incremental_s
    benchmark.extra_info["modules"] = cold_report.n_modules
