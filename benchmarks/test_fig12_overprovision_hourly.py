"""Fig 12: over-provisioning at hourly granularity (temporal multiplexing)."""

from conftest import run_once

from repro.reporting.figures import fig10_overprovision


def test_fig12_overprovision_hourly(benchmark, paper_context, record):
    hourly = run_once(benchmark, fig10_overprovision, paper_context, 1.0)
    daily = fig10_overprovision(paper_context, 24.0)
    record("fig12_overprovision_hourly", hourly.render())

    hourly_mf = dict(zip(hourly.labels, hourly.values("MF")))
    daily_mf = dict(zip(daily.labels, daily.values("MF")))
    hourly_sf = dict(zip(hourly.labels, hourly.values("SF")))
    daily_sf = dict(zip(daily.labels, daily.values("SF")))

    # "Failures that are non-overlapping in time could potentially be
    # handled by the same spare": MF shrinks at hourly granularity...
    for label in ("W1@100%", "W6@100%"):
        assert hourly_mf[label] < daily_mf[label]
    # ...with a substantial drop for the storage workload,
    assert hourly_mf["W6@100%"] < 0.92 * daily_mf["W6@100%"]
    # ...while SF barely moves ("that of the single factor remains the
    # same") — its extreme events are near-simultaneous.
    for label in ("W1@100%", "W6@100%"):
        assert hourly_sf[label] >= 0.7 * daily_sf[label]
