"""Table II: classification of failure tickets, measured vs paper."""

from conftest import run_once

from repro.failures.tickets import FaultType
from repro.reporting import table_ii, ticket_mix


def test_table2_ticket_mix(benchmark, paper_run, record):
    mix = run_once(benchmark, ticket_mix, paper_run)
    record("table2_ticket_mix", table_ii(paper_run))

    for dc in ("DC1", "DC2"):
        # Category bands reported in §IV.
        assert 38.0 < mix.category_share(dc, "Software") < 60.0
        assert 8.0 < mix.category_share(dc, "Boot") < 18.0
        assert 18.0 < mix.category_share(dc, "Hardware") < 36.0
        assert 5.0 < mix.category_share(dc, "Others") < 15.0
        # Timeout is the single leading type; disk leads hardware.
        percentages = mix.percentages[dc]
        assert max(percentages, key=percentages.get) is FaultType.TIMEOUT
        hardware = {fault: percentages[fault] for fault in (
            FaultType.DISK, FaultType.MEMORY, FaultType.POWER,
            FaultType.SERVER, FaultType.NETWORK,
        )}
        assert max(hardware, key=hardware.get) is FaultType.DISK

    dc1, dc2 = mix.percentages["DC1"], mix.percentages["DC2"]
    # Table II's DC contrasts.
    assert dc1[FaultType.DISK] > dc2[FaultType.DISK]
    assert dc1[FaultType.MEMORY] > dc2[FaultType.MEMORY]
    assert dc1[FaultType.NETWORK] > 2.0 * dc2[FaultType.NETWORK]
    assert dc1[FaultType.REBOOT] > 2.0 * dc2[FaultType.REBOOT]
    assert dc2[FaultType.POWER] > dc1[FaultType.POWER]
    assert dc2[FaultType.TIMEOUT] > dc1[FaultType.TIMEOUT]
