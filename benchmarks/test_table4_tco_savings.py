"""Table IV: relative TCO savings of MF over SF provisioning."""

from conftest import run_once

from repro.reporting import table_iv
from repro.reporting.tables import table_iv_savings


def test_table4_tco_savings(benchmark, paper_context, record):
    cells = run_once(benchmark, table_iv_savings, paper_context)
    record("table4_tco_savings", table_iv(paper_context))

    by_key = {(c.sla_level, c.granularity, c.workload): c for c in cells}
    # MF saves over SF in every configuration.
    for cell in cells:
        assert cell.savings_percent > 0.0, (cell.granularity, cell.workload)
        assert cell.mf_fraction <= cell.sf_fraction

    # The storage workload's spare requirement — and hence the capacity
    # MF releases — dwarfs the compute workload's (the paper's Table IV
    # peaks at 35.7% for W6 vs 14.6% for W1 at the 100% daily SLA).
    # Relative-savings *percentages* can order either way (even the
    # paper's hourly 90/95% rows have W1 above W6), so the ordering is
    # asserted on the released capacity fractions.
    for granularity in ("daily", "hourly"):
        for level in (0.90, 0.95, 1.00):
            w1 = by_key[(level, granularity, "W1")]
            w6 = by_key[(level, granularity, "W6")]
            assert w6.sf_fraction > 2.0 * w1.sf_fraction
            released_w6 = w6.sf_fraction - w6.mf_fraction
            released_w1 = w1.sf_fraction - w1.mf_fraction
            assert released_w6 > released_w1

    # Savings are material at the strict SLA (paper: 14.6-36.4%).
    assert by_key[(1.00, "daily", "W6")].savings_percent > 8.0
    assert by_key[(1.00, "daily", "W1")].savings_percent > 3.0
