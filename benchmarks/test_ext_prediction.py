"""Extension bench: failure prediction (§VII future work) at paper scale."""

from conftest import run_once

from repro.analysis.prediction import (
    FailurePredictor,
    build_prediction_dataset,
    time_split,
)


def test_ext_prediction(benchmark, paper_run, record):
    dataset = build_prediction_dataset(paper_run, horizon_days=3)
    train, test = time_split(dataset, train_fraction=0.7)

    def fit_and_evaluate():
        predictor = FailurePredictor().fit(train)
        return predictor, predictor.evaluate(test)

    predictor, metrics = run_once(benchmark, fit_and_evaluate)
    assert predictor.tree is not None
    importance = predictor.tree.importance()
    record(
        "ext_prediction",
        f"dataset: {dataset.n_rows} rack-days, base rate "
        f"{metrics.base_rate:.1%}\n"
        f"held-out AUC {metrics.auc:.3f}, precision@10% "
        f"{metrics.precision_at_decile:.1%}, recall@10% "
        f"{metrics.recall_at_decile:.1%}\n"
        f"top factors: {list(importance)[:4]}",
    )
    # The planted structure (SKU quality, bathtub age, batchy racks) is
    # learnable well above chance from operator-visible data alone.
    assert metrics.auc > 0.70
    assert metrics.precision_at_decile > 1.8 * metrics.base_rate
