"""Summarize BENCH_engine.json as a terminal table.

Usage::

    python benchmarks/bench_summary.py [path/to/BENCH_engine.json]

The JSON is produced by running any ``benchmarks/`` file under pytest
(see ``pytest_sessionfinish`` in ``benchmarks/conftest.py``); this
script renders the recorded timings and, where a pre-vectorization
baseline is known, the speedup against it.
"""

from __future__ import annotations

import json
import pathlib
import sys

DEFAULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def summarize(path: pathlib.Path) -> str:
    """Render one line per recorded benchmark, slowest first."""
    payload = json.loads(path.read_text())
    entries = payload.get("entries", {})
    if not entries:
        return f"{path}: no benchmark entries recorded"
    lines = [
        f"{'benchmark':44s} {'mean':>10s} {'min':>10s} {'rounds':>6s} "
        f"{'speedup':>8s} {'throughput':>12s} {'peak_mb':>8s}",
    ]
    ordered = sorted(entries.items(), key=lambda kv: -kv[1]["mean_s"])
    for name, entry in ordered:
        speedup = entry.get("speedup_vs_baseline")
        extra = entry.get("extra", {})
        # Serve rows (benchmarks/loadgen.py) report request throughput
        # in the same column engine benches use for event throughput.
        events_per_sec = (entry.get("events_per_sec")
                          or extra.get("requests_per_sec"))
        # Memory benches record traced peaks in bytes; show the
        # streaming-side peak (the gated one) in MB.
        peak_bytes = extra.get("stream_peak_bytes") or extra.get("peak_bytes")
        lines.append(
            f"{name:44s} {entry['mean_s']*1e3:8.1f}ms {entry['min_s']*1e3:8.1f}ms "
            f"{entry['rounds']:6d} "
            + (f"{speedup:7.2f}x" if speedup is not None else "       -")
            + (f" {events_per_sec:9.0f}/s" if events_per_sec is not None
               else "            -")
            + (f" {peak_bytes/1e6:7.2f}" if peak_bytes is not None
               else "        -")
        )
        if "warm_s" in extra:
            # Pipeline benches record the warm-store and one-module-touched
            # re-runs of the same workload alongside the cold timing.
            cold = entry["mean_s"]
            warm, incremental = extra["warm_s"], extra.get("incremental_s")
            sub = (f"{'':4s}cold {cold*1e3:.1f}ms -> warm {warm*1e3:.1f}ms "
                   f"({cold/warm:.0f}x)" if warm else "")
            if incremental:
                sub += (f" -> incremental {incremental*1e3:.1f}ms "
                        f"({cold/incremental:.0f}x)")
            lines.append(sub)
        if "predict_score_latency_ms" in extra:
            # Prediction scoring rows carry the eval-split size next to
            # the exact-scoring latency (AUC + operating-point curve).
            lines.append(
                f"{'':4s}scored {extra['n_test']:,} eval rows in "
                f"{extra['predict_score_latency_ms']:.1f}ms "
                f"({extra['rows_per_sec']:,.0f} rows/s)"
            )
        if "step_ratio" in extra:
            # The session-step bench records the same-seed batch
            # simulate mean next to the stepped loop's, with the gated
            # overhead ratio.
            lines.append(
                f"{'':4s}batch {extra['batch_mean_s']*1e3:.1f}ms -> "
                f"stepped every {extra.get('step_days', '?')}d "
                f"{entry['mean_s']*1e3:.1f}ms "
                f"({extra['step_ratio']:.2f}x, gate 1.50x)"
            )
        if "p99_ms" in extra:
            # Serve rows carry client-side latency percentiles from the
            # load generator alongside the throughput column.
            sub = (f"{'':4s}{extra.get('clients', 1)} client(s): "
                   f"{extra['requests_per_sec']:.0f} req/s, "
                   f"p99 {extra['p99_ms']:.2f}ms")
            if "p50_ms" in extra:
                sub += f", p50 {extra['p50_ms']:.2f}ms"
            lines.append(sub)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = pathlib.Path(args[0]) if args else DEFAULT_PATH
    if not path.exists():
        print(f"{path} not found — run `python -m pytest benchmarks/` first",
              file=sys.stderr)
        return 1
    print(summarize(path))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
