"""Extension benches: spare pooling (§II) and proactive maintenance (§VII)."""

from conftest import run_once

from repro.decisions import AvailabilitySla, policy_curve, pooling_analysis


def test_ext_spare_pooling(benchmark, paper_run, record):
    """§II's open question: dedicated vs shared spare pools."""
    dc1 = run_once(benchmark, pooling_analysis, paper_run, "DC1",
                   AvailabilitySla(1.0))
    dc2 = pooling_analysis(paper_run, "DC2", AvailabilitySla(1.0))
    record("ext_spare_pooling", dc1.render() + "\n\n" + dc2.render())

    for analysis in (dc1, dc2):
        assert analysis.shared_spares <= analysis.dedicated_total + 1e-9
    # Diversification across workloads is material in both facilities.
    assert dc1.benefit_fraction > 0.2
    assert dc2.benefit_fraction > 0.2


def test_ext_proactive_maintenance(benchmark, paper_run, record):
    """§VII's loop closed: predictions priced as interventions."""
    outcomes = run_once(
        benchmark, policy_curve, paper_run,
        act_fractions=(0.01, 0.02, 0.05, 0.10),
    )
    record("ext_proactive_maintenance",
           "\n".join(outcome.render() for outcome in outcomes))

    # Acting on the model is profitable across the sweep, coverage grows
    # with aggressiveness, and early interventions yield more each.
    assert all(outcome.net_savings > 0 for outcome in outcomes)
    prevented = [outcome.failures_prevented for outcome in outcomes]
    assert prevented == sorted(prevented)
    yields = [outcome.failures_prevented / outcome.n_interventions
              for outcome in outcomes]
    assert yields[0] > yields[-1]
