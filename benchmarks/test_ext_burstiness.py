"""Extension bench: failure-stream burstiness (the μ-correlation story)."""

from conftest import run_once

from repro.telemetry.reliability import burstiness_by_sku, fano_factor


def test_ext_burstiness(benchmark, paper_run, record):
    by_sku = run_once(benchmark, burstiness_by_sku, paper_run)
    fleet = fano_factor(paper_run)
    record(
        "ext_burstiness",
        f"fleet-wide daily Fano factor: {fleet.fano:.2f} "
        f"(1 = memoryless Poisson)\n"
        "per-SKU Fano factors: "
        + ", ".join(f"{name}={value:.2f}" for name, value in sorted(by_sku.items()))
        + "\n-> 'correlations become important in many decisions' (§V): "
        "the storage SKU S3's lot-failure bursts are the reason its peak "
        "rate — and its spare requirement — dwarfs its average rate",
    )
    # Correlated events make the fleet stream over-dispersed.
    assert fleet.fano > 1.5
    # The planted burstiness ordering: the batchy storage SKU S3 far
    # above the calm compute SKU S4 (which sits near Poisson).
    assert by_sku["S3"] > 2.0 * by_sku["S4"]
    assert by_sku["S4"] < 1.6
    assert by_sku["S3"] == max(by_sku.values())
