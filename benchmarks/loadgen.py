"""Concurrent load generator for the ``repro serve`` API.

Boots a real server subprocess on a fresh artifact store, registers a
fleet, then drives it in two phases:

* **cold** — the first Q1/Q2/Q3 requests, each forcing a pipeline
  computation (the simulate artifact is shared, so Q1 pays for the
  simulation and Q2/Q3 ride on it);
* **warm** — N concurrent clients hammering the cached answers,
  measuring end-to-end request latency through real sockets.

Results land in ``BENCH_engine.json`` using the same merge-by-name
format as the pytest benches (see ``benchmarks/conftest.py``), with
``requests_per_sec`` / ``p99_ms`` in ``extra`` so
``bench_summary.py`` can render serve rows alongside engine timings.

Usage::

    PYTHONPATH=src python benchmarks/loadgen.py            # defaults
    PYTHONPATH=src python benchmarks/loadgen.py --clients 16 --requests 100
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Fleet the load test queries (small enough that the cold phase stays
#: seconds, large enough that answers are non-degenerate).
DEFAULT_FLEET = {"seed": 5, "scale": 0.08, "days": 120}

QUERY_PATHS = ("q1", "q2", "q3")


class ServerHandle:
    """A ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, store_dir: str, workers: int | None = None,
                 timeout_s: float = 300.0):
        command = [sys.executable, "-m", "repro.cli", "serve",
                   "--port", "0", "--store-dir", store_dir,
                   "--timeout", str(timeout_s)]
        if workers is not None:
            command += ["--workers", str(workers)]
        env = dict(os.environ)
        src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(command, env=env,
                                        stderr=subprocess.PIPE, text=True)
        banner = self.process.stderr.readline()
        if "listening on http://" not in banner:
            rest = self.process.stderr.read()
            raise RuntimeError(f"server failed to boot: {banner!r} {rest!r}")
        address = banner.split("listening on http://")[1].split(" ")[0]
        self.base_url = f"http://{address}"

    def stop(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=60)


def get_json(base_url: str, path: str, timeout: float = 300.0):
    """(status, payload) of one GET; HTTP errors return their body."""
    try:
        with urllib.request.urlopen(base_url + path, timeout=timeout) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post_json(base_url: str, path: str, body: dict, timeout: float = 300.0):
    request = urllib.request.Request(
        base_url + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def percentile(samples: list[float], q: float) -> float:
    """Exact q-quantile (nearest-rank) of raw latency samples."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


def run_cold_phase(base_url: str) -> dict[str, float]:
    """First-touch latency per query kind (each forces a computation)."""
    latencies: dict[str, float] = {}
    for kind in QUERY_PATHS:
        started = time.perf_counter()
        status, payload = get_json(base_url, f"/v1/fleets/bench/{kind}")
        elapsed = time.perf_counter() - started
        if status != 200:
            raise RuntimeError(f"cold {kind} failed ({status}): {payload}")
        if payload["meta"]["served_from"] != "computed":
            raise RuntimeError(f"cold {kind} unexpectedly served warm")
        latencies[kind] = elapsed
    return latencies


def run_warm_phase(base_url: str, clients: int,
                   requests_per_client: int) -> dict:
    """N concurrent clients cycling warm Q1/Q2/Q3; raw latencies back."""
    per_client: list[list[tuple[str, float]]] = [[] for _ in range(clients)]
    errors: list[str] = []
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        samples = per_client[index]
        barrier.wait()
        for request_index in range(requests_per_client):
            kind = QUERY_PATHS[(index + request_index) % len(QUERY_PATHS)]
            started = time.perf_counter()
            status, payload = get_json(base_url, f"/v1/fleets/bench/{kind}")
            elapsed = time.perf_counter() - started
            if status != 200:
                errors.append(f"{kind}: {status}")
                continue
            samples.append((kind, elapsed))

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise RuntimeError(f"warm phase errors: {errors[:5]}")
    flat = [sample for samples in per_client for sample in samples]
    latencies = [latency for _, latency in flat]
    by_kind = {
        kind: [latency for k, latency in flat if k == kind]
        for kind in QUERY_PATHS
    }
    return {
        "wall_s": wall,
        "requests": len(flat),
        "latencies": latencies,
        "p99_by_kind_ms": {
            kind: 1e3 * percentile(samples, 0.99)
            for kind, samples in by_kind.items() if samples
        },
    }


def merge_bench_entries(entries: dict[str, dict],
                        path: pathlib.Path = BENCH_JSON) -> None:
    """Merge serve rows into BENCH_engine.json (conftest format)."""
    payload = {"schema": 1, "entries": {}}
    if path.exists():
        try:
            payload["entries"] = dict(
                json.loads(path.read_text()).get("entries", {}))
        except (OSError, ValueError):
            pass
    payload["entries"].update(entries)
    payload["updated"] = time.time()
    payload["machine"] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def build_entries(cold: dict[str, float], warm: dict,
                  clients: int) -> dict[str, dict]:
    cold_values = list(cold.values())
    latencies = warm["latencies"]
    return {
        "serve_cold_first_queries": {
            "fullname": "benchmarks/loadgen.py::cold[q1+q2+q3]",
            "mean_s": statistics.fmean(cold_values),
            "min_s": min(cold_values),
            "max_s": max(cold_values),
            "stddev_s": (statistics.stdev(cold_values)
                         if len(cold_values) > 1 else 0.0),
            "rounds": len(cold_values),
            "extra": {
                "cold_ms_by_kind": {kind: 1e3 * value
                                    for kind, value in cold.items()},
                "requests_per_sec": len(cold_values) / sum(cold_values),
                "p99_ms": 1e3 * max(cold_values),
                "clients": 1,
            },
        },
        "serve_warm_load": {
            "fullname": f"benchmarks/loadgen.py::warm[{clients}-clients]",
            "mean_s": statistics.fmean(latencies),
            "min_s": min(latencies),
            "max_s": max(latencies),
            "stddev_s": (statistics.stdev(latencies)
                         if len(latencies) > 1 else 0.0),
            "rounds": warm["requests"],
            "extra": {
                "requests_per_sec": warm["requests"] / warm["wall_s"],
                "p50_ms": 1e3 * percentile(latencies, 0.50),
                "p99_ms": 1e3 * percentile(latencies, 0.99),
                "p99_ms_by_kind": warm["p99_by_kind_ms"],
                "clients": clients,
            },
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent warm-phase clients (default 8)")
    parser.add_argument("--requests", type=int, default=60,
                        help="requests per client (default 60)")
    parser.add_argument("--workers", type=int, default=None,
                        help="server worker processes (default: all cores)")
    parser.add_argument("--seed", type=int, default=DEFAULT_FLEET["seed"])
    parser.add_argument("--scale", type=float, default=DEFAULT_FLEET["scale"])
    parser.add_argument("--days", type=int, default=DEFAULT_FLEET["days"])
    parser.add_argument("--json", default=str(BENCH_JSON),
                        help="BENCH json to merge results into "
                             "(default: repo BENCH_engine.json)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="serve-loadgen-") as store_dir:
        server = ServerHandle(store_dir, workers=args.workers)
        try:
            status, _ = get_json(server.base_url, "/healthz")
            assert status == 200, "server not healthy"
            status, registered = post_json(server.base_url, "/v1/fleets", {
                "name": "bench",
                "params": {"seed": args.seed, "scale": args.scale,
                           "days": args.days},
            })
            assert status == 200, f"registration failed: {registered}"
            print(f"fleet {registered['fleet_id'][:12]} "
                  f"(scale={args.scale}, days={args.days}) on "
                  f"{server.base_url}")

            cold = run_cold_phase(server.base_url)
            for kind, value in cold.items():
                print(f"cold {kind}: {1e3 * value:8.1f}ms")

            warm = run_warm_phase(server.base_url, args.clients,
                                  args.requests)
            rps = warm["requests"] / warm["wall_s"]
            p50 = 1e3 * percentile(warm["latencies"], 0.50)
            p99 = 1e3 * percentile(warm["latencies"], 0.99)
            print(f"warm: {warm['requests']} requests, {args.clients} "
                  f"clients, {warm['wall_s']:.2f}s wall")
            print(f"      {rps:8.0f} req/s   p50 {p50:6.2f}ms   "
                  f"p99 {p99:6.2f}ms")
            for kind, value in warm["p99_by_kind_ms"].items():
                print(f"      p99[{kind}] {value:6.2f}ms")

            status, metrics = get_json(server.base_url, "/metrics")
            hit_ratio = metrics["endpoints"]["q1"]["cache"]["hit_ratio"]
            print(f"      q1 cache hit ratio {hit_ratio:.3f}")
        finally:
            code = server.stop()
        print(f"server exited {code}")

    merge_bench_entries(build_entries(cold, warm, args.clients),
                        pathlib.Path(args.json))
    print(f"recorded serve_cold_first_queries + serve_warm_load in "
          f"{args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
