"""Extension bench: repair staffing vs spare provisioning coupling."""

from conftest import run_once

import repro
from repro.decisions import AvailabilitySla, SpareProvisioner
from repro.failures.queueing import apply_technician_queue, staffing_curve


def test_ext_staffing(benchmark, paper_run, record):
    curve = run_once(benchmark, staffing_curve, paper_run,
                     pool_sizes=(16, 32, 64))

    # Re-provision W6 under an under-provisioned pool vs generous
    # staffing (at paper scale ~30 hardware tickets/day/DC x ~14 h mean
    # service needs ~18+ technicians to stay stable).
    lean = apply_technician_queue(paper_run, 16)
    generous = apply_technician_queue(paper_run, 64)

    def reprovision(outcome):
        adjusted = repro.SimulationResult(
            config=paper_run.config, fleet=paper_run.fleet,
            calendar=paper_run.calendar, environment=paper_run.environment,
            bms=paper_run.bms, tickets=outcome.adjusted_log,
        )
        provisioner = SpareProvisioner(adjusted, window_hours=24.0)
        return provisioner.multi_factor("W6", AvailabilitySla(1.0)).overprovision

    lean_spares = reprovision(lean)
    generous_spares = reprovision(generous)
    record(
        "ext_staffing",
        "mean repair queueing delay by per-DC technician pool:\n"
        + "\n".join(f"  {size:3d} technicians: {wait:8.2f} h"
                    for size, wait in curve.items())
        + f"\n\nW6 MF over-provision @100% SLA: {generous_spares:.1%} with "
        f"generous staffing vs {lean_spares:.1%} with an under-provisioned\n"
        "16-technician pool\n"
        "-> spares and staffing are coupled OpEx/CapEx knobs; sizing one "
        "assuming the other is infinite under-provisions",
    )
    waits = list(curve.values())
    assert waits == sorted(waits, reverse=True)   # more techs, less waiting
    assert curve[64] < 1.0                         # generous pool ≈ no queue
    assert lean_spares >= generous_spares - 1e-9   # queueing can only add μ
