"""Pipeline benches: cold vs warm vs incremental report generation.

The tentpole claim of the artifact DAG is that recompute cost scales
with what actually changed: a warm store serves the whole report from
per-stage artifacts, and touching one analysis module re-runs only its
downstream stages.  This bench records all three regimes in one
``BENCH_engine.json`` entry (warm/incremental land in ``extra``);
``bench_summary.py`` renders them as a sub-row.
"""

import time

import pytest

import repro
import repro.pipeline.core as pipeline_core
from repro.errors import ReproError
from repro.pipeline import ArtifactStore, build_report_pipeline, render_stage_name
from repro.reporting.experiments import EXPERIMENTS


def _render_report(config, root):
    """One full `repro report all` pass against the store at ``root``."""
    pipeline = build_report_pipeline(
        config, store=ArtifactStore(root), experiment_ids=sorted(EXPERIMENTS),
    )
    rendered = 0
    for experiment_id in sorted(EXPERIMENTS):
        try:
            pipeline.get(render_stage_name(experiment_id))
            rendered += 1
        except ReproError:
            pass
    return pipeline, rendered


def test_perf_report_pipeline_cold_warm_incremental(
        benchmark, tmp_path, monkeypatch):
    """Quarter-scale year: cold build, then warm and one-module-touched."""
    config = repro.SimulationConfig.small(seed=50, scale=0.25, n_days=365)
    root = tmp_path / "store"

    pipeline, rendered = benchmark.pedantic(
        _render_report, args=(config, root), rounds=1, iterations=1,
    )
    assert rendered == len(EXPERIMENTS)
    outcomes = {e.stage: e.outcome for e in pipeline.executions}
    assert outcomes["simulate"] == "computed"

    start = time.perf_counter()
    warm_pipeline, _ = _render_report(config, root)
    warm_s = time.perf_counter() - start
    assert not any(e.outcome == "computed" for e in warm_pipeline.executions)

    real = pipeline_core.source_fingerprint
    monkeypatch.setattr(
        pipeline_core, "source_fingerprint",
        lambda name: ("touched" if name == "repro.decisions.spares"
                      else real(name)),
    )
    start = time.perf_counter()
    touched_pipeline, _ = _render_report(config, root)
    incremental_s = time.perf_counter() - start
    touched = {e.stage: e.outcome for e in touched_pipeline.executions}
    assert touched["simulate"] == "disk"  # never re-simulated
    assert touched["provisioner:24h"] == "computed"

    benchmark.extra_info["warm_s"] = warm_s
    benchmark.extra_info["incremental_s"] = incremental_s
    benchmark.extra_info["experiments"] = rendered


@pytest.fixture(autouse=True)
def _fresh_fingerprints():
    from repro.pipeline import clear_source_fingerprints

    clear_source_fingerprints()
    yield
    clear_source_fingerprints()
