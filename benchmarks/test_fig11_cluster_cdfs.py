"""Fig 11: per-cluster over-provisioning CDFs for W1 and W6."""

import numpy as np
from conftest import run_once

from repro.decisions import AvailabilitySla
from repro.reporting.figures import fig11_cluster_cdfs


def test_fig11_cluster_cdfs(benchmark, paper_context, record):
    w1 = run_once(benchmark, fig11_cluster_cdfs, paper_context, "W1")
    w6 = fig11_cluster_cdfs(paper_context, "W6")

    lines = []
    for workload, cdfs in (("W1", w1), ("W6", w6)):
        lines.append(f"[{workload}]")
        for name, sample in cdfs.items():
            lines.append(
                f"  {name}: n={len(sample)} p50={np.quantile(sample, 0.5):.1f}% "
                f"max={sample.max():.1f}%"
            )
    record("fig11_cluster_cdfs", "\n".join(lines))

    w1_clusters = [name for name in w1 if name.startswith("Cluster")]
    w6_clusters = [name for name in w6 if name.startswith("Cluster")]
    # "10 clusters ... for the compute workload and 5 clusters ... for
    # the storage workload" — we assert multiple clusters with W1's
    # grouping at least as fine.
    assert len(w1_clusters) >= 5
    assert len(w6_clusters) >= 4

    # "Over-provisioned capacity ranging from 2% to 50% for compute and
    # 2% to 85% for storage": the cluster *requirement spreads* are wide,
    # and storage's spread is wider than compute's.
    w1_maxima = [w1[name].max() for name in w1_clusters]
    w6_maxima = [w6[name].max() for name in w6_clusters]
    assert max(w1_maxima) > 2.5 * min(w1_maxima)
    assert max(w6_maxima) > max(w1_maxima)

    # MF's very reason to exist: the clusters differ systematically —
    # their mean requirement levels are well separated (between-cluster
    # structure), while within-cluster dispersion does not exceed the
    # pooled dispersion (raw daily samples are Poisson-noise dominated,
    # so the within-cluster sd can only shrink marginally).
    cluster_means = np.array([w6[name].mean() for name in w6_clusters])
    assert cluster_means.max() > 2.0 * max(cluster_means.min(), 1e-9)
    pooled_sd = w6["SF"].std()
    per_cluster_sd = np.mean([w6[name].std() for name in w6_clusters])
    assert per_cluster_sd < 1.05 * pooled_sd


def test_fig11_cluster_count_bands(benchmark, paper_context, record):
    """Cluster counts land near the paper's 10 (W1) and 5 (W6)."""
    provisioner = paper_context.provisioner(24.0)
    w1 = run_once(benchmark, provisioner.multi_factor, "W1", AvailabilitySla(1.0))
    w6 = provisioner.multi_factor("W6", AvailabilitySla(1.0))
    assert w1.clusters is not None and w6.clusters is not None
    record(
        "fig11_cluster_counts",
        f"W1 clusters: {len(w1.clusters)} (paper: 10)\n"
        f"W6 clusters: {len(w6.clusters)} (paper: 5)",
    )
    assert 5 <= len(w1.clusters) <= 12
    assert 4 <= len(w6.clusters) <= 12
