"""CI scale smoke: flatten + analyze ~1M synthetic events on a budget.

Usage::

    PYTHONPATH=src python benchmarks/scale_smoke.py [--events N]
        [--budget SECONDS]

Simulates paper-scale fleets (331+290 racks, 910 days each, fresh seed
per shard) until the flattened stream reaches the target event count,
then runs the columnar flatten plus the full streaming estimator and
trigger stack over every event.  Exits non-zero if the measured
wall-clock exceeds the budget — the CI gate that keeps "fleet scale on
one box" an enforced property rather than a README claim.

Simulation time is excluded from the budget: the smoke gates the
columnar event core, not the simulator.
"""

from __future__ import annotations

import argparse
import sys
import time

import repro
from repro.stream import StreamAnalyzer, StreamInventory, blocks_from_result


def run_smoke(target_events: int, budget_s: float) -> int:
    runs = []
    total = 0
    seed = 0
    sim_start = time.perf_counter()
    while total < target_events:
        run = repro.simulate(repro.SimulationConfig.paper_scale(seed=seed))
        total += sum(len(block) for block in blocks_from_result(run))
        runs.append(run)
        seed += 1
    sim_s = time.perf_counter() - sim_start
    inventories = [StreamInventory.from_result(run) for run in runs]
    print(f"simulated {len(runs)} paper-scale shard(s), "
          f"{total:,} events, in {sim_s:.1f}s")

    start = time.perf_counter()
    analyzed = 0
    for run, inventory in zip(runs, inventories):
        analyzer = StreamAnalyzer(inventory, spare_fraction=0.05)
        analyzer.consume_blocks(blocks_from_result(run))
        analyzer.finish()
        analyzed += analyzer.events_seen
    elapsed = time.perf_counter() - start

    rate = analyzed / elapsed if elapsed > 0 else float("inf")
    print(f"flatten+analyze: {analyzed:,} events in {elapsed:.2f}s "
          f"({rate:,.0f} events/sec)")
    if analyzed < target_events:
        print(f"FAIL: analyzed {analyzed:,} < target {target_events:,}",
              file=sys.stderr)
        return 1
    if elapsed > budget_s:
        print(f"FAIL: {elapsed:.2f}s exceeds the {budget_s:.0f}s budget",
              file=sys.stderr)
        return 1
    print(f"OK: within the {budget_s:.0f}s budget")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=1_000_000,
                        help="minimum flattened events (default 1M)")
    parser.add_argument("--budget", type=float, default=60.0,
                        help="flatten+analyze wall-clock budget in seconds")
    args = parser.parse_args(argv)
    if args.events < 1 or args.budget <= 0:
        parser.error("--events must be >= 1 and --budget > 0")
    return run_smoke(args.events, args.budget)


if __name__ == "__main__":
    raise SystemExit(main())
