"""Prediction subsystem benches: feature throughput and scoring latency.

Timing benchmarks for ``repro.predict`` on the quarter-scale stream
(same shape the stream benches use): block-path streaming feature
extraction (events/sec lands in ``BENCH_engine.json`` via
``extra_info``) and the exact-scoring harness latency over the embargoed
evaluation split.

The feature floor is asserted on the best-of-rounds time so a single
scheduler hiccup cannot fail the gate while a real regression still
does.
"""

from __future__ import annotations

import pytest

import repro
from repro.predict import (
    StreamingFeatures,
    build_feature_dataset,
    score_predictions,
    train_predictor,
)
from repro.stream import StreamInventory, blocks_from_result

# Issue floor: the block path must stream features at >=1M events/sec
# at quarter scale (the scalar fold is ~100x slower and only exists to
# prove the block path bit-identical).
FEATURES_FLOOR_EPS = 1_000_000


@pytest.fixture(scope="module")
def predict_run():
    return repro.simulate(
        repro.SimulationConfig.small(seed=50, scale=0.25, n_days=365)
    )


@pytest.fixture(scope="module")
def predict_blocks(predict_run):
    """Pre-flattened blocks so the bench times only the extractor."""
    return list(blocks_from_result(predict_run))


@pytest.fixture(scope="module")
def predict_split(predict_run):
    """One trained two-stage predictor plus its embargoed eval split."""
    dataset = build_feature_dataset(predict_run)
    model, _, test = train_predictor(dataset)
    return model, test


def test_perf_predict_features(benchmark, predict_run, predict_blocks):
    """Streaming feature extraction over the full block stream."""
    inventory = StreamInventory.from_result(predict_run)
    n_events = sum(len(block) for block in predict_blocks)

    def extract():
        features = StreamingFeatures(inventory)
        for block in predict_blocks:
            features.update_block(block)
        return features

    features = benchmark.pedantic(extract, rounds=3, iterations=1)
    assert features is not None and n_events > 10_000
    best = n_events / benchmark.stats.stats.min
    assert best >= FEATURES_FLOOR_EPS, (
        f"feature throughput {best:,.0f} events/sec is below the "
        f"{FEATURES_FLOOR_EPS:,} floor"
    )
    benchmark.extra_info["events"] = n_events
    benchmark.extra_info["best_events_per_sec"] = best
    benchmark.extra_info["predict_features_events_per_sec"] = best


def test_perf_predict_score(benchmark, predict_split):
    """Exact scoring (AUC + operating-point curve) on the eval split."""
    model, test = predict_split

    metrics = benchmark.pedantic(
        lambda: score_predictions(model, test), rounds=3, iterations=1,
    )
    assert metrics["n_test"] == test.n_rows
    assert metrics["auc"] is not None and metrics["auc"] > 0.6
    mean_ms = benchmark.stats.stats.mean * 1e3
    benchmark.extra_info["predict_score_latency_ms"] = mean_ms
    benchmark.extra_info["n_test"] = test.n_rows
    benchmark.extra_info["rows_per_sec"] = (
        test.n_rows / benchmark.stats.stats.mean
    )
