"""Robustness sweep: headline conclusions hold across seeds."""

import numpy as np
from conftest import run_once

from repro.reporting.sweeps import render_sweep, run_sweep


def test_robustness_sweep(benchmark, record):
    seeds = [11, 22, 33]
    # jobs=0 → one worker per core; seeds are independent simulations.
    summaries = run_once(benchmark, run_sweep, seeds, scale=0.3, n_days=540,
                         jobs=0)
    record("robustness_sweep", render_sweep(summaries, seeds))

    by_name = {summary.name: summary for summary in summaries}
    sf = by_name["Q2 SF S2/S4 average-rate ratio"]
    mf = by_name["Q2 MF S2/S4 average-rate ratio"]
    # Every seed: SF inflated well above the intrinsic 4X, MF closer.
    assert np.all(sf.values > 6.0)
    assert mf.mean < sf.mean - 1.5
    assert np.all(np.abs(mf.values - 4.0) < np.abs(sf.values - 4.0))

    sf_spares = by_name["Q1 SF over-provision W6@100% (%)"]
    mf_spares = by_name["Q1 MF over-provision W6@100% (%)"]
    assert np.all(mf_spares.values < sf_spares.values)

    threshold = by_name["Q3 DC1 temperature split (F)"]
    assert threshold.n_computable == len(seeds)
    assert np.all(np.abs(threshold.values - 78.0) < 6.0)

    hot_cool = by_name["Q3 DC1 hot/cool disk-rate ratio"]
    assert np.all(hot_cool.values > 1.3)
