"""Table I: DC properties (packaging / availability / cooling)."""

from conftest import run_once

from repro.datacenter.topology import CoolingKind, PackagingKind
from repro.reporting import table_i


def test_table1_dc_properties(benchmark, paper_run, record):
    text = run_once(benchmark, table_i, paper_run)
    record("table1_dc_properties", text)

    dc1, dc2 = paper_run.fleet.datacenters
    assert dc1.spec.packaging is PackagingKind.CONTAINER
    assert dc1.spec.availability_nines == 3
    assert dc1.spec.cooling is CoolingKind.ADIABATIC
    assert dc2.spec.packaging is PackagingKind.COLOCATED
    assert dc2.spec.availability_nines == 5
    assert dc2.spec.cooling is CoolingKind.CHILLED_WATER
    # Paper scale: 331 + 290 racks, tens of thousands of servers.
    assert dc1.n_racks == 331
    assert dc2.n_racks == 290
    assert paper_run.fleet.n_servers > 15_000
