"""§VI-Q2 TCO scenarios: S4-vs-S2 procurement at 1X and 1.5X prices."""

from conftest import run_once

from repro.decisions import procurement_scenarios
from repro.reporting.figures import fig14_fig15_sku


def test_q2_tco_scenarios(benchmark, paper_context, record):
    comparison = fig14_fig15_sku(paper_context)
    scenarios = run_once(benchmark, procurement_scenarios, comparison)

    lines = []
    for scenario in scenarios:
        lines.append(
            f"price(S4) = {scenario.price_ratio}X price(S2): "
            f"SF savings {scenario.sf_savings * 100:+.1f}%  "
            f"MF savings {scenario.mf_savings * 100:+.1f}%"
        )
    lines.append("paper: 1.0X -> both > 21%, diff 3.9pp; "
                 "1.5X -> SF +2.3%, MF -3.2%")
    record("q2_tco_scenarios", "\n".join(lines))

    equal, premium = scenarios
    # Equal prices: both approaches favour S4 and agree in sign.
    assert equal.sf_savings > 0.10
    assert equal.mf_savings > 0.05
    # 1.5X premium: SF still (mistakenly) endorses the premium while MF
    # flags it as not cost-effective — the paper's reversal.
    assert premium.sf_savings > premium.mf_savings + 0.03
    assert premium.mf_savings < 0.02
