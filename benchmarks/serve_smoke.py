"""CI smoke test for ``repro serve``: boot, query cold+warm, scrape.

Boots the server subprocess on a fresh store, registers a tiny fleet,
issues Q1/Q2/Q3 cold then warm, slices events, scrapes ``/metrics``,
and asserts the contract CI cares about:

* every request answers 200 with the expected payload shape,
* the second round is served from the cache (warm hit recorded),
* ``/metrics`` reports the traffic and a non-zero cache hit ratio,
* SIGTERM drains gracefully (exit code 0).

Exit code 0 on success; failures raise with context.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from loadgen import ServerHandle, get_json, post_json  # noqa: E402

#: Minimal but non-degenerate scenario (seconds, not minutes, on CI).
SMOKE_FLEET = {"seed": 5, "scale": 0.08, "days": 120}


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as store_dir:
        server = ServerHandle(store_dir, workers=2)
        base = server.base_url
        try:
            status, health = get_json(base, "/healthz")
            check(status == 200 and health["status"] == "ok",
                  f"healthz failed: {status} {health}")

            status, registered = post_json(base, "/v1/fleets", {
                "name": "smoke", "params": SMOKE_FLEET,
            })
            check(status == 200, f"registration failed: {registered}")
            print(f"registered fleet {registered['fleet_id'][:12]}")

            for round_name, expected in (("cold", "computed"),
                                         ("warm", "cache")):
                for kind in ("q1", "q2", "q3"):
                    status, payload = get_json(
                        base, f"/v1/fleets/smoke/{kind}")
                    check(status == 200,
                          f"{round_name} {kind} -> {status}: {payload}")
                    check(payload["meta"]["served_from"] == expected,
                          f"{round_name} {kind} served from "
                          f"{payload['meta']['served_from']}, "
                          f"expected {expected}")
                print(f"{round_name}: q1/q2/q3 all 200, "
                      f"served_from={expected}")

            check(get_json(base, "/v1/fleets/smoke/q1")[1]["plans"].keys()
                  >= {"LB", "SF", "MF"}, "q1 payload missing plans")

            status, window = get_json(
                base, "/v1/fleets/smoke/events?offset=0&limit=5")
            check(status == 200 and window["count"] == 5,
                  f"events slice failed: {status} {window}")
            print(f"events: {window['n_events']} total, sliced 5")

            status, metrics = get_json(base, "/metrics")
            check(status == 200 and metrics["schema"] == 1,
                  f"metrics scrape failed: {status}")
            for kind in ("q1", "q2", "q3"):
                endpoint = metrics["endpoints"][kind]
                check(endpoint["requests"] >= 2,
                      f"{kind} metrics missing traffic: {endpoint}")
                check(endpoint["cache"]["hits"] >= 1,
                      f"{kind} recorded no warm hit: {endpoint}")
            check(metrics["endpoints"]["q1"]["latency"]["p99_ms"] is not None,
                  "latency histogram empty")
            print("metrics: per-endpoint counts + warm hits present")
        finally:
            code = server.stop()
        check(code == 0, f"server exited {code} on SIGTERM")
        print("graceful shutdown: exit 0")
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
