"""Streaming subsystem benches: columnar throughput and memory vs batch.

Timing benchmarks for ``repro.stream`` on the columnar block core:
flattening a run into ``EventBlock`` batches, single-pass block
analysis throughput (events/sec lands in ``BENCH_engine.json`` via
``extra_info``), peak traced memory of the streaming pass next to the
batch λ/μ computation it provably reproduces, and a full-scale row
(paper-scale shards up to ``REPRO_FULLSCALE_EVENTS``) that extrapolates
the single-box wall-clock to a 10⁸-event fleet trace.

Throughput floors are asserted on the best-of-rounds time so a single
scheduler hiccup cannot fail the gate while a real regression still
does.
"""

from __future__ import annotations

import math
import os
import tracemalloc

import numpy as np
import pytest

import repro
from repro.decisions.availability import AvailabilitySla
from repro.stream import (
    BlockSegment,
    StreamAnalyzer,
    StreamInventory,
    blocks_from_result,
)
from repro.telemetry import lambda_matrix, mu_matrix

# Quarter-scale floors from the issue: >=1M events/sec flatten and
# >=2M events/sec analyze (>=10x the per-event PR-3 numbers).
FLATTEN_FLOOR_EPS = 1_000_000
ANALYZE_FLOOR_EPS = 2_000_000

# Full-scale bench sizing: paper-scale shards are appended until the
# event count reaches this target (override to run bigger sweeps).
FULLSCALE_TARGET = int(os.environ.get("REPRO_FULLSCALE_EVENTS", "2000000"))
FULLSCALE_TRACE_EVENTS = 100_000_000


def _best_events_per_sec(benchmark, events: int) -> float:
    return events / benchmark.stats.stats.min


@pytest.fixture(scope="module")
def stream_run():
    return repro.simulate(
        repro.SimulationConfig.small(seed=50, scale=0.25, n_days=365)
    )


@pytest.fixture(scope="module")
def stream_segment(stream_run, tmp_path_factory):
    """Pre-spilled full-stream segment (all kinds): analyze-bench input."""
    segment = BlockSegment.from_blocks(blocks_from_result(stream_run))
    path = tmp_path_factory.mktemp("stream-bench") / "quarter.npz"
    segment.save(path)
    return BlockSegment.load(path)


def test_perf_stream_flatten(benchmark, stream_run):
    """Flattening a run into columnar blocks (sensors included)."""
    n_events = benchmark.pedantic(
        lambda: sum(len(block) for block in blocks_from_result(stream_run)),
        rounds=3, iterations=1,
    )
    assert n_events > 10_000
    best = _best_events_per_sec(benchmark, n_events)
    assert best >= FLATTEN_FLOOR_EPS, (
        f"flatten throughput {best:,.0f} events/sec is below the "
        f"{FLATTEN_FLOOR_EPS:,} floor"
    )
    benchmark.extra_info["events"] = n_events
    benchmark.extra_info["best_events_per_sec"] = best


def test_perf_stream_analyze(benchmark, stream_run, stream_segment):
    """Single-pass block analysis: estimators + triggers, every event."""
    inventory = StreamInventory.from_result(stream_run)

    def consume():
        analyzer = StreamAnalyzer(
            inventory, sla=AvailabilitySla(1.0), spare_fraction=0.05,
        )
        analyzer.consume_blocks(iter(stream_segment))
        analyzer.finish()
        return analyzer

    analyzer = benchmark.pedantic(consume, rounds=3, iterations=1)
    assert analyzer.events_seen == stream_segment.n_events
    best = _best_events_per_sec(benchmark, stream_segment.n_events)
    assert best >= ANALYZE_FLOOR_EPS, (
        f"analyze throughput {best:,.0f} events/sec is below the "
        f"{ANALYZE_FLOOR_EPS:,} floor"
    )
    benchmark.extra_info["events"] = stream_segment.n_events
    benchmark.extra_info["best_events_per_sec"] = best


# Memory-bench block size: streaming peak scales with the resident
# block (plus its gathered ticket columns), so the memory gate pins a
# bounded block while the throughput benches keep the larger default.
MEMORY_BENCH_BLOCK = 1024


def test_perf_stream_memory_vs_batch(benchmark, stream_run):
    """Peak traced memory: O(block) streaming at or below batch matrices.

    The streaming pass holds one ``EventBlock`` plus fixed estimator
    state, so its peak must not exceed the batch λ/μ computation that
    materializes full matrices.  The ratio is the regression gate that
    the per-event path had quietly lost; both peaks and the ratio land
    in BENCH_engine.json.  The pass also re-proves bit-identical λ/μ at
    this scale.
    """
    inventory = StreamInventory.from_result(stream_run)

    def streamed():
        tracemalloc.start()
        analyzer = StreamAnalyzer(inventory, spare_fraction=0.05)
        analyzer.consume_blocks(
            blocks_from_result(stream_run, block_size=MEMORY_BENCH_BLOCK)
        )
        analyzer.finish()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return analyzer, peak

    analyzer, stream_peak = benchmark.pedantic(
        streamed, rounds=1, iterations=1,
    )

    tracemalloc.start()
    batch_lambda = lambda_matrix(stream_run)
    batch_mu = mu_matrix(stream_run, 24.0)
    _, batch_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert np.array_equal(analyzer.lambda_matrix(), batch_lambda)
    assert np.array_equal(analyzer.mu_matrix(), batch_mu)
    assert stream_peak > 0 and batch_peak > 0
    assert stream_peak <= batch_peak, (
        f"streaming peak {stream_peak / 1e6:.1f} MB exceeds the batch "
        f"peak {batch_peak / 1e6:.1f} MB it is meant to undercut"
    )
    benchmark.extra_info["stream_peak_bytes"] = stream_peak
    benchmark.extra_info["batch_peak_bytes"] = batch_peak
    benchmark.extra_info["peak_ratio"] = stream_peak / batch_peak


@pytest.fixture(scope="module")
def fullscale_runs():
    """Paper-scale shards (331+290 racks, 910 days each) up to the target.

    Each shard is an independent fleet under its own seed — the
    full-scale workload is "many data centers", not one stretched RNG
    stream — so analysis state never aliases across shards.
    """
    runs = []
    total = 0
    seed = 0
    while total < FULLSCALE_TARGET:
        run = repro.simulate(repro.SimulationConfig.paper_scale(seed=seed))
        total += sum(len(block) for block in blocks_from_result(run))
        runs.append(run)
        seed += 1
    return runs


def test_perf_stream_fullscale(benchmark, fullscale_runs):
    """Full-scale flatten + analyze: paper-scale shards on one box.

    Times the complete columnar pipeline — flatten every shard into
    blocks and run the full estimator/trigger stack over every event —
    and extrapolates the measured wall-clock to a 10⁸-event multi-year
    trace.  The extrapolation lands in BENCH_engine.json so the
    "minutes on one box" claim stays measured, not asserted.
    """
    inventories = [StreamInventory.from_result(run) for run in fullscale_runs]

    def flatten_and_analyze():
        events = 0
        for run, inventory in zip(fullscale_runs, inventories):
            analyzer = StreamAnalyzer(inventory, spare_fraction=0.05)
            analyzer.consume_blocks(blocks_from_result(run))
            analyzer.finish()
            events += analyzer.events_seen
        return events

    n_events = benchmark.pedantic(flatten_and_analyze, rounds=3, iterations=1)
    assert n_events >= FULLSCALE_TARGET
    best = _best_events_per_sec(benchmark, n_events)
    trace_minutes = FULLSCALE_TRACE_EVENTS / best / 60.0
    benchmark.extra_info["events"] = n_events
    benchmark.extra_info["shards"] = len(fullscale_runs)
    benchmark.extra_info["best_events_per_sec"] = best
    benchmark.extra_info["extrapolated_1e8_minutes"] = round(trace_minutes, 2)
    # "Minutes on one box": a 10^8-event trace must extrapolate to
    # under an hour at the measured throughput.
    assert trace_minutes < 60.0, (
        f"10^8-event trace extrapolates to {trace_minutes:.1f} minutes"
    )
    assert math.isfinite(best)
