"""Streaming subsystem benches: throughput and memory vs the batch path.

Timing benchmarks for ``repro.stream`` on a quarter-scale year:
flattening a run into the event stream, single-pass analysis
throughput (events/sec lands in ``BENCH_engine.json`` via
``extra_info``), and peak traced memory of the streaming pass next to
the batch λ/μ computation it provably reproduces.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

import repro
from repro.decisions.availability import AvailabilitySla
from repro.stream import StreamAnalyzer, StreamInventory, flatten_result
from repro.stream.experiment import _KINDS
from repro.telemetry import lambda_matrix, mu_matrix


@pytest.fixture(scope="module")
def stream_run():
    return repro.simulate(
        repro.SimulationConfig.small(seed=50, scale=0.25, n_days=365)
    )


@pytest.fixture(scope="module")
def stream_events(stream_run):
    """Pre-flattened ticket + inventory events (analysis-bench input)."""
    return list(flatten_result(stream_run, kinds=_KINDS))


def test_perf_stream_flatten(benchmark, stream_run):
    """Flattening a run into the full event stream (sensors included)."""
    n_events = benchmark.pedantic(
        lambda: sum(1 for _ in flatten_result(stream_run)),
        rounds=3, iterations=1,
    )
    assert n_events > 10_000
    benchmark.extra_info["events"] = n_events


def test_perf_stream_analyze(benchmark, stream_run, stream_events):
    """Single-pass analysis: estimators + triggers over every event."""
    inventory = StreamInventory.from_result(stream_run)

    def consume():
        analyzer = StreamAnalyzer(
            inventory, sla=AvailabilitySla(1.0), spare_fraction=0.05,
        )
        analyzer.consume(iter(stream_events))
        analyzer.finish()
        return analyzer

    analyzer = benchmark.pedantic(consume, rounds=3, iterations=1)
    assert analyzer.events_seen == len(stream_events)
    benchmark.extra_info["events"] = len(stream_events)


def test_perf_stream_memory_vs_batch(benchmark, stream_run):
    """Peak traced memory: O(state) streaming vs the batch matrices.

    The streaming pass never materializes the event list (generator in,
    fixed estimator state held), so its peak stays near the μ difference
    array.  Both peaks are recorded in BENCH_engine.json for the
    trajectory; the pass also re-proves bit-identical λ at this scale.
    """
    inventory = StreamInventory.from_result(stream_run)

    def streamed():
        tracemalloc.start()
        analyzer = StreamAnalyzer(inventory, spare_fraction=0.05)
        analyzer.consume(flatten_result(stream_run, kinds=_KINDS))
        analyzer.finish()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return analyzer, peak

    analyzer, stream_peak = benchmark.pedantic(
        streamed, rounds=1, iterations=1,
    )

    tracemalloc.start()
    batch_lambda = lambda_matrix(stream_run)
    batch_mu = mu_matrix(stream_run, 24.0)
    _, batch_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert np.array_equal(analyzer.lambda_matrix(), batch_lambda)
    assert np.array_equal(analyzer.mu_matrix(), batch_mu)
    assert stream_peak > 0 and batch_peak > 0
    benchmark.extra_info["stream_peak_bytes"] = stream_peak
    benchmark.extra_info["batch_peak_bytes"] = batch_peak
