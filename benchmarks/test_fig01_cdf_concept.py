"""Fig 1: aggregate vs per-group requirement CDFs (e / g1 / g2)."""

import numpy as np
from conftest import run_once

from repro.reporting.figures import fig01_cdf_concept, render_fig01


def test_fig01_cdf_concept(benchmark, paper_context, record):
    samples = run_once(benchmark, fig01_cdf_concept, paper_context,
                       workload="W6", sla_level=0.95)
    record("fig01_cdf_concept", render_fig01(samples))

    e = np.quantile(samples["all"], 0.95)
    g1 = np.quantile(samples["group_low"], 0.95)
    g2 = np.quantile(samples["group_high"], 0.95)
    # The figure's construction: the aggregate 95th percentile sits far
    # from the calm group's (g1 < e) while the demanding group needs
    # more (g2 > e); per-group provisioning at g1/g2 beats uniform e.
    assert g1 < e < g2
    capacity_low = len(samples["group_low"])
    capacity_high = len(samples["group_high"])
    blended = (g1 * capacity_low + g2 * capacity_high) / (
        capacity_low + capacity_high
    )
    uniform = e
    assert blended < uniform * 1.05  # group-wise is no worse, usually better
