"""Fig 13: component-level vs server-level spare cost (100% SLA, daily)."""

from conftest import run_once

from repro.reporting.figures import fig13_component_spares


def test_fig13_component_spares(benchmark, paper_context, record):
    figure = run_once(benchmark, fig13_component_spares, paper_context)
    record("fig13_component_spares", figure.render())

    mf = dict(zip(figure.labels, figure.values("MF")))
    sf = dict(zip(figure.labels, figure.values("SF")))
    lb = dict(zip(figure.labels, figure.values("LB")))

    # "A clear benefit in provisioning spares at component level ... with
    # MF": component < server for both workloads, with the compute
    # workload's reduction more pronounced (paper: 40% vs 10%).
    mf_w1_ratio = mf["W1/component"] / mf["W1/server"]
    mf_w6_ratio = mf["W6/component"] / mf["W6/server"]
    assert mf_w1_ratio < 0.85
    assert mf_w6_ratio < 1.0
    assert mf_w1_ratio < mf_w6_ratio

    # SF exploits component spares far less than MF does (in the paper
    # its W1 component plan even exceeds its server plan).
    sf_w1_ratio = sf["W1/component"] / sf["W1/server"]
    assert mf_w1_ratio < sf_w1_ratio + 0.05

    # LB remains the floor everywhere.
    for label in figure.labels:
        assert lb[label] <= mf[label] + 1e-6
        assert mf[label] <= sf[label] + 1e-6
