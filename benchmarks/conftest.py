"""Benchmark fixtures: one paper-scale simulation shared by all benches.

Each benchmark regenerates one of the paper's tables/figures from the
simulated fleet, prints the reproduced rows/series, writes them under
``results/`` for inspection, and asserts the paper's qualitative shape
(who wins, rough factors, crossovers) — not absolute numbers, since the
substrate is a simulator rather than the authors' production estate.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

import pytest

import repro
from repro.reporting import AnalysisContext

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"

# Mean timings (seconds) measured on the per-day-loop engine at the
# commit before vectorization, same machine class as CI.  Entries here
# get a ``speedup_vs_baseline`` field in BENCH_engine.json so the perf
# trajectory across PRs stays visible.
SEED_BASELINES = {
    "test_perf_simulation_quarter_scale": 0.296,
}


@pytest.fixture(scope="session")
def paper_run() -> repro.SimulationResult:
    """The canonical paper-scale run: 331+290 racks over 910 days."""
    return repro.simulate(repro.SimulationConfig.paper_scale(seed=0))


@pytest.fixture(scope="session")
def paper_context(paper_run) -> AnalysisContext:
    """Cached analysis context over the paper-scale run."""
    return AnalysisContext(paper_run)


@pytest.fixture(scope="session")
def record():
    """Writer: persist a reproduced artifact under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive analysis exactly once (no warmup loops)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def pytest_sessionfinish(session, exitstatus):
    """Persist machine-readable timings to BENCH_engine.json.

    Entries are merged by benchmark name, so partial runs (e.g. only
    ``test_perf_engine.py``) update their own rows and leave the rest of
    the trajectory file intact.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return

    payload = {"schema": 1, "entries": {}}
    if BENCH_JSON.exists():
        try:
            previous = json.loads(BENCH_JSON.read_text())
            payload["entries"] = dict(previous.get("entries", {}))
        except (OSError, ValueError):
            pass

    for bench in bench_session.benchmarks:
        if not bench.stats:
            continue
        stats = bench.stats.as_dict()
        entry = {
            "fullname": bench.fullname,
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "max_s": stats["max"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        baseline = SEED_BASELINES.get(bench.name)
        if baseline is not None:
            entry["baseline_mean_s"] = baseline
            entry["speedup_vs_baseline"] = baseline / stats["mean"]
        if bench.extra_info:
            entry["extra"] = dict(bench.extra_info)
            events = bench.extra_info.get("events")
            if events and stats["mean"] > 0:
                entry["events_per_sec"] = events / stats["mean"]
        payload["entries"][bench.name] = entry

    payload["updated"] = time.time()
    payload["machine"] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
