"""Benchmark fixtures: one paper-scale simulation shared by all benches.

Each benchmark regenerates one of the paper's tables/figures from the
simulated fleet, prints the reproduced rows/series, writes them under
``results/`` for inspection, and asserts the paper's qualitative shape
(who wins, rough factors, crossovers) — not absolute numbers, since the
substrate is a simulator rather than the authors' production estate.
"""

from __future__ import annotations

import pathlib

import pytest

import repro
from repro.reporting import AnalysisContext

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def paper_run() -> repro.SimulationResult:
    """The canonical paper-scale run: 331+290 racks over 910 days."""
    return repro.simulate(repro.SimulationConfig.paper_scale(seed=0))


@pytest.fixture(scope="session")
def paper_context(paper_run) -> AnalysisContext:
    """Cached analysis context over the paper-scale run."""
    return AnalysisContext(paper_run)


@pytest.fixture(scope="session")
def record():
    """Writer: persist a reproduced artifact under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive analysis exactly once (no warmup loops)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
