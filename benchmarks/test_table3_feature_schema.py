"""Table III: candidate features, types and observed ranges."""

from conftest import run_once

from repro.reporting import table_iii
from repro.telemetry import FeatureKind, fleet_schema


def test_table3_feature_schema(benchmark, paper_run, paper_context, record):
    text = run_once(benchmark, table_iii, paper_run)
    record("table3_feature_schema", text)

    schema = fleet_schema(paper_run)
    kinds = {feature.name: feature.kind for feature in schema}
    # Table III's type assignments.
    assert kinds["sku"] is FeatureKind.NOMINAL
    assert kinds["workload"] is FeatureKind.NOMINAL
    assert kinds["dc"] is FeatureKind.NOMINAL
    assert kinds["age_months"] is FeatureKind.CONTINUOUS
    assert kinds["rated_power_kw"] is FeatureKind.CONTINUOUS
    assert kinds["temp_f"] is FeatureKind.CONTINUOUS
    assert kinds["rh"] is FeatureKind.CONTINUOUS
    assert kinds["day_of_week"] is FeatureKind.ORDINAL
    assert kinds["month"] is FeatureKind.ORDINAL

    table = paper_context.all_failures
    # Table III's observed ranges: T 56-90 F, RH 5-87%, age 0-5 years,
    # power 4-15 kW.
    temp = table.column("temp_f")
    rh = table.column("rh")
    assert 50.0 < temp.min() < 66.0
    assert 78.0 < temp.max() < 98.0
    assert rh.min() < 12.0
    assert rh.max() > 60.0
    assert table.column("age_months").max() > 48.0
    rated = table.column("rated_power_kw")
    assert rated.min() >= 4.0 and rated.max() <= 15.0
