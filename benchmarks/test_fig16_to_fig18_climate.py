"""Figs 16-18: temperature/RH vs failures — Q3's SF and MF views."""

import numpy as np
from conftest import run_once

from repro.decisions import discover_climate_thresholds
from repro.reporting.figures import (
    fig16_temperature_all,
    fig17_temperature_disk,
    fig18_climate_mf,
)


def test_fig16_temp_all(benchmark, paper_context, record):
    figure = run_once(benchmark, fig16_temperature_all, paper_context)
    record("fig16_temp_all", figure.render())

    means = figure.values("mean")
    sds = figure.values("sd")
    finite = np.isfinite(means)
    # "Less variation in the mean of the failure rates among different
    # groups identified by temperature range, but there is a high
    # variation within each group."
    between = means[finite].max() - means[finite].min()
    within = np.nanmean(sds)
    assert within > 1.5 * between


def test_fig17_temp_disk(benchmark, paper_context, record):
    figure = run_once(benchmark, fig17_temperature_disk, paper_context)
    record("fig17_temp_disk", figure.render())

    means = figure.values("mean")
    # "A clear trend in hard disk failure rate with increase in
    # operating temperature": hottest bin worst, well above the coolest.
    assert np.nanargmax(means) == len(means) - 1
    assert means[-1] > 1.5 * means[0]
    assert means[-1] > means[-2]


def test_fig18_temp_rh_mf(benchmark, paper_context, record):
    figure = run_once(benchmark, fig18_climate_mf, paper_context)
    record("fig18_temp_rh_mf", figure.render())

    rates = dict(zip(figure.labels, figure.values("rate")))
    # DC1: operating above 78 F raises HDD failures (paper: +50%), and
    # hot-AND-dry is worse still (paper: +25% more).
    assert rates["DC1:T>=78.8F"] > 1.3 * rates["DC1:T<=78F"]
    assert rates["DC1:T>=78.8+RH<=25.5"] > 1.1 * rates["DC1:T>=78.8F"]
    assert rates["DC1:T>=78.8+RH<=25.5"] == 1.0  # the normalization anchor
    # DC2 "seems relatively unaffected with temperature and RH
    # variations" — flat (or missing) hot-group rates.
    dc2_hot = rates["DC2:T>=78.8F"]
    if np.isfinite(dc2_hot):
        assert dc2_hot < 1.4 * rates["DC2:T<=78F"]
    assert not np.isfinite(rates["DC2:T>=78.8+RH<=25.5"])  # regime unreachable


def test_fig18_threshold_discovery(benchmark, paper_context, record):
    """The MF tree *finds* 78 F / 25% RH rather than assuming them."""
    found_dc1 = run_once(
        benchmark, discover_climate_thresholds,
        paper_context.result, "DC1", table=paper_context.disk_failures,
    )
    found_dc2 = discover_climate_thresholds(
        paper_context.result, "DC2", table=paper_context.disk_failures,
    )
    record(
        "fig18_thresholds",
        f"DC1: T* = {found_dc1.temp_threshold_f} (paper: 78/78.8), "
        f"RH* = {found_dc1.rh_threshold} (paper: 25.5), "
        f"gain share = {found_dc1.temp_gain_share:.4f}\n"
        f"DC2: T* = {found_dc2.temp_threshold_f} (paper: no split)",
    )
    assert found_dc1.temp_threshold_f is not None
    assert abs(found_dc1.temp_threshold_f - 78.0) < 5.0
    if found_dc1.rh_threshold is not None:
        assert found_dc1.rh_threshold < 33.0
    assert found_dc2.temp_threshold_f is None
