"""Extension benches: climate-control TCO and the null-factor check."""

import numpy as np
from conftest import run_once

from repro.analysis import MultiFactorModel, TreeParams
from repro.decisions import ClimateCostParams, climate_tco_curve
from repro.environment import attach_ahu_telemetry


def test_ext_climate_tco(benchmark, paper_context, record):
    """§VI-Q3's declared follow-up: setpoint choice as a TCO problem."""
    curve = run_once(
        benchmark, climate_tco_curve, paper_context.result,
        table=paper_context.disk_failures,
    )
    pricey = climate_tco_curve(
        paper_context.result, table=paper_context.disk_failures,
        params=ClimateCostParams(trim_cost_per_rack_degree_day=0.5),
    )
    record(
        "ext_climate_tco",
        curve.render() + "\n\nwith 250X pricier trim cooling: optimum "
        f"moves to {pricey.optimal.cap_f:.0f} F",
    )
    # Failure cost never decreases as the cap loosens; cooling cost
    # never increases; the optimum rises with the trim price.
    failures = [e.failure_cost for e in curve.evaluations]
    cooling = [e.cooling_cost for e in curve.evaluations]
    assert all(a <= b + 1e-9 for a, b in zip(failures, failures[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(cooling, cooling[1:]))
    assert pricey.optimal.cap_f >= curve.optimal.cap_f
    # At realistic trim prices the optimum stays at or below the planted
    # 78 F step — the "how much leeway" answer of Q3.
    assert curve.optimal.cap_f <= 78.0


def test_ext_null_factor(benchmark, paper_context, record):
    """Pressure/airflow are planted nulls; MF must not flag them."""
    table = run_once(
        benchmark, attach_ahu_telemetry,
        paper_context.all_failures, paper_context.result,
    )
    model = MultiFactorModel.from_formula(
        "failures ~ pressure_pa, airflow_cfm, sku, workload, age_months, "
        "dc, rated_power_kw",
        table,
        params=TreeParams(max_depth=6, min_split=800, min_bucket=300,
                          cp=5e-4),
    )
    importance = model.importance()
    pressure = table.column("pressure_pa").astype(float)
    failures = table.column("failures").astype(float)
    correlation = float(np.corrcoef(pressure, failures)[0, 1])
    record(
        "ext_null_factor",
        f"pressure-failure correlation: {correlation:+.4f}\n"
        f"MF importance: { {k: round(v, 3) for k, v in importance.items()} }\n"
        "-> the framework assigns the null factors no influence while "
        "ranking the real ones",
    )
    assert abs(correlation) < 0.02
    assert importance.get("pressure_pa", 0.0) < 0.05
    assert importance.get("airflow_cfm", 0.0) < 0.05
    assert importance.get("sku", 0.0) > 0.3
