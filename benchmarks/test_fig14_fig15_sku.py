"""Figs 14-15: SKU reliability — SF histograms vs MF normalization."""

import pytest
from conftest import run_once

from repro.reporting.figures import fig14_fig15_sku, render_fig14, render_fig15


@pytest.fixture(scope="module")
def comparison(paper_context):
    return fig14_fig15_sku(paper_context)


def test_fig14_sku_sf(benchmark, paper_context, record, comparison):
    result = run_once(benchmark, lambda: comparison)
    record("fig14_sku_sf", render_fig14(result))

    # SF's picture (Fig 14): S2 worst average by a large factor
    # (paper: 10X S4; ours lands ≈8X), S3 the highest peak, S4 best on
    # both metrics.
    assert comparison.sf_ratio("S2", "S4", "mean") > 5.5
    peaks = {label: comparison.sf_peak[label].peak
             for label in ("S1", "S3", "S2", "S4")}
    assert peaks["S3"] == max(peaks.values())
    assert peaks["S4"] == min(peaks.values())
    means = {label: comparison.sf_mean[label].mean
             for label in ("S1", "S3", "S2", "S4")}
    assert means["S4"] == min(means.values())


def test_fig15_sku_mf(benchmark, record, comparison):
    text = run_once(benchmark, render_fig15, comparison)
    record("fig15_sku_mf", text)

    sf_ratio = comparison.sf_ratio("S2", "S4", "mean")
    mf_ratio = comparison.mf_ratio("S2", "S4", "mean")
    intrinsic = 2.8 / 0.7  # the planted ground truth

    # "The SF approach grossly overestimates ... 10X ... as opposed to
    # just 4X determined by the MF model": MF collapses the ratio toward
    # the intrinsic 4X while preserving the ordering.
    assert mf_ratio < 0.8 * sf_ratio
    assert 2.5 < mf_ratio < 6.5
    assert abs(mf_ratio - intrinsic) < abs(sf_ratio - intrinsic)

    # "A significant drop in variation (up to 50%) compared to SF."
    assert comparison.mf_mean["S2"].sd < comparison.sf_mean["S2"].sd
