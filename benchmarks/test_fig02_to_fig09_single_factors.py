"""Figs 2-9: the §V-B evidence family — failure rate vs one factor each.

Grouped in one module because they share the rack-day table; each
figure still gets its own benchmarked test and shape assertions.
"""

import numpy as np
from conftest import run_once

from repro.reporting.figures import (
    fig02_spatial,
    fig03_day_of_week,
    fig04_month,
    fig05_humidity,
    fig06_workload,
    fig07_sku,
    fig08_power,
    fig09_age,
)


def test_fig02_spatial(benchmark, paper_context, record):
    figure = run_once(benchmark, fig02_spatial, paper_context)
    record("fig02_spatial", figure.render())

    means = dict(zip(figure.labels, figure.values("mean")))
    dc1 = [v for k, v in means.items() if k.startswith("DC1")]
    dc2 = [v for k, v in means.items() if k.startswith("DC2")]
    # "In general, regions of DC1 shows higher failure rate than DC2."
    assert np.mean(dc1) > 1.15 * np.mean(dc2)
    # Intra-DC variation exists.
    assert max(dc1) > 1.3 * min(dc1)


def test_fig03_day_of_week(benchmark, paper_context, record):
    figure = run_once(benchmark, fig03_day_of_week, paper_context)
    record("fig03_day_of_week", figure.render())

    means = dict(zip(figure.labels, figure.values("mean")))
    weekday = np.mean([means[d] for d in ("Mon", "Tue", "Wed", "Thu", "Fri")])
    weekend = np.mean([means[d] for d in ("Sat", "Sun")])
    # "Mean failure rate is high on weekdays."
    assert weekday > 1.1 * weekend
    assert min(means, key=means.get) in ("Sat", "Sun")
    # The paper plots 2012 and 2013 as separate, concordant series.
    for name in figure.series:
        if name.startswith("year"):
            values = figure.values(name)
            year_weekday = np.nanmean(values[1:6])
            year_weekend = np.nanmean(values[[0, 6]])
            assert year_weekday > year_weekend


def test_fig04_month(benchmark, paper_context, record):
    figure = run_once(benchmark, fig04_month, paper_context)
    record("fig04_month", figure.render())

    means = dict(zip(figure.labels, figure.values("mean")))
    first_half = np.mean([means[m] for m in ("Jan", "Feb", "Mar", "Apr", "May")])
    second_half = np.mean([means[m] for m in ("Jul", "Aug", "Sep", "Oct")])
    # "An increase in failures in the second half of the year."
    assert second_half > first_half
    # Whole observation years show the same H2 bump independently.
    label_index = {label: i for i, label in enumerate(figure.labels)}
    for name in figure.series:
        if not name.startswith("year"):
            continue
        values = figure.values(name)
        h1 = np.nanmean([values[label_index[m]]
                         for m in ("Feb", "Mar", "Apr", "May")])
        h2 = np.nanmean([values[label_index[m]]
                         for m in ("Jul", "Aug", "Sep", "Oct")])
        if np.isfinite(h1) and np.isfinite(h2):
            assert h2 > 0.9 * h1  # concordant within noise


def test_fig05_humidity(benchmark, paper_context, record):
    figure = run_once(benchmark, fig05_humidity, paper_context)
    record("fig05_humidity", figure.render())

    means = figure.values("mean")
    counts = figure.values("count")
    populated = counts > 500
    # "Notable variation in failure rates for lower humidity points":
    # the driest populated bin clearly exceeds the mid-range bins.
    dry = means[0] if populated[0] else means[1]
    mid = np.nanmean(means[3:5])
    assert dry > 1.15 * mid


def test_fig06_workload(benchmark, paper_context, record):
    figure = run_once(benchmark, fig06_workload, paper_context)
    record("fig06_workload", figure.render())

    means = dict(zip(figure.labels, figure.values("mean")))
    # W2 (compute) highest; HPC among the calmest; storage-data below
    # storage-compute.
    assert means["W2"] == max(means.values())
    assert means["W3"] <= 1.25 * min(means.values())
    assert means["W5"] < means["W4"]
    assert means["W6"] < means["W7"]


def test_fig07_sku(benchmark, paper_context, record):
    figure = run_once(benchmark, fig07_sku, paper_context)
    record("fig07_sku", figure.render())

    means = dict(zip(figure.labels, figure.values("mean")))
    sds = dict(zip(figure.labels, figure.values("sd")))
    # "Marked differences in mean and sd of failure rates for SKUs."
    assert means["S2"] == max(means.values())
    assert max(means.values()) > 2.0 * min(means.values())
    assert sds["S2"] > sds["S4"]


def test_fig08_power(benchmark, paper_context, record):
    figure = run_once(benchmark, fig08_power, paper_context)
    record("fig08_power", figure.render())

    levels = np.array([float(label) for label in figure.labels])
    means = figure.values("mean")
    high = means[levels > 12.0].mean()
    low = means[levels <= 9.0].mean()
    # "Racks with higher power ratings (>12KW) report higher rates."
    assert high > 1.2 * low


def test_fig09_age(benchmark, paper_context, record):
    figure = run_once(benchmark, fig09_age, paper_context)
    record("fig09_age", figure.render())

    means = figure.values("mean")
    # "New equipment tends to have higher failures" — the young edge of
    # the bathtub; no wear-out tail is visible within 2.5 years.
    assert means[0] == np.nanmax(means)
    assert means[0] > 1.5 * np.nanmin(means[:8])
