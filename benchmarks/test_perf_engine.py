"""Performance benches: the substrate itself is fast enough to iterate on.

These are honest timing benchmarks (multiple rounds) of the hot paths,
so pytest-benchmark's statistics are meaningful here.
"""

import pytest

import repro
from repro.failures.tickets import HARDWARE_FAULTS
from repro.telemetry import build_rack_day_table, lambda_matrix, mu_matrix


def test_perf_simulation_quarter_scale(benchmark):
    """Simulating a quarter-scale fleet for one year."""
    config = repro.SimulationConfig.small(seed=50, scale=0.25, n_days=365)
    result = benchmark.pedantic(
        repro.simulate, args=(config,), rounds=3, iterations=1,
    )
    assert len(result.tickets) > 1000


def test_perf_session_step_overhead(benchmark):
    """Weekly-stepped session vs batch simulate on the same year.

    The stepping machinery (chunk buffering, per-step window slicing,
    incremental finalization) must stay close to the batch path — the
    closed-loop what-if engine replays every policy through it.  Gated
    at 1.5x the batch mean so only a structural regression trips it.
    """
    import time

    from repro.failures.engine import SimulationSession

    config = repro.SimulationConfig.small(seed=50, scale=0.25, n_days=365)

    batch_start = time.perf_counter()
    batch = repro.simulate(config)
    batch_s = time.perf_counter() - batch_start

    def stepped():
        session = SimulationSession(config)
        while not session.exhausted:
            session.step(7)
        return session.result()

    result = benchmark.pedantic(stepped, rounds=3, iterations=1)
    assert len(result.tickets) == len(batch.tickets)
    ratio = benchmark.stats.stats.mean / batch_s
    benchmark.extra_info["batch_mean_s"] = batch_s
    benchmark.extra_info["step_ratio"] = ratio
    benchmark.extra_info["step_days"] = 7
    assert ratio <= 1.5, (
        f"weekly-stepped session ran {ratio:.2f}x the batch path "
        f"({benchmark.stats.stats.mean:.3f}s vs {batch_s:.3f}s)"
    )


@pytest.fixture(scope="module")
def perf_run():
    return repro.simulate(
        repro.SimulationConfig.small(seed=50, scale=0.25, n_days=365)
    )


def test_perf_rack_day_table(benchmark, perf_run):
    """Building the full analysis table."""
    table = benchmark.pedantic(
        build_rack_day_table, args=(perf_run,),
        kwargs={"include_mu": True}, rounds=3, iterations=1,
    )
    assert table.n_rows > 10_000


def test_perf_mu_hourly(benchmark, perf_run):
    """Hourly μ over the whole run (the heaviest window computation)."""
    mu = benchmark.pedantic(
        mu_matrix, args=(perf_run, 1.0), rounds=3, iterations=1,
    )
    assert mu.shape[1] == perf_run.n_days * 24


def test_perf_lambda(benchmark, perf_run):
    counts = benchmark.pedantic(
        lambda_matrix, args=(perf_run, list(HARDWARE_FAULTS)),
        rounds=5, iterations=1,
    )
    assert counts.sum() > 0


def test_perf_cart_fit(benchmark, perf_run):
    """Fitting the Q2 CART on ~30k rack-days."""
    from repro.analysis import MultiFactorModel, TreeParams
    from repro.decisions.sku_ranking import MF_FORMULA

    table = build_rack_day_table(
        perf_run, faults=list(HARDWARE_FAULTS), include_mu=True,
    )

    def fit():
        return MultiFactorModel.from_formula(
            MF_FORMULA, table,
            params=TreeParams(max_depth=7, min_split=200, min_bucket=80,
                              cp=3e-4),
        )

    model = benchmark.pedantic(fit, rounds=3, iterations=1)
    assert model.tree.n_leaves >= 2


def test_perf_fielddata_degrade_clean(benchmark, perf_run):
    """Corrupt + clean throughput over a quarter-scale run's field data."""
    from repro.fielddata import FieldDataset, clean_dataset, standard_pipeline

    dataset = FieldDataset.from_result(perf_run)

    def degrade_and_clean():
        corrupted, _ = standard_pipeline(0.6, seed=1).apply(dataset)
        return clean_dataset(corrupted)[0]

    cleaned = benchmark.pedantic(degrade_and_clean, rounds=3, iterations=1)
    assert len(cleaned.tickets) > 1000


def test_perf_fielddata_ingest(benchmark, perf_run, tmp_path):
    """Typed CSV + npz load of an exported quarter-scale field dataset."""
    from repro.fielddata import FieldDataset, export_dataset, load_field_dataset

    dataset = FieldDataset.from_result(perf_run)
    export_dataset(dataset, tmp_path)
    loaded = benchmark.pedantic(
        load_field_dataset, args=(tmp_path, perf_run.config),
        rounds=3, iterations=1,
    )
    assert len(loaded.tickets) == len(dataset.tickets)
