"""Ablation benches for the design choices DESIGN.md calls out.

Not paper artifacts — these probe *why* the reproduction behaves as it
does: the planted confounds (without them SF is fine), the Cat. 2
estimator choice, and the μ window granularity.
"""

import numpy as np
import pytest
from conftest import run_once

import repro
from repro.datacenter.builder import FleetConfig
from repro.decisions import AvailabilitySla, compare_skus
from repro.decisions.sku_ranking import MF_FORMULA
from repro.analysis import MultiFactorModel
from repro.decisions.spares import SpareProvisioner


@pytest.fixture(scope="module")
def deconfounded_run():
    """Half-scale fleet with the Q2 confounds switched off."""
    config = repro.SimulationConfig(
        seed=0, n_days=540,
        fleet=FleetConfig(scale=0.5, observation_days=540,
                          plant_confounds=False),
    )
    return repro.simulate(config)


def test_ablation_confounds(benchmark, paper_context, deconfounded_run, record):
    """Without the planted confounds, SF's SKU estimate is honest."""
    confounded = compare_skus(paper_context.result,
                              table=paper_context.hardware_failures)
    deconfounded = run_once(benchmark, compare_skus, deconfounded_run)

    sf_with = confounded.sf_ratio("S2", "S4", "mean")
    sf_without = deconfounded.sf_ratio("S2", "S4", "mean")
    intrinsic = 2.8 / 0.7
    record(
        "ablation_confounds",
        f"S2/S4 observed (SF) with confounds:    {sf_with:.2f}\n"
        f"S2/S4 observed (SF) without confounds: {sf_without:.2f}\n"
        f"planted intrinsic ratio:               {intrinsic:.2f}\n"
        "-> the confounds, not the hardware, create SF's error",
    )
    assert sf_with > 1.4 * sf_without
    assert abs(sf_without - intrinsic) < abs(sf_with - intrinsic)


def test_ablation_cat2_estimators(benchmark, paper_context, record):
    """Pure PD vs direct standardization vs common-support ratio."""
    table = paper_context.hardware_failures
    model = run_once(
        benchmark, MultiFactorModel.from_formula, MF_FORMULA, table,
    )
    pd_ratio = model.effect_ratio("sku", "S2", "S4")
    adjusted = model.stratified_effect("sku")
    standardized_ratio = adjusted["S2"].mean / adjusted["S4"].mean
    common = model.stratified_ratio("sku", "S2", "S4")
    intrinsic = 2.8 / 0.7
    record(
        "ablation_cat2_estimators",
        f"S2/S4 via Friedman partial dependence: {pd_ratio:.2f}\n"
        f"S2/S4 via direct standardization:      {standardized_ratio:.2f}\n"
        f"S2/S4 via common-support ratio:        {common:.2f}\n"
        f"planted intrinsic ratio:               {intrinsic:.2f}",
    )
    # Direct standardization is the estimator the Q2 pipeline uses; it
    # must beat pure PD, which cannot fully deconfound a root-level SKU
    # split (its branch weights follow the confounded sub-populations).
    assert abs(standardized_ratio - intrinsic) < abs(pd_ratio - intrinsic)


def test_ablation_mu_granularity(benchmark, paper_context, record):
    """μ window sweep: finer windows expose temporal multiplexing."""
    sla = AvailabilitySla(1.0)
    daily = paper_context.provisioner(24.0)
    daily_plan = daily.multi_factor("W6", sla)

    def sweep():
        rows = {}
        for window_hours in (24.0, 6.0, 1.0):
            provisioner = (daily if window_hours == 24.0
                           else SpareProvisioner(paper_context.result,
                                                 window_hours=window_hours))
            plan = provisioner.multi_factor(
                "W6", sla,
                clusters_from=None if window_hours == 24.0 else daily_plan,
            )
            rows[window_hours] = plan.overprovision
        return rows

    rows = run_once(benchmark, sweep)
    record(
        "ablation_mu_granularity",
        "\n".join(f"window {hours:5.1f} h: MF over-provision "
                  f"{fraction:.1%}" for hours, fraction in rows.items()),
    )
    assert rows[1.0] <= rows[6.0] + 1e-9 <= rows[24.0] + 2e-9


def test_ablation_per_server_merging(benchmark, paper_context, record):
    """Raw device intervals overstate server-level μ (double counting)."""
    from repro.telemetry import mu_matrix

    merged = run_once(benchmark, mu_matrix, paper_context.result, 24.0)
    raw = mu_matrix(paper_context.result, 24.0, per_server=False)
    raw_peaks = raw.max(axis=1)
    merged_peaks = merged.max(axis=1)
    overstated_racks = float((raw_peaks > merged_peaks).mean())
    worst = float((raw_peaks / np.maximum(merged_peaks, 1)).max())
    record(
        "ablation_per_server_merging",
        f"racks whose worst-window μ is overstated without merging: "
        f"{overstated_racks:.1%}\n"
        f"largest per-rack peak overstatement: {worst:.2f}X\n"
        "-> 100%-SLA spares are sized by those peaks, so double-counted "
        "co-located component failures would directly inflate CapEx",
    )
    # The distortion is a tail phenomenon: the bulk sums barely move,
    # but a visible share of racks' provisioning-relevant peaks do.
    assert np.all(raw_peaks >= merged_peaks)
    assert overstated_racks > 0.02
    assert worst > 1.1
