"""The field-data boundary, enforced.

docs/architecture.md promises that the analysis side (`analysis/`,
`decisions/`, `reporting/`, `stream/`, `telemetry/`) never touches
simulator ground truth: neither the hazard modules nor the attributes
that carry planted SKU/region hazards.  Since the ``GT-leak`` rule in
:mod:`repro.staticcheck` enforces exactly this contract — with a
generated forbidden set and a real import graph — these tests are thin
wrappers over the rule rather than a second hand-rolled walker.
"""

import pathlib

from repro.staticcheck import lint_paths
from repro.staticcheck.contract import (
    ANALYSIS_PACKAGES,
    FORBIDDEN_GROUND_TRUTH_MODULES,
    ground_truth_attributes,
)
from repro.staticcheck.framework import get_rule

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

# The historical hand-maintained forbidden set; the generated one must
# keep covering it so the contract can only get stricter.
FORBIDDEN_ATTRIBUTES = (
    "sku_intrinsic", "batch_rate", "batch_mean_size", "region_hazard",
    "region_thermal_offset", "region_humidity_offset", "intrinsic_hazard",
    "batch_failure_rate", "stress_multiplier", "thermal_coupling",
)


def gt_leak_findings():
    report = lint_paths([SRC], rules=[get_rule("GT-leak")])
    return report.all_findings


class TestFieldDataBoundary:
    def test_no_hazard_imports(self):
        offenders = [
            finding.location() for finding in gt_leak_findings()
            if "import" in finding.message
        ]
        assert not offenders, (
            f"analysis-side modules import the hazard ground truth: {offenders}"
        )

    def test_no_ground_truth_attribute_reads(self):
        offenders = [
            f"{finding.location()}: {finding.message}"
            for finding in gt_leak_findings()
            if "import" not in finding.message
        ]
        assert not offenders, (
            f"analysis-side modules read planted ground truth: {offenders}"
        )

    def test_generation_side_owns_the_hazards(self):
        """Sanity: the forbidden surfaces do exist on the generation side."""
        failures_src = (SRC / "failures" / "faultmodel.py").read_text()
        assert "sku_intrinsic" in failures_src
        assert "hazards" in failures_src
        assert "repro.failures.hazards" in FORBIDDEN_GROUND_TRUTH_MODULES

    def test_environment_truth_not_used_by_default(self):
        """Analyses default to BMS observations, not simulator truth."""
        aggregate = (SRC / "telemetry" / "aggregate.py").read_text()
        assert "use_observed_environment: bool = True" in aggregate

    def test_generated_forbidden_set_covers_historical_list(self):
        """The metadata-derived set must keep covering the old tuple."""
        generated = ground_truth_attributes()
        missing = set(FORBIDDEN_ATTRIBUTES) - generated
        assert not missing, (
            f"ground-truth marks lost attributes the boundary used to "
            f"protect: {sorted(missing)}"
        )

    def test_analysis_packages_unchanged(self):
        """The rule guards at least the packages this test always did."""
        assert {"analysis", "decisions", "reporting", "stream",
                "telemetry"} <= set(ANALYSIS_PACKAGES)
