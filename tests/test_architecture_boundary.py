"""The field-data boundary, enforced.

docs/architecture.md promises that the analysis side (`analysis/`,
`decisions/`, `reporting/`, `telemetry/`) never touches simulator
ground truth: neither the hazard functions nor the FleetArrays columns
that carry planted SKU/region hazards.  These tests parse the source to
keep that promise true as the code evolves.
"""

import ast
import pathlib


SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

ANALYSIS_PACKAGES = ("analysis", "decisions", "reporting", "stream", "telemetry")

# Ground-truth surfaces the analysis side must never read.
FORBIDDEN_IMPORT = "hazards"
FORBIDDEN_ATTRIBUTES = (
    "sku_intrinsic", "batch_rate", "batch_mean_size", "region_hazard",
    "region_thermal_offset", "region_humidity_offset", "intrinsic_hazard",
    "batch_failure_rate", "stress_multiplier", "thermal_coupling",
)


def analysis_modules():
    for package in ANALYSIS_PACKAGES:
        yield from (SRC / package).rglob("*.py")


class TestFieldDataBoundary:
    def test_no_hazard_imports(self):
        offenders = []
        for module in analysis_modules():
            tree = ast.parse(module.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom):
                    if node.module and FORBIDDEN_IMPORT in node.module.split("."):
                        offenders.append(str(module))
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if FORBIDDEN_IMPORT in alias.name.split("."):
                            offenders.append(str(module))
        assert not offenders, (
            f"analysis-side modules import the hazard ground truth: {offenders}"
        )

    def test_no_ground_truth_attribute_reads(self):
        offenders = []
        for module in analysis_modules():
            tree = ast.parse(module.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.Attribute):
                    if node.attr in FORBIDDEN_ATTRIBUTES:
                        offenders.append(f"{module}:{node.attr}")
        assert not offenders, (
            f"analysis-side modules read planted ground truth: {offenders}"
        )

    def test_generation_side_owns_the_hazards(self):
        """Sanity: the forbidden names do exist on the generation side."""
        failures_src = (SRC / "failures" / "faultmodel.py").read_text()
        assert "sku_intrinsic" in failures_src
        assert "hazards" in failures_src

    def test_environment_truth_not_used_by_default(self):
        """Analyses default to BMS observations, not simulator truth."""
        aggregate = (SRC / "telemetry" / "aggregate.py").read_text()
        assert "use_observed_environment: bool = True" in aggregate
