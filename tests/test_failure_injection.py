"""Failure injection: corrupted inputs surface clean errors, not garbage.

A library ingesting operational data must fail loudly on malformed
input.  These tests feed adversarial data into each layer's boundary
and assert a :class:`~repro.errors.ReproError` subclass — never a bare
numpy error, silent wrong answer, or crash.
"""

import numpy as np
import pytest

from repro.analysis import MultiFactorModel, RegressionTree, TreeParams
from repro.analysis.prediction import roc_auc
from repro.errors import DataError, FitError, ReproError, SchemaError
from repro.failures.tickets import TicketLog
from repro.telemetry.schema import FeatureKind, FeatureSpec, Schema
from repro.telemetry.table import Table
from repro.telemetry.windows import event_day_counts, per_group_window_counts


class TestCorruptTicketStreams:
    def chunk(self, **overrides):
        base = {
            "day_index": np.array([0], dtype=np.int64),
            "start_hour_abs": np.array([1.0]),
            "rack_index": np.array([0], dtype=np.int64),
            "server_offset": np.array([0], dtype=np.int64),
            "fault_code": np.array([5], dtype=np.int64),
            "false_positive": np.array([False]),
            "repair_hours": np.array([4.0]),
            "batch_id": np.array([-1], dtype=np.int64),
        }
        base.update(overrides)
        return base

    def test_out_of_range_rack_rejected_by_aggregation(self):
        log = TicketLog()
        log.append_chunk(**self.chunk(rack_index=np.array([999], dtype=np.int64)))
        log.finalize()
        with pytest.raises(DataError):
            event_day_counts(log.rack_index, log.day_index, n_groups=5,
                             total_days=10)

    def test_negative_day_rejected(self):
        log = TicketLog()
        log.append_chunk(**self.chunk(day_index=np.array([-3], dtype=np.int64)))
        log.finalize()
        with pytest.raises(DataError):
            event_day_counts(log.rack_index, log.day_index, n_groups=5,
                             total_days=10)

    def test_inverted_interval_rejected(self):
        with pytest.raises(DataError):
            per_group_window_counts(
                np.array([0]), np.array([10.0]), np.array([5.0]),
                n_groups=1, window_hours=24.0, total_windows=2,
            )

    def test_corrupt_fault_code_rejected_at_materialization(self):
        log = TicketLog()
        log.append_chunk(**self.chunk(fault_code=np.array([99], dtype=np.int64)))
        log.finalize()
        with pytest.raises(IndexError):
            log.ticket(0)


class TestCorruptTables:
    def test_label_code_out_of_category_range(self):
        schema = Schema((FeatureSpec("c", FeatureKind.NOMINAL, ("a", "b")),))
        table = Table({"c": np.array([0, 7])}, schema=schema)
        with pytest.raises(DataError):
            table.decoded("c")

    def test_formula_referencing_missing_column(self):
        table = Table({"y": np.arange(10.0), "x": np.arange(10.0)})
        with pytest.raises(DataError):
            MultiFactorModel.from_formula("y ~ x, N(ghost)", table)

    def test_constant_metric_fits_stump_not_crash(self):
        table = Table({"y": np.zeros(30), "x": np.arange(30.0)})
        model = MultiFactorModel.from_formula(
            "y ~ x", table, params=TreeParams(min_split=5, min_bucket=2),
        )
        assert model.tree.n_leaves == 1

    def test_infinite_metric_rejected(self):
        table = Table({"y": np.array([1.0, np.inf] * 10),
                       "x": np.arange(20.0)})
        with pytest.raises(FitError):
            MultiFactorModel.from_formula(
                "y ~ x", table, params=TreeParams(min_split=5, min_bucket=2),
            )


class TestDegenerateModelInputs:
    def test_tree_with_zero_weight_everywhere(self):
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        with pytest.raises(FitError):
            RegressionTree().fit(
                np.arange(10.0).reshape(-1, 1), np.arange(10.0), schema,
                sample_weight=np.zeros(10),
            )

    def test_negative_weights_rejected(self):
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        with pytest.raises(FitError):
            RegressionTree().fit(
                np.arange(10.0).reshape(-1, 1), np.arange(10.0), schema,
                sample_weight=np.full(10, -1.0),
            )

    def test_auc_with_constant_scores_is_half(self):
        auc = roc_auc(np.zeros(10), np.array([0, 1] * 5))
        assert auc == pytest.approx(0.5)

    def test_every_injected_error_is_catchable_as_repro_error(self):
        assert issubclass(DataError, ReproError)
        assert issubclass(FitError, ReproError)
        assert issubclass(SchemaError, ReproError)
