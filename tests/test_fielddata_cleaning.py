"""Cleaning pipeline: idempotence, recovery, exposure accounting."""

import numpy as np
import pytest

from repro.errors import ConfigError, DataError
from repro.fielddata import (
    DuplicateTickets,
    FieldDataset,
    clean_dataset,
    fleet_lambda,
    rack_exposure_days,
    standard_pipeline,
)
from repro.fielddata.cleaning import (
    dedupe_tickets,
    drop_orphan_tickets,
    interpolate_gaps,
    stuck_run_mask,
)
from repro.fielddata.dataset import TICKET_COLUMN_NAMES
from repro.rng import RngRegistry


def _logs_equal(a, b) -> bool:
    return all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for name in TICKET_COLUMN_NAMES
    )


class TestCleanIsNoOp:
    def test_clean_log_survives_untouched(self, tiny_run):
        dataset = FieldDataset.from_result(tiny_run)
        cleaned, report = clean_dataset(dataset)
        assert report.duplicates_removed == 0
        assert report.orphans_dropped == 0
        assert report.stuck_cells_discarded == 0
        assert _logs_equal(cleaned.tickets, dataset.tickets)

    def test_idempotence(self, tiny_run):
        dataset = FieldDataset.from_result(tiny_run)
        corrupted, _ = standard_pipeline(0.7, seed=4).apply(dataset)
        once, _ = clean_dataset(corrupted)
        twice, second_report = clean_dataset(once)
        assert second_report.duplicates_removed == 0
        assert second_report.orphans_dropped == 0
        assert _logs_equal(once.tickets, twice.tickets)
        assert np.array_equal(once.temp_f, twice.temp_f)
        assert np.array_equal(once.rh, twice.rh)

    def test_severity_zero_filled_sensors_match_bms(self, tiny_run):
        dataset = FieldDataset.from_result(tiny_run)
        cleaned, _ = clean_dataset(dataset)
        assert np.array_equal(cleaned.temp_f, tiny_run.bms.filled_temp_f())
        assert np.array_equal(cleaned.rh, tiny_run.bms.filled_rh())


class TestDedup:
    def test_recovers_injected_duplicates(self, tiny_run):
        dataset = FieldDataset.from_result(tiny_run)
        rng = RngRegistry(0).stream("fielddata:duplicates")
        corrupted, stats = DuplicateTickets(1.0).apply(dataset, rng)
        deduped, removed = dedupe_tickets(corrupted.tickets)
        # Every injected duplicate shares rack/server/fault/batch with its
        # original and lands within the window, so all must collapse.
        assert removed >= stats["tickets_duplicated"]
        assert len(deduped) == len(corrupted.tickets) - removed

    def test_window_must_be_positive(self, tiny_run):
        with pytest.raises(ConfigError):
            dedupe_tickets(tiny_run.tickets, window_hours=0.0)

    def test_clean_log_round_trips(self, tiny_run):
        deduped, removed = dedupe_tickets(tiny_run.tickets)
        assert removed == 0
        assert _logs_equal(deduped, tiny_run.tickets)


class TestOrphans:
    def test_post_decommission_tickets_dropped(self, tiny_run):
        log = tiny_run.tickets
        n_days = tiny_run.n_days
        decommission = np.full(tiny_run.fleet.n_racks, n_days, dtype=np.int64)
        hot_rack = int(log.rack_index[0])
        decommission[hot_rack] = 0  # rack never in service
        kept, dropped = drop_orphan_tickets(log, decommission, n_days)
        assert dropped == int((log.rack_index == hot_rack).sum())
        assert not (kept.rack_index == hot_rack).any()


class TestStuckRuns:
    def test_flags_repeats_keeps_first(self):
        column = np.array([70.0, 71.0, 71.0, 71.0, 71.0, 72.0])[:, np.newaxis]
        mask = stuck_run_mask(column, min_run=3)
        assert mask[:, 0].tolist() == [False, False, True, True, True, False]

    def test_short_runs_untouched(self):
        column = np.array([70.0, 71.0, 71.0, 72.0])[:, np.newaxis]
        mask = stuck_run_mask(column, min_run=3)
        assert not mask.any()

    def test_boundary_values_exempt(self):
        column = np.array([99.0, 100.0, 100.0, 100.0, 100.0])[:, np.newaxis]
        assert not stuck_run_mask(column, min_run=3,
                                  boundary_values=(0.0, 100.0)).any()
        assert stuck_run_mask(column, min_run=3).any()

    def test_nan_breaks_runs(self):
        column = np.array([71.0, 71.0, np.nan, 71.0, 71.0])[:, np.newaxis]
        assert not stuck_run_mask(column, min_run=3).any()


class TestInterpolation:
    def test_fills_interior_gap_linearly(self):
        values = np.array([70.0, np.nan, np.nan, 76.0])[:, np.newaxis]
        filled, imputed = interpolate_gaps(values)
        assert filled[:, 0].tolist() == [70.0, 72.0, 74.0, 76.0]
        assert imputed[:, 0].tolist() == [False, True, True, False]

    def test_edge_gap_extends_nearest(self):
        values = np.array([np.nan, 70.0, 72.0, np.nan])[:, np.newaxis]
        filled, _ = interpolate_gaps(values)
        assert filled[0, 0] == 70.0
        assert filled[3, 0] == 72.0

    def test_all_nan_column_rejected(self):
        values = np.full((4, 1), np.nan)
        with pytest.raises(DataError):
            interpolate_gaps(values)


class TestExposure:
    def test_exposure_days(self):
        commission = np.array([0, -30, 50], dtype=np.int64)
        decommission = np.array([100, 100, 80], dtype=np.int64)
        exposure = rack_exposure_days(commission, decommission, 100)
        assert exposure.tolist() == [100, 100, 30]

    def test_censoring_aware_lambda_exceeds_naive(self, tiny_run):
        dataset = FieldDataset.from_result(tiny_run)
        corrupted, _ = standard_pipeline(1.0, seed=6).apply(dataset)
        cleaned, report = clean_dataset(corrupted)
        assert report.racks_censored > 0
        naive = fleet_lambda(cleaned, censoring_aware=False)
        aware = fleet_lambda(cleaned, censoring_aware=True)
        # same ticket count over a smaller (true) exposure
        assert aware > naive

    def test_lambdas_agree_without_censoring(self, tiny_run):
        dataset = FieldDataset.from_result(tiny_run)
        assert fleet_lambda(dataset, censoring_aware=True) == pytest.approx(
            fleet_lambda(dataset, censoring_aware=False))
