"""Checkpoint bundle format: integrity, refusals, metadata."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.decisions.availability import AvailabilitySla
from repro.errors import DataError
from repro.stream import (
    STREAM_CHECKPOINT_SCHEMA,
    StreamAnalyzer,
    StreamInventory,
    checkpoint_meta,
    flatten_result,
    load_checkpoint,
    save_checkpoint,
)


@pytest.fixture(scope="module")
def half_streamed(tiny_run):
    inventory = StreamInventory.from_result(tiny_run)
    analyzer = StreamAnalyzer(
        inventory, window_hours=6.0, sla=AvailabilitySla(0.95),
        spare_fraction=0.02, drift=True,
    )
    events = list(flatten_result(tiny_run))
    analyzer.consume(iter(events), max_events=len(events) // 2)
    return inventory, analyzer


class TestSaveLoad:
    def test_roundtrip_preserves_everything(self, half_streamed, tmp_path):
        inventory, analyzer = half_streamed
        path = save_checkpoint(analyzer, tmp_path / "c.npz")
        clone = load_checkpoint(path, inventory)
        assert clone.events_seen == analyzer.events_seen
        assert clone.last_time_hours == analyzer.last_time_hours
        assert clone.racks_in_service == analyzer.racks_in_service
        assert clone.sensor_samples == analyzer.sensor_samples
        assert clone.window_hours == analyzer.window_hours
        assert clone.sla == analyzer.sla
        assert clone.alerts == analyzer.alerts
        assert np.array_equal(clone.lambda_matrix(),
                              analyzer.lambda_matrix())
        assert np.array_equal(clone.mu_matrix(), analyzer.mu_matrix())
        assert clone.monitor is not None and clone.drift is not None
        assert np.array_equal(clone.monitor.down, analyzer.monitor.down)
        assert np.array_equal(clone.drift.day_counts,
                              analyzer.drift.day_counts)
        assert clone.summary() == analyzer.summary()

    def test_monitorless_analyzer_roundtrips(self, tiny_run, tmp_path):
        inventory = StreamInventory.from_result(tiny_run)
        analyzer = StreamAnalyzer(inventory, spare_fraction=None,
                                  drift=False)
        analyzer.consume(flatten_result(tiny_run), max_events=100)
        clone = load_checkpoint(
            save_checkpoint(analyzer, tmp_path / "m.npz"), inventory,
        )
        assert clone.monitor is None and clone.drift is None
        assert clone.summary() == analyzer.summary()

    def test_meta_readable_without_inventory(self, half_streamed, tmp_path):
        _, analyzer = half_streamed
        path = save_checkpoint(analyzer, tmp_path / "c.npz")
        meta = checkpoint_meta(path)
        assert meta["schema"] == STREAM_CHECKPOINT_SCHEMA
        assert meta["events_seen"] == analyzer.events_seen
        assert set(meta["parts"]) == {"lambda", "mu", "sku", "dc",
                                      "monitor", "drift"}


class TestRefusals:
    def test_finished_analyzer_refused(self, tiny_run, tmp_path):
        analyzer = StreamAnalyzer(StreamInventory.from_result(tiny_run))
        analyzer.consume(flatten_result(tiny_run))
        analyzer.finish()
        with pytest.raises(DataError, match="finished"):
            save_checkpoint(analyzer, tmp_path / "f.npz")

    def test_wrong_inventory_refused(self, half_streamed, tmp_path):
        import dataclasses

        inventory, analyzer = half_streamed
        path = save_checkpoint(analyzer, tmp_path / "c.npz")
        other = dataclasses.replace(inventory, n_days=inventory.n_days + 1)
        with pytest.raises(DataError, match="different inventory"):
            load_checkpoint(path, other)

    def test_missing_file_refused(self, half_streamed, tmp_path):
        inventory, _ = half_streamed
        with pytest.raises(DataError, match="no such checkpoint"):
            load_checkpoint(tmp_path / "absent.npz", inventory)

    def test_non_checkpoint_npz_refused(self, half_streamed, tmp_path):
        inventory, _ = half_streamed
        path = tmp_path / "other.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(DataError, match="not a stream checkpoint"):
            load_checkpoint(path, inventory)

    def test_schema_mismatch_refused(self, half_streamed, tmp_path):
        inventory, analyzer = half_streamed
        path = save_checkpoint(analyzer, tmp_path / "c.npz")
        with np.load(path) as bundle:
            arrays = {key: bundle[key] for key in bundle.files}
        meta = json.loads(bytes(arrays["meta_json"].tobytes()).decode())
        meta["schema"] = STREAM_CHECKPOINT_SCHEMA + 1
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8,
        )
        tampered = tmp_path / "tampered.npz"
        with tampered.open("wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(DataError, match="schema"):
            load_checkpoint(tampered, inventory)

    def test_position_enforced_after_resume(self, half_streamed,
                                            tiny_run, tmp_path):
        inventory, analyzer = half_streamed
        path = save_checkpoint(analyzer, tmp_path / "c.npz")
        clone = load_checkpoint(path, inventory)
        wrong_offset = flatten_result(tiny_run)  # starts at seq 0
        with pytest.raises(DataError, match="position"):
            clone.process(next(wrong_offset))


@pytest.fixture(scope="module")
def fitted_model(tiny_run):
    from repro.predict import build_feature_dataset, train_predictor

    dataset = build_feature_dataset(tiny_run, horizon_days=3)
    model, _, _ = train_predictor(dataset, horizon_days=3)
    return model


class TestExtraMonitors:
    """Checkpointing analyzers with attached extra monitors (ISSUE 10
    satellite: resume with a PredictiveMonitor is bit-identical)."""

    def _monitored_analyzer(self, inventory, model):
        from repro.predict import PredictiveMonitor

        analyzer = StreamAnalyzer(
            inventory, sla=AvailabilitySla(0.95),
            spare_fraction=0.02, drift=True,
        )
        analyzer.attach_monitor(
            PredictiveMonitor(inventory, model, threshold=0.6),
        )
        return analyzer

    def test_predictive_monitor_resume_bit_identical(
        self, tiny_run, fitted_model, tmp_path,
    ):
        from repro.predict import PredictiveMonitor
        from repro.stream import blocks_from_result

        inventory = StreamInventory.from_result(tiny_run)
        blocks = list(blocks_from_result(tiny_run))
        cut = len(blocks) // 3

        uninterrupted = self._monitored_analyzer(inventory, fitted_model)
        for block in blocks:
            uninterrupted.process_block(block)

        first_leg = self._monitored_analyzer(inventory, fitted_model)
        for block in blocks[:cut]:
            first_leg.process_block(block)
        path = save_checkpoint(first_leg, tmp_path / "p.npz")
        resumed = load_checkpoint(path, inventory, [
            lambda arrays, meta: PredictiveMonitor.from_state(
                inventory, fitted_model, arrays, meta,
            ),
        ])
        for block in blocks[cut:]:
            resumed.process_block(block)

        assert resumed.alerts == uninterrupted.alerts
        assert np.array_equal(resumed.mu_matrix(),
                              uninterrupted.mu_matrix())
        restored = resumed.extra_monitors[0]
        original = uninterrupted.extra_monitors[0]
        assert np.array_equal(restored._flagged, original._flagged)
        assert restored.alerts_emitted == original.alerts_emitted
        assert resumed.summary() == uninterrupted.summary()

    def test_extras_recorded_in_meta(self, tiny_run, fitted_model, tmp_path):
        inventory = StreamInventory.from_result(tiny_run)
        analyzer = self._monitored_analyzer(inventory, fitted_model)
        analyzer.consume(flatten_result(tiny_run), max_events=200)
        path = save_checkpoint(analyzer, tmp_path / "p.npz")
        meta = checkpoint_meta(path)
        assert meta["extras"] == [{"type": "PredictiveMonitor"}]

    def test_missing_factory_refused(self, tiny_run, fitted_model, tmp_path):
        inventory = StreamInventory.from_result(tiny_run)
        analyzer = self._monitored_analyzer(inventory, fitted_model)
        analyzer.consume(flatten_result(tiny_run), max_events=200)
        path = save_checkpoint(analyzer, tmp_path / "p.npz")
        with pytest.raises(DataError, match="PredictiveMonitor"):
            load_checkpoint(path, inventory)

    def test_surplus_factory_refused(self, half_streamed, tmp_path):
        inventory, analyzer = half_streamed
        path = save_checkpoint(analyzer, tmp_path / "c.npz")
        with pytest.raises(DataError, match="0 extra"):
            load_checkpoint(path, inventory,
                            [lambda arrays, meta: None])

    def test_stateless_extra_refused(self, tiny_run, tmp_path):
        class OpaqueMonitor:
            def update(self, event):
                return []

            def _update_block_indexed(self, block):
                return []

            def finish(self):
                return []

        analyzer = StreamAnalyzer(StreamInventory.from_result(tiny_run))
        analyzer.attach_monitor(OpaqueMonitor())
        analyzer.consume(flatten_result(tiny_run), max_events=50)
        with pytest.raises(DataError, match="OpaqueMonitor"):
            save_checkpoint(analyzer, tmp_path / "o.npz")
