"""Reporting-layer tests: renderers, tables, figures, registry."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.reporting import (
    EXPERIMENTS,
    get_experiment,
    render_bars,
    render_cdf,
    render_table,
    table_i,
    table_ii,
    table_iii,
    ticket_mix,
)
from repro.reporting.figures import (
    fig01_cdf_concept,
    fig02_spatial,
    fig05_humidity,
    fig06_workload,
    fig09_age,
    fig10_overprovision,
    fig11_cluster_cdfs,
    fig13_component_spares,
    fig16_temperature_all,
    fig18_climate_mf,
    render_fig01,
)


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_render_table_width_mismatch(self):
        with pytest.raises(DataError):
            render_table(["a"], [["1", "2"]])

    def test_render_bars_scales_to_peak(self):
        text = render_bars(["x", "y"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_render_bars_handles_nan(self):
        text = render_bars(["x", "y"], [float("nan"), 1.0])
        assert "(no data)" in text

    def test_render_cdf(self):
        text = render_cdf(np.arange(100.0), n_points=3)
        assert "p  0.0" in text
        assert "p100.0" in text


class TestTables:
    def test_table_i_contains_dc_properties(self, tiny_run):
        text = table_i(tiny_run)
        assert "adiabatic" in text
        assert "chilled-water" in text
        assert "3 nines" in text and "5 nines" in text

    def test_table_ii_rows_and_paper_columns(self, tiny_run):
        text = table_ii(tiny_run)
        assert "Disk failure" in text
        assert "(paper)" in text

    def test_ticket_mix_sums_to_hundred(self, tiny_run):
        mix = ticket_mix(tiny_run)
        for percentages in mix.percentages.values():
            assert sum(percentages.values()) == pytest.approx(100.0)

    def test_ticket_mix_category_share(self, tiny_run):
        mix = ticket_mix(tiny_run)
        categories = ("Software", "Boot", "Hardware", "Others")
        total = sum(mix.category_share("DC1", c) for c in categories)
        assert total == pytest.approx(100.0)
        with pytest.raises(DataError):
            mix.category_share("DC9", "Software")

    def test_table_iii_lists_features(self, tiny_run):
        text = table_iii(tiny_run)
        for feature in ("sku", "temp_f", "day_of_week", "rated_power_kw"):
            assert feature in text


class TestFigures:
    def test_fig_series_interface(self, small_context):
        figure = fig06_workload(small_context)
        assert figure.figure_id == "fig06"
        assert len(figure.labels) == 7
        normalized = figure.normalized("mean")
        assert normalized.max() == pytest.approx(1.0)
        assert "W2" in figure.render()

    def test_unknown_series_rejected(self, small_context):
        figure = fig06_workload(small_context)
        with pytest.raises(DataError):
            figure.values("nope")

    def test_fig02_covers_all_regions(self, small_context):
        figure = fig02_spatial(small_context)
        assert list(figure.labels) == small_context.result.fleet.region_names

    def test_fig05_low_rh_elevated(self, small_context):
        figure = fig05_humidity(small_context)
        means = figure.values("mean")
        assert np.nanargmax(means) <= 1  # driest bins worst

    def test_fig09_infant_mortality(self, small_context):
        figure = fig09_age(small_context)
        means = figure.values("mean")
        assert means[0] > means[4]

    def test_fig01_samples(self, small_context):
        samples = fig01_cdf_concept(small_context, workload="W6")
        assert set(samples) == {"all", "group_low", "group_high"}
        assert samples["group_high"].max() >= samples["group_low"].max()
        assert "fig01" in render_fig01(samples)

    def test_fig10_ordering(self, small_context):
        figure = fig10_overprovision(small_context, 24.0)
        assert np.all(figure.values("LB") <= figure.values("MF") + 1e-9)
        assert np.all(figure.values("MF") <= figure.values("SF") + 1e-9)

    def test_fig11_clusters(self, small_context):
        cdfs = fig11_cluster_cdfs(small_context, "W6")
        assert "SF" in cdfs
        assert sum(1 for name in cdfs if name.startswith("Cluster")) >= 3

    def test_fig13_normalized_to_hundred(self, small_context):
        figure = fig13_component_spares(small_context)
        peak = max(figure.values(name).max() for name in ("LB", "MF", "SF"))
        assert peak == pytest.approx(100.0)

    def test_fig16_has_counts(self, small_context):
        figure = fig16_temperature_all(small_context)
        assert figure.values("count").sum() == small_context.all_failures.n_rows

    def test_fig18_reference_group_is_one(self, small_context):
        figure = fig18_climate_mf(small_context)
        rates = dict(zip(figure.labels, figure.values("rate")))
        assert rates["DC1:T>=78.8+RH<=25.5"] == pytest.approx(1.0)


class TestRegistry:
    def test_all_tables_and_figures_registered(self):
        expected = {f"table{i}" for i in range(1, 5)} | {
            f"fig{i:02d}" for i in range(1, 19)
        } | {"fielddata", "streaming", "predict", "autonomics"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(DataError):
            get_experiment("fig99")

    def test_each_experiment_renders(self, small_context):
        # Spot-check a representative subset (the full set runs in the
        # benchmark harness at paper scale).
        for experiment_id in ("table1", "fig03", "fig12", "fig17"):
            text = get_experiment(experiment_id).render(small_context)
            assert isinstance(text, str) and text
