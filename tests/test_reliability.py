"""Reliability-diagnostic tests (MTBF, inter-arrivals, burstiness)."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.failures.tickets import FaultType
from repro.telemetry.reliability import (
    burstiness_by_sku,
    fano_factor,
    inter_arrival_hours,
    mtbf_hours,
)


class TestInterArrivals:
    def test_gaps_are_positive(self, small_run):
        gaps = inter_arrival_hours(small_run)
        assert np.all(gaps >= 0)
        assert len(gaps) > 100

    def test_single_rack_stream(self, small_run):
        fleet_gaps = inter_arrival_hours(small_run)
        rack_gaps = inter_arrival_hours(small_run, rack_index=0)
        # A single rack fails far less often than the fleet.
        assert np.median(rack_gaps) > 5 * np.median(fleet_gaps)

    def test_out_of_range_rack_rejected(self, small_run):
        with pytest.raises(DataError):
            inter_arrival_hours(small_run, rack_index=10_000)

    def test_rare_fault_may_lack_gaps(self, tiny_run):
        with pytest.raises(DataError):
            inter_arrival_hours(tiny_run, rack_index=0,
                                faults=[FaultType.NETWORK])


class TestMtbf:
    def test_shape_and_positivity(self, small_run):
        mtbf = mtbf_hours(small_run)
        assert mtbf.shape == (small_run.fleet.arrays().n_racks,)
        finite = mtbf[np.isfinite(mtbf)]
        assert len(finite) > 0
        assert np.all(finite > 0)

    def test_reliable_skus_have_longer_mtbf(self, small_run):
        arrays = small_run.fleet.arrays()
        mtbf = mtbf_hours(small_run)
        s2 = mtbf[arrays.sku_code == arrays.sku_names.index("S2")]
        s4 = mtbf[arrays.sku_code == arrays.sku_names.index("S4")]
        assert np.nanmedian(s4) > 2 * np.nanmedian(s2)

    def test_exposure_accounting(self, small_run):
        """Racks commissioned mid-window accrue less exposure."""
        arrays = small_run.fleet.arrays()
        late = arrays.commission_day > small_run.n_days // 2
        if not late.any():
            pytest.skip("no late-commissioned racks in this run")
        counts = np.ones(arrays.n_racks)  # same counts → MTBF ∝ exposure
        # Direct check of the formula via a single-failure hypothetical:
        in_service = np.maximum(0, small_run.n_days - np.maximum(
            arrays.commission_day, 0))
        assert in_service[late].max() < small_run.n_days // 2 + 1


class TestFanoFactor:
    def test_fleet_is_bursty(self, small_run):
        summary = fano_factor(small_run)
        assert summary.fano > 1.2
        assert summary.is_bursty
        assert summary.n_days == small_run.n_days

    def test_out_of_range_rack_rejected(self, small_run):
        with pytest.raises(DataError):
            fano_factor(small_run, rack_index=10_000)

    def test_planted_sku_burstiness_ordering(self, small_run):
        """S3's batch propensity shows as over-dispersion; S4 is calm."""
        by_sku = burstiness_by_sku(small_run)
        assert by_sku["S3"] > 2 * by_sku["S4"]
        assert by_sku["S3"] == max(by_sku.values())
        assert by_sku["S4"] < 1.6  # near-Poisson

    def test_single_rack_fano(self, small_run):
        summary = fano_factor(small_run, rack_index=0)
        assert summary.fano > 0
        assert summary.mean_daily >= 0
