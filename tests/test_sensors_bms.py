"""Sensor and BMS tests."""

import numpy as np
import pytest

import repro
from repro.environment.bms import (
    AlarmThresholds,
    BmsLog,
    BuildingManagementSystem,
    _fill_nans_along_days,
)
from repro.environment.conditions import EnvironmentSeries
from repro.environment.sensors import (
    Sensor,
    SensorKind,
    SensorLevel,
    ahu_pressure_sensor,
    rack_sensor_pair,
)
from repro.errors import ConfigError
from repro.rng import RngRegistry


class TestSensor:
    def test_reading_is_noisy_but_centered(self):
        sensor = Sensor("s", SensorKind.INLET_TEMP, SensorLevel.RACK, "r",
                        noise_sd=0.5, dropout_rate=0.0)
        rng = np.random.default_rng(0)
        readings = np.array([sensor.read(70.0, rng) for _ in range(500)])
        assert abs(readings.mean() - 70.0) < 0.1
        assert 0.3 < readings.std() < 0.7

    def test_dropout_yields_nan(self):
        sensor = Sensor("s", SensorKind.INLET_TEMP, SensorLevel.RACK, "r",
                        noise_sd=0.0, dropout_rate=0.999)
        rng = np.random.default_rng(0)
        readings = np.array([sensor.read(70.0, rng) for _ in range(20)])
        assert np.isnan(readings).any()

    def test_dropout_rate_of_one_rejected(self):
        with pytest.raises(ConfigError):
            Sensor("s", SensorKind.INLET_TEMP, SensorLevel.RACK, "r",
                   noise_sd=0.0, dropout_rate=1.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigError):
            Sensor("s", SensorKind.INLET_TEMP, SensorLevel.RACK, "r", noise_sd=-1.0)

    def test_rack_pair_kinds(self):
        temp, humidity = rack_sensor_pair("DC1-R001")
        assert temp.kind is SensorKind.INLET_TEMP
        assert humidity.kind is SensorKind.RELATIVE_HUMIDITY
        assert temp.location == "DC1-R001"

    def test_ahu_sensor(self):
        sensor = ahu_pressure_sensor("DC1", 3)
        assert sensor.kind is SensorKind.PRESSURE
        assert sensor.level is SensorLevel.AHU
        with pytest.raises(ConfigError):
            ahu_pressure_sensor("DC1", -1)


class TestAlarmThresholds:
    def test_inverted_temp_band_rejected(self):
        with pytest.raises(ConfigError):
            AlarmThresholds(temp_low_f=90.0, temp_high_f=60.0)

    def test_invalid_rh_band_rejected(self):
        with pytest.raises(ConfigError):
            AlarmThresholds(rh_low=80.0, rh_high=10.0)


class TestNanFill:
    def test_interpolates_interior_gap(self):
        values = np.array([[1.0], [np.nan], [3.0]])
        filled = _fill_nans_along_days(values)
        assert filled[1, 0] == pytest.approx(2.0)

    def test_edges_extend_nearest(self):
        values = np.array([[np.nan], [2.0], [np.nan]])
        filled = _fill_nans_along_days(values)
        assert filled[0, 0] == pytest.approx(2.0)
        assert filled[2, 0] == pytest.approx(2.0)

    def test_all_nan_column_rejected(self):
        with pytest.raises(ConfigError):
            _fill_nans_along_days(np.full((3, 1), np.nan))


class TestBmsCollection:
    @pytest.fixture(scope="class")
    def collected(self):
        config = repro.SimulationConfig.small(seed=6, scale=0.05, n_days=90)
        rngs = RngRegistry(config.seed)
        from repro.datacenter.builder import build_fleet

        fleet = build_fleet(config.fleet, rngs)
        env = EnvironmentSeries(fleet, config.n_days, rngs)
        bms = BuildingManagementSystem(fleet)
        return env, bms.collect(env, rngs)

    def test_log_shape(self, collected):
        env, log = collected
        assert log.temp_f.shape == env.temp_f.shape
        assert log.n_days == env.n_days

    def test_readings_track_truth(self, collected):
        env, log = collected
        valid = ~np.isnan(log.temp_f)
        error = (log.temp_f - env.temp_f)[valid]
        assert abs(error.mean()) < 0.1
        assert error.std() < 1.5

    def test_dropout_fraction_small_but_present(self, collected):
        _, log = collected
        assert 0.0 < log.dropout_fraction() < 0.02

    def test_filled_arrays_have_no_nans(self, collected):
        _, log = collected
        assert not np.isnan(log.filled_temp_f()).any()
        assert not np.isnan(log.filled_rh()).any()

    def test_alarms_reference_real_excursions(self, collected):
        _, log = collected
        thresholds = AlarmThresholds()
        for alarm in log.alarms[:50]:
            value = (log.temp_f if alarm.kind is SensorKind.INLET_TEMP
                     else log.rh)[alarm.day_index, alarm.rack_index]
            assert value == pytest.approx(alarm.value)
            if alarm.direction == "high":
                assert alarm.value > alarm.threshold
            else:
                assert alarm.value < alarm.threshold
        # At least the RH-low alarm should fire in the dry DC1 winter.
        assert any(alarm.direction == "low" for alarm in log.alarms)

    def test_mismatched_fleet_rejected(self, collected):
        env, _ = collected
        config = repro.SimulationConfig.small(seed=7, scale=0.02, n_days=90)
        from repro.datacenter.builder import build_fleet

        other_fleet = build_fleet(config.fleet, RngRegistry(7))
        bms = BuildingManagementSystem(other_fleet)
        with pytest.raises(ConfigError):
            bms.collect(env, RngRegistry(8))


class TestBmsLogValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            BmsLog(np.zeros((2, 3)), np.zeros((3, 2)), [])
