"""Stepping simulation sessions: the determinism gate and mutation points.

The hard contract: a session stepped under a no-op controller — any
partition of the horizon into ``step(n)`` calls — produces the exact
byte-for-byte ticket stream of batch ``simulate()``.  Golden-tested on
fixed partitions (including one crossing the 365-day generation-chunk
boundary) and property-tested on randomized partitions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import SimulationConfig
from repro.errors import ConfigError, SimulationError
from repro.failures.engine import CHUNK_DAYS, SimulationSession, simulate

#: Columns whose byte-for-byte equality defines "the same ticket log".
TICKET_COLUMNS = (
    "day_index", "start_hour_abs", "rack_index", "server_offset",
    "fault_code", "false_positive", "repair_hours", "batch_id",
)


def assert_logs_equal(actual, expected):
    assert len(actual) == len(expected)
    for name in TICKET_COLUMNS:
        a, b = getattr(actual, name), getattr(expected, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name


def stepped_log(config, partition):
    """Concatenated per-step chunks for one partition of the horizon."""
    session = SimulationSession(config)
    chunks = []
    for n in partition:
        chunks.append(session.step(n))
    assert session.exhausted
    merged = {
        name: np.concatenate([getattr(c, name) for c in chunks])
        for name in TICKET_COLUMNS
    }
    return session, merged


class TestNoOpBitIdentity:
    """The gate: no-op stepped session == batch simulate, exactly."""

    def test_result_identical_across_chunk_boundary(self):
        # 400 days crosses the CHUNK_DAYS=365 generation boundary, so
        # this exercises the buffered-chunk release path end to end.
        assert CHUNK_DAYS == 365
        config = SimulationConfig.small(seed=7, scale=0.05, n_days=400)
        batch = simulate(config)
        session, merged = stepped_log(config, (1, 6, 100, 258, 30, 5))
        result = session.result()
        assert_logs_equal(result.tickets, batch.tickets)
        # The concatenated step chunks are the same stream, pre-sorted
        # per chunk window (day_index is the most significant key).
        for name in TICKET_COLUMNS:
            assert np.array_equal(merged[name], getattr(batch.tickets, name))
        # Substrate equality too: same environment and observed BMS.
        assert np.array_equal(result.environment.temp_f, batch.environment.temp_f)
        assert np.array_equal(result.bms.temp_f, batch.bms.temp_f,
                              equal_nan=True)

    def test_single_full_step_is_batch(self, tiny_session_config):
        batch = simulate(tiny_session_config)
        session = SimulationSession(tiny_session_config)
        chunk = session.step()
        assert_logs_equal(chunk, batch.tickets)
        assert_logs_equal(session.result().tickets, batch.tickets)

    def test_tickets_so_far_is_stable_prefix(self, tiny_session_config):
        session = SimulationSession(tiny_session_config)
        session.step(40)
        early = session.tickets_so_far()
        session.step()
        late = session.tickets_so_far()
        n = len(early)
        for name in TICKET_COLUMNS:
            assert np.array_equal(getattr(late, name)[:n],
                                  getattr(early, name))


@pytest.fixture(scope="module")
def tiny_session_config():
    return SimulationConfig.small(seed=11, scale=0.05, n_days=90)


@pytest.fixture(scope="module")
def tiny_batch(tiny_session_config):
    return simulate(tiny_session_config)


def partitions(n_days):
    """Random partitions of ``n_days`` into positive step sizes."""
    return st.integers(0, 2**32 - 1).map(
        lambda seed: _partition_from_seed(seed, n_days)
    )


def _partition_from_seed(seed, n_days):
    rng = np.random.default_rng(seed)
    parts = []
    remaining = n_days
    while remaining:
        take = int(rng.integers(1, remaining + 1))
        parts.append(take)
        remaining -= take
    return tuple(parts)


class TestPartitionProperty:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(partition=partitions(90))
    def test_any_partition_matches_batch(
        self, partition, tiny_session_config, tiny_batch,
    ):
        _, merged = stepped_log(tiny_session_config, partition)
        for name in TICKET_COLUMNS:
            assert np.array_equal(merged[name],
                                  getattr(tiny_batch.tickets, name)), name

    @pytest.mark.parametrize("partition", [
        (90,),                      # one full-horizon step
        (1,) * 90,                  # day-by-day
        (89, 1), (1, 89), (45, 45), (7,) * 12 + (6,),
    ])
    def test_named_partitions(self, partition, tiny_session_config, tiny_batch):
        _, merged = stepped_log(tiny_session_config, partition)
        for name in TICKET_COLUMNS:
            assert np.array_equal(merged[name],
                                  getattr(tiny_batch.tickets, name)), name


class TestSessionApi:
    def test_step_past_end_raises(self, tiny_session_config):
        session = SimulationSession(tiny_session_config)
        session.step()
        assert session.exhausted
        with pytest.raises(SimulationError):
            session.step(1)

    def test_step_zero_raises(self, tiny_session_config):
        session = SimulationSession(tiny_session_config)
        with pytest.raises(SimulationError):
            session.step(0)

    def test_result_before_exhaustion_raises(self, tiny_session_config):
        session = SimulationSession(tiny_session_config)
        session.step(10)
        with pytest.raises(SimulationError):
            session.result()

    def test_step_clamps_to_horizon(self, tiny_session_config):
        session = SimulationSession(tiny_session_config)
        session.step(80)
        chunk = session.step(1000)
        assert session.exhausted
        assert (chunk.day_index >= 80).all()

    def test_generation_frontier_is_chunked(self, tiny_session_config):
        session = SimulationSession(tiny_session_config)
        session.step(5)
        # 90-day horizon, single 365-day chunk: everything realized.
        assert session.generation_frontier == 90
        assert session.day == 5


class TestMutationPoints:
    def test_setpoint_move_shifts_environment_and_bms(self):
        config = SimulationConfig.small(seed=5, scale=0.05, n_days=60)
        baseline = simulate(config)
        session = SimulationSession(config)
        session.step(30)
        session.move_setpoints(temp_delta_f=-4.0)
        session.step()
        result = session.result()
        # Generated chunks are realized up front (single chunk here), so
        # the *past* stays identical and the shift applies from the
        # generation frontier — the whole horizon was already drawn, so
        # with a single chunk the move lands nowhere: physical actions
        # take effect at the next chunk boundary only.
        assert np.array_equal(result.environment.temp_f,
                              baseline.environment.temp_f)

    def test_setpoint_move_applies_at_chunk_boundary(self):
        config = SimulationConfig.small(seed=5, scale=0.05, n_days=400)
        baseline = simulate(config)
        session = SimulationSession(config)
        session.step(300)
        session.move_setpoints(temp_delta_f=-4.0)
        session.step()
        result = session.result()
        # Days before the second chunk (365) are untouched...
        assert np.array_equal(result.environment.temp_f[:365],
                              baseline.environment.temp_f[:365])
        # ...and the second chunk runs 4°F cooler.
        assert np.allclose(result.environment.temp_f[365:],
                           baseline.environment.temp_f[365:] - 4.0)
        # Observed BMS readings shift too (NaN dropouts stay NaN).
        observed = result.bms.temp_f[365:]
        base_observed = baseline.bms.temp_f[365:]
        mask = np.isfinite(observed) & np.isfinite(base_observed)
        assert mask.any()
        assert np.allclose(observed[mask], base_observed[mask] - 4.0)

    def test_sku_swap_validates_rack_ids(self, tiny_session_config):
        session = SimulationSession(tiny_session_config)
        sku_name = session.fleet.datacenters[0].racks[0].sku.name
        # Mutations queue until the next chunk draw; the bad rack id
        # surfaces there.
        session.swap_sku(("no-such-rack",), sku_name)
        with pytest.raises(ConfigError):
            session.step(1)

    def test_apply_after_exhaustion_raises(self, tiny_session_config):
        from repro.autonomics.actions import MoveSetpoints

        session = SimulationSession(tiny_session_config)
        session.step()
        with pytest.raises(SimulationError):
            session.apply([MoveSetpoints(temp_delta_f=-1.0)])

    def test_action_log_records_applied_actions(self, tiny_session_config):
        from repro.autonomics.actions import MoveSetpoints

        session = SimulationSession(tiny_session_config)
        session.step(10)
        action = MoveSetpoints(temp_delta_f=-1.0)
        session.apply([action])
        assert session.action_log == [(10, action)]
