"""Units and simulation-calendar tests."""

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    DAYS_PER_WEEK,
    DAYS_PER_YEAR,
    CalendarDay,
    SimCalendar,
    celsius_to_fahrenheit,
    clamp,
    fahrenheit_to_celsius,
    months_between_days,
)


class TestTemperatureConversion:
    def test_freezing_point(self):
        assert fahrenheit_to_celsius(32.0) == pytest.approx(0.0)

    def test_boiling_point(self):
        assert fahrenheit_to_celsius(212.0) == pytest.approx(100.0)

    def test_celsius_to_fahrenheit_body_temp(self):
        assert celsius_to_fahrenheit(37.0) == pytest.approx(98.6)

    @given(st.floats(min_value=-200, max_value=200))
    def test_roundtrip(self, deg_f):
        assert celsius_to_fahrenheit(fahrenheit_to_celsius(deg_f)) == pytest.approx(
            deg_f, abs=1e-9
        )

    @given(st.floats(min_value=-100, max_value=150))
    def test_conversion_is_monotone(self, deg_f):
        assert fahrenheit_to_celsius(deg_f + 1.0) > fahrenheit_to_celsius(deg_f)


class TestClamp:
    def test_inside_interval_unchanged(self):
        assert clamp(5.0, 0.0, 10.0) == 5.0

    def test_below_clamps_to_low(self):
        assert clamp(-3.0, 0.0, 10.0) == 0.0

    def test_above_clamps_to_high(self):
        assert clamp(42.0, 0.0, 10.0) == 10.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            clamp(1.0, 10.0, 0.0)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32),
           st.floats(min_value=-10, max_value=0),
           st.floats(min_value=0, max_value=10))
    def test_result_always_inside(self, value, low, high):
        assert low <= clamp(value, low, high) <= high


class TestMonthsBetween:
    def test_one_average_month(self):
        assert months_between_days(0, 30) == pytest.approx(30 / 30.4375)

    def test_negative_for_future_commission(self):
        assert months_between_days(100, 0) < 0

    def test_one_year_is_twelve_months(self):
        assert months_between_days(0, DAYS_PER_YEAR) == pytest.approx(12.0, rel=0.01)


class TestSimCalendar:
    def test_day_zero_defaults(self):
        day = SimCalendar().day(0)
        assert day.day_of_week == 0
        assert day.month == 1
        assert day.year == 0
        assert day.week_of_year == 1

    def test_weekday_advances_modulo_seven(self):
        calendar = SimCalendar(start_day_of_week=5)
        assert calendar.day(2).day_of_week == 0  # Fri -> Sat -> Sun

    def test_year_rolls_over(self):
        day = SimCalendar().day(DAYS_PER_YEAR)
        assert day.year == 1
        assert day.day_of_year == 0

    def test_start_day_of_year_offsets_month(self):
        calendar = SimCalendar(start_day_of_year=200)  # mid-July
        assert calendar.day(0).month == 7

    def test_weekend_flag(self):
        calendar = SimCalendar(start_day_of_week=0)  # Sunday
        assert calendar.day(0).is_weekend
        assert calendar.day(6).is_weekend
        assert not calendar.day(3).is_weekend

    def test_month_boundaries(self):
        assert SimCalendar.month_of_day_of_year(0) == 1
        assert SimCalendar.month_of_day_of_year(30) == 1
        assert SimCalendar.month_of_day_of_year(31) == 2
        assert SimCalendar.month_of_day_of_year(364) == 12

    def test_negative_day_rejected(self):
        with pytest.raises(ValueError):
            SimCalendar().day(-1)

    def test_invalid_start_weekday_rejected(self):
        with pytest.raises(ValueError):
            SimCalendar(start_day_of_week=7)

    def test_invalid_start_doy_rejected(self):
        with pytest.raises(ValueError):
            SimCalendar(start_day_of_year=365)

    def test_day_names(self):
        day = SimCalendar(start_day_of_week=1).day(0)
        assert day.day_name == "Mon"
        assert SimCalendar().day(40).month_name == "Feb"

    @given(st.integers(min_value=0, max_value=5000))
    def test_week_of_year_in_range(self, day_index):
        day = SimCalendar().day(day_index)
        assert 1 <= day.week_of_year <= 53

    @given(st.integers(min_value=0, max_value=5000),
           st.integers(min_value=0, max_value=6),
           st.integers(min_value=0, max_value=364))
    def test_calendar_fields_consistent(self, day_index, start_dow, start_doy):
        day = SimCalendar(start_dow, start_doy).day(day_index)
        assert isinstance(day, CalendarDay)
        assert 0 <= day.day_of_week < DAYS_PER_WEEK
        assert 1 <= day.month <= 12
        assert 0 <= day.day_of_year < DAYS_PER_YEAR
        assert day.year == (start_doy + day_index) // DAYS_PER_YEAR
