"""Fleet registry: content-addressed ids, tenancy, persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError, DataError
from repro.serve.fleets import (
    FLEET_PARAM_DEFAULTS,
    FleetRegistry,
    fleet_spec,
    normalize_fleet_params,
)

TINY = {"seed": 5, "scale": 0.05, "days": 60}


class TestNormalize:
    def test_defaults_fill_in(self):
        assert normalize_fleet_params({}) == FLEET_PARAM_DEFAULTS

    def test_strings_coerce(self):
        params = normalize_fleet_params({"seed": "7", "scale": "0.1"})
        assert params["seed"] == 7 and params["scale"] == pytest.approx(0.1)

    def test_unknown_key_rejected(self):
        with pytest.raises(DataError, match="unknown fleet parameter"):
            normalize_fleet_params({"sale": 0.1})

    @pytest.mark.parametrize("bad", [
        {"seed": -1}, {"scale": 0.0}, {"scale": 9.0}, {"days": 0},
        {"scale": "big"},
    ])
    def test_domain_violations_rejected(self, bad):
        with pytest.raises(DataError):
            normalize_fleet_params(bad)


class TestSpec:
    def test_id_is_content_addressed(self):
        assert fleet_spec(TINY).fleet_id == fleet_spec(dict(TINY)).fleet_id

    def test_different_configs_different_ids(self):
        assert (fleet_spec(TINY).fleet_id
                != fleet_spec(dict(TINY, seed=6)).fleet_id)


class TestRegistry:
    def test_register_and_resolve_by_name(self, tmp_path):
        registry = FleetRegistry(tmp_path / "fleets.json")
        spec = registry.register(TINY, tenant="acme", name="prod")
        assert registry.resolve("prod", tenant="acme") == spec

    def test_resolve_by_full_id_and_prefix(self, tmp_path):
        registry = FleetRegistry(tmp_path / "fleets.json")
        spec = registry.register(TINY)
        assert registry.resolve(spec.fleet_id) == spec
        assert registry.resolve(spec.fleet_id[:12]) == spec

    def test_short_prefix_not_matched(self):
        registry = FleetRegistry()
        spec = registry.register(TINY)
        with pytest.raises(DataError, match="unknown fleet"):
            registry.resolve(spec.fleet_id[:4])

    def test_names_are_tenant_scoped(self):
        registry = FleetRegistry()
        registry.register(TINY, tenant="acme", name="prod")
        with pytest.raises(DataError, match="unknown fleet"):
            registry.resolve("prod", tenant="globex")

    def test_same_scenario_shares_one_id(self):
        registry = FleetRegistry()
        a = registry.register(TINY, tenant="acme", name="prod")
        b = registry.register(dict(TINY), tenant="globex", name="mine")
        assert a.fleet_id == b.fleet_id
        assert len(registry) == 1

    def test_name_conflict_rejected(self):
        registry = FleetRegistry()
        registry.register(TINY, tenant="acme", name="prod")
        with pytest.raises(DataError, match="already uses name"):
            registry.register(dict(TINY, seed=6), tenant="acme", name="prod")

    def test_reregistration_is_idempotent(self):
        registry = FleetRegistry()
        registry.register(TINY, tenant="acme", name="prod")
        registry.register(TINY, tenant="acme", name="prod")
        assert len(registry.list("acme")) == 1

    def test_empty_tenant_rejected(self):
        with pytest.raises(ConfigError, match="tenant"):
            FleetRegistry().register(TINY, tenant="")

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "fleets.json"
        first = FleetRegistry(path)
        spec = first.register(TINY, tenant="acme", name="prod")
        reloaded = FleetRegistry(path)
        assert reloaded.resolve("prod", tenant="acme").fleet_id == spec.fleet_id
        assert reloaded.resolve("prod", "acme").params == spec.params

    def test_corrupt_registry_is_loud(self, tmp_path):
        path = tmp_path / "fleets.json"
        path.write_text("{nope")
        with pytest.raises(DataError, match="corrupt"):
            FleetRegistry(path)

    def test_schema_mismatch_is_loud(self, tmp_path):
        path = tmp_path / "fleets.json"
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(DataError, match="schema"):
            FleetRegistry(path)

    def test_list_rows_are_json_safe(self):
        registry = FleetRegistry()
        registry.register(TINY, tenant="acme", name="prod")
        rows = registry.list()
        assert rows[0]["tenant"] == "acme" and rows[0]["name"] == "prod"
        json.dumps(rows)
