"""RMA ticket taxonomy and log tests."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.failures.tickets import (
    FAULT_CATEGORY,
    FAULT_CODE,
    FAULT_TYPES,
    HARDWARE_FAULTS,
    FaultType,
    RmaTicket,
    TicketCategory,
    TicketLog,
)


class TestTaxonomy:
    def test_every_fault_has_a_category(self):
        assert set(FAULT_CATEGORY) == set(FaultType)

    def test_table_ii_structure(self):
        software = [f for f, c in FAULT_CATEGORY.items() if c is TicketCategory.SOFTWARE]
        boot = [f for f, c in FAULT_CATEGORY.items() if c is TicketCategory.BOOT]
        assert set(software) == {FaultType.TIMEOUT, FaultType.DEPLOYMENT, FaultType.CRASH}
        assert set(boot) == {FaultType.PXE_BOOT, FaultType.REBOOT}
        assert set(HARDWARE_FAULTS) == {
            FaultType.DISK, FaultType.MEMORY, FaultType.POWER,
            FaultType.SERVER, FaultType.NETWORK,
        }

    def test_codes_are_dense(self):
        assert sorted(FAULT_CODE.values()) == list(range(len(FAULT_TYPES)))


def chunk(n, day=0, fault=FaultType.DISK, batch=-1, fp=False):
    return {
        "day_index": np.full(n, day, dtype=np.int64),
        "start_hour_abs": day * 24.0 + np.arange(n, dtype=float),
        "rack_index": np.arange(n, dtype=np.int64),
        "server_offset": np.zeros(n, dtype=np.int64),
        "fault_code": np.full(n, FAULT_CODE[fault], dtype=np.int64),
        "false_positive": np.full(n, fp, dtype=bool),
        "repair_hours": np.full(n, 5.0),
        "batch_id": np.full(n, batch, dtype=np.int64),
    }


class TestTicketLog:
    def test_append_and_len(self):
        log = TicketLog()
        log.append_chunk(**chunk(3))
        log.append_chunk(**chunk(2, day=1))
        assert len(log) == 5

    def test_empty_chunk_ignored(self):
        log = TicketLog()
        log.append_chunk(**chunk(0))
        assert len(log) == 0

    def test_misaligned_chunk_rejected(self):
        log = TicketLog()
        bad = chunk(3)
        bad["repair_hours"] = np.full(2, 5.0)
        with pytest.raises(DataError):
            log.append_chunk(**bad)

    def test_append_after_finalize_rejected(self):
        log = TicketLog()
        log.append_chunk(**chunk(1))
        log.finalize()
        with pytest.raises(DataError):
            log.append_chunk(**chunk(1))

    def test_end_hour_is_start_plus_repair(self):
        log = TicketLog()
        log.append_chunk(**chunk(2))
        assert np.allclose(log.end_hour_abs, log.start_hour_abs + 5.0)

    def test_ticket_materialization(self):
        log = TicketLog()
        log.append_chunk(**chunk(2, day=3, fault=FaultType.MEMORY))
        ticket = log.ticket(1)
        assert isinstance(ticket, RmaTicket)
        assert ticket.fault is FaultType.MEMORY
        assert ticket.category is TicketCategory.HARDWARE
        assert ticket.day_index == 3
        assert "Memory failure" in ticket.description()

    def test_ticket_index_bounds(self):
        log = TicketLog()
        log.append_chunk(**chunk(1))
        with pytest.raises(DataError):
            log.ticket(5)

    def test_masks(self):
        log = TicketLog()
        log.append_chunk(**chunk(2, fault=FaultType.DISK))
        log.append_chunk(**chunk(3, fault=FaultType.TIMEOUT, fp=True))
        assert log.hardware_mask().sum() == 2
        assert log.true_positive_mask().sum() == 2
        assert log.mask_for_faults([FaultType.TIMEOUT]).sum() == 3

    def test_category_counts(self):
        log = TicketLog()
        log.append_chunk(**chunk(4, fault=FaultType.DISK))
        log.append_chunk(**chunk(1, fault=FaultType.PXE_BOOT))
        counts = log.category_counts()
        assert counts[FaultType.DISK] == 4
        assert counts[FaultType.PXE_BOOT] == 1
        assert counts[FaultType.CRASH] == 0

    def test_category_counts_true_positives_only(self):
        log = TicketLog()
        log.append_chunk(**chunk(4, fault=FaultType.DISK, fp=True))
        assert log.category_counts(true_positives_only=True)[FaultType.DISK] == 0


class TestBatchDedupe:
    def test_batches_count_once(self):
        log = TicketLog()
        log.append_chunk(**chunk(4, batch=7))
        log.append_chunk(**chunk(2, batch=-1))
        keep = log.batch_dedupe_mask()
        assert keep.sum() == 3  # one per batch 7, plus two independents

    def test_distinct_batches_each_kept(self):
        log = TicketLog()
        log.append_chunk(**chunk(2, batch=1))
        log.append_chunk(**chunk(2, batch=2))
        assert log.batch_dedupe_mask().sum() == 2

    def test_category_counts_dedupe_by_default(self):
        log = TicketLog()
        log.append_chunk(**chunk(5, batch=9))
        assert log.category_counts()[FaultType.DISK] == 1
        assert log.category_counts(dedupe_batches=False)[FaultType.DISK] == 5


class TestRmaTicket:
    def test_end_hour(self):
        ticket = RmaTicket(
            day_index=0, start_hour_abs=10.0, rack_index=0, server_offset=0,
            fault=FaultType.DISK, false_positive=False, repair_hours=4.0,
        )
        assert ticket.end_hour_abs == 14.0

    def test_false_positive_description(self):
        ticket = RmaTicket(
            day_index=0, start_hour_abs=0.0, rack_index=0, server_offset=0,
            fault=FaultType.DISK, false_positive=True, repair_hours=1.0,
        )
        assert "false positive" in ticket.description()
