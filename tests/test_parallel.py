"""Parallel-runner tests: serial/parallel equivalence and edge cases.

The process-pool paths are exercised with tiny workloads; every
parallel result must be indistinguishable from its serial counterpart
(the work is deterministic and per-item independent).
"""

import pytest

import repro
from repro.errors import ConfigError
from repro.parallel import map_seeds, resolve_jobs, run_experiments


def _square(seed):
    return seed * seed


def _tiny_summary(seed):
    config = repro.SimulationConfig.small(seed=seed, scale=0.02, n_days=30)
    return len(repro.simulate(config).tickets)


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_one_is_serial(self):
        assert resolve_jobs(1) == 1

    def test_none_and_zero_mean_all_cores(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-2)


class TestMapSeeds:
    def test_empty(self):
        assert map_seeds(_square, [], jobs=4) == []

    def test_serial(self):
        assert map_seeds(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_parallel_matches_serial(self):
        serial = map_seeds(_square, [2, 4, 6], jobs=1)
        parallel = map_seeds(_square, [2, 4, 6], jobs=3)
        assert parallel == serial

    def test_parallel_simulation_matches_serial(self):
        seeds = [5, 6]
        assert map_seeds(_tiny_summary, seeds, jobs=2) == [
            _tiny_summary(seed) for seed in seeds
        ]


class TestRunExperiments:
    @pytest.fixture(scope="class")
    def setup(self):
        config = repro.SimulationConfig.small(seed=4, scale=0.05, n_days=120)
        context = repro.AnalysisContext(repro.simulate(config))
        return config, context

    def test_serial_renders_in_order(self, setup):
        config, context = setup
        ids = ["table2", "fig10"]
        rendered = run_experiments(ids, context=context)
        assert [r[0] for r in rendered] == ids
        for _, text, error in rendered:
            assert (text is None) != (error is None)

    def test_parallel_matches_serial(self, setup, tmp_path):
        config, context = setup
        ids = ["table2", "fig10", "fig5"]
        serial = run_experiments(ids, context=context, jobs=1)
        parallel = run_experiments(
            ids, config=config, jobs=2, cache_dir=str(tmp_path / "cache")
        )
        assert parallel == serial

    def test_parallel_without_config_rejected(self):
        with pytest.raises(ConfigError):
            run_experiments(["table2", "fig10"], jobs=2)

    def test_config_only_serial_path(self, setup):
        config, _ = setup
        rendered = run_experiments(["fig10"], config=config, jobs=1)
        assert rendered[0][0] == "fig10"
        assert rendered[0][1] is not None

    def test_empty(self):
        assert run_experiments([], jobs=4) == []
