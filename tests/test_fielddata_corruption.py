"""Corruption operators: determinism, severity-0 identity, semantics."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fielddata import (
    CensorInventory,
    CorruptionPipeline,
    DropTickets,
    DuplicateTickets,
    FieldDataset,
    JitterTimestamps,
    MisattributeTickets,
    SensorGaps,
    StuckSensors,
    standard_pipeline,
)
from repro.fielddata.dataset import TICKET_COLUMN_NAMES
from repro.rng import RngRegistry

ALL_OPS = (DuplicateTickets, DropTickets, JitterTimestamps,
           MisattributeTickets, SensorGaps, StuckSensors, CensorInventory)


def _dataset(run):
    return FieldDataset.from_result(run)


def _logs_equal(a, b) -> bool:
    return all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for name in TICKET_COLUMN_NAMES
    )


def _datasets_equal(a, b) -> bool:
    return (
        _logs_equal(a.tickets, b.tickets)
        and np.array_equal(a.temp_f, b.temp_f, equal_nan=True)
        and np.array_equal(a.rh, b.rh, equal_nan=True)
        and np.array_equal(a.decommission_day, b.decommission_day)
    )


class TestSeverityZeroIdentity:
    @pytest.mark.parametrize("op_class", ALL_OPS)
    def test_each_op_returns_same_object(self, tiny_run, op_class):
        dataset = _dataset(tiny_run)
        rng = RngRegistry(0).stream("fielddata:test")
        out, _ = op_class(0.0).apply(dataset, rng)
        assert out is dataset

    def test_standard_pipeline_is_identity(self, tiny_run):
        dataset = _dataset(tiny_run)
        out, report = standard_pipeline(0.0, seed=7).apply(dataset)
        assert out is dataset
        assert all(not any(stats.values()) for _, _, stats in report.ops)

    @pytest.mark.parametrize("op_class", ALL_OPS)
    def test_zero_severity_draws_nothing(self, tiny_run, op_class):
        """Adding a severity-0 op never perturbs a shared stream."""
        dataset = _dataset(tiny_run)
        rng = RngRegistry(3).stream("fielddata:test")
        op_class(0.0).apply(dataset, rng)
        untouched = RngRegistry(3).stream("fielddata:test")
        assert rng.random() == untouched.random()


class TestDeterminism:
    def test_same_seed_same_output(self, tiny_run):
        dataset = _dataset(tiny_run)
        first, _ = standard_pipeline(0.8, seed=42).apply(dataset)
        second, _ = standard_pipeline(0.8, seed=42).apply(dataset)
        assert _datasets_equal(first, second)

    def test_different_seeds_differ(self, tiny_run):
        dataset = _dataset(tiny_run)
        first, _ = standard_pipeline(0.8, seed=1).apply(dataset)
        second, _ = standard_pipeline(0.8, seed=2).apply(dataset)
        assert not _datasets_equal(first, second)

    def test_input_never_mutated(self, tiny_run):
        dataset = _dataset(tiny_run)
        frozen = {
            name: getattr(dataset.tickets, name).copy()
            for name in TICKET_COLUMN_NAMES
        }
        temp = dataset.temp_f.copy()
        standard_pipeline(1.0, seed=9).apply(dataset)
        for name in TICKET_COLUMN_NAMES:
            assert np.array_equal(getattr(dataset.tickets, name), frozen[name])
        assert np.array_equal(dataset.temp_f, temp, equal_nan=True)

    def test_op_order_independent_streams(self, tiny_run):
        """Dropping one op leaves the draws of the others unchanged."""
        dataset = _dataset(tiny_run)
        with_gaps = CorruptionPipeline(
            (SensorGaps(0.5), CensorInventory(0.5)), seed=5,
        ).apply(dataset)[0]
        without_gaps = CorruptionPipeline(
            (CensorInventory(0.5),), seed=5,
        ).apply(dataset)[0]
        assert np.array_equal(with_gaps.decommission_day,
                              without_gaps.decommission_day)


class TestOperatorSemantics:
    def test_duplicates_add_tickets(self, tiny_run):
        dataset = _dataset(tiny_run)
        rng = RngRegistry(0).stream("fielddata:duplicates")
        out, stats = DuplicateTickets(1.0).apply(dataset, rng)
        assert stats["tickets_duplicated"] > 0
        assert len(out.tickets) == len(dataset.tickets) + stats["tickets_duplicated"]

    def test_drops_remove_tickets(self, tiny_run):
        dataset = _dataset(tiny_run)
        rng = RngRegistry(0).stream("fielddata:drops")
        out, stats = DropTickets(1.0).apply(dataset, rng)
        assert len(out.tickets) == len(dataset.tickets) - stats["tickets_dropped"]

    def test_jitter_keeps_hours_in_window(self, tiny_run):
        dataset = _dataset(tiny_run)
        rng = RngRegistry(0).stream("fielddata:jitter")
        out, _ = JitterTimestamps(1.0).apply(dataset, rng)
        start = out.tickets.start_hour_abs
        assert start.min() >= 0.0
        assert start.max() < dataset.n_days * 24.0
        assert np.array_equal(out.tickets.day_index,
                              (start // 24.0).astype(np.int64))

    def test_misattribution_respects_rack_capacity(self, tiny_run):
        dataset = _dataset(tiny_run)
        rng = RngRegistry(0).stream("fielddata:misattribution")
        out, _ = MisattributeTickets(1.0).apply(dataset, rng)
        capacity = dataset.fleet.arrays().n_servers[out.tickets.rack_index]
        assert (out.tickets.server_offset < capacity).all()
        assert (out.tickets.server_offset >= 0).all()

    def test_censoring_is_consistent(self, tiny_run):
        dataset = _dataset(tiny_run)
        rng = RngRegistry(0).stream("fielddata:censoring")
        out, stats = CensorInventory(1.0).apply(dataset, rng)
        assert stats["racks_censored"] == out.censored_mask.sum()
        # no ticket survives past its rack's decommission day
        decommission = out.decommission_day[out.tickets.rack_index]
        assert (out.tickets.day_index < decommission).all()
        # sensor tails are blanked
        for rack in np.flatnonzero(out.censored_mask).tolist():
            day = int(out.decommission_day[rack])
            assert np.isnan(out.temp_f[day:, rack]).all()
            assert np.isnan(out.rh[day:, rack]).all()

    def test_severity_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            DropTickets(1.5)
        with pytest.raises(ConfigError):
            standard_pipeline(-0.1)

    def test_report_totals(self, tiny_run):
        dataset = _dataset(tiny_run)
        _, report = standard_pipeline(1.0, seed=3).apply(dataset)
        assert report.stat("tickets_duplicated") > 0
        assert report.stat("racks_censored") > 0
        rendered = report.render()
        assert "duplicates" in rendered
        assert "censoring" in rendered
