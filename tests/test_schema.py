"""Feature-schema tests."""

import pytest

from repro.errors import SchemaError
from repro.telemetry.schema import (
    FeatureKind,
    FeatureSpec,
    Schema,
    table_iii_schema,
)


class TestFeatureSpec:
    def test_continuous_takes_no_categories(self):
        with pytest.raises(SchemaError):
            FeatureSpec("x", FeatureKind.CONTINUOUS, categories=("a",))

    def test_nominal_requires_categories(self):
        with pytest.raises(SchemaError):
            FeatureSpec("x", FeatureKind.NOMINAL)

    def test_duplicate_categories_rejected(self):
        with pytest.raises(SchemaError):
            FeatureSpec("x", FeatureKind.NOMINAL, categories=("a", "a"))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            FeatureSpec("", FeatureKind.CONTINUOUS)

    def test_encode_decode_roundtrip(self):
        spec = FeatureSpec("x", FeatureKind.NOMINAL, categories=("a", "b", "c"))
        for i, label in enumerate(("a", "b", "c")):
            assert spec.encode(label) == i
            assert spec.decode(i) == label

    def test_decode_out_of_range(self):
        spec = FeatureSpec("x", FeatureKind.NOMINAL, categories=("a",))
        with pytest.raises(SchemaError):
            spec.decode(1)

    def test_encode_unknown_label(self):
        spec = FeatureSpec("x", FeatureKind.NOMINAL, categories=("a",))
        with pytest.raises(SchemaError):
            spec.encode("z")

    def test_decode_on_continuous_rejected(self):
        spec = FeatureSpec("x", FeatureKind.CONTINUOUS)
        with pytest.raises(SchemaError):
            spec.decode(0)

    def test_is_categorical(self):
        assert FeatureSpec("x", FeatureKind.ORDINAL, ("a", "b")).is_categorical
        assert not FeatureSpec("x", FeatureKind.CONTINUOUS).is_categorical


class TestSchema:
    def test_duplicate_names_rejected(self):
        spec = FeatureSpec("x", FeatureKind.CONTINUOUS)
        with pytest.raises(SchemaError):
            Schema((spec, spec))

    def test_lookup_and_membership(self):
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        assert "x" in schema
        assert schema.get("x").name == "x"
        with pytest.raises(SchemaError):
            schema.get("y")

    def test_with_feature_appends(self):
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        bigger = schema.with_feature(FeatureSpec("y", FeatureKind.CONTINUOUS))
        assert bigger.names == ["x", "y"]
        assert len(schema) == 1  # original untouched

    def test_subset_preserves_order(self):
        schema = Schema((
            FeatureSpec("a", FeatureKind.CONTINUOUS),
            FeatureSpec("b", FeatureKind.CONTINUOUS),
            FeatureSpec("c", FeatureKind.CONTINUOUS),
        ))
        assert schema.subset(["c", "a"]).names == ["c", "a"]


class TestTableIiiSchema:
    def test_contains_all_paper_features(self):
        schema = table_iii_schema(["DC1"], ["DC1-1"], ["S1"], ["W1"])
        expected = {
            "sku", "age_months", "rated_power_kw", "workload", "temp_f", "rh",
            "dc", "region", "row", "day_of_week", "week_of_year", "month", "year",
        }
        assert set(schema.names) == expected

    def test_kinds_match_table_iii(self):
        schema = table_iii_schema(["DC1"], ["DC1-1"], ["S1"], ["W1"])
        assert schema.get("sku").kind is FeatureKind.NOMINAL
        assert schema.get("age_months").kind is FeatureKind.CONTINUOUS
        assert schema.get("temp_f").kind is FeatureKind.CONTINUOUS
        assert schema.get("day_of_week").kind is FeatureKind.ORDINAL
        assert schema.get("month").kind is FeatureKind.ORDINAL

    def test_category_lists_threaded_through(self):
        schema = table_iii_schema(["DC1", "DC2"], ["r1"], ["S1", "S2"], ["W1"])
        assert schema.get("dc").categories == ("DC1", "DC2")
        assert schema.get("sku").categories == ("S1", "S2")
