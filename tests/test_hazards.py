"""Ground-truth hazard-shape tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.failures.hazards import (
    bathtub_age_multiplier,
    humidity_interaction_multiplier,
    low_humidity_multiplier,
    seasonal_software_multiplier,
    thermal_disk_multiplier,
    utilization_multiplier,
    weekday_churn_multiplier,
)


class TestBathtub:
    def test_infant_mortality_elevated(self):
        young = bathtub_age_multiplier(np.array([0.0]))[0]
        mature = bathtub_age_multiplier(np.array([24.0]))[0]
        assert young > 2.0 * mature

    def test_decays_monotonically_before_wearout(self):
        ages = np.linspace(0, 40, 50)
        values = bathtub_age_multiplier(ages)
        assert np.all(np.diff(values) < 0)

    def test_wearout_ramp_after_onset(self):
        assert (bathtub_age_multiplier(np.array([60.0]))[0]
                > bathtub_age_multiplier(np.array([48.0]))[0])

    def test_negative_age_clipped_to_infant_peak(self):
        assert (bathtub_age_multiplier(np.array([-5.0]))[0]
                == bathtub_age_multiplier(np.array([0.0]))[0])

    @given(st.floats(min_value=-10, max_value=120))
    def test_multiplier_at_least_one(self, age):
        assert bathtub_age_multiplier(np.array([age]))[0] >= 1.0


class TestThermal:
    def test_step_near_78f(self):
        below = thermal_disk_multiplier(np.array([74.0]))[0]
        above = thermal_disk_multiplier(np.array([82.0]))[0]
        assert above - below > 0.35  # the planted ≈50% step

    def test_flat_at_cool_temperatures(self):
        assert thermal_disk_multiplier(np.array([58.0]))[0] == pytest.approx(1.0, abs=0.02)

    @given(st.floats(min_value=40, max_value=110))
    def test_monotone_nondecreasing(self, temp):
        lower = thermal_disk_multiplier(np.array([temp]))[0]
        higher = thermal_disk_multiplier(np.array([temp + 1.0]))[0]
        assert higher >= lower - 1e-12


class TestHumidityInteraction:
    def test_full_activation_when_hot_and_dry(self):
        value = humidity_interaction_multiplier(np.array([88.0]), np.array([10.0]))[0]
        assert value == pytest.approx(1.18, abs=0.02)

    def test_inactive_when_cool(self):
        value = humidity_interaction_multiplier(np.array([65.0]), np.array([10.0]))[0]
        assert value == pytest.approx(1.0, abs=0.01)

    def test_inactive_when_humid(self):
        value = humidity_interaction_multiplier(np.array([88.0]), np.array([60.0]))[0]
        assert value == pytest.approx(1.0, abs=0.01)

    @given(st.floats(min_value=40, max_value=110),
           st.floats(min_value=2, max_value=99))
    def test_bounded(self, temp, rh):
        value = humidity_interaction_multiplier(np.array([temp]), np.array([rh]))[0]
        assert 1.0 <= value <= 1.181


class TestLowHumidity:
    def test_dry_air_elevates_hazard(self):
        dry = low_humidity_multiplier(np.array([10.0]))[0]
        comfortable = low_humidity_multiplier(np.array([50.0]))[0]
        assert dry > 1.3
        assert comfortable == pytest.approx(1.0, abs=0.02)

    @given(st.floats(min_value=2, max_value=99))
    def test_monotone_decreasing_in_rh(self, rh):
        assert (low_humidity_multiplier(np.array([rh]))[0]
                >= low_humidity_multiplier(np.array([rh + 1.0]))[0] - 1e-12)


class TestUtilization:
    def test_idle_machines_still_fail(self):
        assert utilization_multiplier(np.array([0.0]))[0] > 0.0

    def test_linear_in_utilization(self):
        low = utilization_multiplier(np.array([0.4]))[0]
        high = utilization_multiplier(np.array([0.9]))[0]
        assert high > low


class TestTemporal:
    def test_second_half_boost(self):
        assert seasonal_software_multiplier(8) > seasonal_software_multiplier(3)

    def test_invalid_month_rejected(self):
        with pytest.raises(ValueError):
            seasonal_software_multiplier(0)

    def test_weekend_churn_drops(self):
        assert weekday_churn_multiplier(True) < weekday_churn_multiplier(False)

    def test_weekday_is_unit(self):
        assert weekday_churn_multiplier(False) == 1.0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            weekday_churn_multiplier(True, weekend_fraction=2.0)
