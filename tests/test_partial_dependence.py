"""Partial-dependence tests."""

import numpy as np
import pytest

from repro.analysis.cart.tree import RegressionTree, TreeParams
from repro.analysis.partial_dependence import (
    partial_dependence,
    partial_dependence_2d,
)
from repro.errors import DataError, FitError
from repro.telemetry.schema import FeatureKind, FeatureSpec, Schema


@pytest.fixture(scope="module")
def additive_fit():
    """y = step(x0) + effect(category), with independent features."""
    rng = np.random.default_rng(7)
    n = 2000
    x0 = rng.uniform(0, 10, n)
    cat = rng.integers(0, 3, n).astype(float)
    y = (np.where(x0 <= 5.0, 0.0, 2.0)
         + np.array([0.0, 1.0, 3.0])[cat.astype(int)]
         + rng.normal(0, 0.2, n))
    matrix = np.column_stack([x0, cat])
    schema = Schema((
        FeatureSpec("x0", FeatureKind.CONTINUOUS),
        FeatureSpec("cat", FeatureKind.NOMINAL, ("a", "b", "c")),
    ))
    tree = RegressionTree(TreeParams(max_depth=6, cp=0.001, min_bucket=20)).fit(
        matrix, y, schema
    )
    return tree, matrix


class TestCategoricalPd:
    def test_recovers_planted_effects(self, additive_fit):
        tree, matrix = additive_fit
        pd = partial_dependence(tree, "cat", training_matrix=matrix)
        values = pd.as_dict()
        # Independent features → PD recovers the additive offsets.
        assert values["b"] - values["a"] == pytest.approx(1.0, abs=0.2)
        assert values["c"] - values["a"] == pytest.approx(3.0, abs=0.2)

    def test_labels_are_category_names(self, additive_fit):
        tree, matrix = additive_fit
        pd = partial_dependence(tree, "cat", training_matrix=matrix)
        assert pd.labels == ("a", "b", "c")


class TestContinuousPd:
    def test_recovers_step(self, additive_fit):
        tree, matrix = additive_fit
        pd = partial_dependence(
            tree, "x0", grid=np.array([2.0, 8.0]), training_matrix=matrix
        )
        assert pd.values[1] - pd.values[0] == pytest.approx(2.0, abs=0.25)

    def test_automatic_grid_spans_training_range(self, additive_fit):
        tree, matrix = additive_fit
        pd = partial_dependence(tree, "x0", training_matrix=matrix, n_grid=7)
        assert len(pd.grid) == 7
        assert pd.grid[0] == pytest.approx(matrix[:, 0].min())
        assert pd.grid[-1] == pytest.approx(matrix[:, 0].max())

    def test_continuous_without_matrix_or_grid_rejected(self, additive_fit):
        tree, _ = additive_fit
        with pytest.raises(DataError):
            partial_dependence(tree, "x0")

    def test_empty_grid_rejected(self, additive_fit):
        tree, matrix = additive_fit
        with pytest.raises(DataError):
            partial_dependence(tree, "x0", grid=np.array([]))


class TestPd2d:
    def test_surface_shape(self, additive_fit):
        tree, _ = additive_fit
        surface = partial_dependence_2d(
            tree, "x0", "cat", np.array([2.0, 8.0]), np.array([0.0, 1.0, 2.0])
        )
        assert surface.shape == (2, 3)

    def test_additive_structure_recovered(self, additive_fit):
        tree, _ = additive_fit
        surface = partial_dependence_2d(
            tree, "x0", "cat", np.array([2.0, 8.0]), np.array([0.0, 2.0])
        )
        # Both the x0 step and the category effect appear in the surface.
        assert surface[1, 0] - surface[0, 0] == pytest.approx(2.0, abs=0.3)
        assert surface[0, 1] - surface[0, 0] == pytest.approx(3.0, abs=0.3)

    def test_same_feature_twice_rejected(self, additive_fit):
        tree, _ = additive_fit
        with pytest.raises(DataError):
            partial_dependence_2d(tree, "x0", "x0",
                                  np.array([1.0]), np.array([2.0]))


class TestValidation:
    def test_unfitted_tree_rejected(self):
        with pytest.raises(FitError):
            partial_dependence(RegressionTree(), "x")

    def test_unknown_feature_rejected(self, additive_fit):
        tree, matrix = additive_fit
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            partial_dependence(tree, "nope", training_matrix=matrix)
