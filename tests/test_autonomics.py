"""The autonomics layer: actions, ledger, feed, controllers, what-if.

The two headline contracts live here.  First, a null-policy closed-loop
run ticket-matches batch ``simulate()`` — the control loop itself adds
no perturbation.  Second, the ROADMAP's closed-loop claim: on the
default comparison scenario the predictive controller matches or beats
the reactive baseline on SLA attainment at equal-or-lower TCO.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autonomics import (
    BUILTIN_POLICIES,
    Controller,
    MoveSetpoints,
    NullController,
    Observation,
    OrderSpares,
    PredictiveController,
    ReactiveController,
    SessionEventFeed,
    SpareLedger,
    SwapSku,
    ThresholdController,
    compare_policies,
    compute_autonomics_payload,
    make_controller,
    render_autonomics,
    run_policy,
)
from repro.config import SimulationConfig
from repro.errors import ConfigError, DataError
from repro.failures.engine import SimulationSession, simulate
from repro.stream.blocks import EVENT_DTYPE, blocks_from_result
from repro.stream.events import StreamInventory
from repro.stream.triggers import Alert, AlertKind


class TestActions:
    def test_order_spares_validates(self):
        with pytest.raises(ConfigError):
            OrderSpares(rack_index=0, n_servers=0)
        with pytest.raises(ConfigError):
            OrderSpares(rack_index=0, lead_time_days=-1)

    def test_swap_sku_needs_racks(self):
        with pytest.raises(ConfigError):
            SwapSku(rack_ids=(), sku_name="S1")

    def test_move_setpoints_needs_delta(self):
        with pytest.raises(ConfigError):
            MoveSetpoints()

    def test_order_spares_never_touches_the_session(self):
        # Spares are operational inventory: applying the action must not
        # perturb the physical realization.
        config = SimulationConfig.small(seed=11, scale=0.05, n_days=90)
        baseline = simulate(config)
        session = SimulationSession(config)
        session.step(30)
        session.apply([OrderSpares(rack_index=0, n_servers=4)])
        session.step()
        assert np.array_equal(
            session.result().tickets.start_hour_abs,
            baseline.tickets.start_hour_abs,
        )


class TestSpareLedger:
    def test_initial_fraction_floors(self):
        ledger = SpareLedger(np.array([40, 40]), n_days=10,
                             initial_fraction=0.06)
        # floor(0.06 * 40) = 2 spares per rack.
        assert ledger.spares.tolist() == [2, 2]
        with pytest.raises(ConfigError):
            SpareLedger(np.array([40]), n_days=10, initial_fraction=-0.1)

    def test_lead_time_delivery(self):
        ledger = SpareLedger(np.array([40, 40]), n_days=30)
        ledger.book(order_day=5, rack_index=1, n_servers=2, lead_time_days=3)
        assert ledger.racks_on_order() == {1}
        assert ledger.deliver_until(7) == []
        assert ledger.spares.tolist() == [0, 0]
        delivered = ledger.deliver_until(8)
        assert delivered == [(8, 1, 2)]
        assert ledger.spares.tolist() == [0, 2]
        assert ledger.racks_on_order() == set()
        assert ledger.total_ordered() == 2

    def test_trajectory_steps_at_arrival(self):
        ledger = SpareLedger(np.array([40]), n_days=10)
        ledger.book(order_day=2, rack_index=0, n_servers=3, lead_time_days=4)
        trajectory = ledger.spares_trajectory()
        assert trajectory.shape == (10, 1)
        assert (trajectory[:6, 0] == 0).all()
        assert (trajectory[6:, 0] == 3).all()
        assert ledger.mean_fraction() == pytest.approx(3 * 4 / (10 * 40))

    def test_book_validates_rack(self):
        ledger = SpareLedger(np.array([40]), n_days=10)
        with pytest.raises(ConfigError):
            ledger.book(0, rack_index=5, n_servers=1, lead_time_days=0)


class TestSessionEventFeed:
    def test_incremental_feed_matches_batch_flatten(self):
        config = SimulationConfig.small(seed=11, scale=0.05, n_days=120)
        batch = simulate(config)
        session = SimulationSession(config)
        feed = SessionEventFeed(
            session, StreamInventory.from_fleet(session.fleet, config.n_days),
        )
        streamed = []
        while not session.exhausted:
            session.step(17)
            streamed.extend(feed.blocks_until(session.day))
        streamed.extend(feed.blocks_until(config.n_days))
        stepped = np.concatenate([block.data for block in streamed])
        reference = np.concatenate(
            [block.data for block in blocks_from_result(batch)],
        )
        # The feed's cut is exclusive at the observation horizon, so it
        # never emits the handful of ticket closes whose repair runs
        # past the end of the window; clip the batch stream the same way.
        reference = reference[reference["time_hours"] < config.n_days * 24.0]
        assert stepped.shape == reference.shape
        for name in EVENT_DTYPE.names:
            a, b = stepped[name], reference[name]
            if a.dtype.kind == "f":
                assert np.array_equal(a, b, equal_nan=True), name
            else:
                assert np.array_equal(a, b), name

    def test_feed_frontier_is_monotone(self):
        config = SimulationConfig.small(seed=11, scale=0.05, n_days=90)
        session = SimulationSession(config)
        feed = SessionEventFeed(
            session, StreamInventory.from_fleet(session.fleet, config.n_days),
        )
        session.step(20)
        feed.blocks_until(20)
        with pytest.raises(DataError):
            feed.blocks_until(10)

    def test_feed_refuses_unrealized_days(self):
        config = SimulationConfig.small(seed=11, scale=0.05, n_days=90)
        session = SimulationSession(config)
        feed = SessionEventFeed(
            session, StreamInventory.from_fleet(session.fleet, config.n_days),
        )
        with pytest.raises(DataError):
            feed.blocks_until(1)  # nothing generated yet


def observation(alerts=(), n_racks=4, temp_f=70.0, on_order=()):
    return Observation(
        day=35, window_days=7, alerts=tuple(alerts),
        down=np.zeros(n_racks, dtype=np.int64),
        capacity=np.full(n_racks, 40, dtype=np.int64),
        spares=np.zeros(n_racks, dtype=np.int64),
        racks_on_order=frozenset(on_order),
        observed_temp_f=np.full(n_racks, temp_f),
        observed_rh=np.full(n_racks, 45.0),
    )


def sla_alert(rack):
    return Alert(kind=AlertKind.SLA_RISK, time_hours=840.0,
                 message="breach", rack_index=rack, value=3.0, threshold=1.0)


def predicted_alert(rack, score=0.9):
    return Alert(kind=AlertKind.PREDICTED_FAILURE, time_hours=840.0,
                 message="predicted", rack_index=rack, value=score,
                 threshold=0.6)


class TestControllers:
    def test_registry(self):
        assert BUILTIN_POLICIES == ("null", "reactive", "predictive",
                                    "threshold")
        for policy_id in BUILTIN_POLICIES:
            controller = make_controller(policy_id)
            assert isinstance(controller, Controller)
            assert controller.policy_id == policy_id
        with pytest.raises(ConfigError):
            make_controller("chaos-monkey")

    def test_null_controller_never_acts(self):
        assert NullController().decide(observation([sla_alert(0)])) == []

    def test_reactive_orders_on_breach_once_per_rack(self):
        controller = ReactiveController()
        actions = controller.decide(
            observation([sla_alert(2), sla_alert(2), sla_alert(3)]),
        )
        assert sorted(a.rack_index for a in actions) == [2, 3]
        assert all(isinstance(a, OrderSpares) for a in actions)
        # Racks with an undelivered order are not re-ordered.
        assert controller.decide(
            observation([sla_alert(2)], on_order={2})) == []

    def test_predictive_caps_one_preorder_per_rack(self):
        controller = PredictiveController()
        first = controller.decide(observation([predicted_alert(1)]))
        assert [a.rack_index for a in first] == [1]
        # Re-flagging the same rack later buys nothing new...
        assert controller.decide(observation([predicted_alert(1)])) == []
        # ...but every flag feeds the proactive accounting...
        assert [rack for rack, _, _ in controller.flagged] == [1, 1]
        # ...and a realized breach still gets the reactive escalation.
        breach = controller.decide(observation([sla_alert(1)]))
        assert [a.rack_index for a in breach] == [1]

    def test_threshold_cools_within_budget(self):
        controller = ThresholdController(
            hot_temp_f=80.0, setpoint_step_f=2.0, max_total_shift_f=4.0,
        )
        hot = observation(temp_f=85.0)
        for _ in range(2):
            actions = controller.decide(hot)
            assert [a.temp_delta_f for a in actions
                    if isinstance(a, MoveSetpoints)] == [-2.0]
        # Budget exhausted: no further pulls, however hot it reads.
        assert controller.decide(hot) == []
        # All-NaN windows (every reading dropped) never trigger.
        assert controller.decide(observation(temp_f=np.nan)) == []


class TestRunPolicy:
    def test_null_policy_matches_batch(self):
        # The loop itself — session + feed + analyzer + scoring — must
        # not perturb the realization.
        config = SimulationConfig.small(seed=11, scale=0.05, n_days=120)
        outcome = run_policy(config, NullController())
        batch = simulate(config)
        assert outcome.policy_id == "null"
        assert outcome.n_actions == 0
        assert outcome.spare_servers_ordered == 0
        assert np.array_equal(outcome.result.tickets.start_hour_abs,
                              batch.tickets.start_hour_abs)
        assert 0.0 <= outcome.sla_attainment <= 1.0
        assert outcome.tco_units == pytest.approx(
            outcome.deployment_units + outcome.failure_units)

    def test_decide_every_validated(self):
        config = SimulationConfig.small(seed=11, scale=0.05, n_days=90)
        with pytest.raises(ConfigError):
            run_policy(config, NullController(), decide_every_days=0)


@pytest.fixture(scope="module")
def default_shootout():
    """The default comparison scenario (the acceptance gate's subject)."""
    config = SimulationConfig.small(seed=0, scale=0.2, n_days=270)
    return compare_policies(config, policies=("reactive", "predictive"))


class TestComparePolicies:
    def test_predictive_beats_reactive_on_default_scenario(
        self, default_shootout,
    ):
        # The ROADMAP's closed-loop claim, asserted: acting on
        # predictions meets or beats break/fix on SLA attainment at
        # equal-or-lower TCO on the default scenario.
        verdict = default_shootout["verdict"]
        assert verdict["predictive_beats_reactive_sla"]
        assert verdict["predictive_tco_leq_reactive"]
        assert verdict["sla_attainment_delta"] >= 0.0
        assert verdict["tco_delta_units"] <= 0.0

    def test_payload_shape_and_scenario(self, default_shootout):
        rows = {row["policy"]: row for row in default_shootout["policies"]}
        assert set(rows) == {"reactive", "predictive"}
        assert default_shootout["scenario"]["policies"] == [
            "reactive", "predictive",
        ]
        predictive = rows["predictive"]
        assert predictive["n_interventions"] > 0
        assert predictive["failures_prevented"] > 0.0
        # JSON-safe: round-trips through the stdlib encoder.
        import json

        json.dumps(default_shootout)

    def test_render_mentions_verdict(self, default_shootout):
        text = render_autonomics(default_shootout)
        assert "policy shootout" in text
        assert "verdict: acting on predictions matches or beats" in text
        assert "at equal or lower TCO" in text

    def test_compute_shim_validates(self):
        with pytest.raises(ConfigError):
            compute_autonomics_payload(
                SimulationConfig.small(), policies=(),
            )


class TestGroundTruthBoundary:
    def test_autonomics_is_inside_the_gt_leak_fence(self):
        from repro.staticcheck import lint_source
        from repro.staticcheck.framework import get_rule

        def rules_hit(source, module):
            findings = lint_source(source, module=module,
                                   rules=[get_rule("GT-leak")])
            return [f.rule for f in findings]

        # A controller module importing the hazard model is a
        # ground-truth leak — the fence extends over repro.autonomics.
        assert rules_hit("import repro.failures.hazards\n",
                         module="repro.autonomics.fixture") == ["GT-leak"]
        assert rules_hit("from repro.failures import hazards\n",
                         module="repro.autonomics.controller") == ["GT-leak"]
        # The sanctioned surface stays importable.
        assert rules_hit(
            "from repro.failures.engine import SimulationSession\n",
            module="repro.autonomics.fixture",
        ) == []

    def test_autonomics_package_is_hazard_free(self):
        # Belt and braces next to the lint rule: no module in the
        # package imports the hazard or generation internals.
        import ast
        import pathlib

        import repro.autonomics

        package_dir = pathlib.Path(repro.autonomics.__file__).parent
        for path in package_dir.glob("*.py"):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    names = [f"{node.module or ''}.{alias.name}"
                             for alias in node.names]
                else:
                    continue
                for name in names:
                    assert "hazards" not in name, (path, name)


class TestExperimentWiring:
    def test_registered_experiment(self):
        from repro.reporting.experiments import EXPERIMENTS

        experiment = EXPERIMENTS["autonomics"]
        assert experiment.stages == ("autonomics:compare",)
        assert "repro.autonomics.experiment" in experiment.code

    def test_pipeline_carries_the_stage(self):
        from repro.pipeline.stages import analysis_stages

        config = SimulationConfig.small()
        names = [stage.name for stage in analysis_stages(config)]
        assert "autonomics:compare" in names

    def test_serve_query_parses_and_validates(self):
        from repro.serve.queries import parse_query

        params = dict(parse_query("autonomics", {}).params)
        assert params["policies"] == "null,reactive,predictive"
        assert params["sla_level"] == 0.95
        with pytest.raises(DataError):
            parse_query("autonomics", {"sla_level": "1.5"})
        with pytest.raises(DataError):
            parse_query("autonomics", {"decide_every_days": "0"})
        with pytest.raises(DataError):
            parse_query("autonomics", {"policies": ","})
