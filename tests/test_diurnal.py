"""Diurnal arrival-profile tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.failures.diurnal import (
    DiurnalProfiles,
    business_hours_profile,
    load_following_profile,
    uniform_profile,
)
from repro.failures.tickets import FaultType


class TestProfiles:
    def test_profiles_are_densities(self):
        for profile in (business_hours_profile(), load_following_profile(),
                        uniform_profile()):
            assert profile.shape == (24,)
            assert profile.sum() == pytest.approx(1.0)
            assert (profile >= 0).all()

    def test_business_hours_peak_daytime(self):
        profile = business_hours_profile()
        assert profile[9:18].sum() > 2 * profile[np.r_[0:6, 22:24]].sum()

    def test_load_following_peaks_afternoon(self):
        profile = load_following_profile()
        assert int(np.argmax(profile)) == 15

    def test_uniform_is_flat(self):
        profile = uniform_profile()
        assert np.allclose(profile, 1.0 / 24.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            business_hours_profile(day_night_ratio=0.5)
        with pytest.raises(ConfigError):
            load_following_profile(amplitude=1.5)


class TestSampling:
    @pytest.fixture(scope="class")
    def profiles(self):
        return DiurnalProfiles()

    def test_samples_within_day(self, profiles):
        rng = np.random.default_rng(0)
        hours = profiles.sample_hours(FaultType.TIMEOUT, 5000, rng)
        assert hours.min() >= 0.0
        assert hours.max() < 24.0

    def test_software_concentrates_in_business_hours(self, profiles):
        rng = np.random.default_rng(0)
        hours = profiles.sample_hours(FaultType.DEPLOYMENT, 8000, rng)
        daytime = ((hours >= 9) & (hours < 18)).mean()
        assert daytime > 0.55  # uniform would give 0.375

    def test_hardware_mildly_diurnal(self, profiles):
        rng = np.random.default_rng(0)
        hours = profiles.sample_hours(FaultType.DISK, 8000, rng)
        daytime = ((hours >= 9) & (hours < 18)).mean()
        assert 0.40 < daytime < 0.55

    def test_other_category_uniform(self, profiles):
        rng = np.random.default_rng(0)
        hours = profiles.sample_hours(FaultType.OTHER, 12000, rng)
        daytime = ((hours >= 9) & (hours < 18)).mean()
        assert daytime == pytest.approx(0.375, abs=0.02)

    def test_empirical_distribution_matches_profile(self, profiles):
        rng = np.random.default_rng(1)
        hours = profiles.sample_hours(FaultType.TIMEOUT, 40000, rng)
        empirical, _ = np.histogram(hours, bins=24, range=(0, 24))
        empirical = empirical / empirical.sum()
        assert np.abs(empirical - profiles.profile(FaultType.TIMEOUT)).max() < 0.012

    def test_zero_size(self, profiles):
        assert profiles.sample_hours(
            FaultType.DISK, 0, np.random.default_rng(0)
        ).shape == (0,)

    def test_negative_size_rejected(self, profiles):
        with pytest.raises(ConfigError):
            profiles.sample_hours(FaultType.DISK, -1, np.random.default_rng(0))


class TestEngineIntegration:
    def test_ticket_hours_follow_profiles(self, small_run):
        log = small_run.tickets
        hours = log.start_hour_abs % 24.0
        software = log.mask_for_faults([FaultType.TIMEOUT, FaultType.DEPLOYMENT])
        daytime_share = ((hours >= 9) & (hours < 18))[software].mean()
        assert daytime_share > 0.5
