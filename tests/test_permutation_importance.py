"""Permutation-importance tests."""

import numpy as np
import pytest

from repro.analysis.cart.importance import permutation_importance
from repro.analysis.cart.tree import RegressionTree, TreeParams
from repro.errors import DataError, FitError
from repro.telemetry.schema import FeatureKind, FeatureSpec, Schema


@pytest.fixture(scope="module")
def fitted_with_noise():
    rng = np.random.default_rng(8)
    n = 1200
    signal = rng.uniform(0, 10, n)
    noise = rng.uniform(0, 10, n)
    y = np.where(signal <= 5.0, 0.0, 4.0) + rng.normal(0, 0.2, n)
    matrix = np.column_stack([signal, noise])
    schema = Schema((
        FeatureSpec("signal", FeatureKind.CONTINUOUS),
        FeatureSpec("noise", FeatureKind.CONTINUOUS),
    ))
    tree = RegressionTree(TreeParams(max_depth=4, cp=0.005)).fit(matrix, y, schema)
    return tree, matrix, y


class TestPermutationImportance:
    def test_signal_beats_noise(self, fitted_with_noise):
        tree, matrix, y = fitted_with_noise
        importance = permutation_importance(tree, matrix, y)
        assert importance["signal"] > 10 * max(importance["noise"], 1e-6)

    def test_noise_importance_near_zero(self, fitted_with_noise):
        tree, matrix, y = fitted_with_noise
        importance = permutation_importance(tree, matrix, y)
        assert importance["noise"] < 0.05

    def test_sorted_descending(self, fitted_with_noise):
        tree, matrix, y = fitted_with_noise
        importance = permutation_importance(tree, matrix, y)
        values = list(importance.values())
        assert values == sorted(values, reverse=True)

    def test_deterministic_with_rng(self, fitted_with_noise):
        tree, matrix, y = fitted_with_noise
        a = permutation_importance(tree, matrix, y,
                                   rng=np.random.default_rng(1))
        b = permutation_importance(tree, matrix, y,
                                   rng=np.random.default_rng(1))
        assert a == b

    def test_correlated_twin_shares_gain_but_not_necessity(self):
        """The paper's footnote-3 caveat, demonstrated.

        Two nearly identical features: gain importance credits whichever
        the tree picked; permutation importance shows the *pair* is
        individually replaceable only if the tree actually used both.
        """
        rng = np.random.default_rng(9)
        n = 1500
        base = rng.uniform(0, 10, n)
        twin = base + rng.normal(0, 0.01, n)
        y = np.where(base <= 5.0, 0.0, 4.0) + rng.normal(0, 0.2, n)
        matrix = np.column_stack([base, twin])
        schema = Schema((
            FeatureSpec("base", FeatureKind.CONTINUOUS),
            FeatureSpec("twin", FeatureKind.CONTINUOUS),
        ))
        tree = RegressionTree(TreeParams(max_depth=4, cp=0.005)).fit(
            matrix, y, schema,
        )
        gain = tree.importance()
        permutation = permutation_importance(tree, matrix, y)
        # Gain importance concentrates on the chosen feature(s)...
        assert sum(gain.values()) == pytest.approx(1.0)
        # ...and permuting the used one hurts while the unused twin
        # scores ~0 — the asymmetry gain importance hides.
        used = max(permutation, key=permutation.get)
        unused = "twin" if used == "base" else "base"
        assert permutation[used] > 0.5
        assert permutation[unused] < permutation[used] / 5

    def test_validation(self, fitted_with_noise):
        tree, matrix, y = fitted_with_noise
        with pytest.raises(FitError):
            permutation_importance(RegressionTree(), matrix, y)
        with pytest.raises(DataError):
            permutation_importance(tree, matrix, y[:-1])
        with pytest.raises(DataError):
            permutation_importance(tree, matrix[:, :1], y)
        with pytest.raises(DataError):
            permutation_importance(tree, matrix, y, n_repeats=0)
