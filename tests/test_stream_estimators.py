"""Unit behaviour of the incremental estimators (λ, μ, group counters)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DataError
from repro.failures.tickets import FAULT_CODE, FaultType
from repro.stream import StreamingGroupCounts, StreamingLambda, StreamingMu
from repro.stream.events import Event, EventKind

DISK = FAULT_CODE[FaultType.DISK]
TIMEOUT = FAULT_CODE[FaultType.TIMEOUT]


def open_event(seq=0, t=0.0, rack=0, offset=0, day=None, fault=DISK,
               fp=False, repair=1.0, batch=-1, ordinal=0):
    return Event(
        seq=seq, time_hours=t, kind=EventKind.TICKET_OPEN,
        rack_index=rack, server_offset=offset,
        day_index=int(t // 24.0) if day is None else day,
        fault_code=fault, false_positive=fp, repair_hours=repair,
        batch_id=batch, ticket_ordinal=ordinal,
    )


class TestStreamingLambda:
    def test_counts_by_recorded_day_not_arrival_time(self):
        lam = StreamingLambda(n_racks=2, n_days=10)
        lam.update(open_event(t=0.5, rack=1, day=7))
        matrix = lam.matrix()
        assert matrix[1, 7] == 1 and matrix.sum() == 1

    def test_false_positives_excluded_by_default(self):
        lam = StreamingLambda(2, 10)
        lam.update(open_event(fp=True))
        assert lam.matrix().sum() == 0
        keep = StreamingLambda(2, 10, true_positives_only=False)
        keep.update(open_event(fp=True))
        assert keep.matrix().sum() == 1

    def test_fault_filter(self):
        lam = StreamingLambda(2, 10, faults=[FaultType.DISK])
        lam.update(open_event(fault=TIMEOUT))
        lam.update(open_event(fault=DISK))
        assert lam.matrix().sum() == 1

    def test_batch_counts_once(self):
        lam = StreamingLambda(2, 10)
        for ordinal in range(3):
            lam.update(open_event(batch=5, ordinal=ordinal, day=ordinal))
        matrix = lam.matrix()
        assert matrix.sum() == 1 and matrix[0, 0] == 1  # ordinal 0 wins

    def test_batch_winner_is_min_log_ordinal_any_arrival_order(self):
        lam = StreamingLambda(2, 10)
        lam.update(open_event(t=5.0, batch=5, ordinal=9, day=3))
        assert lam.matrix()[0, 3] == 1
        # An earlier log row arrives later in time: the count moves.
        lam.update(open_event(t=6.0, batch=5, ordinal=2, day=1))
        matrix = lam.matrix()
        assert matrix[0, 1] == 1 and matrix[0, 3] == 0

    def test_batch_winner_filtered_row_silences_batch(self):
        # The batch path dedupes in log order *before* filtering: if the
        # first log row of a batch is a false positive, the batch
        # contributes nothing.
        lam = StreamingLambda(2, 10)
        lam.update(open_event(t=1.0, batch=7, ordinal=4, day=2))
        assert lam.matrix().sum() == 1
        lam.update(open_event(t=2.0, batch=7, ordinal=1, fp=True, day=2))
        assert lam.matrix().sum() == 0

    def test_out_of_range_day_raises(self):
        lam = StreamingLambda(2, 10)
        with pytest.raises(DataError, match="day_index"):
            lam.update(open_event(day=10))

    def test_out_of_range_rack_raises(self):
        lam = StreamingLambda(2, 10)
        with pytest.raises(DataError, match="group_index"):
            lam.update(open_event(rack=2))

    def test_state_roundtrip(self):
        lam = StreamingLambda(3, 20, faults=[FaultType.DISK, FaultType.MEMORY])
        for i in range(10):
            lam.update(open_event(t=float(i), rack=i % 3, ordinal=i,
                                  batch=i % 4, day=i))
        clone = StreamingLambda.from_state(lam.state_arrays(), lam.meta())
        assert np.array_equal(clone.matrix(), lam.matrix())
        # Both halves keep evolving identically (winner map survived).
        late = open_event(t=99.0, rack=0, ordinal=0, batch=3, day=19)
        lam.update(late)
        clone.update(late)
        assert np.array_equal(clone.matrix(), lam.matrix())


class TestStreamingMu:
    def _mu(self, window_hours=24.0, per_server=True):
        return StreamingMu(
            n_servers=np.array([4, 8]),
            server_base=np.array([0, 4]),
            n_days=10,
            window_hours=window_hours,
            per_server=per_server,
        )

    def test_interval_spans_windows(self):
        mu = self._mu()
        mu.update(open_event(t=20.0, repair=10.0))  # spans windows 0 and 1
        matrix = mu.matrix()
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1 and matrix.sum() == 2

    def test_per_server_merge_counts_server_once(self):
        mu = self._mu()
        mu.update(open_event(t=0.0, offset=2, repair=5.0))
        mu.update(open_event(t=3.0, offset=2, repair=5.0))  # overlaps
        assert mu.matrix()[0, 0] == 1

    def test_distinct_servers_count_separately(self):
        mu = self._mu()
        mu.update(open_event(t=0.0, offset=1, repair=5.0))
        mu.update(open_event(t=1.0, offset=2, repair=5.0))
        assert mu.matrix()[0, 0] == 2

    def test_touching_intervals_merge(self):
        mu = self._mu()
        mu.update(open_event(t=0.0, offset=0, repair=24.0))
        mu.update(open_event(t=24.0, offset=0, repair=24.0))
        matrix = mu.matrix()
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1

    def test_component_mode_counts_raw_intervals_uncapped(self):
        # per_server=False is the component-spares view: every failed
        # device interval counts, no merge, no capacity cap (batch parity).
        mu = self._mu(per_server=False)
        for i in range(6):
            mu.update(open_event(t=1.0 + i, repair=1.0))
        assert mu.matrix()[0, 0] == 6

    def test_software_and_false_positive_ignored(self):
        mu = self._mu()
        mu.update(open_event(fault=TIMEOUT))
        mu.update(open_event(fp=True))
        assert mu.matrix().sum() == 0

    def test_out_of_range_interval_dropped(self):
        mu = self._mu()
        mu.update(open_event(t=10 * 24.0 + 1.0, repair=5.0, day=9))
        assert mu.matrix().sum() == 0

    def test_negative_repair_raises(self):
        mu = self._mu()
        with pytest.raises(DataError, match="interval end"):
            mu.update(open_event(repair=-1.0))

    def test_matrix_is_pure_midstream(self):
        mu = self._mu()
        mu.update(open_event(t=0.0, offset=0, repair=5.0))
        first = mu.matrix()
        mu.update(open_event(t=2.0, offset=0, repair=50.0))  # extends open
        second = mu.matrix()
        assert first[0, 0] == 1 and first.sum() == 1
        assert second[0, 0] == 1 and second[0, 2] == 1

    def test_state_roundtrip_with_open_intervals(self):
        mu = self._mu()
        mu.update(open_event(t=0.0, offset=0, repair=100.0))  # stays open
        mu.update(open_event(t=5.0, offset=1, repair=1.0))
        clone = StreamingMu.from_state(
            mu.n_servers, mu.server_base, mu.state_arrays(), mu.meta(),
        )
        assert np.array_equal(clone.matrix(), mu.matrix())
        follow_up = open_event(t=90.0, offset=0, repair=20.0)
        mu.update(follow_up)
        clone.update(follow_up)
        assert np.array_equal(clone.matrix(), mu.matrix())


class TestStreamingMuCap:
    def test_per_server_cap_applies(self):
        mu = StreamingMu(
            n_servers=np.array([2]), server_base=np.array([0]), n_days=2,
        )
        # Three "servers" down at once via spilled offsets on a 2-server
        # rack: the cap clamps the window count to capacity.
        for offset in range(3):
            mu.update(open_event(t=1.0 + offset * 0.1, offset=offset,
                                 repair=10.0))
        assert mu.matrix()[0, 0] == 2


class TestStreamingGroupCounts:
    def _counts(self, trailing=3):
        return StreamingGroupCounts(
            group_code=np.array([0, 0, 1]),
            group_names=("A", "B"),
            trailing_days=trailing,
        )

    def test_totals_by_group(self):
        counts = self._counts()
        counts.update(open_event(t=0.0, rack=0))
        counts.update(open_event(t=1.0, rack=1))
        counts.update(open_event(t=2.0, rack=2))
        assert counts.totals.tolist() == [2, 1]

    def test_batch_counts_once(self):
        counts = self._counts()
        counts.update(open_event(t=0.0, rack=0, batch=3))
        counts.update(open_event(t=1.0, rack=2, batch=3))
        assert counts.totals.tolist() == [1, 0]

    def test_trailing_window_expires(self):
        counts = self._counts(trailing=3)
        counts.update(open_event(t=0.0, rack=0))
        assert counts.trailing_counts().tolist() == [1, 0]
        counts.update(open_event(t=4 * 24.0, rack=2))  # day 4: day 0 aged out
        assert counts.trailing_counts().tolist() == [0, 1]
        assert counts.totals.tolist() == [1, 1]

    def test_false_positive_ignored(self):
        counts = self._counts()
        counts.update(open_event(fp=True))
        assert counts.totals.sum() == 0

    def test_state_roundtrip(self):
        counts = self._counts()
        for i in range(6):
            counts.update(open_event(t=i * 30.0, rack=i % 3, batch=i % 2))
        clone = self._counts()
        clone.restore(counts.state_arrays(), counts.meta())
        assert np.array_equal(clone.totals, counts.totals)
        assert np.array_equal(clone.trailing_counts(),
                              counts.trailing_counts())
