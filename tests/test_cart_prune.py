"""Cost-complexity pruning tests."""

import numpy as np
import pytest

from repro.analysis.cart.prune import (
    cross_validated_alpha,
    prune,
    prune_sequence,
)
from repro.analysis.cart.tree import RegressionTree, TreeParams
from repro.errors import DataError, FitError
from repro.telemetry.schema import FeatureKind, FeatureSpec, Schema


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(3)
    n = 500
    x = rng.uniform(0, 1, (n, 2))
    y = (np.where(x[:, 0] <= 0.5, 0.0, 3.0)
         + np.where(x[:, 1] <= 0.3, 0.0, 1.0)
         + rng.normal(0, 0.3, n))
    schema = Schema((
        FeatureSpec("a", FeatureKind.CONTINUOUS),
        FeatureSpec("b", FeatureKind.CONTINUOUS),
    ))
    tree = RegressionTree(TreeParams(max_depth=6, cp=0.0005, min_bucket=5)).fit(
        x, y, schema
    )
    return tree, x, y, schema


class TestPruneSequence:
    def test_sequence_shrinks_to_stump(self, fitted):
        tree, *_ = fitted
        sequence = prune_sequence(tree)
        leaves = [step.n_leaves for step, _ in sequence]
        assert leaves[0] == tree.n_leaves
        assert leaves[-1] == 1
        assert all(a > b for a, b in zip(leaves, leaves[1:]))

    def test_alphas_nondecreasing(self, fitted):
        tree, *_ = fitted
        alphas = [step.alpha for step, _ in prune_sequence(tree)]
        assert all(a <= b + 1e-9 for a, b in zip(alphas, alphas[1:]))

    def test_risk_nondecreasing_as_tree_shrinks(self, fitted):
        tree, *_ = fitted
        risks = [step.risk for step, _ in prune_sequence(tree)]
        assert all(a <= b + 1e-6 for a, b in zip(risks, risks[1:]))

    def test_original_tree_untouched(self, fitted):
        tree, *_ = fitted
        before = tree.n_leaves
        prune_sequence(tree)
        assert tree.n_leaves == before

    def test_unfitted_rejected(self):
        with pytest.raises(FitError):
            prune_sequence(RegressionTree())


class TestPrune:
    def test_zero_alpha_keeps_full_tree(self, fitted):
        tree, *_ = fitted
        assert prune(tree, 0.0).n_leaves == tree.n_leaves

    def test_huge_alpha_gives_stump(self, fitted):
        tree, *_ = fitted
        assert prune(tree, 1e12).n_leaves == 1

    def test_intermediate_alpha_intermediate_size(self, fitted):
        tree, *_ = fitted
        sequence = prune_sequence(tree)
        middle_alpha = sequence[len(sequence) // 2][0].alpha
        pruned = prune(tree, middle_alpha)
        assert 1 <= pruned.n_leaves <= tree.n_leaves

    def test_negative_alpha_rejected(self, fitted):
        tree, *_ = fitted
        with pytest.raises(DataError):
            prune(tree, -1.0)

    def test_pruned_tree_still_predicts(self, fitted):
        tree, x, y, _ = fitted
        pruned = prune(tree, prune_sequence(tree)[1][0].alpha)
        predictions = pruned.predict(x)
        assert predictions.shape == y.shape
        assert np.isfinite(predictions).all()

    def test_pruned_importance_rebuilt(self, fitted):
        tree, *_ = fitted
        stump = prune(tree, 1e12)
        assert stump.importance() == {}


class TestCrossValidation:
    def test_cv_alpha_keeps_real_structure(self, fitted):
        tree, x, y, schema = fitted
        alpha = cross_validated_alpha(
            x, y, schema, TreeParams(max_depth=6, cp=0.0005, min_bucket=5),
            n_folds=4,
        )
        pruned = prune(tree, alpha)
        # The planted structure has 3-4 distinct means; CV should keep
        # at least that much and not collapse to a stump.
        assert pruned.n_leaves >= 3

    def test_cv_prunes_pure_noise_to_stump(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(size=(300, 1))
        y = rng.normal(size=300)
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        params = TreeParams(max_depth=5, cp=0.001, min_bucket=5)
        alpha = cross_validated_alpha(x, y, schema, params, n_folds=4)
        pruned = prune(RegressionTree(params).fit(x, y, schema), alpha)
        assert pruned.n_leaves <= 4

    def test_too_few_folds_rejected(self, fitted):
        _, x, y, schema = fitted
        with pytest.raises(DataError):
            cross_validated_alpha(x, y, schema, TreeParams(), n_folds=1)
