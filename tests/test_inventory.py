"""Inventory (device IDs, commissioning cohorts) tests."""

import numpy as np
import pytest

from repro.datacenter.inventory import (
    CommissionCohort,
    DeviceIdAllocator,
    default_cohorts,
    sample_commission_days,
)
from repro.errors import ConfigError


class TestCohorts:
    def test_default_cohorts_span_past_and_window(self):
        cohorts = default_cohorts(910)
        offsets = [cohort.offset_days for cohort in cohorts]
        assert min(offsets) < -3 * 365
        assert max(offsets) > 0

    def test_weights_positive(self):
        assert all(cohort.weight > 0 for cohort in default_cohorts(910))

    def test_short_window_rejected(self):
        with pytest.raises(ConfigError):
            default_cohorts(10)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigError):
            CommissionCohort(offset_days=0, weight=0.0)


class TestSampling:
    def test_sample_count(self):
        days = sample_commission_days(
            100, default_cohorts(910), np.random.default_rng(0)
        )
        assert len(days) == 100

    def test_ages_span_up_to_five_years(self):
        days = sample_commission_days(
            3000, default_cohorts(910), np.random.default_rng(0)
        )
        assert days.min() < -4 * 365
        assert days.max() > 0.5 * 910

    def test_recency_bias_shifts_distribution(self):
        cohorts = default_cohorts(910)
        rng = np.random.default_rng(0)
        young = sample_commission_days(1000, cohorts, rng, recency_bias=5.0)
        old = sample_commission_days(1000, cohorts, rng, recency_bias=-5.0)
        neutral = sample_commission_days(1000, cohorts, rng)
        assert young.mean() > neutral.mean() > old.mean()

    def test_zero_racks_rejected(self):
        with pytest.raises(ConfigError):
            sample_commission_days(0, default_cohorts(910), np.random.default_rng(0))

    def test_empty_cohorts_rejected(self):
        with pytest.raises(ConfigError):
            sample_commission_days(5, [], np.random.default_rng(0))

    def test_jitter_stays_within_bounds(self):
        cohorts = [CommissionCohort(offset_days=100, weight=1.0)]
        days = sample_commission_days(
            500, cohorts, np.random.default_rng(0), jitter_days=10
        )
        assert days.min() >= 90
        assert days.max() <= 110


class TestDeviceIdAllocator:
    def test_sequential_unique_ids(self):
        allocator = DeviceIdAllocator()
        first = allocator.allocate(3)
        second = allocator.allocate(2)
        assert first == ["C00001", "C00002", "C00003"]
        assert second == ["C00004", "C00005"]
        assert allocator.allocated == 5

    def test_custom_prefix(self):
        allocator = DeviceIdAllocator(prefix="D", start=10)
        assert allocator.allocate()[0] == "D00010"

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigError):
            DeviceIdAllocator().allocate(0)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigError):
            DeviceIdAllocator(start=-1)
