"""Topology and fleet-array tests."""

import numpy as np
import pytest

from repro.datacenter.builder import build_fleet, FleetConfig, dc1_spec
from repro.datacenter.sku import default_catalog as default_skus
from repro.datacenter.topology import (
    DataCenter,
    Fleet,
    Rack,
    RegionSpec,
)
from repro.datacenter.workload import default_catalog as default_workloads
from repro.errors import ConfigError
from repro.rng import RngRegistry


@pytest.fixture(scope="module")
def fleet() -> Fleet:
    return build_fleet(
        FleetConfig(scale=0.06, observation_days=120), RngRegistry(seed=2)
    )


def make_rack(**overrides) -> Rack:
    base = {
        "rack_id": "DC1-R001", "dc_name": "DC1", "region_name": "DC1-1",
        "row": 1, "slot": 0, "sku": default_skus().get("S1"), "workload": "W5",
        "rated_power_kw": 6.0, "commission_day": 0,
    }
    base.update(overrides)
    return Rack(**base)


class TestRack:
    def test_counts_follow_sku(self):
        rack = make_rack()
        assert rack.n_servers == 20
        assert rack.n_hdds == 240
        assert rack.n_dimms == 160

    def test_age_months(self):
        rack = make_rack(commission_day=-365)
        assert rack.age_months(0) == pytest.approx(12.0, rel=0.01)

    def test_invalid_row_rejected(self):
        with pytest.raises(ConfigError):
            make_rack(row=0)

    def test_nonpositive_power_rejected(self):
        with pytest.raises(ConfigError):
            make_rack(rated_power_kw=0.0)


class TestRegionSpec:
    def test_nonpositive_hazard_rejected(self):
        with pytest.raises(ConfigError):
            RegionSpec("R", hazard_multiplier=0.0)


class TestDataCenterSpec:
    def test_invalid_nines_rejected(self):
        spec = dc1_spec()
        with pytest.raises(ConfigError):
            type(spec)(
                name="X", packaging=spec.packaging, availability_nines=2,
                cooling=spec.cooling, n_rows=4, regions=spec.regions,
            )

    def test_region_lookup(self):
        dc = DataCenter(spec=dc1_spec())
        assert dc.region("DC1-2").name == "DC1-2"
        with pytest.raises(ConfigError):
            dc.region("DC9-1")


class TestFleet:
    def test_counts_are_consistent(self, fleet):
        assert fleet.n_racks == len(fleet.racks)
        assert fleet.n_servers == sum(rack.n_servers for rack in fleet.racks)

    def test_two_datacenters(self, fleet):
        assert [dc.name for dc in fleet.datacenters] == ["DC1", "DC2"]

    def test_datacenter_lookup(self, fleet):
        assert fleet.datacenter("DC2").name == "DC2"
        with pytest.raises(ConfigError):
            fleet.datacenter("DC9")

    def test_region_names_cover_both_dcs(self, fleet):
        names = fleet.region_names
        assert any(name.startswith("DC1") for name in names)
        assert any(name.startswith("DC2") for name in names)

    def test_racks_for_workload(self, fleet):
        racks = fleet.racks_for_workload("W3")
        assert racks
        assert all(rack.workload == "W3" for rack in racks)
        assert all(rack.sku.name == "S7" for rack in racks)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigError):
            Fleet([], default_skus(), default_workloads())


class TestFleetArrays:
    def test_arrays_align_with_racks(self, fleet):
        arrays = fleet.arrays()
        racks = fleet.racks
        assert arrays.n_racks == len(racks)
        for i in (0, len(racks) // 2, len(racks) - 1):
            rack = racks[i]
            assert arrays.rack_ids[i] == rack.rack_id
            assert arrays.dc_names[arrays.dc_code[i]] == rack.dc_name
            assert arrays.region_names[arrays.region_code[i]] == rack.region_name
            assert arrays.sku_names[arrays.sku_code[i]] == rack.sku.name
            assert arrays.workload_names[arrays.workload_code[i]] == rack.workload
            assert arrays.n_servers[i] == rack.n_servers
            assert arrays.commission_day[i] == rack.commission_day

    def test_server_base_partitions_servers(self, fleet):
        arrays = fleet.arrays()
        assert arrays.server_base[0] == 0
        assert np.all(np.diff(arrays.server_base) == arrays.n_servers[:-1])
        assert arrays.n_servers_total == fleet.n_servers

    def test_arrays_cached(self, fleet):
        assert fleet.arrays() is fleet.arrays()

    def test_age_months_vectorized(self, fleet):
        arrays = fleet.arrays()
        ages = arrays.age_months(60)
        assert ages.shape == (arrays.n_racks,)
        expected = (60 - arrays.commission_day[0]) / 30.4375
        assert ages[0] == pytest.approx(expected)

    def test_ground_truth_columns_present(self, fleet):
        arrays = fleet.arrays()
        assert np.all(arrays.sku_intrinsic > 0)
        assert np.all(arrays.region_hazard > 0)
        assert np.all(arrays.batch_mean_size >= 1.0)
