"""Fault-model composition tests."""

import numpy as np
import pytest

from repro.datacenter.builder import FleetConfig, build_fleet
from repro.errors import ConfigError
from repro.failures.faultmodel import FaultModel, FaultRateConfig
from repro.failures.tickets import FaultType
from repro.rng import RngRegistry
from repro.units import SimCalendar


@pytest.fixture(scope="module")
def model_setup():
    fleet = build_fleet(FleetConfig(scale=0.1, observation_days=365), RngRegistry(4))
    model = FaultModel(fleet)
    arrays = fleet.arrays()
    calendar = SimCalendar()
    return fleet, model, arrays, calendar


def expected_for_day(model_setup, day=180, temp=70.0, rh=40.0):
    fleet, model, arrays, calendar = model_setup
    commissioned = arrays.commission_day <= day
    temp_arr = np.full(arrays.n_racks, temp)
    rh_arr = np.full(arrays.n_racks, rh)
    return model.expected_counts(calendar.day(day), temp_arr, rh_arr, commissioned)


class TestRateConfig:
    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            FaultRateConfig(disk_per_disk_day=-1.0)

    def test_fp_rate_must_be_below_one(self):
        with pytest.raises(ConfigError):
            FaultRateConfig(false_positive_rate=1.0)


class TestExpectedCounts:
    def test_every_fault_type_present(self, model_setup):
        counts = expected_for_day(model_setup)
        assert set(counts) == set(FaultType)

    def test_rates_nonnegative_and_finite(self, model_setup):
        for values in expected_for_day(model_setup).values():
            assert np.all(values >= 0)
            assert np.all(np.isfinite(values))

    def test_uncommissioned_racks_have_zero_rates(self, model_setup):
        fleet, model, arrays, calendar = model_setup
        day = int(arrays.commission_day.min())  # some racks not yet live
        commissioned = arrays.commission_day <= day
        assert not commissioned.all()
        counts = model.expected_counts(
            calendar.day(max(day, 0)),
            np.full(arrays.n_racks, 70.0),
            np.full(arrays.n_racks, 40.0),
            commissioned,
        )
        for values in counts.values():
            assert np.all(values[~commissioned] == 0.0)

    def test_hot_dry_raises_disk_rate_in_dc1_only(self, model_setup):
        fleet, model, arrays, _ = model_setup
        cool = expected_for_day(model_setup, temp=68.0, rh=45.0)[FaultType.DISK]
        hot = expected_for_day(model_setup, temp=84.0, rh=30.0)[FaultType.DISK]
        dc1 = arrays.dc_code == 0
        ratio_dc1 = hot[dc1].sum() / cool[dc1].sum()
        ratio_dc2 = hot[~dc1].sum() / cool[~dc1].sum()
        assert ratio_dc1 > 1.45
        assert ratio_dc2 < 1.35  # thermally decoupled packaging

    def test_weekend_lowers_software_rates(self, model_setup):
        fleet, model, arrays, calendar = model_setup
        commissioned = arrays.commission_day <= 180
        temp = np.full(arrays.n_racks, 70.0)
        rh = np.full(arrays.n_racks, 40.0)
        weekday = model.expected_counts(calendar.day(180), temp, rh, commissioned)
        # Day 182 is a Saturday when day 0 is a Sunday (182 % 7 == 0 → Sun).
        weekend_day = next(
            d for d in range(180, 190) if calendar.day(d).is_weekend
        )
        weekend = model.expected_counts(calendar.day(weekend_day), temp, rh, commissioned)
        assert (weekend[FaultType.DEPLOYMENT].sum()
                < 0.6 * weekday[FaultType.DEPLOYMENT].sum())

    def test_compute_racks_have_more_software_tickets(self, model_setup):
        fleet, model, arrays, _ = model_setup
        counts = expected_for_day(model_setup)
        dense = arrays.n_servers >= 40
        sparse = arrays.n_servers <= 20
        per_rack_dense = counts[FaultType.TIMEOUT][dense].mean()
        per_rack_sparse = counts[FaultType.TIMEOUT][sparse].mean()
        assert per_rack_dense > per_rack_sparse


class TestEventRates:
    def test_batch_rate_positive_for_commissioned(self, model_setup):
        fleet, model, arrays, calendar = model_setup
        commissioned = arrays.commission_day <= 200
        rate = model.batch_event_rate(calendar.day(200), commissioned)
        assert np.all(rate[commissioned] > 0)
        assert np.all(rate[~commissioned] == 0)

    def test_storage_skus_batch_more(self, model_setup):
        fleet, model, arrays, calendar = model_setup
        commissioned = np.ones(arrays.n_racks, dtype=bool)
        rate = model.batch_event_rate(calendar.day(400), commissioned)
        s3 = arrays.sku_code == arrays.sku_names.index("S3")
        s4 = arrays.sku_code == arrays.sku_names.index("S4")
        assert rate[s3].mean() > 3 * rate[s4].mean()

    def test_outage_rarer_in_five_nines_dc(self, model_setup):
        fleet, model, arrays, calendar = model_setup
        commissioned = np.ones(arrays.n_racks, dtype=bool)
        rate = model.rack_outage_rate(calendar.day(400), commissioned)
        dc1 = arrays.dc_code == 0
        assert rate[dc1].mean() > rate[~dc1].mean()


class TestRackContext:
    def test_packaging_factors(self, model_setup):
        fleet, model, arrays, _ = model_setup
        context = model.context
        dc1 = arrays.dc_code == 0
        assert context.network_packaging[dc1].min() > context.network_packaging[~dc1].max()
        assert context.reboot_packaging[dc1].min() > context.reboot_packaging[~dc1].max()
        assert context.power_base_rate[dc1].max() < context.power_base_rate[~dc1].min()
        assert np.all(context.thermal_coupling[dc1] == 1.0)
        assert np.all(context.thermal_coupling[~dc1] < 0.5)

    def test_utilization_by_day_kind(self, model_setup):
        fleet, model, arrays, _ = model_setup
        context = model.context
        assert context.utilization(False).mean() > context.utilization(True).mean()
