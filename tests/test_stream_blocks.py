"""The columnar event core's equivalence contracts, property-style.

Two layers of bit-identity, exercised over deliberately nasty
randomized ticket logs, at chunk sizes down to one event per block:

1. the :class:`~repro.stream.events.Event` view over
   :func:`~repro.stream.blocks.blocks_from_parts` must match the
   original generator-based merge (``flatten_parts_merged``)
   element for element — across kind filters, skip offsets and chunk
   boundaries;
2. every consumer's vectorized ``update_block`` must leave it in
   exactly the state that per-event ``update``/``process`` calls
   would — matrices, counters, alert sequences, checkpoint bundles.

Plus the spill format (``BlockSegment`` save/load/mmap roundtrip), the
interning pool, the pipeline ``blocks`` codec, the block-fed rack-day
table, and the chunked CSV reader's error context.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.decisions.availability import AvailabilitySla
from repro.errors import DataError
from repro.failures.tickets import FAULT_TYPES, HARDWARE_FAULTS, TicketLog
from repro.fielddata import FieldDataset
from repro.stream import (
    BlockSegment,
    BlockStream,
    EventKind,
    StreamAnalyzer,
    StreamInventory,
    StreamingGroupCounts,
    StreamingLambda,
    StreamingMu,
    StringPool,
    blocks_from_parts,
    blocks_from_result,
    flatten_parts,
    flatten_parts_merged,
    load_checkpoint,
    rack_day_table_from_blocks,
    save_checkpoint,
)
from repro.stream.triggers import RateDriftDetector, SlaRiskMonitor
from repro.telemetry.aggregate import build_rack_day_table
from repro.telemetry.io import iter_csv_rows

BLOCK_SIZES = (1, 7, 64, 8192)


def random_ticket_log(rng: np.random.Generator, arrays, n_days: int,
                      n_tickets: int) -> TicketLog:
    """Shuffled row order, shared batches, FPs, long and zero repairs."""
    n_racks = arrays.n_racks
    rack = rng.integers(0, n_racks, n_tickets)
    day = rng.integers(0, n_days, n_tickets)
    start = day * 24.0 + rng.uniform(0.0, 24.0, n_tickets)
    offset = np.array([
        rng.integers(0, arrays.n_servers[r]) for r in rack
    ], dtype=np.int64)
    fault = rng.integers(0, len(FAULT_TYPES), n_tickets)
    fp = rng.random(n_tickets) < 0.25
    repair = np.where(
        rng.random(n_tickets) < 0.1, 0.0,
        rng.exponential(30.0, n_tickets),
    )
    batch = np.where(
        rng.random(n_tickets) < 0.35,
        rng.integers(0, max(n_tickets // 6, 1), n_tickets),
        -1,
    )
    log = TicketLog()
    log.append_chunk(
        day_index=day.astype(np.int64),
        start_hour_abs=start,
        rack_index=rack.astype(np.int64),
        server_offset=offset,
        fault_code=fault.astype(np.int64),
        false_positive=fp,
        repair_hours=repair,
        batch_id=batch.astype(np.int64),
    )
    log.finalize()
    return log


@pytest.fixture(scope="module")
def randomized_results(tiny_run):
    arrays = tiny_run.fleet.arrays()
    results = []
    for seed in (0, 1, 2):
        rng = np.random.default_rng(seed)
        log = random_ticket_log(rng, arrays, tiny_run.n_days,
                                n_tickets=400 + seed * 137)
        dataset = FieldDataset.from_result(tiny_run).replace(tickets=log)
        results.append(dataset.to_result(base=tiny_run))
    return results


def _parts(result):
    return dict(
        inventory=StreamInventory.from_result(result),
        tickets=result.tickets,
        temp_f=result.bms.temp_f,
        rh=result.bms.rh,
    )


class TestEventViewEquivalence:
    """Blocks → Event view ≡ the original generator merge."""

    def test_identical_across_block_sizes(self, randomized_results):
        for result in randomized_results:
            parts = _parts(result)
            reference = list(flatten_parts_merged(**parts))
            for block_size in BLOCK_SIZES:
                view = list(flatten_parts(**parts, block_size=block_size))
                assert view == reference

    def test_identical_under_kind_filters(self, randomized_results):
        result = randomized_results[0]
        parts = _parts(result)
        for kinds in (
            {EventKind.TICKET_OPEN},
            {EventKind.TICKET_OPEN, EventKind.TICKET_CLOSE},
            {EventKind.TICKET_CLOSE},
            {EventKind.INVENTORY_CHANGE, EventKind.SENSOR_SAMPLE},
        ):
            reference = list(flatten_parts_merged(**parts, kinds=kinds))
            view = list(flatten_parts(**parts, kinds=kinds, block_size=7))
            assert view == reference

    def test_identical_at_every_skip_class(self, randomized_results):
        """Resume offsets on, before and after chunk boundaries."""
        result = randomized_results[1]
        parts = _parts(result)
        reference = list(flatten_parts_merged(**parts))
        total = len(reference)
        for skip in (0, 1, 63, 64, 65, total // 2, total - 1, total):
            view = list(flatten_parts(**parts, skip=skip, block_size=64))
            assert view == reference[skip:]

    def test_blocks_carry_absolute_seq(self, randomized_results):
        result = randomized_results[2]
        parts = _parts(result)
        position = 11
        for block in blocks_from_parts(**parts, skip=11, block_size=13):
            assert block.start_seq == position
            assert np.array_equal(
                block.seq,
                np.arange(position, position + len(block)),
            )
            position = block.end_seq

    def test_flatten_result_matches_reference(self, tiny_run):
        reference = list(flatten_parts_merged(**_parts(tiny_run)))
        from repro.stream import flatten_result

        assert list(flatten_result(tiny_run)) == reference


class TestUpdateBlockEquivalence:
    """update_block(block) ≡ update(event) × len(block), bit for bit."""

    def _open_events(self, result, block_size):
        kinds = {EventKind.TICKET_OPEN}
        events = list(flatten_parts_merged(**_parts(result), kinds=kinds))
        blocks = list(blocks_from_parts(**_parts(result), kinds=kinds,
                                        block_size=block_size))
        return events, blocks

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_streaming_lambda(self, randomized_results, block_size):
        for result in randomized_results:
            events, blocks = self._open_events(result, block_size)
            scalar = StreamingLambda(result.fleet.n_racks, result.n_days)
            for event in events:
                scalar.update(event)
            columnar = StreamingLambda(result.fleet.n_racks, result.n_days)
            for block in blocks:
                columnar.update_block(block)
            assert np.array_equal(scalar.matrix(), columnar.matrix())
            assert scalar.events_counted == columnar.events_counted

    @pytest.mark.parametrize("per_server", (True, False))
    def test_streaming_mu(self, randomized_results, per_server):
        for result in randomized_results:
            arrays = result.fleet.arrays()
            events, blocks = self._open_events(result, block_size=37)
            scalar = StreamingMu(arrays.n_servers, arrays.server_base,
                                 result.n_days, window_hours=6.0,
                                 per_server=per_server)
            for event in events:
                scalar.update(event)
            columnar = StreamingMu(arrays.n_servers, arrays.server_base,
                                   result.n_days, window_hours=6.0,
                                   per_server=per_server)
            for block in blocks:
                columnar.update_block(block)
            assert np.array_equal(scalar.matrix(), columnar.matrix())

    def test_streaming_group_counts(self, randomized_results):
        for result in randomized_results:
            inventory = StreamInventory.from_result(result)
            events, blocks = self._open_events(result, block_size=19)
            scalar = StreamingGroupCounts(inventory.sku_code,
                                          inventory.sku_names)
            for event in events:
                scalar.update(event)
            columnar = StreamingGroupCounts(inventory.sku_code,
                                            inventory.sku_names)
            for block in blocks:
                columnar.update_block(block)
            assert np.array_equal(scalar.totals, columnar.totals)
            assert np.array_equal(scalar.trailing_counts(),
                                  columnar.trailing_counts())

    @pytest.mark.parametrize("spare_fraction", (0.0, 0.02, 0.2))
    def test_sla_monitor(self, randomized_results, spare_fraction):
        kinds = {EventKind.TICKET_OPEN, EventKind.TICKET_CLOSE}
        for result in randomized_results:
            inventory = StreamInventory.from_result(result)
            events = list(flatten_parts_merged(**_parts(result),
                                               kinds=kinds))
            blocks = list(blocks_from_parts(**_parts(result), kinds=kinds,
                                            block_size=23))
            sla = AvailabilitySla(0.999)
            scalar = SlaRiskMonitor(inventory, sla, spare_fraction)
            scalar_alerts = []
            for event in events:
                scalar_alerts.extend(scalar.update(event))
            columnar = SlaRiskMonitor(inventory, sla, spare_fraction)
            columnar_alerts = []
            for block in blocks:
                columnar_alerts.extend(columnar.update_block(block))
            assert scalar_alerts == columnar_alerts
            for name, array in scalar.state_arrays().items():
                assert np.array_equal(array, columnar.state_arrays()[name])

    def test_drift_detector(self, randomized_results):
        for result in randomized_results:
            events, blocks = self._open_events(result, block_size=29)
            scalar = RateDriftDetector(result.n_days, ratio=1.5,
                                       min_excess=2.0)
            scalar_alerts = []
            for event in events:
                scalar_alerts.extend(scalar.update(event))
            columnar = RateDriftDetector(result.n_days, ratio=1.5,
                                         min_excess=2.0)
            columnar_alerts = []
            for block in blocks:
                columnar_alerts.extend(columnar.update_block(block))
            assert scalar_alerts == columnar_alerts
            for name, array in scalar.state_arrays().items():
                assert np.array_equal(array, columnar.state_arrays()[name])

    @pytest.mark.parametrize("block_size", (1, 17, 8192))
    def test_analyzer_end_to_end(self, randomized_results, block_size):
        """consume_blocks ≡ consume: summary, alerts, everything."""
        for result in randomized_results:
            inventory = StreamInventory.from_result(result)

            def analyzer():
                return StreamAnalyzer(inventory, sla=AvailabilitySla(0.999),
                                      spare_fraction=0.05)

            scalar = analyzer()
            scalar.consume(flatten_parts_merged(**_parts(result)))
            scalar.finish()
            columnar = analyzer()
            columnar.consume_blocks(blocks_from_parts(
                **_parts(result), block_size=block_size,
            ))
            columnar.finish()
            assert columnar.summary() == scalar.summary()
            assert columnar.alerts == scalar.alerts

    def test_checkpoint_split_mid_block(self, randomized_results, tmp_path):
        """Resume from a split that falls inside a block."""
        result = randomized_results[0]
        inventory = StreamInventory.from_result(result)

        def analyzer():
            return StreamAnalyzer(inventory, sla=AvailabilitySla(0.999),
                                  spare_fraction=0.05)

        single = analyzer()
        single.consume_blocks(blocks_from_parts(**_parts(result),
                                                block_size=64))
        single.finish()

        split = 5 * 64 + 17
        partial = analyzer()
        partial.consume_blocks(
            blocks_from_parts(**_parts(result), block_size=64),
            max_events=split,
        )
        assert partial.events_seen == split
        path = save_checkpoint(partial, tmp_path / "mid.ckpt.npz")
        resumed = load_checkpoint(path, inventory)
        assert resumed.blocks_seen == partial.blocks_seen
        resumed.consume_blocks(blocks_from_parts(
            **_parts(result), skip=resumed.events_seen, block_size=64,
        ))
        resumed.finish()
        assert resumed.summary() == single.summary()
        assert resumed.alerts == single.alerts


class TestBlockSegment:
    def test_save_load_roundtrip_bit_identical(self, tiny_run, tmp_path):
        segment = BlockSegment.from_blocks(blocks_from_result(tiny_run))
        path = tmp_path / "trace.npz"
        segment.save(path)
        back = BlockSegment.load(path)
        assert back.records.tobytes() == segment.records.tobytes()
        assert back.start_seq == segment.start_seq
        assert back.n_events == segment.n_events
        # Loaded records are backed by a memory map, not a copy.
        base = back.records
        while not isinstance(base, np.memmap) and base.base is not None:
            base = base.base
        assert isinstance(base, np.memmap)

    def test_iteration_preserves_stream(self, tiny_run, tmp_path):
        reference = list(flatten_parts_merged(**_parts(tiny_run)))
        spilled = BlockStream.from_result(tiny_run).spill(
            tmp_path / "spill.npz", block_size=101,
        )
        from repro.stream import iter_block_events

        events = [e for block in spilled for e in iter_block_events(block)]
        assert events == reference

    def test_pools_survive_roundtrip(self, tiny_run, tmp_path):
        inventory = StreamInventory.from_result(tiny_run)
        segment = BlockSegment.from_blocks(
            blocks_from_result(tiny_run),
            pools=inventory.label_pools(),
        )
        path = tmp_path / "pools.npz"
        segment.save(path)
        back = BlockSegment.load(path)
        assert set(back.pools) == set(segment.pools)
        for name, labels in segment.pools.items():
            assert tuple(back.pools[name]) == tuple(labels)

    def test_non_contiguous_blocks_refused(self, tiny_run):
        blocks = list(blocks_from_result(tiny_run, block_size=64))
        with pytest.raises(DataError, match="not contiguous"):
            BlockSegment.from_blocks([blocks[0], blocks[2]])

    def test_corrupt_segment_refused(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, events=np.zeros(3))
        with pytest.raises(DataError):
            BlockSegment.load(path)


class TestStringPool:
    def test_intern_dedupes_and_preserves_order(self):
        pool = StringPool()
        codes = [pool.intern(s) for s in ("r0", "r1", "r0", "r2", "r1")]
        assert codes == [0, 1, 0, 2, 1]
        assert pool.labels == ("r0", "r1", "r2")
        assert pool.code_of("r2") == 2

    def test_encode_decode_roundtrip(self):
        pool = StringPool(("a", "b"))
        codes = pool.encode(["b", "a", "b", "c"])
        assert codes.tolist() == [1, 0, 1, 2]
        assert pool.decode(codes) == ("b", "a", "b", "c")


class TestBlocksPipelineStage:
    def test_event_blocks_stage_cold_and_warm(self, tmp_path):
        from repro.config import SimulationConfig
        from repro.pipeline.core import ArtifactStore
        from repro.pipeline.stages import (
            EVENT_BLOCKS_STAGE,
            build_report_pipeline,
        )

        config = SimulationConfig.small(seed=9, scale=0.05, n_days=60)
        cold = build_report_pipeline(
            config, store=ArtifactStore(tmp_path), experiment_ids=[],
        )
        segment = cold.get(EVENT_BLOCKS_STAGE)
        warm = build_report_pipeline(
            config, store=ArtifactStore(tmp_path), experiment_ids=[],
        )
        reloaded = warm.get(EVENT_BLOCKS_STAGE)
        assert reloaded.records.tobytes() == segment.records.tobytes()
        assert reloaded.start_seq == segment.start_seq


class TestTablesFromBlocks:
    def test_rack_day_table_identical(self, tiny_run):
        batch = build_rack_day_table(
            tiny_run, faults=list(HARDWARE_FAULTS), include_mu=True,
            extra_fault_columns={"hw": list(HARDWARE_FAULTS)},
        )
        blocks = rack_day_table_from_blocks(
            tiny_run, faults=list(HARDWARE_FAULTS), include_mu=True,
            extra_fault_columns={"hw": list(HARDWARE_FAULTS)},
            block_size=97,
        )
        assert batch.column_names == blocks.column_names
        for name in batch.column_names:
            assert np.array_equal(batch.column(name), blocks.column(name))


class TestCsvErrorContext:
    def test_ragged_row_names_file_and_absolute_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        lines = ["a,b"] + [f"{i},{i}" for i in range(9)] + ["lonely"]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DataError) as error:
            for _header, _rows in iter_csv_rows(path, chunk_rows=4):
                pass
        message = str(error.value)
        # Row 10 sits in the third chunk; the number must be absolute.
        assert "bad.csv" in message
        assert "ragged row 10" in message
