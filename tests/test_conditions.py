"""Per-rack environmental-series tests."""

import numpy as np
import pytest

import repro
from repro.datacenter.builder import build_fleet
from repro.environment.conditions import EnvironmentSeries
from repro.errors import ConfigError
from repro.rng import RngRegistry


@pytest.fixture(scope="module")
def env_setup():
    config = repro.SimulationConfig.small(seed=8, scale=0.1, n_days=365)
    rngs = RngRegistry(config.seed)
    fleet = build_fleet(config.fleet, rngs)
    env = EnvironmentSeries(fleet, config.n_days, rngs)
    return fleet, env


class TestShapes:
    def test_matrix_shapes(self, env_setup):
        fleet, env = env_setup
        assert env.temp_f.shape == (365, fleet.n_racks)
        assert env.rh.shape == (365, fleet.n_racks)

    def test_day_conditions_slices(self, env_setup):
        _, env = env_setup
        temp, rh = env.day_conditions(42)
        assert np.allclose(temp, env.temp_f[42])
        assert np.allclose(rh, env.rh[42])

    def test_out_of_range_day_rejected(self, env_setup):
        _, env = env_setup
        with pytest.raises(ConfigError):
            env.day_conditions(365)

    def test_zero_days_rejected(self, env_setup):
        fleet, _ = env_setup
        with pytest.raises(ConfigError):
            EnvironmentSeries(fleet, 0, RngRegistry(1))


class TestDcContrasts:
    def test_dc1_sees_wider_temperature_range(self, env_setup):
        fleet, env = env_setup
        arrays = fleet.arrays()
        dc1 = env.temp_f[:, arrays.dc_code == 0]
        dc2 = env.temp_f[:, arrays.dc_code == 1]
        assert dc1.std() > 1.5 * dc2.std()

    def test_dc1_reaches_hot_dry_regime(self, env_setup):
        fleet, env = env_setup
        arrays = fleet.arrays()
        dc1_cols = arrays.dc_code == 0
        hot_dry = (env.temp_f[:, dc1_cols] > 78.0) & (env.rh[:, dc1_cols] < 25.0)
        assert hot_dry.any()

    def test_dc2_never_hot_and_dry(self, env_setup):
        fleet, env = env_setup
        arrays = fleet.arrays()
        dc2_cols = arrays.dc_code == 1
        hot_dry = (env.temp_f[:, dc2_cols] > 78.0) & (env.rh[:, dc2_cols] < 25.0)
        assert not hot_dry.any()

    def test_dc2_has_occasional_hot_excursions(self, env_setup):
        """Chiller-degradation days: Fig 18 needs DC2 hot rack-days."""
        fleet, env = env_setup
        arrays = fleet.arrays()
        dc2_cols = arrays.dc_code == 1
        hot_days = (env.temp_f[:, dc2_cols] > 78.0).any(axis=1)
        share = hot_days.mean()
        assert 0.0 < share < 0.10

    def test_hot_regions_are_hotter(self, env_setup):
        fleet, env = env_setup
        arrays = fleet.arrays()
        dc1 = arrays.dc_code == 0
        hot = env.temp_f[:, dc1 & (arrays.region_thermal_offset >= 3.0)].mean()
        cool = env.temp_f[:, dc1 & (arrays.region_thermal_offset <= 0.0)].mean()
        assert hot > cool + 2.0

    def test_rack_microclimates_persist(self, env_setup):
        _, env = env_setup
        per_rack_mean = env.temp_f.mean(axis=0)
        # Persistent per-rack offsets spread the long-run means even
        # within one region; spread must exceed daily noise / sqrt(365).
        assert per_rack_mean.std() > 0.8

    def test_rh_bounds(self, env_setup):
        _, env = env_setup
        assert env.rh.min() >= 2.0
        assert env.rh.max() <= 99.0


class TestDeterminism:
    def test_same_seed_reproduces(self):
        config = repro.SimulationConfig.small(seed=13, scale=0.03, n_days=60)

        def build():
            rngs = RngRegistry(config.seed)
            fleet = build_fleet(config.fleet, rngs)
            return EnvironmentSeries(fleet, config.n_days, rngs)

        a, b = build(), build()
        assert np.allclose(a.temp_f, b.temp_f)
        assert np.allclose(a.rh, b.rh)

    def test_missing_climate_rejected(self):
        config = repro.SimulationConfig.small(seed=13, scale=0.03, n_days=60)
        rngs = RngRegistry(config.seed)
        fleet = build_fleet(config.fleet, rngs)
        from repro.environment.weather import dc1_site_climate

        with pytest.raises(ConfigError):
            EnvironmentSeries(fleet, 60, rngs, climates={"DC1": dc1_site_climate()})
