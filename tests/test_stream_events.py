"""Event model and flatteners: ordering, filtering, skip, follow."""

from __future__ import annotations

import contextlib

import pytest

import repro
from repro.errors import DataError
from repro.stream import (
    ALL_KINDS,
    EventKind,
    StreamInventory,
    flatten_cached,
    flatten_directory,
    flatten_result,
    follow_directory,
)
from repro.stream.events import KIND_RANK, _CloseHeap, _close_of
from repro.telemetry.io import export_inventory_csv, export_tickets_csv


@pytest.fixture(scope="module")
def tiny_events(tiny_run):
    return list(flatten_result(tiny_run))


class TestStreamOrder:
    def test_seq_is_contiguous_from_zero(self, tiny_events):
        assert [e.seq for e in tiny_events] == list(range(len(tiny_events)))

    def test_total_order_time_then_kind_rank(self, tiny_events):
        keys = [(e.time_hours, KIND_RANK[e.kind]) for e in tiny_events]
        assert keys == sorted(keys)

    def test_all_kinds_present(self, tiny_events):
        assert {e.kind for e in tiny_events} == set(ALL_KINDS)

    def test_every_open_has_exactly_one_close(self, tiny_events):
        opens = [e for e in tiny_events if e.kind is EventKind.TICKET_OPEN]
        closes = [e for e in tiny_events if e.kind is EventKind.TICKET_CLOSE]
        assert sorted(e.ticket_ordinal for e in opens) == \
            sorted(e.ticket_ordinal for e in closes)

    def test_close_carries_open_payload_at_end_hour(self, tiny_events):
        opens = {e.ticket_ordinal: e for e in tiny_events
                 if e.kind is EventKind.TICKET_OPEN}
        for close in tiny_events:
            if close.kind is not EventKind.TICKET_CLOSE:
                continue
            source = opens[close.ticket_ordinal]
            assert close.time_hours == source.end_hour_abs
            assert close.rack_index == source.rack_index
            assert close.fault_code == source.fault_code

    def test_sensor_events_one_per_rack_day(self, tiny_run, tiny_events):
        sensors = [e for e in tiny_events if e.kind is EventKind.SENSOR_SAMPLE]
        assert len(sensors) == tiny_run.n_days * tiny_run.fleet.n_racks

    def test_inventory_events_commission_each_rack(self, tiny_run, tiny_events):
        changes = [e for e in tiny_events
                   if e.kind is EventKind.INVENTORY_CHANGE]
        assert len(changes) == tiny_run.fleet.n_racks
        assert all(e.value == 1.0 for e in changes)

    def test_deterministic_across_passes(self, tiny_run, tiny_events):
        assert list(flatten_result(tiny_run)) == tiny_events


class TestKindsAndSkip:
    def test_kind_filter_preserves_global_numbering(self, tiny_run, tiny_events):
        wanted = {EventKind.TICKET_OPEN, EventKind.TICKET_CLOSE}
        filtered = list(flatten_result(tiny_run, kinds=wanted))
        expected = [e for e in tiny_events if e.kind in wanted]
        # Ticket-only streams renumber densely (no inventory/sensor slots).
        assert [e.kind for e in filtered] == [e.kind for e in expected]
        assert [e.time_hours for e in filtered] == \
            [e.time_hours for e in expected]

    def test_skip_yields_identical_suffix(self, tiny_run, tiny_events):
        for skip in (0, 1, 1000, len(tiny_events) - 1, len(tiny_events)):
            assert list(flatten_result(tiny_run, skip=skip)) == \
                tiny_events[skip:]

    def test_empty_kinds_rejected(self, tiny_run):
        with pytest.raises(DataError, match="kinds"):
            list(flatten_result(tiny_run, kinds=[]))


class TestCloseHeap:
    def _open(self, seq, t, repair, ordinal=0):
        from repro.stream.events import Event

        return Event(seq=seq, time_hours=t, kind=EventKind.TICKET_OPEN,
                     repair_hours=repair, ticket_ordinal=ordinal)

    def test_pops_strictly_before_key(self):
        heap = _CloseHeap()
        heap.push(self._open(0, 0.0, 5.0))
        open_rank = KIND_RANK[EventKind.TICKET_OPEN]
        assert list(heap.pop_due(5.0, open_rank)) == []  # close rank > open
        assert len(heap) == 1
        due = list(heap.pop_due(6.0, open_rank))
        assert len(due) == 1 and due[0].time_hours == 5.0

    def test_drain_orders_by_time_then_ordinal(self):
        heap = _CloseHeap()
        heap.push(self._open(0, 0.0, 7.0, ordinal=4))
        heap.push(self._open(1, 1.0, 6.0, ordinal=2))
        heap.push(self._open(2, 2.0, 1.0, ordinal=9))
        drained = [(e.time_hours, e.ticket_ordinal) for e in heap.drain()]
        assert drained == [(3.0, 9), (7.0, 2), (7.0, 4)]

    def test_close_of_flips_kind_and_time(self):
        close = _close_of(self._open(3, 2.0, 4.5))
        assert close.kind is EventKind.TICKET_CLOSE
        assert close.time_hours == 6.5


class TestStreamInventory:
    def test_fingerprint_stable_and_shape_sensitive(self, tiny_run):
        a = StreamInventory.from_result(tiny_run)
        b = StreamInventory.from_result(tiny_run)
        assert a.fingerprint() == b.fingerprint()
        import dataclasses

        shorter = dataclasses.replace(a, n_days=a.n_days - 1)
        assert shorter.fingerprint() != a.fingerprint()

    def test_field_dataset_keeps_censoring(self, tiny_run):
        from repro.fielddata import FieldDataset

        dataset = FieldDataset.from_result(tiny_run)
        decommission = dataset.decommission_day.copy()
        decommission[0] = 7
        inventory = StreamInventory.from_field_dataset(
            dataset.replace(decommission_day=decommission)
        )
        assert inventory.decommission_day[0] == 7
        events = list(repro.stream.flatten_field_dataset(
            dataset.replace(decommission_day=decommission),
            kinds={EventKind.INVENTORY_CHANGE},
        ))
        exits = [e for e in events if e.value == -1.0]
        assert len(exits) == 1 and exits[0].rack_index == 0
        assert exits[0].time_hours == 7 * 24.0


class TestDirectoryFlattening:
    @pytest.fixture(scope="class")
    def export_dir(self, tiny_run, tmp_path_factory):
        out = tmp_path_factory.mktemp("stream-export")
        export_tickets_csv(tiny_run, out / "tickets.csv")
        export_inventory_csv(tiny_run, out / "inventory.csv")
        return out

    def test_matches_in_memory_ticket_counts(self, tiny_run, export_dir):
        from_csv = list(flatten_directory(
            export_dir, tiny_run.config,
            kinds={EventKind.TICKET_OPEN, EventKind.TICKET_CLOSE},
        ))
        in_memory = list(flatten_result(
            tiny_run, kinds={EventKind.TICKET_OPEN, EventKind.TICKET_CLOSE},
        ))
        assert len(from_csv) == len(in_memory)

        # CSV rounds hours to 3 decimals, which can swap near-tied
        # open/close interleavings; per-ticket payload identity is on
        # the integer columns, keyed by log ordinal.
        def opens_by_ordinal(events):
            return {
                e.ticket_ordinal:
                    (e.rack_index, e.day_index, e.fault_code, e.batch_id,
                     e.false_positive, e.server_offset)
                for e in events if e.kind is EventKind.TICKET_OPEN
            }

        assert opens_by_ordinal(from_csv) == opens_by_ordinal(in_memory)

    def test_sensor_bundle_optional(self, export_dir, tiny_run):
        events = list(flatten_directory(export_dir, tiny_run.config))
        assert not any(e.kind is EventKind.SENSOR_SAMPLE for e in events)

    def test_missing_tickets_csv_raises(self, tmp_path, tiny_run, export_dir):
        (tmp_path / "inventory.csv").write_bytes(
            (export_dir / "inventory.csv").read_bytes()
        )
        with pytest.raises(DataError):
            list(flatten_directory(tmp_path, tiny_run.config))


class TestFollowDirectory:
    def _write_prefix(self, src_lines, out, n_rows):
        (out / "tickets.csv").write_text(
            "".join(src_lines[:1 + n_rows]), newline=""
        )

    def test_incremental_growth_matches_one_shot(self, tiny_run, tmp_path):
        export_tickets_csv(tiny_run, tmp_path / "full.csv")
        export_inventory_csv(tiny_run, tmp_path / "inventory.csv")
        lines = (tmp_path / "full.csv").read_text().splitlines(keepends=True)
        n_rows = len(lines) - 1
        schedule = [n_rows // 3, 2 * n_rows // 3, n_rows]
        self._write_prefix(lines, tmp_path, schedule[0])
        grows = iter(schedule[1:])

        def grow(_interval):
            with contextlib.suppress(StopIteration):
                self._write_prefix(lines, tmp_path, next(grows))

        followed = list(follow_directory(
            tmp_path, tiny_run.config,
            poll_interval=0.0, max_idle_polls=2, sleep=grow,
        ))
        one_shot = list(flatten_directory(
            tmp_path, tiny_run.config,
            kinds={EventKind.TICKET_OPEN, EventKind.TICKET_CLOSE},
        ))
        assert [(e.seq, e.kind, e.time_hours, e.ticket_ordinal)
                for e in followed] == \
               [(e.seq, e.kind, e.time_hours, e.ticket_ordinal)
                for e in one_shot]

    def test_out_of_order_append_rejected(self, tiny_run, tmp_path):
        export_tickets_csv(tiny_run, tmp_path / "tickets.csv")
        export_inventory_csv(tiny_run, tmp_path / "inventory.csv")
        lines = (tmp_path / "tickets.csv").read_text().splitlines(keepends=True)
        # Append a copy of an early row: its start hour precedes the tail.
        (tmp_path / "tickets.csv").write_text(
            "".join(lines) + lines[1], newline=""
        )
        with pytest.raises(DataError, match="start-time order"):
            list(follow_directory(
                tmp_path, tiny_run.config,
                poll_interval=0.0, max_idle_polls=1, sleep=lambda _: None,
            ))


class TestFlattenCached:
    def test_second_pass_hits_cache(self, tmp_path):
        config = repro.SimulationConfig.small(seed=5, scale=0.05, n_days=30)
        first = list(flatten_cached(config, tmp_path))
        # A cache entry now exists; a fresh pass must reuse it and
        # produce the identical stream.
        assert any(tmp_path.iterdir())
        second = list(flatten_cached(config, tmp_path))
        assert first == second
