"""RNG registry tests: determinism and stream independence."""

import numpy as np
import pytest

from repro.rng import RngRegistry


class TestStreamIdentity:
    def test_same_name_returns_same_generator(self):
        registry = RngRegistry(seed=1)
        assert registry.stream("weather") is registry.stream("weather")

    def test_different_names_are_different_objects(self):
        registry = RngRegistry(seed=1)
        assert registry.stream("weather") is not registry.stream("failures")

    def test_fresh_restarts_the_sequence(self):
        registry = RngRegistry(seed=1)
        first = registry.stream("x").random(3)
        fresh = registry.fresh("x").random(3)
        assert np.allclose(first, fresh)

    def test_stream_advances_across_calls(self):
        registry = RngRegistry(seed=1)
        first = registry.stream("x").random(3)
        second = registry.stream("x").random(3)
        assert not np.allclose(first, second)


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = RngRegistry(seed=42).stream("s").random(10)
        b = RngRegistry(seed=42).stream("s").random(10)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("s").random(10)
        b = RngRegistry(seed=2).stream("s").random(10)
        assert not np.allclose(a, b)

    def test_streams_are_independent_of_creation_order(self):
        forward = RngRegistry(seed=7)
        x1 = forward.stream("x").random(5)
        forward.stream("y").random(5)

        reverse = RngRegistry(seed=7)
        reverse.stream("y").random(5)
        x2 = reverse.stream("x").random(5)
        assert np.allclose(x1, x2)

    def test_adding_a_stream_does_not_perturb_existing(self):
        base = RngRegistry(seed=9)
        expected = base.fresh("main").random(8)

        with_extra = RngRegistry(seed=9)
        with_extra.stream("newcomer").random(100)
        assert np.allclose(with_extra.stream("main").random(8), expected)


class TestSpawn:
    def test_spawn_is_deterministic(self):
        a = RngRegistry(seed=5).spawn("child").stream("s").random(4)
        b = RngRegistry(seed=5).spawn("child").stream("s").random(4)
        assert np.allclose(a, b)

    def test_spawn_differs_from_parent(self):
        parent = RngRegistry(seed=5)
        child = parent.spawn("child")
        assert not np.allclose(
            parent.fresh("s").random(4), child.fresh("s").random(4)
        )


class TestValidation:
    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry(seed="nope")  # type: ignore[arg-type]

    def test_numpy_integer_seed_accepted(self):
        registry = RngRegistry(seed=np.int64(3))
        assert registry.seed == 3
