"""Latency histograms and the /metrics snapshot shape."""

from __future__ import annotations

import json

import pytest

from repro.serve.metrics import (
    EndpointMetrics,
    LatencyHistogram,
    ServiceMetrics,
)


class TestLatencyHistogram:
    def test_empty_percentiles_are_none(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.5) is None
        snap = histogram.snapshot()
        assert snap == {"count": 0, "mean_ms": None,
                        "p50_ms": None, "p99_ms": None}

    def test_percentile_brackets_the_value(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.record(0.010)
        p50 = histogram.percentile(0.50)
        # Bucket resolution is ~33%: the readout must bracket 10ms.
        assert 0.010 <= p50 <= 0.0134

    def test_p99_separates_the_tail(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.record(0.001)
        histogram.record(1.0)
        assert histogram.percentile(0.50) < 0.002
        assert histogram.percentile(0.995) >= 1.0

    def test_overflow_bucket_absorbs_huge_values(self):
        histogram = LatencyHistogram()
        histogram.record(1e6)
        assert histogram.percentile(0.99) == histogram.bounds[-1]

    def test_negative_durations_clamp(self):
        histogram = LatencyHistogram()
        histogram.record(-0.5)
        assert histogram.total == 1
        assert histogram.percentile(0.5) == histogram.bounds[0]

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)

    def test_counts_conserved(self):
        histogram = LatencyHistogram()
        for value in (1e-5, 1e-3, 0.1, 3.0, 1e4):
            histogram.record(value)
        assert sum(histogram.counts) == histogram.total == 5

    def test_mean_is_exact(self):
        histogram = LatencyHistogram()
        histogram.record(0.1)
        histogram.record(0.3)
        assert histogram.snapshot()["mean_ms"] == pytest.approx(200.0)


class TestEndpointMetrics:
    def test_cache_ratio(self):
        bucket = EndpointMetrics()
        bucket.observe(0.001, cache="hit")
        bucket.observe(0.5, cache="miss")
        bucket.observe(0.002, error=True)
        snap = bucket.snapshot()
        assert snap["requests"] == 3 and snap["errors"] == 1
        assert snap["cache"]["hit_ratio"] == pytest.approx(0.5)

    def test_no_lookups_means_no_ratio(self):
        bucket = EndpointMetrics()
        bucket.observe(0.001)
        assert bucket.snapshot()["cache"]["hit_ratio"] is None


class TestServiceMetrics:
    def test_snapshot_shape(self):
        ticks = iter(range(100))
        metrics = ServiceMetrics(clock=lambda: float(next(ticks)))
        metrics.endpoint("q1").observe(0.01, cache="miss")
        metrics.in_flight = 2
        snap = metrics.snapshot(extra={"draining": False})
        assert snap["schema"] == 1
        assert snap["uptime_s"] > 0
        assert snap["in_flight"] == 2
        assert snap["draining"] is False
        assert "q1" in snap["endpoints"]
        json.dumps(snap)

    def test_endpoints_auto_create_once(self):
        metrics = ServiceMetrics(clock=lambda: 0.0)
        assert metrics.endpoint("q1") is metrics.endpoint("q1")
