"""End-to-end integration tests across the full pipeline."""

import numpy as np

import repro
from repro.decisions import AvailabilitySla, SpareProvisioner
from repro.reporting import AnalysisContext


class TestPublicApi:
    def test_top_level_exports(self):
        for name in ("simulate", "SimulationConfig", "MultiFactorModel",
                     "SingleFactorModel", "SpareProvisioner", "TcoModel",
                     "build_rack_day_table", "AnalysisContext", "EXPERIMENTS"):
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_error_hierarchy(self):
        for error in (repro.ConfigError, repro.DataError, repro.FitError,
                      repro.FormulaError, repro.SchemaError,
                      repro.SimulationError):
            assert issubclass(error, repro.ReproError)
        assert issubclass(repro.ReproError, Exception)


class TestEndToEnd:
    def test_quickstart_flow(self):
        """The README quickstart, condensed."""
        result = repro.simulate(repro.SimulationConfig.small(
            seed=30, scale=0.05, n_days=150,
        ))
        table = repro.build_rack_day_table(result)
        model = repro.MultiFactorModel.from_formula(
            "failures ~ workload, dc, age_months",
            table,
            params=repro.TreeParams(max_depth=4, min_split=200,
                                    min_bucket=80, cp=1e-3),
        )
        assert model.tree.n_leaves >= 2
        assert model.render()

    def test_analysis_is_deterministic_given_run(self, tiny_run):
        provisioner_a = SpareProvisioner(tiny_run, min_service_days=20)
        provisioner_b = SpareProvisioner(tiny_run, min_service_days=20)
        sla = AvailabilitySla(1.0)
        plan_a = provisioner_a.multi_factor("W6", sla)
        plan_b = provisioner_b.multi_factor("W6", sla)
        assert np.allclose(plan_a.per_rack_fraction, plan_b.per_rack_fraction)
        assert plan_a.overprovision == plan_b.overprovision

    def test_context_caches_tables(self, tiny_run):
        context = AnalysisContext(tiny_run)
        assert context.all_failures is context.all_failures
        assert context.hardware_failures is context.hardware_failures
        assert context.provisioner(24.0) is context.provisioner(24.0)

    def test_different_seeds_change_conclusions_slightly_not_wildly(self):
        """Sanity: conclusions are stable properties, not seed artifacts."""
        rates = []
        for seed in (41, 42):
            result = repro.simulate(repro.SimulationConfig.small(
                seed=seed, scale=0.08, n_days=180,
            ))
            table = repro.build_rack_day_table(result)
            failures = table.column("failures").astype(float)
            rates.append(failures.mean())
        assert rates[0] != rates[1]
        assert abs(rates[0] - rates[1]) / max(rates) < 0.2
