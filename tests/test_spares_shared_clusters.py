"""Shared-cluster provisioning (Fig 12's daily→hourly reuse) tests."""

import numpy as np
import pytest

from repro.decisions.availability import AvailabilitySla
from repro.decisions.spares import SpareProvisioner
from repro.errors import DataError


@pytest.fixture(scope="module")
def provisioners(small_run):
    return (SpareProvisioner(small_run, window_hours=24.0),
            SpareProvisioner(small_run, window_hours=1.0))


class TestSharedClusters:
    def test_hourly_reuses_daily_grouping(self, provisioners):
        daily, hourly = provisioners
        sla = AvailabilitySla(1.0)
        daily_plan = daily.multi_factor("W6", sla)
        hourly_plan = hourly.multi_factor("W6", sla, clusters_from=daily_plan)
        assert hourly_plan.clusters is not None and daily_plan.clusters is not None
        daily_groups = {frozenset(c.rack_indices.tolist())
                        for c in daily_plan.clusters}
        hourly_groups = {frozenset(c.rack_indices.tolist())
                         for c in hourly_plan.clusters}
        assert hourly_groups == daily_groups

    def test_shared_clusters_expose_multiplexing(self, provisioners):
        daily, hourly = provisioners
        sla = AvailabilitySla(1.0)
        daily_plan = daily.multi_factor("W6", sla)
        hourly_plan = hourly.multi_factor("W6", sla, clusters_from=daily_plan)
        assert hourly_plan.overprovision <= daily_plan.overprovision + 1e-9

    def test_plan_without_clusters_rejected(self, provisioners):
        daily, hourly = provisioners
        sla = AvailabilitySla(1.0)
        sf_plan = daily.single_factor("W6", sla)
        with pytest.raises(DataError):
            hourly.multi_factor("W6", sla, clusters_from=sf_plan)

    def test_per_rack_fractions_cover_all_racks(self, provisioners):
        daily, hourly = provisioners
        sla = AvailabilitySla(0.95)
        daily_plan = daily.multi_factor("W1", sla)
        hourly_plan = hourly.multi_factor("W1", sla, clusters_from=daily_plan)
        assert len(hourly_plan.per_rack_fraction) == len(hourly_plan.rack_indices)
        assert np.all(hourly_plan.per_rack_fraction >= 0)

    def test_cluster_descriptions_carried_over(self, provisioners):
        daily, hourly = provisioners
        sla = AvailabilitySla(1.0)
        daily_plan = daily.multi_factor("W6", sla)
        hourly_plan = hourly.multi_factor("W6", sla, clusters_from=daily_plan)
        assert hourly_plan.clusters is not None and daily_plan.clusters is not None
        assert ({c.description for c in hourly_plan.clusters}
                == {c.description for c in daily_plan.clusters})
