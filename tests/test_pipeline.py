"""Pipeline core: stage keying, the artifact store, DAG execution.

These are fast structural tests over synthetic stages; the
simulation-backed catalogue and its invalidation semantics live in
``test_pipeline_invalidation.py``.
"""

import json

import pytest

import repro
from repro.errors import ConfigError
from repro.pipeline import (
    CODECS,
    PIPELINE_SCHEMA,
    ArtifactStore,
    Pipeline,
    Stage,
    StageExecution,
    clear_source_fingerprints,
    execution_from_json,
    simulate_stage,
    source_fingerprint,
)


def constant(value):
    """A run callable returning a fixed value."""
    return lambda inputs, ctx: value


def adder(dep_a, dep_b):
    return lambda inputs, ctx: inputs[dep_a] + inputs[dep_b]


@pytest.fixture()
def diamond():
    """a → (b, c) → d, all memory-only."""
    return [
        Stage("a", constant(1)),
        Stage("b", lambda i, c: i["a"] + 10, deps=("a",)),
        Stage("c", lambda i, c: i["a"] + 100, deps=("a",)),
        Stage("d", adder("b", "c"), deps=("b", "c")),
    ]


class TestStage:
    def test_unknown_codec_rejected(self):
        with pytest.raises(ConfigError, match="codec"):
            Stage("x", constant(1), codec="pickle")

    def test_known_codecs_accepted(self):
        for codec in CODECS:
            Stage("x", constant(1), codec=codec)
        Stage("x", constant(1), codec=None)


class TestValidation:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            Pipeline([Stage("a", constant(1)), Stage("a", constant(2))])

    def test_unknown_dep_rejected(self):
        with pytest.raises(ConfigError, match="unknown stage"):
            Pipeline([Stage("a", constant(1), deps=("ghost",))])

    def test_cycle_rejected(self):
        stages = [
            Stage("a", constant(1), deps=("b",)),
            Stage("b", constant(2), deps=("a",)),
        ]
        with pytest.raises(ConfigError, match="cycle"):
            Pipeline(stages)

    def test_unknown_stage_lookup(self, diamond):
        pipeline = Pipeline(diamond)
        with pytest.raises(ConfigError, match="unknown stage"):
            pipeline.stage("ghost")

    def test_order_is_topological(self, diamond):
        order = Pipeline(diamond).order
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")
        assert order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_sinks(self, diamond):
        assert Pipeline(diamond).sinks() == ["d"]


class TestKeying:
    def test_key_is_stable_across_pipelines(self, diamond):
        assert Pipeline(diamond).key("d") == Pipeline(diamond).key("d")

    def test_key_changes_with_fingerprint_inputs(self):
        def build(value):
            return Pipeline([
                Stage("a", constant(1), fingerprint_inputs={"v": value}),
            ])

        assert build(1).key("a") != build(2).key("a")

    def test_parent_change_propagates_downstream(self):
        def build(value):
            return Pipeline([
                Stage("a", constant(1), fingerprint_inputs={"v": value}),
                Stage("b", lambda i, c: i["a"], deps=("a",)),
            ])

        one, two = build(1), build(2)
        assert one.key("b") != two.key("b")

    def test_sibling_key_unaffected_by_other_branch(self):
        def build(value):
            return Pipeline([
                Stage("a", constant(1)),
                Stage("b", lambda i, c: i["a"], deps=("a",),
                      fingerprint_inputs={"v": value}),
                Stage("c", lambda i, c: i["a"], deps=("a",)),
            ])

        one, two = build(1), build(2)
        assert one.key("b") != two.key("b")
        assert one.key("c") == two.key("c")

    def test_code_fingerprint_participates(self, monkeypatch):
        stages = [Stage("a", constant(1), code=("repro.decisions.spares",))]
        before = Pipeline(stages).key("a")
        monkeypatch.setattr(
            "repro.pipeline.core.source_fingerprint", lambda m: "edited"
        )
        assert Pipeline(stages).key("a") != before

    def test_key_never_materializes_artifacts(self, diamond):
        """Keys are recursive hashes, not artifact hashes."""
        def explode(inputs, ctx):
            raise AssertionError("key() ran a stage")

        stages = [Stage(s.name, explode, deps=s.deps) for s in diamond]
        pipeline = Pipeline(stages)
        assert len(pipeline.key("d")) == 32
        assert pipeline.executions == []


class TestSourceFingerprint:
    def test_cached_per_process(self, monkeypatch):
        clear_source_fingerprints()
        first = source_fingerprint("repro.failures.engine")
        # A cached module is not re-read from disk.
        monkeypatch.setattr(
            "pathlib.Path.read_bytes",
            lambda self: (_ for _ in ()).throw(AssertionError("re-read")),
        )
        assert source_fingerprint("repro.failures.engine") == first

    def test_clear_forces_reread(self):
        first = source_fingerprint("repro.failures.engine")
        clear_source_fingerprints()
        assert source_fingerprint("repro.failures.engine") == first

    def test_unknown_module_rejected(self):
        with pytest.raises(ConfigError, match="fingerprint"):
            source_fingerprint("repro.no_such_module_anywhere")

    def test_distinct_modules_distinct_hashes(self):
        assert (source_fingerprint("repro.failures.engine")
                != source_fingerprint("repro.decisions.spares"))


class TestExecutionOutcomes:
    def test_computed_then_memoized(self, diamond):
        pipeline = Pipeline(diamond)
        assert pipeline.get("d") == 112
        assert [e.outcome for e in pipeline.executions] == ["computed"] * 4
        # A second get is silent: no new execution records.
        assert pipeline.get("d") == 112
        assert len(pipeline.executions) == 4

    def test_memory_hit_in_shared_store(self, diamond):
        store = ArtifactStore()
        Pipeline(diamond, store=store).get("d")
        warm = Pipeline(diamond, store=store)
        assert warm.get("d") == 112
        assert [e.outcome for e in warm.executions] == ["memory"]

    def test_disk_hit_in_fresh_process_equivalent(self, tmp_path):
        stages = lambda: [Stage("j", constant({"x": 1}), codec="json")]  # noqa: E731
        Pipeline(stages(), store=ArtifactStore(tmp_path)).get("j")
        warm = Pipeline(stages(), store=ArtifactStore(tmp_path))
        assert warm.get("j") == {"x": 1}
        assert warm.executions[0].outcome == "disk"

    def test_run_resolves_all_sinks(self, diamond):
        artifacts = Pipeline(diamond).run()
        assert artifacts == {"d": 112}

    def test_observer_sees_every_execution(self, diamond):
        seen = []
        Pipeline(diamond, observer=seen.append).get("d")
        assert [e.stage for e in seen] == ["b", "c", "a", "d"] or len(seen) == 4
        assert all(isinstance(e, StageExecution) for e in seen)

    def test_injected_clock_times_stage_not_upstream(self):
        """The second clock read excludes dependency resolution."""
        ticks = iter(range(100))
        stages = [
            Stage("a", constant(1)),
            Stage("b", lambda i, c: i["a"], deps=("a",)),
        ]
        pipeline = Pipeline(stages, clock=lambda: float(next(ticks)))
        pipeline.get("b")
        by_stage = {e.stage: e for e in pipeline.executions}
        # Each record spans exactly one tick: fetch-miss → restart → done.
        assert by_stage["a"].wall_s == 1.0
        assert by_stage["b"].wall_s == 1.0

    def test_prime_skips_compute(self, diamond):
        pipeline = Pipeline(diamond)
        pipeline.prime("a", 1000)
        assert pipeline.get("b") == 1010
        outcomes = {e.stage: e.outcome for e in pipeline.executions}
        assert outcomes == {"a": "memory", "b": "computed"}

    def test_execution_round_trips_json(self, diamond):
        pipeline = Pipeline(diamond)
        pipeline.get("d")
        for execution in pipeline.executions:
            assert execution_from_json(execution.to_json()) == execution


class TestArtifactStore:
    def test_memory_only_store_has_no_stage_dir(self):
        with pytest.raises(ConfigError):
            ArtifactStore().stage_dir("a")

    def test_codecless_stage_stays_memory_only(self, tmp_path):
        store = ArtifactStore(tmp_path)
        stage = Stage("mem", constant(1))
        store.put(stage, "k" * 32, 1)
        assert not store.stage_dir("mem").exists()
        assert store.fetch(stage, "k" * 32) == ("memory", 1)

    def test_json_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        stage = Stage("j", constant(None), codec="json")
        artifact = {"metrics": {"a": 1.5}, "severity": 0.5}
        store.put(stage, "k" * 32, artifact)
        fresh = ArtifactStore(tmp_path)
        assert fresh.fetch(stage, "k" * 32) == ("disk", artifact)

    def test_text_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        stage = Stage("t", constant(None), codec="text")
        store.put(stage, "k" * 32, "rendered\ntext\n")
        fresh = ArtifactStore(tmp_path)
        assert fresh.fetch(stage, "k" * 32) == ("disk", "rendered\ntext\n")

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        stage = Stage("t", constant(None), codec="text")
        ArtifactStore(tmp_path).put(stage, "k" * 32, "x")
        fresh = ArtifactStore(tmp_path)
        assert fresh.fetch(stage, "k" * 32)[0] == "disk"
        assert fresh.fetch(stage, "k" * 32)[0] == "memory"

    def test_run_codec_round_trips_simulation(self, tmp_path):
        config = repro.SimulationConfig.small(seed=5, scale=0.02, n_days=30)
        stage = simulate_stage(config)
        result = repro.simulate(config)
        store = ArtifactStore(tmp_path)
        store.put(stage, "k" * 32, result)
        tier, loaded = ArtifactStore(tmp_path).fetch(stage, "k" * 32)
        assert tier == "disk"
        assert len(loaded.tickets) == len(result.tickets)

    def test_run_codec_needs_runtime_config(self, tmp_path):
        config = repro.SimulationConfig.small(seed=5, scale=0.02, n_days=30)
        store = ArtifactStore(tmp_path)
        store.put(simulate_stage(config), "k" * 32, repro.simulate(config))
        bare = Stage("simulate", constant(None), codec="run")
        # Decoding without runtime config is a caller bug, not corruption.
        with pytest.raises(ConfigError, match="runtime"):
            ArtifactStore(tmp_path).fetch(bare, "k" * 32)

    def test_corrupt_payload_self_heals(self, tmp_path):
        stage = Stage("j", constant(None), codec="json")
        store = ArtifactStore(tmp_path)
        store.put(stage, "k" * 32, {"x": 1})
        entry = store.entry_dir("j", "k" * 32)
        (entry / "artifact.json").write_text("{not json")
        fresh = ArtifactStore(tmp_path)
        assert fresh.fetch(stage, "k" * 32) is None
        assert not entry.exists()

    def test_missing_meta_self_heals(self, tmp_path):
        stage = Stage("j", constant(None), codec="json")
        store = ArtifactStore(tmp_path)
        store.put(stage, "k" * 32, {"x": 1})
        entry = store.entry_dir("j", "k" * 32)
        (entry / "meta.json").unlink()
        fresh = ArtifactStore(tmp_path)
        assert fresh.fetch(stage, "k" * 32) is None
        assert not entry.exists()

    def test_truncated_meta_self_heals(self, tmp_path):
        stage = Stage("j", constant(None), codec="json")
        store = ArtifactStore(tmp_path)
        store.put(stage, "k" * 32, {"x": 1})
        entry = store.entry_dir("j", "k" * 32)
        (entry / "meta.json").write_text('{"stage": "j", "ke')
        assert ArtifactStore(tmp_path).fetch(stage, "k" * 32) is None
        assert not entry.exists()

    def test_key_mismatch_in_meta_is_a_miss(self, tmp_path):
        stage = Stage("j", constant(None), codec="json")
        store = ArtifactStore(tmp_path)
        store.put(stage, "k" * 32, {"x": 1})
        entry = store.entry_dir("j", "k" * 32)
        meta = json.loads((entry / "meta.json").read_text())
        meta["key"] = "z" * 32
        (entry / "meta.json").write_text(json.dumps(meta))
        assert ArtifactStore(tmp_path).fetch(stage, "k" * 32) is None

    def test_stage_dirname_sanitized(self, tmp_path):
        store = ArtifactStore(tmp_path)
        stage = Stage("provisioner:24h", constant(None), codec="json")
        store.put(stage, "k" * 32, {})
        assert store.stage_dir("provisioner:24h").name == "provisioner-24h"
        assert store.stage_dir("provisioner:24h").exists()

    def test_meta_records_schema(self, tmp_path):
        stage = Stage("j", constant(None), codec="json")
        store = ArtifactStore(tmp_path)
        store.put(stage, "k" * 32, {})
        meta = json.loads(
            (store.entry_dir("j", "k" * 32) / "meta.json").read_text()
        )
        assert meta["schema"] == PIPELINE_SCHEMA
        assert meta["stage"] == "j"


class TestStorePruning:
    def _fill(self, store, n, max_entries=0):
        """Write n entries with an advancing clock; no auto-prune."""
        stage = Stage("j", constant(None), codec="json")
        for index in range(n):
            store.put(stage, f"{index:032d}", {"i": index})
        return stage

    def test_put_auto_prunes_per_stage(self, tmp_path):
        ticks = iter(range(1000))
        store = ArtifactStore(tmp_path, clock=lambda: float(next(ticks)),
                              max_entries=2)
        self._fill(store, 4)
        entries = store.stage_entries("j")
        assert len(entries) == 2
        assert sorted(p.name for p in entries) == [f"{2:032d}", f"{3:032d}"]

    def test_prune_keeps_newest(self, tmp_path):
        ticks = iter(range(1000))
        store = ArtifactStore(tmp_path, clock=lambda: float(next(ticks)),
                              max_entries=0)
        self._fill(store, 3)
        assert store.prune(max_entries=1) == 2
        assert [p.name for p in store.stage_entries("j")] == [f"{2:032d}"]

    def test_prune_sweeps_half_written_entries(self, tmp_path):
        store = ArtifactStore(tmp_path, max_entries=0)
        self._fill(store, 1)
        wreck = store.stage_dir("j") / ("f" * 32)
        wreck.mkdir()
        (wreck / "artifact.json").write_text("{}")  # no meta.json
        assert store.prune(max_entries=8) == 1
        assert not wreck.exists()
        assert len(store.stage_entries("j")) == 1

    def test_negative_bound_rejected(self, tmp_path):
        from repro.errors import DataError

        with pytest.raises(DataError):
            ArtifactStore(tmp_path).prune_stage("j", max_entries=-1)

    def test_clear_removes_everything(self, tmp_path):
        store = ArtifactStore(tmp_path, max_entries=0)
        self._fill(store, 2)
        store.clear()
        assert not (tmp_path.exists() and any(tmp_path.iterdir()))
        stage = Stage("j", constant(None), codec="json")
        assert store.fetch(stage, f"{0:032d}") is None


class TestManifest:
    def test_manifest_lists_catalogue_and_executions(self, diamond, tmp_path):
        pipeline = Pipeline(diamond, store=ArtifactStore(tmp_path))
        pipeline.get("d")
        manifest = pipeline.manifest()
        assert manifest["schema"] == PIPELINE_SCHEMA
        assert set(manifest["stages"]) == {"a", "b", "c", "d"}
        assert manifest["stages"]["d"]["deps"] == ["b", "c"]
        assert len(manifest["executions"]) == 4
        for record in manifest["executions"]:
            assert record["outcome"] in ("memory", "disk", "computed")

    def test_write_manifest_defaults_to_store_root(self, diamond, tmp_path):
        pipeline = Pipeline(diamond, store=ArtifactStore(tmp_path))
        pipeline.get("d")
        path = pipeline.write_manifest()
        assert path == tmp_path / "manifest.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == PIPELINE_SCHEMA

    def test_write_manifest_without_root_needs_path(self, diamond, tmp_path):
        pipeline = Pipeline(diamond)
        with pytest.raises(ConfigError):
            pipeline.write_manifest()
        path = pipeline.write_manifest(tmp_path / "m.json")
        assert path.exists()

    def test_extra_executions_merge_sorted(self, diamond):
        pipeline = Pipeline(diamond)
        pipeline.get("a")
        foreign = StageExecution(order=1, stage="zz-worker", key="k" * 32,
                                 parents=(), outcome="computed", wall_s=0.1)
        manifest = pipeline.manifest(extra_executions=[foreign])
        assert [e["stage"] for e in manifest["executions"]] == ["a", "zz-worker"]
