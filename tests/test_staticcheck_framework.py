"""repro.staticcheck framework: module model, suppressions, baselines,
reporters and the runner entry points."""

import json
import pathlib

import pytest

from repro.errors import DataError
from repro.staticcheck import (
    Baseline,
    ImportGraph,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from repro.staticcheck.baselines import fingerprint, fingerprint_findings, partition
from repro.staticcheck.framework import Finding, ModuleInfo, check_modules
from repro.staticcheck.graph import collect_modules, module_name_for
from repro.staticcheck.runner import default_target, lint_modules

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def make_module(source, name="repro.analysis.fixture"):
    known = frozenset({name, "repro.failures.hazards", "repro.failures",
                       "repro.rng"})
    return ModuleInfo(
        source=source, name=name,
        path=pathlib.Path(name.replace(".", "/") + ".py"),
        known_modules=known,
    )


class TestModuleInfo:
    def test_package_extraction(self):
        assert make_module("x = 1").package == "analysis"
        assert make_module("x = 1", name="repro.cache").package == ""

    def test_bindings_resolve_aliases(self):
        module = make_module("import numpy as np\nfrom datetime import datetime\n")
        assert module.bindings["np"] == "numpy"
        assert module.bindings["datetime"] == "datetime.datetime"

    def test_resolve_expands_dotted_calls(self):
        import ast

        module = make_module("import numpy as np\nx = np.random.rand(3)\n")
        call = module.tree.body[1].value
        assert module.resolve(call.func) == "numpy.random.rand"

    def test_relative_import_resolution(self):
        module = make_module("from ..failures import hazards\n")
        targets = [target for target, _ in module.import_edges]
        assert "repro.failures.hazards" in targets

    def test_syntax_error_is_data_error(self):
        with pytest.raises(DataError, match="cannot parse"):
            make_module("def f(:\n")

    def test_line_suppression_covers_only_its_line(self):
        module = make_module(
            "a = 1 == 1.0  # repro: noqa[float-eq]\nb = 2 == 2.0\n"
        )
        on_line = Finding(rule="float-eq", path=module.relpath, line=1, col=0,
                          message="m")
        off_line = Finding(rule="float-eq", path=module.relpath, line=2, col=0,
                           message="m")
        assert module.is_suppressed(on_line)
        assert not module.is_suppressed(off_line)

    def test_file_suppression_covers_every_line(self):
        module = make_module("# repro: noqa-file[float-eq]\nb = 2 == 2.0\n")
        anywhere = Finding(rule="float-eq", path=module.relpath, line=2, col=0,
                           message="m")
        other_rule = Finding(rule="wallclock", path=module.relpath, line=2,
                             col=0, message="m")
        assert module.is_suppressed(anywhere)
        assert not module.is_suppressed(other_rule)

    def test_multi_rule_suppression(self):
        module = make_module("x = 1  # repro: noqa[float-eq, wallclock]\n")
        for rule in ("float-eq", "wallclock"):
            assert module.is_suppressed(
                Finding(rule=rule, path=module.relpath, line=1, col=0,
                        message="m")
            )


class TestRegistry:
    def test_shipped_rules_registered(self):
        assert {rule.id for rule in all_rules()} == {
            "GT-leak", "RNG-discipline", "wallclock", "float-eq",
            "schema-fields", "layering",
        }

    def test_get_rule_unknown_id(self):
        with pytest.raises(DataError, match="unknown rule"):
            get_rule("no-such-rule")


class TestGraph:
    def test_module_name_for(self):
        assert module_name_for(SRC / "cache.py", SRC) == "repro.cache"
        assert module_name_for(SRC / "__init__.py", SRC) == "repro"
        assert (module_name_for(SRC / "telemetry" / "stats.py", SRC)
                == "repro.telemetry.stats")

    def test_collect_modules_covers_package(self):
        modules = collect_modules(SRC)
        names = {module.name for module in modules}
        assert "repro.cache" in names
        assert "repro.staticcheck.framework" in names

    def test_import_graph_edges(self):
        graph = ImportGraph(collect_modules(SRC))
        assert any(target.startswith("repro.failures")
                   for target in graph.imports_of("repro.cache"))


class TestBaseline:
    def finding(self, line=5, source="if q == 0.0:"):
        return Finding(rule="float-eq", path="repro/telemetry/stats.py",
                       line=line, col=11, message="m", source_line=source)

    def test_fingerprint_survives_line_drift(self):
        assert fingerprint(self.finding(line=5)) == fingerprint(self.finding(line=50))

    def test_fingerprint_changes_with_source(self):
        assert (fingerprint(self.finding())
                != fingerprint(self.finding(source="if q == 1.0:")))

    def test_identical_lines_get_distinct_fingerprints(self):
        twins = [self.finding(line=5), self.finding(line=9)]
        assert len(fingerprint_findings(twins)) == 2

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.finding()], rationale="legacy helper")
        loaded = load_baseline(path)
        assert len(loaded) == 1
        new, grandfathered = partition([self.finding(line=99)], loaded)
        assert not new and len(grandfathered) == 1

    def test_write_preserves_rationales(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.finding()], rationale="because reasons")
        write_baseline(path, [self.finding()], previous=load_baseline(path))
        assert json.loads(path.read_text())["entries"][0]["rationale"] == (
            "because reasons"
        )

    def test_new_entry_without_rationale_is_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        with pytest.raises(DataError, match="rationale"):
            write_baseline(path, [self.finding()])
        assert not path.exists()

    def test_rationale_applies_only_to_new_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.finding()], rationale="the old reason")
        previous = load_baseline(path)
        fresh = self.finding(source="if q == 2.0:")
        write_baseline(path, [self.finding(), fresh], previous=previous,
                       rationale="the new reason")
        rationales = {e["source_line"]: e["rationale"]
                      for e in json.loads(path.read_text())["entries"]}
        assert rationales["if q == 0.0:"] == "the old reason"
        assert rationales["if q == 2.0:"] == "the new reason"

    def test_missing_explicit_baseline_is_error(self, tmp_path):
        with pytest.raises(DataError, match="no such baseline"):
            load_baseline(tmp_path / "nope.json")

    def test_schema_mismatch_is_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 999, "entries": []}))
        with pytest.raises(DataError, match="schema"):
            load_baseline(path)

    def test_edited_line_invalidates_entry(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.finding()], rationale="legacy helper")
        edited = self.finding(source="if q == 0.0 or q == 1.0:")
        new, grandfathered = partition([edited], load_baseline(path))
        assert len(new) == 1 and not grandfathered


class TestRunner:
    def test_default_target_is_repro_package(self):
        assert default_target().name == "repro"
        assert (default_target() / "__init__.py").exists()

    def test_lint_source_places_snippet_in_module(self):
        findings = lint_source("def f(x):\n    return x == 0.5\n",
                               module="repro.analysis.fixture")
        assert [f.rule for f in findings] == ["float-eq"]
        assert not lint_source("def f(x):\n    return x == 0.5\n",
                               module="repro.failures.fixture")

    def test_lint_paths_single_file(self):
        report = lint_paths([SRC / "telemetry" / "stats.py"])
        assert report.n_modules == 1
        assert any(f.rule == "float-eq" for f in report.findings)

    def test_lint_paths_subpackage_restricts_modules(self):
        report = lint_paths([SRC / "stream"])
        full = lint_paths([SRC])
        assert 0 < report.n_modules < full.n_modules
        assert report.n_modules == len(list((SRC / "stream").rglob("*.py")))

    def test_lint_paths_subpackage_still_resolves_package_imports(self):
        # Relative imports inside the subtree must resolve against the
        # whole package, not just the subtree's own modules.
        report = lint_paths([SRC / "stream"], rules=[get_rule("GT-leak")])
        assert report.ok, render_text(report)

    def test_lint_paths_missing_target(self, tmp_path):
        with pytest.raises(DataError, match="no such lint target"):
            lint_paths([tmp_path / "ghost"])

    def test_repo_lints_clean_with_committed_baseline(self):
        report = lint_paths(baseline=load_baseline())
        assert report.ok, render_text(report)
        assert len(report.baselined) == 1

    def test_rule_filter(self):
        report = lint_paths(rules=[get_rule("wallclock")])
        assert list(report.rule_catalog) == ["wallclock"]
        assert report.ok


class TestReporters:
    def report(self):
        module = make_module("def f(x):\n    return x == 0.5\n")
        return lint_modules([module], rules=[get_rule("float-eq")])

    def test_text_report_names_finding_and_counts(self):
        text = render_text(self.report())
        assert "float-eq" in text
        assert "1 finding(s) in 1 module(s)" in text

    def test_json_report_contract(self):
        payload = json.loads(render_json(self.report()))
        assert payload["schema"] == 1
        assert payload["counts"]["new"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "float-eq"
        assert finding["fingerprint"]
        assert finding["baselined"] is False
        assert "float-eq" in payload["rules"]

    def test_clean_report_renders_zero_summary(self):
        clean = lint_modules([make_module("x = 1\n")],
                             rules=[get_rule("float-eq")])
        assert "0 finding(s)" in render_text(clean)
        assert json.loads(render_json(clean))["findings"] == []
