"""Formula-parsing tests."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.formula import Formula, Term, parse_formula
from repro.errors import FormulaError

identifier = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True)


class TestParsing:
    def test_cat1_formula(self):
        formula = parse_formula("mu ~ sku, age_months, rated_power_kw")
        assert formula.metric == "mu"
        assert formula.feature_names == ["sku", "age_months", "rated_power_kw"]
        assert not formula.is_partial_dependence
        assert formula.studied == formula.feature_names

    def test_cat2_formula(self):
        formula = parse_formula("lambda ~ sku, N(dc), N(workload)")
        assert formula.is_partial_dependence
        assert formula.studied == ["sku"]
        assert formula.normalized == ["dc", "workload"]

    def test_plus_separator_accepted(self):
        formula = parse_formula("y ~ a + N(b) + c")
        assert formula.feature_names == ["a", "b", "c"]

    def test_whitespace_tolerated(self):
        formula = parse_formula("  y  ~  a ,  N( b )  ")
        assert formula.metric == "y"
        assert formula.normalized == ["b"]

    def test_str_roundtrip(self):
        text = "y ~ a, N(b)"
        assert str(parse_formula(text)) == text


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "y ~", "~ x", "y x", "y ~ x ~ z", "y ~ x,,z", "y ~ N()",
        "y ~ N(x", "y ~ 1x", "y ~ x!", "",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(FormulaError):
            parse_formula(bad)

    def test_duplicate_feature_rejected(self):
        with pytest.raises(FormulaError):
            parse_formula("y ~ x, N(x)")

    def test_metric_as_feature_rejected(self):
        with pytest.raises(FormulaError):
            parse_formula("y ~ y, x")

    def test_non_string_rejected(self):
        with pytest.raises(FormulaError):
            parse_formula(42)  # type: ignore[arg-type]

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(FormulaError):
            parse_formula("2fast ~ x")


class TestPropertyBased:
    @given(identifier, st.lists(identifier, min_size=1, max_size=6, unique=True))
    def test_roundtrip_arbitrary_names(self, metric, features):
        if metric in features:
            features = [f for f in features if f != metric]
            if not features:
                return
        text = f"{metric} ~ " + ", ".join(
            f"N({name})" if i % 2 else name for i, name in enumerate(features)
        )
        formula = parse_formula(text)
        assert formula.metric == metric
        assert formula.feature_names == features

    @given(identifier)
    def test_term_str(self, name):
        assert str(Term(name, normalized=True)) == f"N({name})"
        assert str(Term(name, normalized=False)) == name
