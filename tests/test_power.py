"""Power provisioning and power-reliability model tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.datacenter.power import (
    DENSITY_KNEE_KW,
    RATING_LEVELS_KW,
    density_stress_multiplier,
    power_infrastructure_rate,
    provision_rating,
    quantize_rating,
)
from repro.errors import ConfigError


class TestQuantize:
    def test_exact_level_kept(self):
        assert quantize_rating(6.0) == 6.0

    def test_rounds_up_to_next_level(self):
        assert quantize_rating(6.5) == 7.0

    def test_above_ladder_clamps_to_top(self):
        assert quantize_rating(99.0) == RATING_LEVELS_KW[-1]

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            quantize_rating(0.0)

    @given(st.floats(min_value=0.1, max_value=50.0))
    def test_result_is_a_ladder_level_at_or_above_nominal(self, nominal):
        rating = quantize_rating(nominal)
        assert rating in RATING_LEVELS_KW
        assert rating >= min(nominal, RATING_LEVELS_KW[-1])


class TestProvision:
    def test_headroom_spreads_across_two_levels(self):
        rng = np.random.default_rng(0)
        ratings = {provision_rating(6.0, rng) for _ in range(200)}
        assert ratings == {6.0, 7.0}

    def test_zero_headroom_probability_is_deterministic(self):
        rng = np.random.default_rng(0)
        ratings = {provision_rating(6.0, rng, headroom_probability=0.0)
                   for _ in range(50)}
        assert ratings == {6.0}

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigError):
            provision_rating(6.0, np.random.default_rng(0), headroom_probability=1.5)

    def test_top_level_cannot_overflow(self):
        rng = np.random.default_rng(0)
        ratings = {provision_rating(15.0, rng) for _ in range(50)}
        assert ratings == {15.0}


class TestDensityStress:
    def test_unity_at_or_below_knee(self):
        assert density_stress_multiplier(np.array([4.0, 12.0])).tolist() == [1.0, 1.0]

    def test_rises_above_knee(self):
        low, high = density_stress_multiplier(np.array([13.0, 15.0]))
        assert 1.0 < low < high

    def test_knee_matches_fig8(self):
        assert DENSITY_KNEE_KW == 12.0


class TestInfrastructureRate:
    def test_more_nines_fewer_failures(self):
        assert (power_infrastructure_rate(3)
                > power_infrastructure_rate(4)
                > power_infrastructure_rate(5))

    def test_invalid_nines_rejected(self):
        with pytest.raises(ConfigError):
            power_infrastructure_rate(6)

    def test_rates_are_small_probabilities(self):
        for nines in (3, 4, 5):
            assert 0.0 < power_infrastructure_rate(nines) < 0.05
