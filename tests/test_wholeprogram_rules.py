"""Interprocedural rule families: triggering and clean fixtures.

Each family gets at least one fixture that MUST fire (the planted
violation CI also carries) and one structurally similar fixture that
MUST stay clean, so the rules' precision — not just their recall — is
pinned by tests.  Fixtures run through :func:`repro.staticcheck.lint_sources`,
which links a dict of virtual modules into one whole program.
"""

import pytest

from repro.staticcheck import get_wholeprogram_rule, lint_sources
from repro.staticcheck.framework import get_rule


def rule_ids(findings):
    return {f.rule for f in findings}


def only(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


class TestGtTaint:
    def test_two_hop_launder_across_modules_fires(self):
        findings = lint_sources({
            "repro.failures.probe": (
                "def peek(event):\n"
                "    return event.hazard_multiplier\n"
            ),
            "repro.pipeline.helper": (
                "from ..failures.probe import peek\n"
                "def relay(event):\n"
                "    return peek(event)\n"
            ),
            "repro.analysis.consumer": (
                "from ..pipeline.helper import relay\n"
                "def score(event):\n"
                "    return relay(event)\n"
            ),
        })
        taints = only(findings, "GT-taint")
        assert taints, "two-hop ground-truth launder must be flagged"
        assert "repro/analysis/consumer.py" in taints[0].path

    def test_finding_message_carries_full_propagation_chain(self):
        findings = lint_sources({
            "repro.failures.probe": (
                "def peek(event):\n"
                "    return event.hazard_multiplier\n"
            ),
            "repro.pipeline.helper": (
                "from ..failures.probe import peek\n"
                "def relay(event):\n"
                "    return peek(event)\n"
            ),
            "repro.analysis.consumer": (
                "from ..pipeline.helper import relay\n"
                "def score(event):\n"
                "    return relay(event)\n"
            ),
        })
        message = only(findings, "GT-taint")[0].message
        # Every hop of the laundering chain is named, source first.
        assert "repro.pipeline.helper:relay" in message
        assert "repro.failures.probe:peek" in message
        assert "hazard_multiplier" in message

    def test_forbidden_module_import_taints_through_helper(self):
        findings = lint_sources({
            "repro.pipeline.helper": (
                "from ..failures.faultmodel import FaultModel\n"
                "def rates(config):\n"
                "    return FaultModel(config)\n"
            ),
            "repro.analysis.consumer": (
                "from ..pipeline.helper import rates\n"
                "def score(config):\n"
                "    return rates(config)\n"
            ),
        })
        assert only(findings, "GT-taint")

    def test_simulate_boundary_is_not_taint(self):
        # The paper's operator-visibility projection: simulate() touches
        # planted hazards by design, and its *output* is the legitimate
        # observable surface for analysis code.
        findings = lint_sources({
            "repro.analysis.consumer": (
                "from ..failures.engine import simulate\n"
                "def run(config):\n"
                "    return simulate(config)\n"
            ),
        })
        assert "GT-taint" not in rule_ids(findings)

    def test_non_analysis_consumer_stays_clean(self):
        # Taint inside the simulator side is fine; only the analysis
        # surface is forbidden from consuming it.
        findings = lint_sources({
            "repro.failures.probe": (
                "def peek(event):\n"
                "    return event.hazard_multiplier\n"
            ),
            "repro.datacenter.wiring": (
                "from ..failures.probe import peek\n"
                "def describe(event):\n"
                "    return peek(event)\n"
            ),
        })
        assert "GT-taint" not in rule_ids(findings)

    def test_noqa_suppresses_with_audit_trail(self):
        findings = lint_sources({
            "repro.failures.probe": (
                "def peek(event):\n"
                "    return event.hazard_multiplier\n"
            ),
            "repro.analysis.consumer": (
                "from ..failures.probe import peek\n"
                "def score(event):\n"
                "    return peek(event)  # repro: noqa[GT-taint]\n"
            ),
        })
        assert "GT-taint" not in rule_ids(findings)


class TestFingerprintPurity:
    def test_wallclock_three_calls_below_stage_run_fires(self):
        findings = lint_sources({
            "repro.pipeline.custom": (
                "import datetime\n"
                "from .core import Stage\n"
                "def _stamp():\n"
                "    return datetime.datetime.now()\n"
                "def _inner():\n"
                "    return _stamp()\n"
                "def _mid():\n"
                "    return _inner()\n"
                "def run(inputs, ctx):\n"
                "    return _mid()\n"
                "stage = Stage(name='custom', run=run, codec='json')\n"
            ),
        })
        purity = only(findings, "fingerprint-purity")
        assert purity, "datetime.now under a Stage run must be flagged"
        assert purity[0].line == 4  # anchored at the sink
        assert "run" in purity[0].message and "chain" in purity[0].message

    def test_env_read_below_stage_run_fires(self):
        findings = lint_sources({
            "repro.pipeline.custom": (
                "import os\n"
                "from .core import Stage\n"
                "def run(inputs, ctx):\n"
                "    return os.getenv('REPRO_MODE')\n"
                "stage = Stage(name='custom', run=run, codec='json')\n"
            ),
        })
        assert only(findings, "fingerprint-purity")

    def test_unseeded_rng_below_stage_run_fires(self):
        findings = lint_sources({
            "repro.pipeline.custom": (
                "import numpy as np\n"
                "from .core import Stage\n"
                "def run(inputs, ctx):\n"
                "    return np.random.default_rng().poisson(3.0)\n"
                "stage = Stage(name='custom', run=run, codec='json')\n"
            ),
        })
        assert only(findings, "fingerprint-purity")

    def test_injected_clock_port_stays_clean(self):
        # The sanctioned pattern: a clock passed in as a default-arg
        # port is a *reference*, never a resolvable call to time.time.
        findings = lint_sources({
            "repro.pipeline.custom": (
                "import time\n"
                "from .core import Stage\n"
                "def run(inputs, ctx, clock=time.perf_counter):\n"
                "    start = clock()\n"
                "    return {'elapsed': clock() - start}\n"
                "stage = Stage(name='custom', run=run, codec='json')\n"
            ),
        })
        assert "fingerprint-purity" not in rule_ids(findings)

    def test_wallclock_not_reachable_from_stage_stays_clean(self):
        # Nondeterminism outside any Stage-run closure is the per-module
        # wallclock rule's business, not a cache-key-purity violation.
        findings = lint_sources({
            "repro.pipeline.custom": (
                "import datetime\n"
                "from .core import Stage\n"
                "def _stamp():\n"
                "    return datetime.datetime.now()\n"
                "def run(inputs, ctx):\n"
                "    return 1\n"
                "stage = Stage(name='custom', run=run, codec='json')\n"
            ),
        })
        assert "fingerprint-purity" not in rule_ids(findings)


class TestAsyncSafety:
    def test_blocking_sleep_in_serve_handler_fires(self):
        findings = lint_sources({
            "repro.serve.custom": (
                "import time\n"
                "def _work():\n"
                "    time.sleep(0.5)\n"
                "async def handle(request):\n"
                "    return _work()\n"
            ),
        })
        flagged = only(findings, "async-safety")
        assert flagged, "time.sleep under an async handler must be flagged"
        assert "handle" in flagged[0].message
        assert "time.sleep" in flagged[0].message

    def test_subprocess_below_async_fires(self):
        findings = lint_sources({
            "repro.serve.custom": (
                "import subprocess\n"
                "async def handle(request):\n"
                "    return subprocess.run(['true'])\n"
            ),
        })
        assert only(findings, "async-safety")

    def test_executor_hop_is_clean_by_construction(self):
        # run_in_executor passes the blocking callable as a reference;
        # the async closure must not walk into it.
        findings = lint_sources({
            "repro.serve.custom": (
                "import asyncio\n"
                "import time\n"
                "def _work():\n"
                "    time.sleep(0.5)\n"
                "async def handle(request):\n"
                "    loop = asyncio.get_running_loop()\n"
                "    return await loop.run_in_executor(None, _work)\n"
            ),
        })
        assert "async-safety" not in rule_ids(findings)

    def test_sync_only_blocking_call_stays_clean(self):
        findings = lint_sources({
            "repro.telemetry.custom": (
                "import time\n"
                "def retry_loop():\n"
                "    time.sleep(0.1)\n"
            ),
        })
        assert "async-safety" not in rule_ids(findings)


class TestSharedMutableState:
    FIXTURE = {
        "repro.telemetry.shared": (
            "CACHE = {}\n"
            "def remember(item):\n"
            "    CACHE[item] = 1\n"
            "def worker(item):\n"
            "    remember(item)\n"
            "    return item\n"
            "async def poll():\n"
            "    remember('x')\n"
            "def kick(items):\n"
            "    from ..parallel import map_items\n"
            "    return map_items(worker, items, jobs=2)\n"
        ),
    }

    def test_helper_shared_by_loop_and_workers_fires(self):
        findings = lint_sources(self.FIXTURE)
        flagged = only(findings, "shared-mutable-state")
        assert flagged
        message = flagged[0].message
        assert "CACHE" in message
        assert "poll" in message  # the asyncio-side chain is named

    def test_worker_only_writer_stays_clean(self):
        fixture = dict(self.FIXTURE)
        fixture["repro.telemetry.shared"] = (
            fixture["repro.telemetry.shared"]
            .replace("async def poll():\n    remember('x')\n",
                     "async def poll():\n    return 1\n")
        )
        findings = lint_sources(fixture)
        assert "shared-mutable-state" not in rule_ids(findings)

    def test_local_rebind_of_same_name_stays_clean(self):
        findings = lint_sources({
            "repro.telemetry.shared": (
                "def shared_helper(items):\n"
                "    CACHE = {}\n"
                "    CACHE['x'] = 1\n"
                "    return CACHE\n"
                "async def poll(items):\n"
                "    return shared_helper(items)\n"
                "def kick(items):\n"
                "    from ..parallel import map_items\n"
                "    return map_items(shared_helper, items, jobs=2)\n"
            ),
        })
        assert "shared-mutable-state" not in rule_ids(findings)


class TestRuleSelection:
    def test_wholeprogram_rule_lookup(self):
        rule = get_wholeprogram_rule("GT-taint")
        assert rule.id == "GT-taint"
        assert rule.version >= 1

    def test_explicit_per_module_filter_disables_wholeprogram(self):
        findings = lint_sources({
            "repro.serve.custom": (
                "import time\n"
                "async def handle(request):\n"
                "    time.sleep(0.5)\n"
            ),
        }, rules=[get_rule("float-eq")])
        assert findings == []

    def test_explicit_wholeprogram_filter_runs_alone(self):
        findings = lint_sources({
            "repro.serve.custom": (
                "import time\n"
                "async def handle(request):\n"
                "    time.sleep(0.5)\n"
            ),
        }, rules=[], wp_rules=[get_wholeprogram_rule("async-safety")])
        assert rule_ids(findings) == {"async-safety"}

    def test_unknown_wholeprogram_rule_is_an_error(self):
        from repro.errors import DataError

        with pytest.raises(DataError, match="unknown"):
            get_wholeprogram_rule("no-such-rule")
