"""Fisher-ordering optimality: the nominal-split scan is exact.

Breiman et al. (1984, thm 4.5) prove that for a one-dimensional
response the SSE-optimal binary partition of categories respects the
ordering of category means, so scanning that ordering — O(k log k) —
finds the same split as brute force over all 2^(k-1)−1 partitions.
These tests verify our implementation against actual brute force.
"""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.cart.criteria import node_sse
from repro.analysis.cart.splitter import best_split_for_feature
from repro.telemetry.schema import FeatureKind, FeatureSpec


def brute_force_best_subset(codes: np.ndarray, y: np.ndarray,
                            categories: list[int], min_bucket: int):
    """Exhaustive search over all binary category partitions."""
    best_sse = np.inf
    best_left = None
    for size in range(1, len(categories)):
        for left in combinations(categories, size):
            mask = np.isin(codes, left)
            n_left, n_right = int(mask.sum()), int((~mask).sum())
            if n_left < min_bucket or n_right < min_bucket:
                continue
            sse = node_sse(y[mask]) + node_sse(y[~mask])
            if sse < best_sse - 1e-12:
                best_sse = sse
                best_left = frozenset(left)
    return best_left, best_sse


category_data = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4),
              st.floats(min_value=-20, max_value=20, allow_nan=False)),
    min_size=12, max_size=60,
)


class TestFisherOptimality:
    @settings(max_examples=60, deadline=None)
    @given(category_data)
    def test_scan_matches_brute_force_sse(self, rows):
        """Exactness under the theorem's conditions.

        Breiman's result assumes *unconstrained* binary partitions and
        is stated for the ordering of category means; tied means and
        ``min_bucket`` constraints can legitimately divert the scan from
        the brute-force optimum, so the property is checked with
        ``min_bucket=1`` and a per-row jitter that makes category means
        almost surely distinct.
        """
        codes = np.array([c for c, _ in rows], dtype=float)
        y = np.array([v for _, v in rows])
        y = y + np.arange(len(y)) * 1e-7  # break mean ties
        categories = sorted({int(c) for c in codes})
        if len(categories) < 2:
            return
        spec = FeatureSpec("c", FeatureKind.NOMINAL,
                           tuple(f"c{i}" for i in range(5)))
        min_bucket = 1
        split = best_split_for_feature(codes, y, np.ones(len(y)), spec, 0,
                                       min_bucket)
        _, brute_sse = brute_force_best_subset(
            codes.astype(int), y, categories, min_bucket,
        )
        if split is None:
            # The scan found no positive-gain split; brute force must
            # not have found one materially better than no split.
            parent = node_sse(y)
            assert brute_sse >= parent - 1e-6 or brute_sse == np.inf
            return
        assert split.left_categories is not None
        mask = np.isin(codes.astype(int), list(split.left_categories))
        scan_sse = node_sse(y[mask]) + node_sse(y[~mask])
        assert scan_sse == pytest.approx(brute_sse, abs=1e-5)

    def test_known_partition(self):
        """Categories {0,2} low, {1,3} high: the scan must separate them."""
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, 200).astype(float)
        y = np.where(np.isin(codes, [1, 3]), 10.0, 0.0)
        spec = FeatureSpec("c", FeatureKind.NOMINAL, ("a", "b", "c", "d"))
        split = best_split_for_feature(codes, y, np.ones(200), spec, 0, 5)
        assert split is not None
        assert split.left_categories in (frozenset({0, 2}), frozenset({1, 3}))
