"""Stage-level invalidation semantics of the report pipeline.

The matrix this file pins down is the tentpole guarantee of the
artifact DAG: touching the *config* re-runs everything, touching one
*analysis module* re-runs exactly the stages downstream of it, and
touching a *render-only parameter* re-runs renders without ever
re-simulating.  Code edits are simulated by monkeypatching
:func:`repro.pipeline.core.source_fingerprint`, and re-execution is
observed through the pipeline's recorded
:class:`~repro.pipeline.core.StageExecution` outcomes — ``computed``
means the stage's ``run`` callable actually ran.
"""

import pytest

import repro
import repro.pipeline.core as pipeline_core
from repro.errors import ReproError
from repro.fielddata.robustness import DEFAULT_SEVERITIES
from repro.pipeline import (
    ArtifactStore,
    analysis_stages,
    build_report_pipeline,
    render_stage_name,
    source_fingerprint,
)
from repro.reporting.context import (
    SIMULATE_STAGE,
    AnalysisContext,
    provisioner_stage,
    rack_day_stage,
)
from repro.reporting.experiments import (
    EXPERIMENTS,
    FIELDDATA_SEVERITIES,
    get_experiment,
)

#: table1 renders from code only, fig02 needs ``rack_day:all``, fig10
#: needs ``provisioner:24h`` — three distinct invalidation footprints.
IDS = ("table1", "fig02", "fig10")


@pytest.fixture(scope="module")
def config():
    return repro.SimulationConfig.small(seed=21, scale=0.05, n_days=60)


@pytest.fixture(scope="module")
def cold_store(config, tmp_path_factory):
    """An artifact store after one cold render of every test experiment."""
    root = tmp_path_factory.mktemp("artifacts")
    resolve(config, root)
    return root


def resolve(config, root, render_params=None):
    """Render IDS through a fresh pipeline; return {stage: outcome}."""
    pipeline = build_report_pipeline(
        config, store=ArtifactStore(root),
        experiment_ids=IDS, render_params=render_params,
    )
    for experiment_id in IDS:
        pipeline.get(render_stage_name(experiment_id))
    return {e.stage: e.outcome for e in pipeline.executions}


@pytest.fixture()
def touch_modules(monkeypatch, request):
    """Pretend the named modules' source changed (new fingerprints).

    The fake fingerprint is salted with the test's own name so two
    tests touching the same module never warm each other's entries in
    the shared ``cold_store``.
    """
    def _touch(*modules):
        real = pipeline_core.source_fingerprint

        def fake(name):
            if name in modules:
                return f"touched:{request.node.name}:{name}"
            return real(name)

        monkeypatch.setattr(pipeline_core, "source_fingerprint", fake)
    return _touch


@pytest.fixture()
def forbid_simulation(monkeypatch):
    """Any entry into the ticket generator fails the test."""
    import repro.failures.engine as engine

    def explode(*args, **kwargs):
        raise AssertionError("pipeline re-simulated")

    monkeypatch.setattr(engine, "_generate_tickets", explode)


class TestInvalidationMatrix:
    def test_warm_run_touches_only_render_artifacts(
            self, config, cold_store, forbid_simulation):
        """Untouched inputs: every render is a disk hit, nothing else runs."""
        outcomes = resolve(config, cold_store)
        assert outcomes == {
            render_stage_name(eid): "disk" for eid in IDS
        }

    def test_config_touch_recomputes_everything(self, config, cold_store):
        other = repro.SimulationConfig.small(seed=23, scale=0.05, n_days=60)
        outcomes = resolve(other, cold_store)
        assert outcomes[SIMULATE_STAGE] == "computed"
        for eid in IDS:
            assert outcomes[render_stage_name(eid)] == "computed"

    def test_decisions_touch_recomputes_decision_stages_only(
            self, config, cold_store, touch_modules, forbid_simulation):
        touch_modules("repro.decisions.spares")
        outcomes = resolve(config, cold_store)
        # fig10 and its provisioner re-run off the disk-loaded simulation;
        # the other two renders stay warm and the rack-day table never runs.
        assert outcomes[render_stage_name("fig10")] == "computed"
        assert outcomes[provisioner_stage(24.0)] == "computed"
        assert outcomes[SIMULATE_STAGE] == "disk"
        assert outcomes[render_stage_name("table1")] == "disk"
        assert outcomes[render_stage_name("fig02")] == "disk"
        assert rack_day_stage("all") not in outcomes

    def test_aggregate_touch_recomputes_table_consumers_only(
            self, config, cold_store, touch_modules, forbid_simulation):
        touch_modules("repro.telemetry.aggregate")
        outcomes = resolve(config, cold_store)
        assert outcomes[render_stage_name("fig02")] == "computed"
        assert outcomes[rack_day_stage("all")] == "computed"
        assert outcomes[SIMULATE_STAGE] == "disk"
        assert outcomes[render_stage_name("table1")] == "disk"
        assert outcomes[render_stage_name("fig10")] == "disk"
        assert provisioner_stage(24.0) not in outcomes

    def test_engine_touch_invalidates_the_root(
            self, config, cold_store, touch_modules):
        touch_modules("repro.failures.engine")
        outcomes = resolve(config, cold_store)
        assert outcomes[SIMULATE_STAGE] == "computed"
        for eid in IDS:
            assert outcomes[render_stage_name(eid)] == "computed"

    def test_render_param_touch_never_resimulates(
            self, config, cold_store, forbid_simulation):
        outcomes = resolve(config, cold_store,
                           render_params={"revision": 2})
        assert outcomes[SIMULATE_STAGE] == "disk"
        for eid in IDS:
            assert outcomes[render_stage_name(eid)] == "computed"


class TestAcceptance:
    def test_decisions_edit_after_cold_report_skips_ticket_generation(
            self, config, cold_store, touch_modules, forbid_simulation):
        """The PR's acceptance criterion, verbatim.

        After a cold ``repro report``, editing only a
        ``repro.decisions`` parameter and re-running recomputes only
        the decision/render stages — ``_generate_tickets`` must never
        be called (the simulation comes back from the store).
        """
        touch_modules("repro.decisions.spares",
                      "repro.decisions.component_spares")
        pipeline = build_report_pipeline(
            config, store=ArtifactStore(cold_store), experiment_ids=IDS,
        )
        text = pipeline.get(render_stage_name("fig10"))
        assert "spare" in text.lower() or text  # rendered, not raised
        outcomes = {e.stage: e.outcome for e in pipeline.executions}
        assert outcomes == {
            SIMULATE_STAGE: "disk",
            provisioner_stage(24.0): "computed",
            render_stage_name("fig10"): "computed",
        }


class TestGoldenEquivalence:
    def test_pipeline_renders_match_direct_context_renders(self, tiny_run):
        """Every registry experiment renders bit-identically through the
        DAG and through a plain AnalysisContext (pre-refactor path)."""
        config = repro.SimulationConfig.small(seed=11, scale=0.05, n_days=120)
        pipeline = build_report_pipeline(config)
        pipeline.prime(SIMULATE_STAGE, tiny_run)
        for experiment_id in sorted(EXPERIMENTS):
            direct_context = AnalysisContext(tiny_run)
            try:
                direct = get_experiment(experiment_id).render(direct_context)
                direct_error = None
            except ReproError as error:
                direct, direct_error = None, str(error)
            try:
                piped = pipeline.get(render_stage_name(experiment_id))
                piped_error = None
            except ReproError as error:
                piped, piped_error = None, str(error)
            assert piped == direct, experiment_id
            assert piped_error == direct_error, experiment_id


class TestStageDeclarations:
    """The registry's declared deps line up with the real modules."""

    def test_fielddata_severities_cross_check(self):
        # reporting spells the severities literally (it must not import
        # fielddata at module scope); this pins them to the source of truth.
        assert FIELDDATA_SEVERITIES == DEFAULT_SEVERITIES

    def test_streaming_declaration_cross_check(self):
        from repro.stream import experiment as stream_experiment

        streaming = get_experiment("streaming")
        assert streaming.stages == stream_experiment.STAGE_DEPS
        assert streaming.code == stream_experiment.CODE_MODULES

    def test_every_declared_stage_exists_in_catalogue(self, config):
        catalogue = {stage.name for stage in analysis_stages(config)}
        for experiment_id, experiment in EXPERIMENTS.items():
            missing = set(experiment.stages) - catalogue
            assert not missing, (experiment_id, missing)

    def test_every_declared_code_module_fingerprints(self):
        for experiment in EXPERIMENTS.values():
            for module in experiment.code:
                assert source_fingerprint(module)

    def test_severity_zero_payload_matches_pristine_analysis(self, tiny_run):
        """The noise sweep's sev-0 point goes through degrade→clean like
        every other severity; the loop must be bit-identical to skipping
        it (the shortcut the sweep used to carry)."""
        from repro.fielddata.robustness import (
            headline_metrics,
            noise_point_payload,
        )

        import math

        payload = noise_point_payload(tiny_run, 0.0)
        pristine = headline_metrics(tiny_run)
        assert set(payload["metrics"]) == set(pristine)
        for name, value in pristine.items():
            observed = payload["metrics"][name]
            if math.isnan(value):
                assert math.isnan(observed), name
            else:
                assert observed == value, name
