"""Technician-queueing extension tests."""

import numpy as np
import pytest

import repro
from repro.errors import ConfigError
from repro.failures.queueing import apply_technician_queue, staffing_curve
from repro.telemetry import mu_matrix


@pytest.fixture(scope="module")
def generous(small_run):
    return apply_technician_queue(small_run, 64)


@pytest.fixture(scope="module")
def scarce(small_run):
    return apply_technician_queue(small_run, 2)


class TestQueueReplay:
    def test_generous_staffing_adds_no_delay(self, generous):
        assert generous.mean_wait_hours < 0.5
        assert generous.delayed_fraction < 0.05

    def test_scarce_staffing_delays_most_repairs(self, scarce):
        assert scarce.delayed_fraction > 0.5
        assert scarce.mean_wait_hours > 10.0

    def test_detection_times_unchanged(self, small_run, scarce):
        assert np.allclose(
            scarce.adjusted_log.start_hour_abs,
            small_run.tickets.start_hour_abs,
        )

    def test_repairs_only_stretch(self, small_run, scarce):
        assert np.all(
            scarce.adjusted_log.repair_hours
            >= small_run.tickets.repair_hours - 1e-9
        )

    def test_software_tickets_untouched(self, small_run, scarce):
        software = ~small_run.tickets.hardware_mask()
        assert np.allclose(
            scarce.adjusted_log.repair_hours[software],
            small_run.tickets.repair_hours[software],
        )

    def test_waiting_array_covers_hardware_tickets(self, small_run, scarce):
        n_hardware = int((small_run.tickets.hardware_mask()
                          & small_run.tickets.true_positive_mask()).sum())
        assert len(scarce.waiting_hours) == n_hardware

    def test_fcfs_conservation(self, small_run, scarce):
        """Total service time is conserved; only waiting is added."""
        hardware = (small_run.tickets.hardware_mask()
                    & small_run.tickets.true_positive_mask())
        added = (scarce.adjusted_log.repair_hours[hardware]
                 - small_run.tickets.repair_hours[hardware])
        assert np.allclose(np.sort(added), np.sort(scarce.waiting_hours))

    def test_validation(self, small_run):
        with pytest.raises(ConfigError):
            apply_technician_queue(small_run, 0)
        with pytest.raises(ConfigError):
            apply_technician_queue(small_run, {"DC1": 4})  # DC2 missing


class TestStaffingCurve:
    def test_monotone_in_pool_size(self, small_run):
        curve = staffing_curve(small_run, (2, 4, 16))
        waits = list(curve.values())
        assert waits == sorted(waits, reverse=True)

    def test_empty_sizes_rejected(self, small_run):
        with pytest.raises(ConfigError):
            staffing_curve(small_run, ())


class TestProvisioningCoupling:
    def test_understaffing_inflates_mu(self, small_run, scarce, generous):
        """Spares sized under an infinite-technician assumption are
        wrong when repairs queue — the staffing↔spares coupling."""
        def mu_total(outcome):
            adjusted = repro.SimulationResult(
                config=small_run.config, fleet=small_run.fleet,
                calendar=small_run.calendar, environment=small_run.environment,
                bms=small_run.bms, tickets=outcome.adjusted_log,
            )
            return mu_matrix(adjusted, 24.0).sum()

        assert mu_total(scarce) > 3 * mu_total(generous)
