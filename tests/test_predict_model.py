"""Dataset construction, the two-stage predictor, and exact scoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.prediction import time_split
from repro.errors import DataError
from repro.predict.dataset import (
    LABEL_DAYS_TO_FAILURE,
    LABEL_WILL_FAIL,
    build_feature_dataset,
)
from repro.predict.experiment import (
    STAGE_DEPS,
    compute_predict_payload,
    render_predict,
)
from repro.predict.model import TwoStagePredictor, train_predictor
from repro.predict.scoring import proactive_comparison, score_predictions
from repro.stream import StreamInventory
from repro.telemetry.schema import TICKET_LOG
from repro.telemetry.table import Table

HORIZON = 3


@pytest.fixture(scope="module")
def dataset(tiny_run) -> Table:
    return build_feature_dataset(tiny_run, horizon_days=HORIZON)


@pytest.fixture(scope="module")
def trained(dataset):
    return train_predictor(dataset, horizon_days=HORIZON)


class TestDataset:
    def test_one_row_per_server_per_sample_day(self, tiny_run, dataset):
        inventory = StreamInventory.from_result(tiny_run)
        n_servers = int(inventory.n_servers.sum())
        assert dataset.n_rows % n_servers == 0
        days = np.unique(dataset.column(TICKET_LOG.day_index))
        assert dataset.n_rows == n_servers * len(days)

    def test_labels_consistent(self, dataset):
        will_fail = dataset.column(LABEL_WILL_FAIL) > 0.5
        lead = dataset.column(LABEL_DAYS_TO_FAILURE)
        assert will_fail.any() and not will_fail.all()
        assert (lead[will_fail] >= 1).all()
        assert (lead[will_fail] <= HORIZON).all()
        assert (lead[~will_fail] == 0).all()

    def test_snapshot_days_leave_room_for_labels(self, tiny_run, dataset):
        days = dataset.column(TICKET_LOG.day_index).astype(int)
        assert days.max() + HORIZON < tiny_run.n_days

    def test_too_short_run_rejected(self, tiny_run):
        with pytest.raises(DataError, match="no sampleable days"):
            build_feature_dataset(tiny_run, horizon_days=100,
                                  window_days=100)


class TestTimeSplitEmbargo:
    """Regression: pre-embargo, a train row just before the cutoff had a
    label window reaching into the evaluation period."""

    @staticmethod
    def _toy(n: int = 100) -> Table:
        return Table({
            "day_index": np.arange(n, dtype=np.int64),
            "value": np.zeros(n),
        })

    def test_no_embargo_trains_up_to_the_cutoff(self):
        train, test = time_split(self._toy(), train_fraction=0.7)
        cutoff = train.column("day_index").max()
        # The overlap the embargo exists to remove: a 3-day label on the
        # last train row reads days that belong to the evaluation split.
        assert cutoff + 3 > test.column("day_index").min()

    def test_embargo_separates_label_windows(self):
        train, test = time_split(self._toy(), train_fraction=0.7,
                                 embargo_days=3)
        assert (train.column("day_index").max() + 3
                < test.column("day_index").min())

    def test_embargo_does_not_touch_the_eval_split(self):
        _, no_embargo = time_split(self._toy(), train_fraction=0.7)
        _, embargoed = time_split(self._toy(), train_fraction=0.7,
                                  embargo_days=3)
        np.testing.assert_array_equal(no_embargo.column("day_index"),
                                      embargoed.column("day_index"))

    def test_negative_embargo_rejected(self):
        with pytest.raises(DataError, match="embargo_days"):
            time_split(self._toy(), embargo_days=-1)


class TestTwoStagePredictor:
    def test_train_and_eval_are_label_disjoint(self, trained):
        _, train, test = trained
        train_max = int(train.column(TICKET_LOG.day_index).max())
        test_min = int(test.column(TICKET_LOG.day_index).min())
        assert train_max + HORIZON < test_min

    def test_scores_are_probabilities(self, trained):
        model, _, test = trained
        scores = model.score(test)
        assert scores.shape == (test.n_rows,)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_lead_times_within_horizon(self, trained):
        model, _, test = trained
        lead = model.lead_time_days(test)
        assert (lead >= 0).all() and (lead <= HORIZON + 1e-9).all()

    def test_unfitted_predictor_refuses_to_score(self, dataset):
        from repro.errors import FitError

        with pytest.raises(FitError):
            TwoStagePredictor().score(dataset)

    def test_ranking_beats_chance(self, trained):
        model, _, test = trained
        metrics = score_predictions(model, test)
        assert metrics["auc"] is not None
        assert metrics["auc"] > 0.55


class TestScoring:
    def test_operating_points_shape(self, trained):
        model, _, test = trained
        metrics = score_predictions(model, test,
                                    act_fractions=(0.05, 0.10))
        assert [p["act_fraction"] for p in metrics["curves"]] == [0.05, 0.10]
        for point in metrics["curves"]:
            assert 0.0 <= point["precision"] <= 1.0
            assert 0.0 <= point["recall"] <= 1.0
            assert point["n_flagged"] >= 1

    def test_proactive_beats_reactive_on_default_scenario(self, tiny_run,
                                                          trained):
        model, _, test = trained
        scores = model.score(test)
        comparison = proactive_comparison(tiny_run, test, scores,
                                          horizon_days=HORIZON)
        assert comparison["reactive_cost"] > 0
        assert comparison["beats_reactive"] is True
        best = min(comparison["curve"], key=lambda p: p["total_cost"])
        assert best["total_cost"] < comparison["reactive_cost"]


class TestExperiment:
    def test_payload_and_render(self, tiny_run, dataset, trained):
        payload = compute_predict_payload(tiny_run, dataset=dataset,
                                          trained=trained)
        assert payload["horizon_days"] == HORIZON
        assert payload["n_rows"] == dataset.n_rows
        assert len(payload["top_risks"]) == 10
        text = render_predict(payload)
        assert "verdict" in text
        assert "proactive" in text

    def test_payload_is_json_serializable(self, tiny_run, dataset, trained):
        import json

        payload = compute_predict_payload(tiny_run, dataset=dataset,
                                          trained=trained)
        assert json.loads(json.dumps(payload)) == payload

    def test_registry_declares_the_stage_deps(self):
        from repro.reporting import EXPERIMENTS

        assert EXPERIMENTS["predict"].stages == STAGE_DEPS
        assert EXPERIMENTS["predict"].code == ("repro.predict.experiment",)

    def test_pipeline_catalogue_carries_the_stages(self):
        import repro
        from repro.pipeline import analysis_stages

        config = repro.SimulationConfig.small(seed=0, scale=0.05, n_days=60)
        names = {stage.name for stage in analysis_stages(config)}
        assert set(STAGE_DEPS) <= names

    def test_listing_contract_exposes_predict_stages(self, capsys):
        import json

        from repro.cli import main

        assert main(["list", "--format", "json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        by_id = {entry["id"]: entry for entry in listing["experiments"]}
        assert by_id["predict"]["stages"] == list(STAGE_DEPS)
        assert by_id["predict"]["code"] == ["repro.predict.experiment"]
