"""Golden-aggregate and determinism pins for the vectorized engine.

Two layers of protection:

* **Exact pins** — the vectorized engine is deterministic per config, so
  total/per-fault ticket counts for two (seed, scale, days) configs are
  pinned exactly.  Any change to the chunked draw order, the named RNG
  streams, or ``CHUNK_DAYS`` shows up here immediately.
* **Distribution pins** — the same aggregates are compared against
  values captured from the pre-vectorization (per-day loop) engine.
  The realizations differ (the draw order changed), but the underlying
  distributions must not: each aggregate must sit within sampling noise
  of the old engine's value.

Plus structural determinism: identical configs give bit-identical
ticket logs, the run cache round-trips exactly, and the vectorized
expected-counts matrix agrees with the per-day path column by column.
"""

import numpy as np
import pytest

import repro
from repro.cache import RunCache, simulate_cached
from repro.failures.tickets import FAULT_TYPES
from repro.telemetry import mu_matrix

# ---------------------------------------------------------------------------
# Golden aggregates.
#
# NEW = the vectorized engine (exact); OLD = captured from the seed
# per-day engine at the commit before vectorization (tolerance-checked).

CONFIGS = {
    "seed101": {"seed": 101, "scale": 0.10, "n_days": 180},
    "seed7": {"seed": 7, "scale": 0.20, "n_days": 365},
}

NEW_GOLDEN = {
    "seed101": {
        "total": 3921,
        "per_fault": {
            "TIMEOUT": 967, "DEPLOYMENT": 469, "CRASH": 92, "PXE_BOOT": 484,
            "REBOOT": 58, "DISK": 831, "MEMORY": 235, "POWER": 73,
            "SERVER": 227, "NETWORK": 107, "OTHER": 378,
        },
        "mu_q": [11.0, 20.0, 27.0],
        "batch_tickets": 341,
    },
    "seed7": {
        "total": 15654,
        "per_fault": {
            "TIMEOUT": 3975, "DEPLOYMENT": 1906, "CRASH": 396, "PXE_BOOT": 1882,
            "REBOOT": 198, "DISK": 3109, "MEMORY": 1254, "POWER": 384,
            "SERVER": 786, "NETWORK": 395, "OTHER": 1369,
        },
        "mu_q": [23.0, 36.6, 49.72],
        "batch_tickets": 1238,
    },
}

OLD_GOLDEN = {
    "seed101": {
        "total": 3962,
        "per_fault": {
            "TIMEOUT": 973, "DEPLOYMENT": 476, "CRASH": 97, "PXE_BOOT": 534,
            "REBOOT": 41, "DISK": 792, "MEMORY": 298, "POWER": 87,
            "SERVER": 208, "NETWORK": 93, "OTHER": 363,
        },
        "mu_q": [11.0, 21.0, 28.21],
        "lam": 0.3550,
        "batch_tickets": 298,
        "fp_share": 0.0626,
    },
    "seed7": {
        "total": 15752,
        "per_fault": {
            "TIMEOUT": 4176, "DEPLOYMENT": 1951, "CRASH": 353, "PXE_BOOT": 1892,
            "REBOOT": 194, "DISK": 3164, "MEMORY": 1160, "POWER": 365,
            "SERVER": 718, "NETWORK": 375, "OTHER": 1404,
        },
        "mu_q": [23.0, 36.0, 46.36],
        "lam": 0.3480,
        "batch_tickets": 1113,
        "fp_share": 0.0677,
    },
}


@pytest.fixture(scope="module", params=sorted(CONFIGS))
def pinned_run(request):
    params = CONFIGS[request.param]
    config = repro.SimulationConfig.small(**params)
    return request.param, repro.simulate(config)


def _per_fault_counts(log):
    return {
        fault.name: int((log.fault_code == code).sum())
        for code, fault in enumerate(FAULT_TYPES)
    }


def _fleet_mu_quantiles(result):
    fleet_mu = mu_matrix(result, 24.0).sum(axis=0)
    return np.quantile(fleet_mu, [0.5, 0.9, 0.99])


class TestExactGoldenPins:
    """The vectorized engine must reproduce these numbers exactly."""

    def test_total_tickets(self, pinned_run):
        name, run = pinned_run
        assert len(run.tickets) == NEW_GOLDEN[name]["total"]

    def test_per_fault_counts(self, pinned_run):
        name, run = pinned_run
        assert _per_fault_counts(run.tickets) == NEW_GOLDEN[name]["per_fault"]

    def test_batch_ticket_count(self, pinned_run):
        name, run = pinned_run
        assert int((run.tickets.batch_id >= 0).sum()) == NEW_GOLDEN[name]["batch_tickets"]

    def test_mu_quantiles(self, pinned_run):
        name, run = pinned_run
        assert _fleet_mu_quantiles(run) == pytest.approx(
            NEW_GOLDEN[name]["mu_q"], abs=0.01
        )


class TestDistributionMatchesSeedEngine:
    """Aggregates must sit within sampling noise of the per-day engine.

    The vectorized engine draws in a different order, so it produces a
    different realization of the same stochastic process; the tolerances
    below are a few standard deviations of the respective statistic.
    """

    def test_total_within_3_percent(self, pinned_run):
        name, run = pinned_run
        assert len(run.tickets) == pytest.approx(OLD_GOLDEN[name]["total"], rel=0.03)

    def test_per_fault_within_noise(self, pinned_run):
        name, run = pinned_run
        counts = _per_fault_counts(run.tickets)
        for fault, old in OLD_GOLDEN[name]["per_fault"].items():
            # Poisson-ish noise floor: 5 sigma or 15%, whichever is looser.
            tolerance = max(0.15 * old, 5.0 * np.sqrt(old))
            assert abs(counts[fault] - old) <= tolerance, (
                f"{fault}: {counts[fault]} vs seed-engine {old} (±{tolerance:.0f})"
            )

    def test_mu_quantiles_within_15_percent(self, pinned_run):
        name, run = pinned_run
        assert _fleet_mu_quantiles(run) == pytest.approx(
            OLD_GOLDEN[name]["mu_q"], rel=0.15
        )

    def test_lambda_within_3_percent(self, pinned_run):
        name, run = pinned_run
        lam = len(run.tickets) / (run.n_days * run.fleet.arrays().n_racks)
        assert lam == pytest.approx(OLD_GOLDEN[name]["lam"], rel=0.03)

    def test_batch_tickets_within_25_percent(self, pinned_run):
        name, run = pinned_run
        batch = int((run.tickets.batch_id >= 0).sum())
        assert batch == pytest.approx(OLD_GOLDEN[name]["batch_tickets"], rel=0.25)

    def test_false_positive_share_within_15_percent(self, pinned_run):
        name, run = pinned_run
        share = float(run.tickets.false_positive.mean())
        assert share == pytest.approx(OLD_GOLDEN[name]["fp_share"], rel=0.15)


TICKET_COLUMNS = (
    "day_index", "start_hour_abs", "rack_index", "server_offset",
    "fault_code", "false_positive", "repair_hours", "batch_id",
)


class TestBitIdentity:
    def test_same_config_identical_log(self):
        config = repro.SimulationConfig.small(seed=101, scale=0.10, n_days=180)
        a = repro.simulate(config)
        b = repro.simulate(config)
        for column in TICKET_COLUMNS:
            assert np.array_equal(
                getattr(a.tickets, column), getattr(b.tickets, column)
            ), column

    def test_cache_round_trip_identical(self, tmp_path):
        config = repro.SimulationConfig.small(seed=101, scale=0.10, n_days=180)
        cache = RunCache(tmp_path / "cache")
        fresh, hit_a = simulate_cached(config, cache)
        cached, hit_b = simulate_cached(config, cache)
        assert (hit_a, hit_b) == (False, True)
        for column in TICKET_COLUMNS:
            assert np.array_equal(
                getattr(fresh.tickets, column), getattr(cached.tickets, column)
            ), column
        assert np.array_equal(
            fresh.environment.temp_f, cached.environment.temp_f
        )
        assert np.array_equal(
            fresh.bms.temp_f, cached.bms.temp_f, equal_nan=True
        )
        assert len(fresh.bms.alarms) == len(cached.bms.alarms)


class TestMatrixConsistency:
    def test_matrix_matches_per_day_expected_counts(self):
        """expected_counts_matrix row d == per-day expected_counts(day d)."""
        from repro.failures.engine import _build_substrate
        from repro.failures.faultmodel import FaultModel

        config = repro.SimulationConfig.small(seed=33, scale=0.05, n_days=40)
        _, fleet, calendar, environment, _ = _build_substrate(config)
        arrays = fleet.arrays()
        model = FaultModel(fleet, config.rates)
        features = calendar.feature_arrays(config.n_days)
        commissioned = (
            features.day_index[:, None] >= arrays.commission_day[None, :]
        )
        matrix = model.expected_counts_matrix(
            features, environment.temp_f, environment.rh, commissioned
        )
        for day in (0, 13, 39):
            per_day = model.expected_counts(
                calendar.day(day),
                environment.temp_f[day], environment.rh[day],
                commissioned[day],
            )
            for fault, row in per_day.items():
                assert np.allclose(matrix[fault][day], row), (fault, day)
