"""Window/interval machinery tests, including brute-force cross-checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DataError
from repro.telemetry.windows import (
    event_day_counts,
    interval_window_counts,
    n_windows,
    per_group_window_counts,
    windows_per_day,
)


def brute_force_window_counts(starts, ends, window_hours, total):
    counts = np.zeros(total, dtype=int)
    for w in range(total):
        lo, hi = w * window_hours, (w + 1) * window_hours
        for s, e in zip(starts, ends):
            # Interval [s, e] intersects window [lo, hi) — matching the
            # implementation's floor-based assignment.  Intervals with no
            # overlap with [0, total) at all are dropped, not clipped.
            first = int(np.floor(s / window_hours))
            last = int(np.floor(e / window_hours))
            if last < 0 or first >= total:
                continue
            if max(first, 0) <= w <= min(last, total - 1):
                counts[w] += 1
    return counts


class TestNWindows:
    def test_daily(self):
        assert n_windows(10, 24.0) == 10

    def test_hourly(self):
        assert n_windows(2, 1.0) == 48

    def test_partial_window_rounds_up(self):
        assert n_windows(1, 7.0) == 4

    def test_invalid_args(self):
        with pytest.raises(DataError):
            n_windows(0, 24.0)
        with pytest.raises(DataError):
            n_windows(5, 0.0)


class TestIntervalCounts:
    def test_single_interval_spanning_windows(self):
        counts = interval_window_counts(
            np.array([10.0]), np.array([30.0]), 24.0, 3
        )
        assert counts.tolist() == [1, 1, 0]

    def test_point_interval(self):
        counts = interval_window_counts(np.array([25.0]), np.array([25.0]), 24.0, 3)
        assert counts.tolist() == [0, 1, 0]

    def test_clipping_to_range(self):
        counts = interval_window_counts(np.array([-5.0]), np.array([100.0]), 24.0, 2)
        assert counts.tolist() == [1, 1]

    def test_interval_entirely_after_range_dropped(self):
        # Regression: these used to be clipped into the last window.
        counts = interval_window_counts(np.array([120.0]), np.array([150.0]), 24.0, 3)
        assert counts.tolist() == [0, 0, 0]

    def test_interval_entirely_before_range_dropped(self):
        # Regression: these used to be clipped into the first window.
        counts = interval_window_counts(np.array([-30.0]), np.array([-5.0]), 24.0, 3)
        assert counts.tolist() == [0, 0, 0]

    def test_mixed_inside_and_outside_intervals(self):
        counts = interval_window_counts(
            np.array([-40.0, 5.0, 200.0]),
            np.array([-20.0, 30.0, 300.0]),
            24.0, 3,
        )
        assert counts.tolist() == [1, 1, 0]

    def test_end_before_start_rejected(self):
        with pytest.raises(DataError):
            interval_window_counts(np.array([5.0]), np.array([1.0]), 24.0, 2)

    def test_empty_input(self):
        counts = interval_window_counts(np.array([]), np.array([]), 24.0, 4)
        assert counts.tolist() == [0, 0, 0, 0]

    @settings(max_examples=60)
    @given(st.lists(
        st.tuples(st.floats(min_value=0, max_value=200),
                  st.floats(min_value=0, max_value=60)),
        min_size=0, max_size=25,
    ), st.sampled_from([1.0, 6.0, 24.0]))
    def test_matches_brute_force(self, intervals, window_hours):
        starts = np.array([s for s, _ in intervals])
        ends = np.array([s + d for s, d in intervals])
        total = 10
        fast = interval_window_counts(starts, ends, window_hours, total)
        slow = brute_force_window_counts(starts, ends, window_hours, total)
        assert np.array_equal(fast, slow)


class TestPerGroupCounts:
    def test_groups_are_independent(self):
        counts = per_group_window_counts(
            group_index=np.array([0, 1, 1]),
            start_hours=np.array([0.0, 0.0, 30.0]),
            end_hours=np.array([10.0, 50.0, 40.0]),
            n_groups=2, window_hours=24.0, total_windows=3,
        )
        assert counts.shape == (2, 3)
        assert counts[0].tolist() == [1, 0, 0]
        assert counts[1].tolist() == [1, 2, 1]

    def test_group_out_of_range_rejected(self):
        with pytest.raises(DataError):
            per_group_window_counts(
                np.array([5]), np.array([0.0]), np.array([1.0]),
                n_groups=2, window_hours=24.0, total_windows=2,
            )

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(DataError):
            per_group_window_counts(
                np.array([0, 1]), np.array([0.0]), np.array([1.0]),
                n_groups=2, window_hours=24.0, total_windows=2,
            )

    def test_out_of_range_intervals_dropped_per_group(self):
        # Regression: group 1's interval lies wholly beyond the range and
        # must not be folded into its last window.
        counts = per_group_window_counts(
            group_index=np.array([0, 1]),
            start_hours=np.array([0.0, 90.0]),
            end_hours=np.array([10.0, 95.0]),
            n_groups=2, window_hours=24.0, total_windows=3,
        )
        assert counts[0].tolist() == [1, 0, 0]
        assert counts[1].tolist() == [0, 0, 0]

    @settings(max_examples=40)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=2),
                  st.floats(min_value=0, max_value=100),
                  st.floats(min_value=0, max_value=50)),
        min_size=1, max_size=20,
    ))
    def test_per_group_equals_separate_calls(self, rows):
        groups = np.array([g for g, _, _ in rows])
        starts = np.array([s for _, s, _ in rows])
        ends = starts + np.array([d for _, _, d in rows])
        combined = per_group_window_counts(groups, starts, ends, 3, 24.0, 6)
        for g in range(3):
            mask = groups == g
            separate = interval_window_counts(starts[mask], ends[mask], 24.0, 6)
            assert np.array_equal(combined[g], separate)


class TestEventDayCounts:
    def test_basic_counting(self):
        counts = event_day_counts(
            group_index=np.array([0, 0, 1]),
            day_index=np.array([0, 0, 2]),
            n_groups=2, total_days=3,
        )
        assert counts[0].tolist() == [2, 0, 0]
        assert counts[1].tolist() == [0, 0, 1]

    def test_day_out_of_range_rejected(self):
        with pytest.raises(DataError):
            event_day_counts(np.array([0]), np.array([5]), 1, 3)

    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        groups = rng.integers(0, 4, 200)
        days = rng.integers(0, 30, 200)
        counts = event_day_counts(groups, days, 4, 30)
        assert counts.sum() == 200


class TestWindowsPerDay:
    def test_exact_divisors(self):
        assert windows_per_day(24.0) == 1
        assert windows_per_day(1.0) == 24
        assert windows_per_day(6.0) == 4

    def test_non_divisor_rejected(self):
        with pytest.raises(DataError):
            windows_per_day(7.0)
