"""Concurrent multi-process access to one on-disk ArtifactStore.

Two processes computing (or publishing) the same stage key against a
shared store directory must never corrupt an entry: publication is
atomic (staged directory + rename), so readers observe either nothing
or a complete entry, and racing writers resolve to clean
first-writer-wins with identical content.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.pipeline.core import _TMP_PREFIX, ArtifactStore, Stage

#: Same tiny scenario the serve tests use — a fast real simulation.
TINY = {"seed": 5, "scale": 0.05, "days": 60}


def _noop(inputs, ctx):  # pragma: no cover - lookups never run stages
    raise AssertionError("stage must not execute")


def _json_stage() -> Stage:
    return Stage(name="concurrency-probe", run=_noop, codec="json")


def _hammer_put(root: str, barrier, n_rounds: int) -> None:
    """Worker: publish the same keys in lockstep with the sibling."""
    store = ArtifactStore(root)
    stage = _json_stage()
    for round_index in range(n_rounds):
        barrier.wait()
        store.put(stage, f"{round_index:064d}",
                  {"round": round_index, "payload": list(range(100))})


def _compute_q1(root: str, barrier, out) -> None:
    """Worker: full serve cold path for the same fleet, in lockstep."""
    from repro.serve.backend import compute_query_payload
    from repro.serve.fleets import fleet_spec
    from repro.serve.queries import parse_query

    spec = fleet_spec(TINY)
    query = parse_query("q1", None)
    barrier.wait()
    payload = compute_query_payload(root, spec.fleet_id, dict(spec.params),
                                    query.kind, query.params)
    out.put(payload["plans"]["SF"]["overprovision"])


def _run_pair(target, args):
    processes = [multiprocessing.Process(target=target, args=args)
                 for _ in range(2)]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    return [process.exitcode for process in processes]


class TestConcurrentStoreAccess:
    def test_racing_puts_of_same_key_stay_clean(self, tmp_path):
        n_rounds = 25
        barrier = multiprocessing.Barrier(2)
        exits = _run_pair(_hammer_put, (str(tmp_path), barrier, n_rounds))
        assert exits == [0, 0]

        store = ArtifactStore(str(tmp_path))
        stage = _json_stage()
        for round_index in range(n_rounds):
            hit = store.fetch(stage, f"{round_index:064d}")
            assert hit is not None, f"round {round_index} entry lost"
            tier, artifact = hit
            assert artifact["round"] == round_index
            assert artifact["payload"] == list(range(100))
        # No staging wreckage left behind.
        stage_dir = store.stage_dir(stage.name)
        leftovers = [p.name for p in stage_dir.iterdir()
                     if p.name.startswith(_TMP_PREFIX)]
        assert leftovers == []

    def test_two_processes_computing_same_query(self, tmp_path):
        """The serve cold path end to end: same fleet, same query, two
        interpreters racing on simulate + serve:q1 publication."""
        barrier = multiprocessing.Barrier(2)
        out = multiprocessing.Queue()
        exits = _run_pair(_compute_q1, (str(tmp_path), barrier, out))
        assert exits == [0, 0]
        answers = [out.get(timeout=10), out.get(timeout=10)]
        assert answers[0] == pytest.approx(answers[1])

        # The store holds exactly one complete entry per stage touched,
        # and a fresh process can decode the serve answer warm.
        from repro.serve.backend import PipelineAnalysisBackend, \
            PipelineArtifactStore
        from repro.serve.fleets import fleet_spec
        from repro.serve.queries import parse_query

        store = ArtifactStore(str(tmp_path))
        spec = fleet_spec(TINY)
        backend = PipelineAnalysisBackend(store)
        ref = backend.query_ref(spec, parse_query("q1", None))
        warm = PipelineArtifactStore(store).lookup(ref)
        assert warm is not None
        assert warm["plans"]["SF"]["overprovision"] == pytest.approx(answers[0])
        assert len(store.stage_entries("simulate")) == 1
