"""Failure-prediction extension tests (§VII future work)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.prediction import (
    FailurePredictor,
    PREDICTION_FEATURES,
    _future_any,
    _trailing_sum,
    build_prediction_dataset,
    roc_auc,
    time_split,
)
from repro.errors import DataError, FitError


class TestTrailingSum:
    def test_excludes_current_day(self):
        matrix = np.array([[1.0, 0.0, 0.0]])
        trailing = _trailing_sum(matrix, window=2)
        assert trailing[0].tolist() == [0.0, 1.0, 1.0]

    def test_window_truncates_old_history(self):
        matrix = np.array([[1.0, 0.0, 0.0, 0.0]])
        trailing = _trailing_sum(matrix, window=2)
        assert trailing[0, 3] == 0.0  # day-0 event fell out of the window

    def test_invalid_window_rejected(self):
        with pytest.raises(DataError):
            _trailing_sum(np.zeros((1, 3)), window=0)

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=3, max_size=30),
           st.integers(min_value=1, max_value=8))
    def test_matches_brute_force(self, counts, window):
        matrix = np.array([counts], dtype=float)
        trailing = _trailing_sum(matrix, window)
        for day in range(len(counts)):
            expected = sum(counts[max(0, day - window):day])
            assert trailing[0, day] == pytest.approx(expected)


class TestFutureAny:
    def test_sees_only_the_future(self):
        matrix = np.array([[1.0, 0.0, 0.0, 1.0]])
        label = _future_any(matrix, horizon=2)
        assert label[0].tolist() == [0.0, 1.0, 1.0, 0.0]

    def test_horizon_of_one(self):
        matrix = np.array([[0.0, 1.0, 0.0]])
        label = _future_any(matrix, horizon=1)
        assert label[0].tolist() == [1.0, 0.0, 0.0]

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=3, max_size=25),
           st.integers(min_value=1, max_value=6))
    def test_matches_brute_force(self, counts, horizon):
        matrix = np.array([counts], dtype=float)
        label = _future_any(matrix, horizon)
        for day in range(len(counts)):
            expected = float(any(
                counts[d] > 0
                for d in range(day + 1, min(day + 1 + horizon, len(counts)))
            ))
            assert label[0, day] == expected


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc(np.array([0.1, 0.2, 0.8, 0.9]),
                       np.array([0, 0, 1, 1])) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc(np.array([0.9, 0.8, 0.2, 0.1]),
                       np.array([0, 0, 1, 1])) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(4000)
        labels = rng.random(4000) < 0.3
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.03)

    def test_ties_average(self):
        assert roc_auc(np.array([0.5, 0.5]), np.array([0, 1])) == 0.5

    def test_single_class_rejected(self):
        with pytest.raises(DataError):
            roc_auc(np.array([0.1, 0.2]), np.array([1, 1]))


@pytest.fixture(scope="module")
def dataset(small_run):
    return build_prediction_dataset(small_run)


class TestDataset:
    def test_columns_present(self, dataset):
        for name in PREDICTION_FEATURES + ("will_fail",):
            assert name in dataset

    def test_labels_are_binary(self, dataset):
        labels = np.unique(dataset.column("will_fail"))
        assert set(labels.tolist()) <= {0.0, 1.0}

    def test_censored_tail_dropped(self, dataset, small_run):
        days = dataset.column("day_index").astype(int)
        assert days.max() < small_run.n_days - 3

    def test_base_rate_reasonable(self, dataset):
        base = dataset.column("will_fail").mean()
        assert 0.03 < base < 0.6

    def test_history_features_nonnegative(self, dataset):
        assert dataset.column("trailing_failures").min() >= 0
        assert dataset.column("trailing_batchiness").min() >= 0


class TestTimeSplit:
    def test_chronological(self, dataset):
        train, test = time_split(dataset)
        assert train.column("day_index").max() <= test.column("day_index").min()

    def test_fraction_respected(self, dataset):
        train, test = time_split(dataset, train_fraction=0.5)
        assert 0.35 < train.n_rows / dataset.n_rows < 0.65

    def test_invalid_fraction_rejected(self, dataset):
        with pytest.raises(DataError):
            time_split(dataset, train_fraction=1.0)


class TestPredictor:
    @pytest.fixture(scope="class")
    def fitted(self, dataset):
        train, test = time_split(dataset)
        predictor = FailurePredictor().fit(train)
        return predictor, test

    def test_beats_chance_on_holdout(self, fitted):
        predictor, test = fitted
        metrics = predictor.evaluate(test)
        assert metrics.auc > 0.65

    def test_top_decile_concentrates_failures(self, fitted):
        predictor, test = fitted
        metrics = predictor.evaluate(test)
        assert metrics.precision_at_decile > 1.5 * metrics.base_rate

    def test_scores_are_probability_like(self, fitted):
        predictor, test = fitted
        scores = predictor.score(test)
        assert scores.min() >= 0.0
        assert scores.max() <= 1.0 + 1e-9

    def test_unfitted_rejected(self, dataset):
        with pytest.raises(FitError):
            FailurePredictor().score(dataset)

    def test_missing_label_rejected(self, dataset):
        stripped = dataset.select(list(PREDICTION_FEATURES))
        with pytest.raises(DataError):
            FailurePredictor().fit(stripped)

    def test_rebalancing_equalizes_class_weight(self, dataset):
        """With balanced weights the root prediction sits near 0.5."""
        train, _ = time_split(dataset)
        from repro.analysis.cart.tree import TreeParams

        stump = FailurePredictor(
            params=TreeParams(max_depth=0), rebalance=True,
        ).fit(train)
        assert stump.tree is not None
        assert stump.tree.root.prediction == pytest.approx(0.5, abs=1e-6)
