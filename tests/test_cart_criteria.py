"""CART criterion tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.cart.criteria import (
    gini_impurity,
    node_mean,
    node_sse,
    sse_split_scan,
)
from repro.errors import DataError

samples = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=2, max_size=40,
)


class TestNodeSse:
    def test_constant_node_has_zero_sse(self):
        assert node_sse(np.full(5, 3.0)) == pytest.approx(0.0)

    def test_matches_numpy_variance(self):
        y = np.array([1.0, 2.0, 4.0, 8.0])
        assert node_sse(y) == pytest.approx(np.var(y) * len(y))

    def test_weighted_sse(self):
        y = np.array([0.0, 10.0])
        w = np.array([3.0, 1.0])
        mean = 10.0 / 4.0
        expected = 3 * mean**2 + (10 - mean) ** 2
        assert node_sse(y, w) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            node_sse(np.array([]))

    def test_zero_weights_rejected(self):
        with pytest.raises(DataError):
            node_sse(np.array([1.0]), np.array([0.0]))


class TestNodeMean:
    def test_weighted_mean(self):
        assert node_mean(np.array([0.0, 10.0]), np.array([1.0, 3.0])) == pytest.approx(7.5)

    def test_unweighted(self):
        assert node_mean(np.array([2.0, 4.0])) == 3.0


class TestGini:
    def test_pure_node_zero(self):
        assert gini_impurity(np.array([1, 1, 1])) == pytest.approx(0.0)

    def test_balanced_binary_half(self):
        assert gini_impurity(np.array([0, 1, 0, 1])) == pytest.approx(0.5)

    def test_three_way_uniform(self):
        assert gini_impurity(np.array([0, 1, 2])) == pytest.approx(2.0 / 3.0)

    def test_weights_shift_impurity(self):
        labels = np.array([0, 1])
        heavy_zero = gini_impurity(labels, np.array([9.0, 1.0]))
        assert heavy_zero < 0.5


class TestSplitScan:
    @given(samples)
    def test_matches_direct_computation(self, values):
        y = np.array(values)
        w = np.ones(len(y))
        left_sse, right_sse = sse_split_scan(y, w)
        for i in range(len(y) - 1):
            assert left_sse[i] == pytest.approx(node_sse(y[:i + 1]), abs=1e-6)
            assert right_sse[i] == pytest.approx(node_sse(y[i + 1:]), abs=1e-6)

    @given(samples)
    def test_split_never_increases_total_sse(self, values):
        y = np.array(values)
        w = np.ones(len(y))
        left_sse, right_sse = sse_split_scan(y, w)
        parent = node_sse(y)
        assert np.all(left_sse + right_sse <= parent + 1e-6)

    def test_too_small_rejected(self):
        with pytest.raises(DataError):
            sse_split_scan(np.array([1.0]), np.array([1.0]))

    def test_weighted_scan(self):
        y = np.array([0.0, 0.0, 10.0, 10.0])
        w = np.array([1.0, 1.0, 2.0, 2.0])
        left_sse, right_sse = sse_split_scan(y, w)
        # Splitting between the 0s and 10s yields zero SSE on both sides.
        assert left_sse[1] + right_sse[1] == pytest.approx(0.0, abs=1e-9)
