"""AHU pressure/airflow (null-factor) tests."""

import numpy as np
import pytest

from repro.environment.airflow import (
    AhuSpec,
    AhuSystem,
    NOMINAL_PRESSURE_PA,
    attach_ahu_telemetry,
)
from repro.errors import ConfigError
from repro.rng import RngRegistry
from repro.telemetry.aggregate import build_rack_day_table


@pytest.fixture(scope="module")
def system(small_run):
    return AhuSystem(small_run.fleet, small_run.n_days, RngRegistry(5))


class TestAhuSystem:
    def test_every_rack_has_an_ahu(self, small_run, system):
        for rack_index in range(small_run.fleet.n_racks):
            ahu = system.ahu_of_rack(rack_index)
            rack = small_run.fleet.racks[rack_index]
            assert ahu.dc_name == rack.dc_name
            assert rack.row in ahu.rows

    def test_telemetry_shapes(self, small_run, system):
        assert system.pressure_pa.shape == (small_run.n_days, system.n_ahus)
        assert system.rack_pressure().shape == (
            small_run.n_days, small_run.fleet.n_racks
        )

    def test_pressure_wanders_around_nominal(self, system):
        assert abs(system.pressure_pa.mean() - NOMINAL_PRESSURE_PA) < 2.0
        assert system.pressure_pa.std() > 0.5

    def test_ahu_biases_persist(self, system):
        per_ahu_mean = system.pressure_pa.mean(axis=0)
        assert per_ahu_mean.std() > 0.5  # distinct duct geometries

    def test_validation(self, small_run):
        with pytest.raises(ConfigError):
            AhuSystem(small_run.fleet, 0, RngRegistry(1))
        with pytest.raises(ConfigError):
            AhuSpec("x", "DC1", rows=(), pressure_bias_pa=0.0,
                    airflow_bias_cfm=0.0)


class TestAttachTelemetry:
    def test_columns_added(self, small_run):
        table = build_rack_day_table(small_run)
        extended = attach_ahu_telemetry(table, small_run)
        assert "pressure_pa" in extended
        assert "airflow_cfm" in extended
        assert extended.n_rows == table.n_rows

    def test_deterministic_per_run(self, small_run):
        table = build_rack_day_table(small_run)
        a = attach_ahu_telemetry(table, small_run)
        b = attach_ahu_telemetry(table, small_run)
        assert np.allclose(a.column("pressure_pa"), b.column("pressure_pa"))


class TestNullFactor:
    def test_pressure_uncorrelated_with_failures(self, small_run):
        """The planted hazards ignore pressure; the data must agree."""
        table = attach_ahu_telemetry(
            build_rack_day_table(small_run), small_run,
        )
        pressure = table.column("pressure_pa").astype(float)
        failures = table.column("failures").astype(float)
        correlation = np.corrcoef(pressure, failures)[0, 1]
        assert abs(correlation) < 0.03

    def test_mf_assigns_null_factors_no_importance(self, small_run):
        from repro.analysis import MultiFactorModel, TreeParams

        table = attach_ahu_telemetry(
            build_rack_day_table(small_run), small_run,
        )
        model = MultiFactorModel.from_formula(
            "failures ~ pressure_pa, airflow_cfm, sku, workload, age_months",
            table,
            params=TreeParams(max_depth=5, min_split=400, min_bucket=150,
                              cp=1e-3),
        )
        importance = model.importance()
        assert importance.get("pressure_pa", 0.0) < 0.08
        assert importance.get("airflow_cfm", 0.0) < 0.08
        assert importance.get("sku", 0.0) > 0.3
