"""Engine calibration: the simulated data reproduces §IV/§V-B shapes.

These tests assert the *qualitative* findings (orderings, bands), not
exact percentages — the same standard the benchmark harness applies at
paper scale.
"""

import numpy as np
import pytest

from repro.failures.tickets import HARDWARE_FAULTS
from repro.reporting.tables import ticket_mix
from repro.failures.tickets import FaultType, TicketCategory, FAULT_CATEGORY
from repro.telemetry import build_rack_day_table, mean_rate_by


@pytest.fixture(scope="module")
def mix(small_run):
    return ticket_mix(small_run)


@pytest.fixture(scope="module")
def rates(small_context):
    return small_context.all_failures


class TestTableIIBands:
    def test_software_leads(self, mix):
        for dc in ("DC1", "DC2"):
            assert 38.0 < mix.category_share(dc, "Software") < 60.0

    def test_boot_band(self, mix):
        for dc in ("DC1", "DC2"):
            assert 8.0 < mix.category_share(dc, "Boot") < 18.0

    def test_hardware_band(self, mix):
        for dc in ("DC1", "DC2"):
            assert 18.0 < mix.category_share(dc, "Hardware") < 38.0

    def test_timeout_is_single_largest_type(self, mix):
        for dc in ("DC1", "DC2"):
            percentages = mix.percentages[dc]
            assert max(percentages, key=percentages.get) is FaultType.TIMEOUT

    def test_disk_leads_hardware(self, mix):
        for dc in ("DC1", "DC2"):
            percentages = mix.percentages[dc]
            hardware = {f: percentages[f] for f in FaultType
                        if FAULT_CATEGORY[f] is TicketCategory.HARDWARE}
            assert max(hardware, key=hardware.get) is FaultType.DISK

    def test_dc_contrasts(self, mix):
        dc1, dc2 = mix.percentages["DC1"], mix.percentages["DC2"]
        assert dc1[FaultType.DISK] > dc2[FaultType.DISK]
        assert dc1[FaultType.MEMORY] > dc2[FaultType.MEMORY]
        assert dc1[FaultType.NETWORK] > 2 * dc2[FaultType.NETWORK]
        assert dc1[FaultType.REBOOT] > 2 * dc2[FaultType.REBOOT]
        assert dc2[FaultType.POWER] > dc1[FaultType.POWER]
        assert dc2[FaultType.TIMEOUT] > dc1[FaultType.TIMEOUT]


class TestSpatialEffects:
    def test_dc1_fails_more_than_dc2(self, rates):
        by_dc = mean_rate_by(rates, "dc")
        assert by_dc["DC1"][0] > 1.1 * by_dc["DC2"][0]

    def test_intra_dc_variation(self, rates):
        by_region = mean_rate_by(rates, "region")
        dc1_rates = [v[0] for k, v in by_region.items() if k.startswith("DC1")]
        assert max(dc1_rates) > 1.3 * min(dc1_rates)


class TestTemporalEffects:
    def test_weekdays_fail_more(self, rates):
        by_dow = mean_rate_by(rates, "day_of_week")
        weekday = np.mean([by_dow[d][0] for d in ("Mon", "Tue", "Wed", "Thu", "Fri")])
        weekend = np.mean([by_dow[d][0] for d in ("Sat", "Sun")])
        assert weekday > 1.1 * weekend

    def test_second_half_of_year_elevated(self, rates):
        by_month = mean_rate_by(rates, "month")
        first_half = np.mean([by_month[m][0] for m in ("Jan", "Feb", "Mar", "Apr")])
        second_half = np.mean([by_month[m][0] for m in ("Jul", "Aug", "Sep")])
        assert second_half > first_half


class TestWorkloadEffects:
    def test_fig6_ordering(self, rates):
        by_wl = {k: v[0] for k, v in mean_rate_by(rates, "workload").items()}
        assert by_wl["W2"] == max(by_wl.values())
        # HPC is among the calmest workloads (per-rack rates also scale
        # with rack density, so W3 can tie with the storage-data pair).
        assert by_wl["W3"] <= 1.25 * min(by_wl.values())
        assert by_wl["W5"] < by_wl["W4"]
        assert by_wl["W6"] < by_wl["W7"]


class TestHardwareEffects:
    def test_low_humidity_elevates_failures(self, rates):
        rh = rates.column("rh").astype(float)
        failures = rates.column("failures").astype(float)
        dry = failures[rh < 25.0].mean()
        comfortable = failures[(rh > 40.0) & (rh < 60.0)].mean()
        assert dry > 1.1 * comfortable

    def test_high_power_racks_fail_more(self, rates):
        rated = rates.column("rated_power_kw").astype(float)
        failures = rates.column("failures").astype(float)
        dense = failures[rated > 12.0].mean()
        light = failures[rated <= 9.0].mean()
        assert dense > light

    def test_infant_mortality_visible(self, rates):
        age = rates.column("age_months").astype(float)
        failures = rates.column("failures").astype(float)
        young = failures[(age >= 0) & (age < 6)].mean()
        mature = failures[(age > 18) & (age < 40)].mean()
        assert young > 1.3 * mature

    def test_sku_hardware_confound(self, small_run):
        hardware = build_rack_day_table(small_run, faults=list(HARDWARE_FAULTS))
        by_sku = {k: v[0] for k, v in mean_rate_by(hardware, "sku").items()}
        assert by_sku["S2"] > 5.0 * by_sku["S4"]  # observed (confounded) gap
        assert by_sku["S2"] == max(by_sku.values())
