"""Call-graph builder: property tests over generated module trees.

The generator synthesizes random multi-module programs with a known
ground-truth edge set, then asserts the builder recovers exactly those
edges.  Shapes covered: direct cross-module imports, import *cycles*,
re-exports through a hub module, aliased imports, class-method
resolution through inheritance, decorated callees and
``functools.partial``-wrapped callees.  A final property plants a
ground-truth read at the end of a random-length call chain and asserts
the taint rule reports every hop.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.staticcheck import lint_sources
from repro.staticcheck.framework import ModuleInfo
from repro.staticcheck.wholeprogram.callgraph import CallGraph, Program
from repro.staticcheck.wholeprogram.summaries import summarize_module

PKG = "repro.genmod"


def link(sources: dict[str, str]) -> tuple[Program, CallGraph]:
    known = frozenset(sources)
    summaries = [
        summarize_module(ModuleInfo(
            source=text, name=name,
            path=__import__("pathlib").Path(name.replace(".", "/") + ".py"),
            known_modules=known,
        ))
        for name, text in sorted(sources.items())
    ]
    program = Program(summaries)
    return program, CallGraph.build(program)


def edge_set(program: Program, graph: CallGraph) -> set[tuple[str, str]]:
    return {
        (node, edge.callee)
        for node, _summary, _fn in program.iter_functions()
        for edge in graph.out_edges(node)
    }


# One generated program: `n` modules, function f{i} in module m{i}, and
# a random wiring of which function calls which.  Import style per edge
# is drawn independently: direct, aliased, or via the hub re-export.
@st.composite
def programs(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    # (caller, callee, style) triples; callee may be any module incl.
    # earlier ones (cycles arise when i calls j and j calls i).
    edges = draw(st.lists(
        st.tuples(
            st.integers(0, n - 1),
            st.integers(0, n - 1),
            st.sampled_from(["direct", "alias", "hub"]),
        ),
        max_size=10, unique_by=lambda e: (e[0], e[1]),
    ))
    edges = [e for e in edges if e[0] != e[1]]
    return n, edges


def build_sources(n: int, edges: list[tuple[int, int, str]]) -> dict[str, str]:
    hub_exports = sorted({callee for _c, callee, style in edges
                          if style == "hub"})
    sources: dict[str, str] = {
        f"{PKG}.hub": "".join(
            f"from .m{k} import f{k}\n" for k in hub_exports) or "pass\n",
    }
    for i in range(n):
        lines = []
        body: dict[int, list[str]] = {}
        for caller, callee, style in edges:
            if caller != i:
                continue
            if style == "direct":
                lines.append(f"from .m{callee} import f{callee}")
                call = f"f{callee}()"
            elif style == "alias":
                lines.append(f"from .m{callee} import f{callee} as g{callee}")
                call = f"g{callee}()"
            else:
                lines.append(f"from .hub import f{callee}")
                call = f"f{callee}()"
            body.setdefault(i, []).append(f"    {call}")
        lines.append(f"def f{i}():")
        lines.extend(body.get(i, []))
        lines.append("    return None")
        sources[f"{PKG}.m{i}"] = "\n".join(lines) + "\n"
    return sources


class TestGeneratedPrograms:
    @settings(max_examples=40, deadline=None)
    @given(programs())
    def test_edge_set_matches_construction(self, prog):
        n, edges = prog
        sources = build_sources(n, edges)
        program, graph = link(sources)
        expected = {
            (f"{PKG}.m{caller}:f{caller}", f"{PKG}.m{callee}:f{callee}")
            for caller, callee, _style in edges
        }
        got = {
            (c, k) for c, k in edge_set(program, graph)
            if c.split(":")[1].startswith("f")
        }
        assert got == expected

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=8))
    def test_taint_chain_reports_every_hop(self, depth):
        # f0 -> f1 -> ... -> f{depth-1}, the last one reads planted GT;
        # f0 lives in an analysis module so the chain must be flagged
        # and the message must name every intermediate hop.
        sources = {}
        for i in range(depth - 1):
            module = (f"{PKG}.m{i}" if i else "repro.analysis.entry")
            sources[module] = (
                f"from ..genmod.m{i + 1} import f{i + 1}\n"
                if i == 0 else
                f"from .m{i + 1} import f{i + 1}\n"
            ) + f"def f{i}(event):\n    return f{i + 1}(event)\n"
        sources[f"{PKG}.m{depth - 1}"] = (
            f"def f{depth - 1}(event):\n"
            "    return event.hazard_multiplier\n"
        )
        findings = [f for f in lint_sources(sources) if f.rule == "GT-taint"]
        assert findings
        message = findings[0].message
        for i in range(1, depth):
            assert f"f{i}" in message, f"hop f{i} missing from chain"


class TestImportCycles:
    def test_mutual_recursion_across_modules(self):
        sources = {
            f"{PKG}.m0": (
                "from .m1 import f1\n"
                "def f0(n):\n"
                "    return f1(n - 1)\n"
            ),
            f"{PKG}.m1": (
                "from .m0 import f0\n"
                "def f1(n):\n"
                "    return f0(n - 1)\n"
            ),
        }
        program, graph = link(sources)
        assert (f"{PKG}.m0:f0", f"{PKG}.m1:f1") in edge_set(program, graph)
        assert (f"{PKG}.m1:f1", f"{PKG}.m0:f0") in edge_set(program, graph)

    def test_reachability_terminates_on_cycles(self):
        sources = {
            f"{PKG}.m0": "from .m1 import f1\ndef f0():\n    return f1()\n",
            f"{PKG}.m1": "from .m0 import f0\ndef f1():\n    return f0()\n",
        }
        program, graph = link(sources)
        reach = graph.reachable([f"{PKG}.m0:f0"])
        assert f"{PKG}.m1:f1" in reach
        assert f"{PKG}.m0:f0" in reach


class TestResolutionShapes:
    def test_method_resolution_through_inheritance(self):
        sources = {
            f"{PKG}.base": (
                "class Base:\n"
                "    def compute(self):\n"
                "        return 1\n"
            ),
            f"{PKG}.sub": (
                "from .base import Base\n"
                "class Sub(Base):\n"
                "    pass\n"
                "def use():\n"
                "    x = Sub()\n"
                "    return x.compute()\n"
            ),
        }
        program, graph = link(sources)
        # Sub has no compute; the call resolves to the inherited one.
        assert (f"{PKG}.sub:use", f"{PKG}.base:Base.compute") in edge_set(
            program, graph)

    def test_override_beats_base_method(self):
        sources = {
            f"{PKG}.base": (
                "class Base:\n"
                "    def compute(self):\n"
                "        return 1\n"
            ),
            f"{PKG}.sub": (
                "from .base import Base\n"
                "class Sub(Base):\n"
                "    def compute(self):\n"
                "        return 2\n"
                "def use():\n"
                "    x = Sub()\n"
                "    return x.compute()\n"
            ),
        }
        program, graph = link(sources)
        edges = edge_set(program, graph)
        assert (f"{PKG}.sub:use", f"{PKG}.sub:Sub.compute") in edges
        assert (f"{PKG}.sub:use", f"{PKG}.base:Base.compute") not in edges

    def test_decorated_callee_still_resolves(self):
        sources = {
            f"{PKG}.m0": (
                "import functools\n"
                "@functools.lru_cache(maxsize=None)\n"
                "def cached(n):\n"
                "    return n\n"
                "def use():\n"
                "    return cached(3)\n"
            ),
        }
        program, graph = link(sources)
        assert (f"{PKG}.m0:use", f"{PKG}.m0:cached") in edge_set(
            program, graph)

    def test_partial_wrapped_callee_records_edge(self):
        sources = {
            f"{PKG}.m0": (
                "import functools\n"
                "def target(a, b):\n"
                "    return a + b\n"
                "def use():\n"
                "    h = functools.partial(target, 1)\n"
                "    return h(2)\n"
            ),
        }
        program, graph = link(sources)
        assert (f"{PKG}.m0:use", f"{PKG}.m0:target") in edge_set(
            program, graph)

    def test_local_alias_of_imported_function(self):
        sources = {
            f"{PKG}.m0": "def f0():\n    return 1\n",
            f"{PKG}.m1": (
                "from .m0 import f0\n"
                "g = f0\n"
                "def use():\n"
                "    return g()\n"
            ),
        }
        program, graph = link(sources)
        assert (f"{PKG}.m1:use", f"{PKG}.m0:f0") in edge_set(program, graph)

    def test_dynamic_dispatch_under_approximates(self):
        # An attribute call on an unknown object must produce NO edge
        # (precision over recall: no edge explosion on duck typing).
        sources = {
            f"{PKG}.m0": (
                "def use(thing):\n"
                "    return thing.compute()\n"
            ),
        }
        program, graph = link(sources)
        assert edge_set(program, graph) == set()


@pytest.fixture(autouse=True)
def _no_cache_noise(tmp_path, monkeypatch):
    # Property tests hammer lint_sources; keep any ambient lint cache
    # env var from turning fixtures into disk traffic.
    monkeypatch.delenv("REPRO_LINT_CACHE", raising=False)
