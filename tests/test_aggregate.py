"""Aggregation-layer tests: λ/μ matrices and the rack-day table."""

import numpy as np
import pytest

from repro.failures.tickets import FaultType
from repro.telemetry.aggregate import (
    build_rack_day_table,
    commissioned_mask_matrix,
    day_feature_arrays,
    lambda_matrix,
    mean_rate_by,
    merge_per_server_intervals,
    mu_matrix,
    rack_static_table,
    ticket_mask,
)


class TestTicketMask:
    def test_true_positives_filtered(self, tiny_run):
        mask = ticket_mask(tiny_run)
        assert mask.sum() == tiny_run.tickets.true_positive_mask().sum()

    def test_fault_filter(self, tiny_run):
        mask = ticket_mask(tiny_run, faults=[FaultType.DISK])
        codes = tiny_run.tickets.fault_code[mask]
        from repro.failures.tickets import FAULT_CODE

        assert set(np.unique(codes)) <= {FAULT_CODE[FaultType.DISK]}

    def test_dedupe_reduces_count(self, small_run):
        plain = ticket_mask(small_run).sum()
        deduped = ticket_mask(small_run, dedupe_batches=True).sum()
        assert deduped < plain


class TestLambdaMatrix:
    def test_shape(self, tiny_run):
        counts = lambda_matrix(tiny_run)
        arrays = tiny_run.fleet.arrays()
        assert counts.shape == (arrays.n_racks, tiny_run.n_days)

    def test_total_matches_ticket_count(self, tiny_run):
        counts = lambda_matrix(tiny_run, dedupe_batches=False)
        expected = ticket_mask(tiny_run).sum()
        assert counts.sum() == expected

    def test_dedupe_counts_batches_once(self, small_run):
        with_dedupe = lambda_matrix(small_run).sum()
        without = lambda_matrix(small_run, dedupe_batches=False).sum()
        assert with_dedupe < without


class TestMuMatrix:
    def test_mu_nonnegative_and_bounded(self, small_run):
        mu = mu_matrix(small_run, 24.0)
        arrays = small_run.fleet.arrays()
        assert mu.min() >= 0
        # Per-server merging caps μ by rack capacity.
        assert np.all(mu.max(axis=1) <= arrays.n_servers)

    def test_hourly_windows_leq_daily(self, small_run):
        daily = mu_matrix(small_run, 24.0)
        hourly = mu_matrix(small_run, 1.0)
        # Each daily window's μ dominates any of its hourly windows'.
        n_days = daily.shape[1]
        hourly_by_day = hourly[:, :n_days * 24].reshape(daily.shape[0], n_days, 24)
        assert np.all(hourly_by_day.max(axis=2) <= daily)

    def test_raw_device_mu_exceeds_merged(self, small_run):
        merged = mu_matrix(small_run, 24.0, per_server=True)
        raw = mu_matrix(small_run, 24.0, per_server=False)
        assert raw.sum() >= merged.sum()

    def test_disk_only_mu_smaller(self, small_run):
        all_mu = mu_matrix(small_run, 24.0, per_server=False)
        disk_mu = mu_matrix(small_run, 24.0, faults=[FaultType.DISK], per_server=False)
        assert disk_mu.sum() < all_mu.sum()


class TestMergeIntervals:
    def test_overlapping_same_server_merged(self):
        gid, start, end = merge_per_server_intervals(
            np.array([7, 7]), np.array([0.0, 5.0]), np.array([10.0, 20.0])
        )
        assert gid.tolist() == [7]
        assert start.tolist() == [0.0]
        assert end.tolist() == [20.0]

    def test_disjoint_same_server_kept_separate(self):
        gid, start, end = merge_per_server_intervals(
            np.array([7, 7]), np.array([0.0, 50.0]), np.array([10.0, 60.0])
        )
        assert len(gid) == 2

    def test_different_servers_never_merged(self):
        gid, _, _ = merge_per_server_intervals(
            np.array([1, 2]), np.array([0.0, 0.0]), np.array([10.0, 10.0])
        )
        assert sorted(gid.tolist()) == [1, 2]

    def test_empty_input(self):
        gid, start, end = merge_per_server_intervals(
            np.array([], dtype=int), np.array([]), np.array([])
        )
        assert len(gid) == 0


class TestRackDayTable:
    def test_row_count_is_commissioned_rack_days(self, tiny_run):
        table = build_rack_day_table(tiny_run)
        expected = commissioned_mask_matrix(tiny_run).sum()
        assert table.n_rows == expected

    def test_failures_sum_matches_lambda(self, tiny_run):
        table = build_rack_day_table(tiny_run)
        assert table.column("failures").sum() == lambda_matrix(tiny_run).sum()

    def test_environment_columns_filled(self, tiny_run):
        table = build_rack_day_table(tiny_run)
        assert not np.isnan(table.column("temp_f")).any()
        assert not np.isnan(table.column("rh")).any()

    def test_ground_truth_environment_option(self, tiny_run):
        observed = build_rack_day_table(tiny_run)
        truth = build_rack_day_table(tiny_run, use_observed_environment=False)
        # Sensor noise makes them differ, but only slightly.
        diff = observed.column("temp_f") - truth.column("temp_f")
        assert 0.0 < np.abs(diff).mean() < 1.0

    def test_extra_fault_columns(self, tiny_run):
        table = build_rack_day_table(
            tiny_run, extra_fault_columns={"disk_failures": [FaultType.DISK]}
        )
        assert "disk_failures" in table
        assert table.column("disk_failures").sum() <= table.column("failures").sum()

    def test_mu_columns(self, tiny_run):
        table = build_rack_day_table(tiny_run, include_mu=True)
        assert "mu" in table and "mu_fraction" in table
        assert np.all(table.column("mu_fraction") <= 1.0 + 1e-9)

    def test_age_never_negative(self, tiny_run):
        table = build_rack_day_table(tiny_run)
        assert table.column("age_months").min() >= 0.0

    def test_categorical_columns_decodable(self, tiny_run):
        table = build_rack_day_table(tiny_run)
        assert set(np.unique(table.decoded("dc"))) <= {"DC1", "DC2"}
        assert all(w.startswith("W") for w in np.unique(table.decoded("workload")))


class TestRackStaticTable:
    def test_one_row_per_rack(self, tiny_run):
        static = rack_static_table(tiny_run)
        assert static.n_rows == tiny_run.fleet.n_racks

    def test_component_counts(self, tiny_run):
        static = rack_static_table(tiny_run)
        arrays = tiny_run.fleet.arrays()
        assert np.array_equal(static.column("n_servers"), arrays.n_servers)
        assert np.array_equal(
            static.column("n_hdds"), arrays.n_servers * arrays.hdds_per_server
        )


class TestDayFeatures:
    def test_arrays_have_run_length(self, tiny_run):
        features = day_feature_arrays(tiny_run)
        for values in features.values():
            assert len(values) == tiny_run.n_days

    def test_day_of_week_cycles(self, tiny_run):
        dow = day_feature_arrays(tiny_run)["day_of_week"]
        assert np.array_equal(dow[:7], np.arange(7))
        assert dow[7] == dow[0]


class TestMeanRateBy:
    def test_matches_manual_grouping(self, tiny_run):
        table = build_rack_day_table(tiny_run)
        stats = mean_rate_by(table, "dc")
        failures = table.column("failures").astype(float)
        dc1_mask = table.decoded("dc") == "DC1"
        assert stats["DC1"][0] == pytest.approx(failures[np.asarray(dc1_mask)].mean())
        assert stats["DC1"][2] == int(np.asarray(dc1_mask).sum())
