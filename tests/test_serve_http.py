"""HTTP edge: parsing, routing, status mapping, graceful shutdown."""

from __future__ import annotations

import asyncio
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import build_app
from repro.serve.http import (
    MAX_BODY_BYTES,
    Request,
    error_body,
    render_response,
)

TINY = {"seed": 5, "scale": 0.05, "days": 60}


def _request(method, target, body=b"", headers=None):
    return Request(method, target, headers or {}, body)


class TestRequestParsing:
    def test_query_string_split(self):
        request = _request("GET", "/v1/fleets/x/q1?sla=0.95&workload=W2")
        assert request.path == "/v1/fleets/x/q1"
        assert request.query == {"sla": "0.95", "workload": "W2"}

    def test_json_body(self):
        request = _request("POST", "/v1/fleets", b'{"seed": 3}')
        assert request.json() == {"seed": 3}

    def test_empty_body_is_empty_object(self):
        assert _request("POST", "/v1/fleets").json() == {}

    def test_garbled_body_rejected(self):
        from repro.serve.http import HttpError

        with pytest.raises(HttpError) as err:
            _request("POST", "/v1/fleets", b"{nope").json()
        assert err.value.status == 400

    def test_non_object_body_rejected(self):
        from repro.serve.http import HttpError

        with pytest.raises(HttpError):
            _request("POST", "/v1/fleets", b"[1, 2]").json()

    def test_tenant_header(self):
        request = _request("GET", "/healthz", headers={"x-tenant": "acme"})
        assert request.tenant == "acme"

    def test_render_response_framing(self):
        raw = render_response(200, {"a": 1})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert json.loads(body) == {"a": 1}

    def test_error_body_shape(self):
        assert error_body("x", "y") == {
            "schema": 1, "error": {"code": "x", "message": "y"},
        }


@pytest.fixture()
def app(tmp_path):
    application = build_app(store_dir=str(tmp_path), workers=2,
                            use_threads=True)
    application.service.register_fleet(TINY, name="tiny")
    return application


def dispatch(app, method, target, body=b"", headers=None):
    return asyncio.run(app.dispatch(_request(method, target, body, headers)))


class TestRouting:
    def test_healthz(self, app):
        status, payload = dispatch(app, "GET", "/healthz")
        assert (status, payload["status"]) == (200, "ok")

    def test_metrics(self, app):
        status, payload = dispatch(app, "GET", "/metrics")
        assert status == 200 and payload["schema"] == 1

    def test_register_and_list(self, app):
        status, payload = dispatch(
            app, "POST", "/v1/fleets",
            json.dumps({"name": "other",
                        "params": dict(TINY, seed=9)}).encode(),
            headers={"x-tenant": "acme"},
        )
        assert status == 200 and len(payload["fleet_id"]) == 32
        status, listing = dispatch(app, "GET", "/v1/fleets?tenant=acme")
        assert status == 200
        assert [row["name"] for row in listing["fleets"]] == ["other"]

    def test_register_params_at_top_level(self, app):
        status, payload = dispatch(
            app, "POST", "/v1/fleets",
            json.dumps({"seed": 9, "scale": 0.05, "days": 60}).encode(),
        )
        assert status == 200 and payload["params"]["seed"] == 9

    def test_query_roundtrip(self, app):
        status, payload = dispatch(app, "GET", "/v1/fleets/tiny/q1")
        assert status == 200
        assert set(payload["plans"]) == {"LB", "SF", "MF"}
        assert payload["meta"]["served_from"] == "computed"
        status, payload = dispatch(app, "GET", "/v1/fleets/tiny/q1")
        assert payload["meta"]["served_from"] == "cache"

    def test_events_route(self, app):
        status, payload = dispatch(
            app, "GET", "/v1/fleets/tiny/events?offset=0&limit=3")
        assert status == 200 and payload["count"] == 3

    def test_unknown_route_404(self, app):
        status, payload = dispatch(app, "GET", "/nope")
        assert (status, payload["error"]["code"]) == (404, "not_found")

    def test_unknown_fleet_404(self, app):
        status, payload = dispatch(app, "GET", "/v1/fleets/ghost123/q1")
        assert (status, payload["error"]["code"]) == (404, "unknown_fleet")

    def test_unknown_leaf_404(self, app):
        status, payload = dispatch(app, "GET", "/v1/fleets/tiny/q7")
        assert status == 404

    def test_bad_parameter_422(self, app):
        status, payload = dispatch(app, "GET", "/v1/fleets/tiny/q1?sla=2")
        assert (status, payload["error"]["code"]) == (422, "invalid_request")

    def test_non_numeric_offset_422(self, app):
        status, payload = dispatch(
            app, "GET", "/v1/fleets/tiny/events?offset=x")
        assert (status, payload["error"]["code"]) == (422, "bad_parameter")

    def test_wrong_method_405(self, app):
        status, _ = dispatch(app, "POST", "/metrics")
        assert status == 405

    def test_draining_healthz_503(self, app):
        app.service.draining = True
        status, payload = dispatch(app, "GET", "/healthz")
        assert (status, payload["error"]["code"]) == (503, "draining")
        status, _ = dispatch(app, "GET", "/v1/fleets/tiny/q1")
        assert status == 503


class TestSocketServer:
    """End-to-end over a real loopback socket."""

    def _run(self, app, scenario):
        async def go():
            host, port = await app.start(port=0)
            loop = asyncio.get_running_loop()
            try:
                return await scenario(loop, f"http://{host}:{port}")
            finally:
                await app.shutdown(drain_timeout_s=10.0)

        return asyncio.run(go())

    @staticmethod
    def _get(base, path):
        try:
            with urllib.request.urlopen(base + path, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_roundtrip_and_metrics(self, app):
        async def scenario(loop, base):
            status, q1 = await loop.run_in_executor(
                None, self._get, base, "/v1/fleets/tiny/q1")
            assert status == 200 and q1["meta"]["served_from"] == "computed"
            status, metrics = await loop.run_in_executor(
                None, self._get, base, "/metrics")
            assert metrics["endpoints"]["q1"]["requests"] == 1
            status, missing = await loop.run_in_executor(
                None, self._get, base, "/v1/fleets/ghost123/q1")
            assert status == 404
            return True

        assert self._run(app, scenario)

    def test_oversized_body_413(self, app):
        async def scenario(loop, base):
            def post_big():
                body = b"x" * (MAX_BODY_BYTES + 1)
                request = urllib.request.Request(
                    base + "/v1/fleets", data=body, method="POST")
                try:
                    urllib.request.urlopen(request, timeout=30)
                except urllib.error.HTTPError as error:
                    return error.code
                return None

            return await loop.run_in_executor(None, post_big)

        assert self._run(app, scenario) == 413

    def test_graceful_shutdown_completes_in_flight(
            self, app, monkeypatch):
        """Acceptance: shutdown lets a running query finish with 200."""
        def slowish(*args):
            time.sleep(0.4)
            return {"answer": 41}

        monkeypatch.setattr("repro.serve.service.compute_query_payload",
                            slowish)

        async def go():
            host, port = await app.start(port=0)
            base = f"http://{host}:{port}"
            loop = asyncio.get_running_loop()
            in_flight = loop.run_in_executor(
                None, self._get, base, "/v1/fleets/tiny/q1")
            await asyncio.sleep(0.1)  # request reaches the worker
            await app.shutdown(drain_timeout_s=10.0)
            return await in_flight

        status, payload = asyncio.run(go())
        assert status == 200
        assert payload["answer"] == 41
