"""Spare-pooling and proactive-maintenance extension tests."""

import pytest

from repro.decisions.availability import AvailabilitySla
from repro.decisions.pooling import pooling_analysis
from repro.decisions.proactive import (
    ProactivePolicy,
    evaluate_policy,
    policy_curve,
)
from repro.errors import ConfigError, DataError


class TestPooling:
    @pytest.fixture(scope="class")
    def analysis(self, small_run):
        return pooling_analysis(small_run, "DC1")

    def test_sharing_never_needs_more(self, small_run):
        for dc in ("DC1", "DC2"):
            for level in (0.95, 1.0):
                analysis = pooling_analysis(small_run, dc, AvailabilitySla(level))
                assert analysis.shared_spares <= analysis.dedicated_total + 1e-9
                assert analysis.diversification_benefit >= -1e-9

    def test_benefit_is_material_at_full_sla(self, analysis):
        """Concurrent failures across workloads rarely align."""
        assert analysis.benefit_fraction > 0.2

    def test_every_hosted_workload_has_a_pool(self, analysis, small_run):
        hosted = {rack.workload
                  for rack in small_run.fleet.datacenter("DC1").racks}
        assert set(analysis.dedicated_spares) == hosted

    def test_unknown_dc_rejected(self, small_run):
        with pytest.raises(DataError):
            pooling_analysis(small_run, "DC9")

    def test_render(self, analysis):
        text = analysis.render()
        assert "shared pool" in text
        assert "DC1" in text


class TestProactivePolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ProactivePolicy(act_fraction=0.0)
        with pytest.raises(ConfigError):
            ProactivePolicy(prevention_effectiveness=1.5)
        with pytest.raises(ConfigError):
            ProactivePolicy(intervention_cost=-1.0)


class TestEvaluatePolicy:
    @pytest.fixture(scope="class")
    def outcome(self, small_run):
        return evaluate_policy(small_run, ProactivePolicy(act_fraction=0.05))

    def test_accounting_consistency(self, outcome):
        assert outcome.failures_prevented <= outcome.failures_in_scope
        assert outcome.averted_cost == pytest.approx(
            outcome.failures_prevented * outcome.policy.failure_cost
        )
        assert outcome.intervention_cost == pytest.approx(
            outcome.n_interventions * outcome.policy.intervention_cost
        )
        assert outcome.net_savings == pytest.approx(
            outcome.averted_cost - outcome.intervention_cost
        )

    def test_predictions_pay_off(self, outcome):
        """Acting on the model's top 5% beats doing nothing."""
        assert outcome.net_savings > 0
        assert outcome.prevention_share > 0.05

    def test_targeting_beats_base_rate(self, outcome):
        """Prevented-per-intervention beats the random expectation."""
        per_intervention = outcome.failures_prevented / outcome.n_interventions
        # Random coverage would avert ~effectiveness × window × mean
        # per-rack-day rate; the targeted policy must do much better.
        assert per_intervention > 0.1

    def test_zero_effectiveness_prevents_nothing(self, small_run):
        outcome = evaluate_policy(
            small_run,
            ProactivePolicy(act_fraction=0.05, prevention_effectiveness=0.0),
        )
        assert outcome.failures_prevented == 0.0
        assert outcome.net_savings < 0  # paid for visits, averted nothing


class TestPolicyCurve:
    def test_curve_monotone_in_coverage(self, small_run):
        outcomes = policy_curve(small_run, act_fractions=(0.02, 0.05, 0.10))
        prevented = [o.failures_prevented for o in outcomes]
        assert prevented == sorted(prevented)
        interventions = [o.n_interventions for o in outcomes]
        assert interventions == sorted(interventions)

    def test_marginal_yield_declines(self, small_run):
        """The model ranks well: early interventions avert more each."""
        outcomes = policy_curve(small_run, act_fractions=(0.02, 0.20))
        small, large = outcomes
        yield_small = small.failures_prevented / small.n_interventions
        yield_large = large.failures_prevented / large.n_interventions
        assert yield_small > yield_large

    def test_empty_fractions_rejected(self, small_run):
        with pytest.raises(DataError):
            policy_curve(small_run, act_fractions=())
