"""Best-split search tests."""

import numpy as np
import pytest

from repro.analysis.cart.splitter import (
    Split,
    best_split,
    best_split_for_feature,
)
from repro.errors import DataError
from repro.telemetry.schema import FeatureKind, FeatureSpec


def continuous(name="x"):
    return FeatureSpec(name, FeatureKind.CONTINUOUS)


def nominal(name="c", k=4):
    return FeatureSpec(name, FeatureKind.NOMINAL,
                       tuple(f"cat{i}" for i in range(k)))


class TestThresholdSplits:
    def test_recovers_step_location(self):
        x = np.linspace(0, 10, 200)
        y = np.where(x <= 4.0, 1.0, 5.0)
        split = best_split_for_feature(x, y, np.ones(200), continuous(), 0, 5)
        assert split is not None
        assert split.threshold == pytest.approx(4.0, abs=0.2)
        assert split.gain > 0

    def test_no_split_on_constant_response(self):
        x = np.linspace(0, 1, 50)
        y = np.full(50, 2.0)
        split = best_split_for_feature(x, y, np.ones(50), continuous(), 0, 5)
        assert split is None or split.gain == pytest.approx(0.0, abs=1e-9)

    def test_no_split_on_constant_feature(self):
        x = np.full(50, 1.0)
        y = np.random.default_rng(0).normal(size=50)
        assert best_split_for_feature(x, y, np.ones(50), continuous(), 0, 5) is None

    def test_min_bucket_respected(self):
        x = np.arange(10, dtype=float)
        y = np.where(x <= 0.5, 100.0, 0.0)  # best cut isolates one row
        split = best_split_for_feature(x, y, np.ones(10), continuous(), 0, 3)
        if split is not None:
            assert split.n_left >= 3
            assert split.n_right >= 3

    def test_too_few_rows_returns_none(self):
        x = np.array([1.0, 2.0])
        y = np.array([0.0, 1.0])
        assert best_split_for_feature(x, y, np.ones(2), continuous(), 0, 2) is None


class TestNominalSplits:
    def test_recovers_category_partition(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, 400).astype(float)
        y = np.where(np.isin(codes, [1, 3]), 10.0, 0.0) + rng.normal(0, 0.1, 400)
        split = best_split_for_feature(codes, y, np.ones(400), nominal(), 0, 10)
        assert split is not None
        assert split.left_categories is not None
        left = split.left_categories
        assert left in (frozenset({1, 3}), frozenset({0, 2}))

    def test_single_category_returns_none(self):
        codes = np.zeros(50)
        y = np.random.default_rng(0).normal(size=50)
        assert best_split_for_feature(codes, y, np.ones(50), nominal(), 0, 5) is None

    def test_goes_left_routes_by_membership(self):
        split = Split(
            feature_index=0, feature_name="c", kind=FeatureKind.NOMINAL,
            gain=1.0, n_left=1, n_right=1, left_categories=frozenset({0, 2}),
        )
        routed = split.goes_left(np.array([0.0, 1.0, 2.0, 3.0]))
        assert routed.tolist() == [True, False, True, False]


class TestSplitDataclass:
    def test_nominal_without_categories_rejected(self):
        with pytest.raises(DataError):
            Split(feature_index=0, feature_name="c", kind=FeatureKind.NOMINAL,
                  gain=1.0, n_left=1, n_right=1)

    def test_threshold_split_without_threshold_rejected(self):
        with pytest.raises(DataError):
            Split(feature_index=0, feature_name="x", kind=FeatureKind.CONTINUOUS,
                  gain=1.0, n_left=1, n_right=1)

    def test_describe_continuous(self):
        split = Split(feature_index=0, feature_name="temp_f",
                      kind=FeatureKind.CONTINUOUS, gain=1.0,
                      n_left=1, n_right=1, threshold=78.0)
        assert split.describe() == "temp_f <= 78"

    def test_describe_nominal_with_labels(self):
        spec = nominal()
        split = Split(feature_index=0, feature_name="c", kind=FeatureKind.NOMINAL,
                      gain=1.0, n_left=1, n_right=1,
                      left_categories=frozenset({0, 2}))
        assert split.describe(spec) == "c in {cat0, cat2}"

    def test_describe_ordinal_with_labels(self):
        spec = FeatureSpec("day", FeatureKind.ORDINAL, ("Sun", "Mon", "Tue"))
        split = Split(feature_index=0, feature_name="day", kind=FeatureKind.ORDINAL,
                      gain=1.0, n_left=1, n_right=1, threshold=1.5)
        assert split.describe(spec) == "day <= Mon"


class TestBestSplitAcrossFeatures:
    def test_picks_most_informative_feature(self):
        rng = np.random.default_rng(1)
        n = 300
        informative = rng.uniform(0, 1, n)
        noise = rng.uniform(0, 1, n)
        y = np.where(informative <= 0.5, 0.0, 4.0) + rng.normal(0, 0.1, n)
        matrix = np.column_stack([noise, informative])
        specs = [continuous("noise"), continuous("signal")]
        split = best_split(matrix, y, np.ones(n), specs, 10)
        assert split is not None
        assert split.feature_name == "signal"
        assert split.feature_index == 1

    def test_schema_mismatch_rejected(self):
        with pytest.raises(DataError):
            best_split(np.zeros((5, 2)), np.zeros(5), np.ones(5),
                       [continuous()], 2)

    def test_mixed_types_handled(self):
        rng = np.random.default_rng(2)
        n = 200
        codes = rng.integers(0, 3, n).astype(float)
        x = rng.uniform(size=n)
        y = np.where(codes == 1, 5.0, 0.0)
        matrix = np.column_stack([x, codes])
        specs = [continuous("x"), nominal("c", 3)]
        split = best_split(matrix, y, np.ones(n), specs, 10)
        assert split is not None
        assert split.feature_name == "c"
