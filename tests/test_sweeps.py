"""Robustness-sweep module tests (fast, restricted metrics)."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.failures.engine import SimulationResult
from repro.reporting.sweeps import MetricSummary, render_sweep, run_sweep


def ticket_count(result: SimulationResult) -> float:
    return float(len(result.tickets))


def always_fails(result: SimulationResult) -> float:
    raise DataError("nope")


FAST_METRICS = {
    "tickets": (ticket_count, None),
    "impossible": (always_fails, 1.0),
}


class TestRunSweep:
    @pytest.fixture(scope="class")
    def summaries(self):
        return run_sweep([101, 102], scale=0.03, n_days=60,
                         metrics=FAST_METRICS)

    def test_one_value_per_seed(self, summaries):
        by_name = {s.name: s for s in summaries}
        assert len(by_name["tickets"].values) == 2
        assert by_name["tickets"].n_computable == 2

    def test_seeds_differ(self, summaries):
        by_name = {s.name: s for s in summaries}
        values = by_name["tickets"].values
        assert values[0] != values[1]

    def test_failing_metric_records_nan(self, summaries):
        by_name = {s.name: s for s in summaries}
        assert by_name["impossible"].n_computable == 0
        assert np.isnan(by_name["impossible"].values).all()

    def test_empty_seeds_rejected(self):
        with pytest.raises(DataError):
            run_sweep([], metrics=FAST_METRICS)

    def test_render(self, summaries):
        text = render_sweep(summaries, [101, 102])
        assert "tickets" in text
        assert "(paper: 1)" in text


class TestMetricSummary:
    def test_statistics(self):
        summary = MetricSummary("m", np.array([1.0, 3.0, np.nan]))
        assert summary.mean == pytest.approx(2.0)
        assert summary.spread == pytest.approx(1.0)
        assert summary.n_computable == 2

    def test_render_without_paper_value(self):
        summary = MetricSummary("m", np.array([1.0]))
        assert "paper" not in summary.render()
