"""Ground-truth recovery: the MF framework finds what the generator hid.

This is the capability the paper could only argue for qualitatively —
because we *planted* the factor structure, we can check the analysis
layer actually recovers it from tickets + sensors + inventory alone.
"""

import pytest

from repro.analysis import MultiFactorModel, TreeParams
from repro.decisions import (
    compare_skus,
    discover_climate_thresholds,
    procurement_scenarios,
)


@pytest.fixture(scope="module")
def comparison(small_context):
    return compare_skus(small_context.result, table=small_context.hardware_failures)


class TestQ2Recovery:
    def test_sf_overestimates_mf_corrects(self, comparison):
        """The headline Fig 14-vs-15 contrast, from data alone."""
        sf = comparison.sf_ratio("S2", "S4", "mean")
        mf = comparison.mf_ratio("S2", "S4", "mean")
        intrinsic = 2.8 / 0.7  # planted SKU hazard ratio
        assert sf > 1.5 * intrinsic          # confounds inflate SF
        assert abs(mf - intrinsic) < abs(sf - intrinsic)  # MF closer

    def test_mf_reduces_variance(self, comparison):
        """§VI-Q2: 'a significant drop in variation'."""
        assert comparison.mf_mean["S2"].sd < comparison.sf_mean["S2"].sd

    def test_tco_reversal_direction(self, comparison):
        scenarios = procurement_scenarios(comparison, price_ratios=(1.0, 1.5))
        equal, premium = scenarios
        # At equal prices both favour S4; the premium hurts MF more
        # (because MF knows S2 is not as bad as it looks).
        assert equal.sf_savings > 0 and equal.mf_savings > 0
        assert premium.mf_savings < premium.sf_savings
        assert premium.mf_savings < 0.05


class TestQ3Recovery:
    def test_dc1_thresholds_recovered(self, small_context):
        found = discover_climate_thresholds(
            small_context.result, "DC1", table=small_context.disk_failures,
        )
        # Ground truth plants a step at 78 F gated by RH 25.
        assert found.temp_threshold_f is not None
        assert abs(found.temp_threshold_f - 78.0) < 6.0

    def test_dc2_has_no_thermal_signal(self, small_context):
        found = discover_climate_thresholds(
            small_context.result, "DC2", table=small_context.disk_failures,
        )
        assert found.temp_threshold_f is None


class TestFactorImportance:
    def test_hardware_tree_ranks_planted_factors(self, small_context):
        """A Cat. 1 fit surfaces the factors the generator actually uses."""
        model = MultiFactorModel.from_formula(
            "failures ~ sku, dc, workload, age_months, rated_power_kw, "
            "region, temp_f, rh",
            small_context.hardware_failures,
            params=TreeParams(max_depth=6, min_split=400, min_bucket=150, cp=1e-3),
        )
        importance = model.importance()
        assert importance  # something was found
        top = list(importance)[0]
        # SKU (with its correlated confounds) carries the largest share.
        assert top in ("sku", "workload", "age_months")
        assert importance[top] > 0.3

    def test_day_of_week_irrelevant_for_hardware(self, small_context):
        model = MultiFactorModel.from_formula(
            "failures ~ sku, age_months, day_of_week",
            small_context.hardware_failures,
            params=TreeParams(max_depth=5, min_split=400, min_bucket=150, cp=1e-3),
        )
        importance = model.importance()
        assert importance.get("day_of_week", 0.0) < 0.1
