"""Example-script smoke test (the fastest example, end to end)."""

import subprocess
import sys
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestQuickstartRuns:
    @pytest.fixture(scope="class")
    def output(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py"), "5"],
            capture_output=True, text=True, timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        return completed.stdout

    def test_prints_run_summary(self, output):
        assert "RMA tickets" in output

    def test_prints_tables(self, output):
        assert "Table I" in output
        assert "Table II" in output

    def test_prints_tree_and_importance(self, output):
        assert "root" in output
        assert "importance" in output.lower()

    def test_prints_workload_figure(self, output):
        assert "fig06" in output


def test_all_examples_exist_and_have_mains():
    expected = {
        "quickstart.py", "spare_provisioning.py", "vendor_selection.py",
        "climate_control.py", "ground_truth_audit.py",
        "failure_prediction.py",
    }
    found = {path.name for path in EXAMPLES.glob("*.py")}
    assert expected <= found
    for name in expected:
        source = (EXAMPLES / name).read_text()
        assert '__name__ == "__main__"' in source
        assert source.startswith('"""')  # every example is documented
