"""Failure-engine structural tests."""

import numpy as np
import pytest

import repro
from repro.errors import ConfigError
from repro.failures.tickets import FAULT_CODE, FaultType


class TestDeterminism:
    def test_same_config_same_tickets(self):
        config = repro.SimulationConfig.small(seed=21, scale=0.04, n_days=90)
        a = repro.simulate(config)
        b = repro.simulate(config)
        assert len(a.tickets) == len(b.tickets)
        assert np.array_equal(a.tickets.fault_code, b.tickets.fault_code)
        assert np.allclose(a.tickets.start_hour_abs, b.tickets.start_hour_abs)
        assert np.array_equal(a.tickets.rack_index, b.tickets.rack_index)

    def test_different_seed_differs(self):
        a = repro.simulate(repro.SimulationConfig.small(seed=21, scale=0.04, n_days=90))
        b = repro.simulate(repro.SimulationConfig.small(seed=22, scale=0.04, n_days=90))
        assert len(a.tickets) != len(b.tickets)


class TestStructuralInvariants:
    def test_ticket_fields_within_bounds(self, tiny_run):
        log = tiny_run.tickets
        arrays = tiny_run.fleet.arrays()
        assert log.day_index.min() >= 0
        assert log.day_index.max() < tiny_run.n_days
        assert log.rack_index.min() >= 0
        assert log.rack_index.max() < arrays.n_racks
        assert np.all(log.server_offset < arrays.n_servers[log.rack_index])
        assert np.all(log.server_offset >= 0)
        assert np.all(log.repair_hours > 0)

    def test_start_hours_within_emission_day(self, tiny_run):
        log = tiny_run.tickets
        day_of_hour = np.floor(log.start_hour_abs / 24.0)
        # Batch cascades may spill into the next day; independents not.
        independent = log.batch_id < 0
        assert np.all(day_of_hour[independent] == log.day_index[independent])
        assert np.all(day_of_hour >= log.day_index)
        assert np.all(day_of_hour <= log.day_index + 1)

    def test_no_tickets_before_commissioning(self, tiny_run):
        log = tiny_run.tickets
        commission = tiny_run.fleet.arrays().commission_day[log.rack_index]
        assert np.all(log.day_index >= commission)

    def test_batches_are_same_rack_and_fault(self, tiny_run):
        log = tiny_run.tickets
        for batch_id in np.unique(log.batch_id[log.batch_id >= 0])[:20]:
            members = log.batch_id == batch_id
            assert len(np.unique(log.rack_index[members])) == 1
            assert len(np.unique(log.fault_code[members])) == 1
            assert members.sum() >= 1

    def test_batch_servers_distinct(self, tiny_run):
        log = tiny_run.tickets
        for batch_id in np.unique(log.batch_id[log.batch_id >= 0])[:20]:
            members = log.batch_id == batch_id
            offsets = log.server_offset[members]
            assert len(np.unique(offsets)) == len(offsets)

    def test_false_positive_share_near_config(self, small_run):
        share = small_run.tickets.false_positive.mean()
        expected = small_run.config.rates.false_positive_rate
        # Batch/outage tickets are never false positives, so the overall
        # share sits slightly below the per-ticket rate.
        assert 0.5 * expected < share <= expected * 1.1

    def test_summary_mentions_counts(self, tiny_run):
        text = tiny_run.summary()
        assert "RMA tickets" in text
        assert str(tiny_run.fleet.n_racks) in text


class TestBatchFaultRouting:
    def test_storage_batches_are_disk_or_server(self, small_run):
        log = small_run.tickets
        arrays = small_run.fleet.arrays()
        in_batch = log.batch_id >= 0
        storage = arrays.hdds_per_server[log.rack_index] >= 8
        power = log.fault_code == FAULT_CODE[FaultType.POWER]
        storage_batch = in_batch & storage & ~power
        codes = set(np.unique(log.fault_code[storage_batch]).tolist())
        assert codes <= {FAULT_CODE[FaultType.DISK], FAULT_CODE[FaultType.SERVER]}
        assert FAULT_CODE[FaultType.DISK] in codes

    def test_compute_batches_are_memory_psu_or_outage(self, small_run):
        log = small_run.tickets
        arrays = small_run.fleet.arrays()
        in_batch = log.batch_id >= 0
        compute = arrays.hdds_per_server[log.rack_index] < 8
        codes = log.fault_code[in_batch & compute]
        allowed = {FAULT_CODE[FaultType.MEMORY], FAULT_CODE[FaultType.SERVER],
                   FAULT_CODE[FaultType.POWER]}
        assert set(np.unique(codes).tolist()) <= allowed
        # DIMM lots dominate (the Fig 13 component-spare mechanism).
        memory_share = (codes == FAULT_CODE[FaultType.MEMORY]).mean()
        assert memory_share > 0.5

    def test_outages_take_down_large_fractions(self, small_run):
        run = small_run
        log = run.tickets
        power_batches = (log.batch_id >= 0) & (
            log.fault_code == FAULT_CODE[FaultType.POWER]
        )
        if not power_batches.any():
            # Outages are rare enough that a realization may lack them;
            # fall back to a run known to contain two outage events.
            run = repro.simulate(
                repro.SimulationConfig.small(seed=2, scale=0.1, n_days=365)
            )
            log = run.tickets
            power_batches = (log.batch_id >= 0) & (
                log.fault_code == FAULT_CODE[FaultType.POWER]
            )
        arrays = run.fleet.arrays()
        sizes = {}
        for batch_id in np.unique(log.batch_id[power_batches]):
            members = log.batch_id == batch_id
            rack = log.rack_index[members][0]
            sizes[batch_id] = members.sum() / arrays.n_servers[rack]
        assert max(sizes.values()) >= 0.15


class TestConfigValidation:
    def test_mismatched_observation_days_rejected(self):
        from repro.datacenter.builder import FleetConfig

        with pytest.raises(ConfigError):
            repro.SimulationConfig(
                n_days=100, fleet=FleetConfig(scale=0.05, observation_days=200)
            )

    def test_zero_days_rejected(self):
        from repro.datacenter.builder import FleetConfig

        with pytest.raises(ConfigError):
            repro.SimulationConfig(
                n_days=0, fleet=FleetConfig(scale=0.05, observation_days=120)
            )
