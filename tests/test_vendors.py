"""Vendor-rollup tests."""

import pytest

from repro.decisions.sku_ranking import (
    compare_skus,
    compare_vendors,
    rank_vendors,
)
from repro.errors import DataError


@pytest.fixture(scope="module")
def rollup(small_context):
    comparison = compare_skus(small_context.result,
                              table=small_context.hardware_failures)
    return compare_vendors(small_context.result, comparison)


class TestVendorRollup:
    def test_every_catalog_vendor_present(self, rollup, small_run):
        catalog_vendors = {sku.vendor for sku in small_run.fleet.skus}
        assert set(rollup) == catalog_vendors

    def test_multi_sku_vendors_aggregate(self, rollup):
        assert set(rollup["VendorA"].skus) == {"S1", "S5"}
        assert set(rollup["VendorB"].skus) == {"S2", "S6"}

    def test_exposure_weighting(self, rollup, small_context):
        comparison = compare_skus(small_context.result,
                                  table=small_context.hardware_failures)
        vendor_b = rollup["VendorB"]
        s2, s6 = comparison.sf_mean["S2"], comparison.sf_mean["S6"]
        expected = ((s2.mean * s2.count + s6.mean * s6.count)
                    / (s2.count + s6.count))
        assert vendor_b.sf_mean == pytest.approx(expected)
        assert vendor_b.exposure == s2.count + s6.count

    def test_vendor_b_looks_better_under_mf(self, rollup):
        """S2's confounds inflate VendorB's SF number; MF corrects it."""
        vendor_b = rollup["VendorB"]
        assert vendor_b.mf_mean < 0.8 * vendor_b.sf_mean

    def test_hpc_vendor_most_reliable(self, rollup):
        ranked = rank_vendors(rollup)
        assert ranked[0].vendor == "VendorE"

    def test_worst_vendor_is_b_under_both_views(self, rollup):
        assert rank_vendors(rollup, by="sf_mean")[-1].vendor == "VendorB"
        assert rank_vendors(rollup, by="mf_mean")[-1].vendor == "VendorB"

    def test_invalid_statistic_rejected(self, rollup):
        with pytest.raises(DataError):
            rank_vendors(rollup, by="peak")
