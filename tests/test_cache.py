"""Run-cache behaviour: keying, round-trip fidelity, eviction, CLI flags."""

import json

import numpy as np
import pytest

import repro
from repro.cache import (
    DEFAULT_MAX_ENTRIES,
    RunCache,
    config_key,
    simulate_cached,
)
from repro.errors import DataError


@pytest.fixture()
def config():
    return repro.SimulationConfig.small(seed=9, scale=0.04, n_days=60)


@pytest.fixture()
def cache(tmp_path):
    return RunCache(tmp_path / "runcache")


class TestKeying:
    def test_key_is_stable(self, config):
        assert config_key(config) == config_key(config)

    def test_key_changes_with_seed(self, config):
        other = repro.SimulationConfig.small(seed=10, scale=0.04, n_days=60)
        assert config_key(config) != config_key(other)

    def test_key_changes_with_fleet_knobs(self, config):
        other = repro.SimulationConfig.small(seed=9, scale=0.05, n_days=60)
        assert config_key(config) != config_key(other)

    def test_key_changes_with_version(self, config, monkeypatch):
        import repro as package

        before = config_key(config)
        monkeypatch.setattr(package, "__version__", "999.0.0")
        assert config_key(config) != before


class TestRoundTrip:
    def test_miss_then_hit(self, config, cache):
        assert not cache.has(config)
        fresh, hit_a = simulate_cached(config, cache)
        assert not hit_a
        assert cache.has(config)
        cached, hit_b = simulate_cached(config, cache)
        assert hit_b

        for column in ("day_index", "start_hour_abs", "rack_index",
                       "server_offset", "fault_code", "false_positive",
                       "repair_hours", "batch_id"):
            assert np.array_equal(
                getattr(fresh.tickets, column), getattr(cached.tickets, column)
            ), column
        assert np.array_equal(fresh.environment.temp_f, cached.environment.temp_f)
        assert np.array_equal(fresh.environment.rh, cached.environment.rh)
        assert np.array_equal(fresh.bms.temp_f, cached.bms.temp_f, equal_nan=True)
        assert np.array_equal(fresh.bms.rh, cached.bms.rh, equal_nan=True)
        assert len(fresh.bms.alarms) == len(cached.bms.alarms)
        assert fresh.fleet.n_racks == cached.fleet.n_racks

    def test_warm_path_performs_no_simulation(self, config, cache, monkeypatch):
        """A cache hit must never enter the ticket generator."""
        simulate_cached(config, cache)  # warm

        import repro.failures.engine as engine

        def explode(*args, **kwargs):
            raise AssertionError("warm cache path called _generate_tickets")

        monkeypatch.setattr(engine, "_generate_tickets", explode)
        result, was_hit = simulate_cached(config, cache)
        assert was_hit
        assert len(result.tickets) > 0

    def test_no_cache_is_plain_simulate(self, config):
        result, was_hit = simulate_cached(config, None)
        assert not was_hit
        assert len(result.tickets) > 0

    def test_corrupt_meta_rejected(self, config, cache):
        simulate_cached(config, cache)
        entry = cache.entry_dir(config_key(config))
        meta = json.loads((entry / "meta.json").read_text())
        meta["key"] = "not-the-right-key"
        (entry / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(DataError):
            cache.get(config)

    def test_corrupt_bundle_named_in_error(self, config, cache):
        simulate_cached(config, cache)
        entry = cache.entry_dir(config_key(config))
        (entry / "tickets.npz").write_bytes(b"garbage")
        with pytest.raises(DataError, match="corrupt"):
            cache.get(config)

    def test_simulate_cached_self_heals_corrupt_entry(self, config, cache):
        fresh, _ = simulate_cached(config, cache)
        entry = cache.entry_dir(config_key(config))
        (entry / "tickets.npz").write_bytes(b"garbage")
        healed, was_hit = simulate_cached(config, cache)
        assert not was_hit  # corruption counts as a miss...
        assert np.array_equal(fresh.tickets.day_index, healed.tickets.day_index)
        repaired, was_hit = simulate_cached(config, cache)
        assert was_hit  # ...and the entry is rewritten.
        assert np.array_equal(fresh.tickets.day_index, repaired.tickets.day_index)


class TestEviction:
    def _configs(self, n):
        return [
            repro.SimulationConfig.small(seed=s, scale=0.02, n_days=30)
            for s in range(n)
        ]

    def test_prune_keeps_newest(self, cache):
        configs = self._configs(3)
        for cfg in configs:
            simulate_cached(cfg, cache)
        assert len(cache.entries()) == 3
        removed = cache.prune(max_entries=1)
        assert removed == 2
        assert not cache.has(configs[0])
        assert cache.has(configs[2])

    def test_put_auto_prunes(self, cache, config):
        result = repro.simulate(config)
        for _ in range(2):
            cache.put(result, max_entries=1)
        assert len(cache.entries()) == 1

    def test_default_bound(self):
        assert DEFAULT_MAX_ENTRIES >= 1

    def test_clear(self, cache, config):
        simulate_cached(config, cache)
        cache.clear()
        assert cache.entries() == []
        assert not cache.has(config)

    def test_negative_prune_rejected(self, cache):
        with pytest.raises(DataError):
            cache.prune(max_entries=-1)


class TestClockInjection:
    def test_default_clock_is_wall_time(self, tmp_path):
        import time

        assert RunCache(tmp_path)._clock is time.time

    def test_injected_clock_stamps_metadata(self, tmp_path, config):
        ticks = iter([1000.0, 2000.0])
        cache = RunCache(tmp_path / "runcache", clock=lambda: next(ticks))
        result = repro.simulate(config)
        entry = cache.put(result)
        meta = json.loads((entry / "meta.json").read_text())
        assert meta["created"] == 1000.0

    def test_fake_clock_makes_put_replayable(self, tmp_path, config):
        """Two caches fed the same fake clock write identical metadata."""
        stamps = []
        for name in ("a", "b"):
            cache = RunCache(tmp_path / name, clock=lambda: 42.5)
            entry = cache.put(repro.simulate(config))
            stamps.append(json.loads((entry / "meta.json").read_text())["created"])
        assert stamps == [42.5, 42.5]


class TestCliIntegration:
    def test_cache_dir_flag_populates_cache(self, tmp_path, capsys):
        from repro.cli import main

        cache_root = tmp_path / "cc"
        out = tmp_path / "sim"
        argv = ["simulate", "--scale", "0.02", "--days", "30",
                "--out", str(out), "--cache-dir", str(cache_root)]
        assert main(argv) == 0
        assert len(RunCache(cache_root).entries()) == 1
        capsys.readouterr()

        # Second run hits the cache and says so.
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "loaded from run cache" in captured.err

    def test_no_cache_flag_bypasses(self, tmp_path, capsys):
        from repro.cli import main

        cache_root = tmp_path / "cc"
        argv = ["simulate", "--scale", "0.02", "--days", "30",
                "--out", str(tmp_path / "sim"),
                "--cache-dir", str(cache_root), "--no-cache"]
        assert main(argv) == 0
        assert RunCache(cache_root).entries() == []
        captured = capsys.readouterr()
        assert "loaded from run cache" not in captured.err


class TestCrashedWriterHardening:
    """A writer killed mid-``put`` must read back as a miss, not a crash."""

    def test_missing_meta_is_a_miss_and_evicts(self, config, cache):
        simulate_cached(config, cache)
        entry = cache.entry_dir(config_key(config))
        (entry / "meta.json").unlink()
        assert cache.get(config) is None
        assert not entry.exists()

    def test_truncated_meta_is_a_miss_and_evicts(self, config, cache):
        simulate_cached(config, cache)
        entry = cache.entry_dir(config_key(config))
        (entry / "meta.json").write_text('{"key": "abc123')  # cut mid-write
        assert cache.get(config) is None
        assert not entry.exists()

    def test_non_dict_meta_is_a_miss_and_evicts(self, config, cache):
        simulate_cached(config, cache)
        entry = cache.entry_dir(config_key(config))
        (entry / "meta.json").write_text('["not", "a", "dict"]')
        assert cache.get(config) is None
        assert not entry.exists()

    def test_missing_bundle_is_a_miss_and_evicts(self, config, cache):
        simulate_cached(config, cache)
        entry = cache.entry_dir(config_key(config))
        (entry / "tickets.npz").unlink()
        assert cache.get(config) is None
        assert not entry.exists()

    def test_simulate_cached_recovers_after_crash(self, config, cache):
        fresh, _ = simulate_cached(config, cache)
        (cache.entry_dir(config_key(config)) / "meta.json").unlink()
        healed, was_hit = simulate_cached(config, cache)
        assert not was_hit  # wreckage counted as a miss...
        assert np.array_equal(fresh.tickets.day_index, healed.tickets.day_index)
        again, was_hit = simulate_cached(config, cache)
        assert was_hit  # ...and the entry was rewritten cleanly.

    def test_prune_sweeps_half_written_entries(self, config, cache):
        simulate_cached(config, cache)
        wreck = cache.entry_dir("0" * 32)
        wreck.mkdir(parents=True)
        (wreck / "tickets.npz").write_bytes(b"partial")  # no meta.json
        assert cache.prune(max_entries=8) == 1
        assert not wreck.exists()
        assert len(cache.entries()) == 1  # the good entry survives

    def test_prune_leaves_foreign_directories_alone(self, config, cache):
        """Non-key-shaped dirs (e.g. a co-located artifact store) stay."""
        simulate_cached(config, cache)
        foreign = cache.root / "provisioner-24h"
        foreign.mkdir(parents=True)
        (foreign / "data.json").write_text("{}")
        assert cache.prune(max_entries=8) == 0
        assert foreign.exists()

    def test_complete_but_wrong_entry_still_raises(self, config, cache):
        """Hardening must not swallow real corruption: a parseable meta
        with the wrong key stays a DataError (see TestRoundTrip)."""
        simulate_cached(config, cache)
        entry = cache.entry_dir(config_key(config))
        meta = json.loads((entry / "meta.json").read_text())
        meta["key"] = "f" * 32
        (entry / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(DataError, match="key mismatch"):
            cache.get(config)
