"""Cooling-plant model tests."""

import pytest

from repro.datacenter.topology import CoolingKind
from repro.environment.cooling import (
    AdiabaticCoolingPlant,
    ChilledWaterPlant,
    SupplyAir,
    plant_for,
)
from repro.environment.weather import WeatherDay
from repro.errors import ConfigError


def day(temp_f: float, rh: float) -> WeatherDay:
    return WeatherDay(day_index=0, temp_f=temp_f, rh=rh)


class TestAdiabaticPlant:
    def test_cools_hot_humid_enough_day(self):
        plant = AdiabaticCoolingPlant()
        air = plant.supply_air(day(95.0, 40.0))
        assert air.temp_f < 95.0 - 10.0

    def test_evaporation_raises_humidity(self):
        plant = AdiabaticCoolingPlant()
        air = plant.supply_air(day(90.0, 40.0))
        assert air.rh > 40.0

    def test_water_conservation_keeps_hot_and_dry(self):
        """The regime behind Fig 18: hot day + very dry outdoor air."""
        plant = AdiabaticCoolingPlant()
        air = plant.supply_air(day(96.0, 10.0))
        assert air.temp_f > 78.0
        assert air.rh < 30.0

    def test_effectiveness_throttles_below_threshold(self):
        plant = AdiabaticCoolingPlant()
        assert (plant.effective_effectiveness(10.0)
                < plant.effective_effectiveness(40.0))
        assert plant.effective_effectiveness(40.0) == plant.effectiveness

    def test_cold_day_trimmed_to_floor(self):
        plant = AdiabaticCoolingPlant()
        air = plant.supply_air(day(30.0, 60.0))
        assert air.temp_f == plant.min_supply_f

    def test_supply_never_exceeds_ceiling(self):
        plant = AdiabaticCoolingPlant()
        air = plant.supply_air(day(115.0, 5.0))
        assert air.temp_f <= plant.max_supply_f

    def test_invalid_effectiveness_rejected(self):
        with pytest.raises(ConfigError):
            AdiabaticCoolingPlant(effectiveness=1.5)

    def test_inverted_limits_rejected(self):
        with pytest.raises(ConfigError):
            AdiabaticCoolingPlant(min_supply_f=90.0, max_supply_f=60.0)


class TestChilledWaterPlant:
    def test_holds_setpoint_on_mild_day(self):
        plant = ChilledWaterPlant(setpoint_f=66.0)
        air = plant.supply_air(day(55.0, 60.0))
        assert air.temp_f == pytest.approx(66.0, abs=2.5)

    def test_small_drift_on_hot_day(self):
        plant = ChilledWaterPlant(setpoint_f=66.0)
        hot = plant.supply_air(day(100.0, 30.0))
        mild = plant.supply_air(day(60.0, 50.0))
        assert mild.temp_f <= hot.temp_f <= 72.5

    def test_humidity_managed_into_band(self):
        plant = ChilledWaterPlant()
        dry = plant.supply_air(day(70.0, 5.0))
        humid = plant.supply_air(day(70.0, 95.0))
        assert 25.0 <= dry.rh < humid.rh <= 65.0

    def test_never_reaches_hot_dry_regime(self):
        """DC2's plant keeps the paper's detrimental regime unreachable."""
        plant = ChilledWaterPlant()
        for temp in (40.0, 60.0, 80.0, 100.0):
            for rh in (5.0, 30.0, 60.0, 95.0):
                air = plant.supply_air(day(temp, rh))
                assert not (air.temp_f > 78.0 and air.rh < 25.0)

    def test_implausible_setpoint_rejected(self):
        with pytest.raises(ConfigError):
            ChilledWaterPlant(setpoint_f=120.0)


class TestSupplyAir:
    def test_rh_validated(self):
        with pytest.raises(ConfigError):
            SupplyAir(temp_f=70.0, rh=150.0)


class TestPlantFactory:
    def test_maps_cooling_kinds(self):
        assert isinstance(plant_for(CoolingKind.ADIABATIC), AdiabaticCoolingPlant)
        assert isinstance(plant_for(CoolingKind.CHILLED_WATER), ChilledWaterPlant)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            plant_for("evaporative")
