"""Targeted tests for paths the main suites exercise only indirectly."""

import numpy as np
import pytest

from repro.analysis.clustering import Cluster, cluster_summary, clusters_from_tree
from repro.analysis.cart.tree import RegressionTree, TreeParams
from repro.analysis.multi_factor import MultiFactorModel
from repro.analysis.single_factor import SingleFactorModel
from repro.decisions.sku_ranking import default_q2_tree_params
from repro.decisions.tco import TcoModel
from repro.errors import DataError
from repro.reporting.experiments import run_all
from repro.telemetry.schema import FeatureKind, FeatureSpec, Schema
from repro.telemetry.table import Table


@pytest.fixture(scope="module")
def grid_table() -> Table:
    rng = np.random.default_rng(20)
    n = 2000
    x = rng.uniform(0, 10, n)
    group = rng.integers(0, 2, n).astype(float)
    y = np.where(x <= 5, 0.0, 2.0) + group * 3.0 + rng.normal(0, 0.2, n)
    schema = Schema((FeatureSpec("g", FeatureKind.NOMINAL, ("a", "b")),))
    return Table({"x": x, "g": group, "y": y}, schema=schema)


class TestFacadePd2d:
    def test_normalized_effect_2d_surface(self, grid_table):
        model = MultiFactorModel.from_formula(
            "y ~ x, g", grid_table,
            params=TreeParams(max_depth=4, min_split=50, min_bucket=20,
                              cp=1e-3),
        )
        surface = model.normalized_effect_2d(
            "x", "g", np.array([2.0, 8.0]), np.array([0.0, 1.0]),
        )
        assert surface.shape == (2, 2)
        # Both planted effects appear along their axes.
        assert surface[1, 0] - surface[0, 0] == pytest.approx(2.0, abs=0.3)
        assert surface[0, 1] - surface[0, 0] == pytest.approx(3.0, abs=0.3)


class TestSingleFactorPooled:
    def test_pooled_cdf_covers_all_rows(self, grid_table):
        sf = SingleFactorModel(grid_table, "y")
        cdf = sf.pooled_cdf()
        assert cdf.n == grid_table.n_rows
        assert cdf.evaluate(float(grid_table.column("y").max())) == 1.0


class TestClusterHelpers:
    @pytest.fixture(scope="class")
    def clusters(self, grid_table):
        matrix, schema = grid_table.feature_matrix(["x", "g"])
        tree = RegressionTree(TreeParams(max_depth=3, min_split=50,
                                         min_bucket=20, cp=1e-3)).fit(
            matrix, grid_table.column("y").astype(float), schema,
        )
        return clusters_from_tree(tree, matrix), grid_table.n_rows

    def test_clusters_cover_all_rows(self, clusters):
        found, n_rows = clusters
        assert sum(c.size for c in found) == n_rows

    def test_summary_lists_each_cluster(self, clusters):
        found, _ = clusters
        text = cluster_summary(found)
        assert text.startswith(f"{len(found)} clusters:")
        assert text.count("\n") == len(found)

    def test_summary_of_nothing_rejected(self):
        with pytest.raises(DataError):
            cluster_summary([])

    def test_cluster_size_property(self):
        cluster = Cluster(cluster_id=1, member_rows=np.array([1, 5, 9]),
                          prediction=0.5, description="x <= 3")
        assert cluster.size == 3


class TestRegistryRunAll:
    def test_run_all_renders_every_experiment(self, small_context):
        rendered = run_all(small_context)
        assert len(rendered) == 26
        assert all(isinstance(text, str) and text for text in rendered.values())


class TestTcoProcurement:
    def test_sku_procurement_tco_components(self):
        tco = TcoModel()
        base = tco.sku_procurement_tco(100, 100.0, 0.0, 0.0)
        with_spares = tco.sku_procurement_tco(100, 100.0, 0.2, 0.0)
        with_opex = tco.sku_procurement_tco(100, 100.0, 0.0, 0.01)
        assert with_spares > base
        assert with_opex > base
        # Spare CapEx scales with (price + overhead).
        expected_spare_cost = 0.2 * 100 * (100.0 + tco.params.facility_overhead)
        assert with_spares - base == pytest.approx(expected_spare_cost)


class TestDefaultQ2Params:
    def test_sensible_defaults(self):
        params = default_q2_tree_params()
        assert params.max_depth >= 5
        assert params.min_bucket >= 10


class TestRebuildImportance:
    def test_recomputes_from_structure(self, grid_table):
        matrix, schema = grid_table.feature_matrix(["x", "g"])
        tree = RegressionTree(TreeParams(max_depth=3, min_split=50,
                                         min_bucket=20, cp=1e-3)).fit(
            matrix, grid_table.column("y").astype(float), schema,
        )
        before = tree.importance()
        tree.rebuild_importance()
        after = tree.importance()
        assert set(before) == set(after)
        for name in before:
            assert before[name] == pytest.approx(after[name])
