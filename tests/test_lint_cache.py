"""Incremental lint cache, parallel determinism, baseline v2 migration.

The engine's caching contract: a warm run computes nothing per-module
(fragments come off the artifact store), a one-module edit re-analyzes
exactly that module, and serial / parallel / warm runs produce
identical findings.  The baseline contract: fingerprints are line-
number independent and comment-insensitive, schema-1 files refuse to
load until the one-shot migration rewrites them, and migration
preserves rationales.
"""

import json
import pathlib

import pytest

from repro.errors import DataError
from repro.staticcheck import (
    lint_paths,
    load_baseline,
    migrate_baseline,
    write_baseline,
)
from repro.staticcheck.baselines import fingerprint
from repro.staticcheck.framework import Finding
import repro.staticcheck.wholeprogram.engine as engine_mod

CLEAN = "def add(a, b):\n    return a + b\n"
VIOLATION = "import time\n\ndef created():\n    return time.time()\n"


def make_package(tmp_path, modules=None, name="fixturepkg"):
    package = tmp_path / name
    package.mkdir()
    (package / "__init__.py").write_text("")
    for module, source in (modules or {"clock": VIOLATION}).items():
        (package / f"{module}.py").write_text(source)
    return package


def finding_tuples(report):
    return [(f.rule, f.path, f.line, f.col, f.message, f.source_line)
            for f in report.findings + report.baselined]


class TestFragmentCache:
    def test_warm_run_computes_nothing(self, tmp_path, monkeypatch):
        package = make_package(tmp_path, {"clock": VIOLATION, "ok": CLEAN})
        cache = tmp_path / "cache"
        cold = lint_paths([package], cache_dir=cache)
        assert cold.analyzed_modules == 3  # __init__, clock, ok
        assert cold.cached_modules == 0

        # A warm run must never enter per-module analysis at all — the
        # fragments (and thus parsing) come straight off the store.
        def boom(spec):
            raise AssertionError(f"warm run analyzed {spec[0]}")

        monkeypatch.setattr(engine_mod, "module_fragment", boom)
        warm = lint_paths([package], cache_dir=cache)
        assert warm.analyzed_modules == 0
        assert warm.cached_modules == 3
        assert finding_tuples(warm) == finding_tuples(cold)

    def test_one_module_edit_reanalyzes_only_it(self, tmp_path):
        package = make_package(tmp_path, {"clock": VIOLATION, "ok": CLEAN})
        cache = tmp_path / "cache"
        lint_paths([package], cache_dir=cache)
        (package / "ok.py").write_text(CLEAN + "\nX = 2\n")
        touched = lint_paths([package], cache_dir=cache)
        assert touched.analyzed_modules == 1
        assert touched.cached_modules == 2

    def test_new_file_invalidates_whole_tree(self, tmp_path):
        # Import-edge and layering resolution depend on which sibling
        # modules exist, so the module *set* is part of every fragment
        # key: adding a file re-analyzes everything, by design.
        package = make_package(tmp_path, {"ok": CLEAN})
        cache = tmp_path / "cache"
        lint_paths([package], cache_dir=cache)
        (package / "extra.py").write_text(CLEAN)
        report = lint_paths([package], cache_dir=cache)
        assert report.cached_modules == 0
        assert report.analyzed_modules == 3

    def test_rule_version_bump_invalidates(self, tmp_path, monkeypatch):
        from repro.staticcheck.rules.wallclock import WallclockRule

        package = make_package(tmp_path)
        cache = tmp_path / "cache"
        lint_paths([package], cache_dir=cache)
        monkeypatch.setattr(WallclockRule, "version", 99)
        report = lint_paths([package], cache_dir=cache)
        assert report.cached_modules == 0

    def test_serial_parallel_and_warm_are_identical(self, tmp_path):
        package = make_package(tmp_path, {
            "clock": VIOLATION,
            "ok": CLEAN,
            "more": "import time\n\ndef t():\n    return time.time()\n",
        })
        cache = tmp_path / "cache"
        serial = lint_paths([package])
        parallel = lint_paths([package], jobs=2)
        cold = lint_paths([package], cache_dir=cache)
        warm = lint_paths([package], cache_dir=cache)
        expected = finding_tuples(serial)
        assert finding_tuples(parallel) == expected
        assert finding_tuples(cold) == expected
        assert finding_tuples(warm) == expected

    def test_uncached_runs_still_work(self, tmp_path):
        package = make_package(tmp_path)
        report = lint_paths([package])
        assert report.cached_modules == 0
        assert not report.ok


class TestBaselineV2:
    def test_edit_above_baselined_finding_keeps_it_baselined(self, tmp_path):
        package = make_package(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        report = lint_paths([package])
        write_baseline(baseline_path, report.all_findings,
                       rationale="fixture clock is test scaffolding")
        # Insert lines ABOVE the finding: its line number moves, its
        # fingerprint must not.
        (package / "clock.py").write_text(
            "import time\n\nHEADER = 1\nMORE = 2\n\n"
            "def created():\n    return time.time()\n"
        )
        report = lint_paths([package],
                            baseline=load_baseline(baseline_path))
        assert report.ok
        assert len(report.baselined) == 1
        assert report.baselined[0].line == 7  # moved, still matched

    def test_comment_churn_on_the_line_keeps_it_baselined(self, tmp_path):
        package = make_package(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        report = lint_paths([package])
        write_baseline(baseline_path, report.all_findings,
                       rationale="fixture clock is test scaffolding")
        (package / "clock.py").write_text(
            "import time\n\ndef created():\n"
            "    return time.time()  # reviewed 2026-08\n"
        )
        report = lint_paths([package],
                            baseline=load_baseline(baseline_path))
        assert report.ok

    def test_code_change_on_the_line_resurfaces_it(self, tmp_path):
        package = make_package(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        report = lint_paths([package])
        write_baseline(baseline_path, report.all_findings,
                       rationale="fixture clock is test scaffolding")
        (package / "clock.py").write_text(
            "import time\n\ndef created():\n    return time.time() + 1\n"
        )
        report = lint_paths([package],
                            baseline=load_baseline(baseline_path))
        assert not report.ok

    def test_fingerprint_ignores_line_and_comments(self):
        a = Finding(rule="wallclock", path="repro/x.py", line=10, col=0,
                    message="m", source_line="return time.time()")
        b = Finding(rule="wallclock", path="repro/x.py", line=99, col=4,
                    message="m", source_line="return time.time()  # ok")
        assert fingerprint(a) == fingerprint(b)

    def test_schema_one_file_refuses_to_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 1, "entries": []}))
        with pytest.raises(DataError, match="migrate-baseline"):
            load_baseline(path)

    def test_migration_preserves_rationales(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "schema": 1,
            "entries": [{
                "fingerprint": "0123456789abcdef",
                "rule": "wallclock",
                "file": "repro/x.py",
                "line": 4,
                "message": "wall-clock call",
                "source_line": "return time.time()  # legacy",
                "rationale": "grandfathered legacy clock",
            }],
        }))
        migrate_baseline(path)
        baseline = load_baseline(path)
        assert len(baseline) == 1
        expected = fingerprint(Finding(
            rule="wallclock", path="repro/x.py", line=4, col=0,
            message="wall-clock call",
            source_line="return time.time()  # legacy"))
        assert expected in baseline
        assert baseline.rationale(expected) == "grandfathered legacy clock"

    def test_migration_is_idempotent(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 1, "entries": []}))
        migrate_baseline(path)
        before = path.read_text()
        migrate_baseline(path)
        assert path.read_text() == before

    def test_shipped_baseline_is_schema_two(self):
        shipped = load_baseline()
        assert shipped.path is not None
        payload = json.loads(pathlib.Path(shipped.path).read_text())
        assert payload["schema"] == 2
