"""ReliabilityService behaviour: coalescing, caching, timeouts, drain.

Everything runs with thread workers (``use_threads=True``) so
monkeypatching and call counters stay visible to the "worker" — the
process-pool path exercises identical code through a picklable entry
point (covered by test_store_concurrency.py).
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.errors import DataError
from repro.serve import (
    QueryTimeout,
    RequestCoalescer,
    ServiceUnavailable,
    build_app,
)

TINY = {"seed": 5, "scale": 0.05, "days": 60}


class TestRequestCoalescer:
    def test_identical_keys_share_one_computation(self):
        async def go():
            coalescer = RequestCoalescer()
            calls = []

            async def work():
                calls.append(1)
                await asyncio.sleep(0.01)
                return 42

            results = await asyncio.gather(*[
                coalescer.run("k", work) for _ in range(10)
            ])
            return coalescer, calls, results

        coalescer, calls, results = asyncio.run(go())
        assert calls == [1]
        assert results == [42] * 10
        assert coalescer.started == 1 and coalescer.coalesced == 9
        assert coalescer.pending() == 0

    def test_distinct_keys_run_separately(self):
        async def go():
            coalescer = RequestCoalescer()
            calls = []

            async def work():
                calls.append(1)
                return len(calls)

            await asyncio.gather(coalescer.run("a", work),
                                 coalescer.run("b", work))
            return calls

        assert len(asyncio.run(go())) == 2

    def test_failure_is_not_sticky(self):
        async def go():
            coalescer = RequestCoalescer()
            attempts = []

            async def flaky():
                attempts.append(1)
                if len(attempts) == 1:
                    raise ValueError("first try fails")
                return "ok"

            with pytest.raises(ValueError):
                await coalescer.run("k", flaky)
            return await coalescer.run("k", flaky), coalescer

        result, coalescer = asyncio.run(go())
        assert result == "ok"
        assert coalescer.started == 2

    def test_one_awaiter_timeout_does_not_cancel_shared_work(self):
        async def go():
            coalescer = RequestCoalescer()

            async def work():
                await asyncio.sleep(0.05)
                return "answer"

            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(coalescer.run("k", work), 0.005)
            # The computation survived the first client's timeout.
            return await coalescer.run("k", work), coalescer

        result, coalescer = asyncio.run(go())
        assert result == "answer"
        assert coalescer.started == 1


def _tiny_app(tmp_path, **kwargs):
    app = build_app(store_dir=str(tmp_path), use_threads=True,
                    **dict({"workers": 4}, **kwargs))
    app.service.register_fleet(TINY, name="tiny")
    return app


class TestQueryPath:
    def test_cold_then_warm(self, tmp_path):
        service = _tiny_app(tmp_path).service

        async def go():
            cold = await service.query("tiny", "q1")
            warm = await service.query("tiny", "q1")
            return cold, warm

        cold, warm = asyncio.run(go())
        assert cold["meta"]["served_from"] == "computed"
        assert warm["meta"]["served_from"] == "cache"
        assert warm["plans"] == cold["plans"]

    def test_concurrent_identical_cold_queries_simulate_once(
            self, tmp_path, monkeypatch):
        """Acceptance: N identical cold queries, exactly one simulation."""
        from repro.pipeline import stages as stage_catalogue

        lock = threading.Lock()
        calls = []
        real_simulate = stage_catalogue.simulate

        def counting_simulate(config):
            with lock:
                calls.append(config.seed)
            return real_simulate(config)

        monkeypatch.setattr(stage_catalogue, "simulate", counting_simulate)
        service = _tiny_app(tmp_path).service

        async def go():
            return await asyncio.gather(*[
                service.query("tiny", "q1") for _ in range(6)
            ])

        results = asyncio.run(go())
        assert len(calls) == 1
        assert service.coalescer.started == 1
        assert all(r["plans"] == results[0]["plans"] for r in results)

    def test_distinct_params_do_not_coalesce(self, tmp_path):
        service = _tiny_app(tmp_path).service

        async def go():
            return await asyncio.gather(
                service.query("tiny", "q1", {"sla": 1.0}),
                service.query("tiny", "q1", {"sla": 0.95}),
            )

        strict, relaxed = asyncio.run(go())
        assert service.coalescer.started == 2
        assert (strict["plans"]["SF"]["overprovision"]
                >= relaxed["plans"]["SF"]["overprovision"])

    def test_warm_cache_crosses_tenants(self, tmp_path):
        service = _tiny_app(tmp_path).service
        service.register_fleet(TINY, tenant="globex", name="mirror")

        async def go():
            first = await service.query("tiny", "q1")
            second = await service.query("mirror", "q1", tenant="globex")
            return first, second

        first, second = asyncio.run(go())
        assert second["meta"]["served_from"] == "cache"
        assert second["meta"]["fleet_id"] == first["meta"]["fleet_id"]

    def test_memory_only_app_still_serves(self):
        app = build_app(store_dir=None)
        app.service.register_fleet(TINY, name="tiny")

        async def go():
            cold = await app.service.query("tiny", "q1")
            warm = await app.service.query("tiny", "q1")
            return cold, warm

        cold, warm = asyncio.run(go())
        assert cold["plans"] and warm["plans"] == cold["plans"]

    def test_unknown_fleet_is_data_error(self, tmp_path):
        service = _tiny_app(tmp_path).service
        with pytest.raises(DataError, match="unknown fleet"):
            asyncio.run(service.query("nope", "q1"))

    def test_metrics_reflect_traffic(self, tmp_path):
        service = _tiny_app(tmp_path).service

        async def go():
            await service.query("tiny", "q1")
            await service.query("tiny", "q1")

        asyncio.run(go())
        snap = service.metrics_snapshot()
        endpoint = snap["endpoints"]["q1"]
        assert endpoint["requests"] == 2
        assert endpoint["cache"]["hits"] == 1
        assert endpoint["cache"]["misses"] == 1
        assert endpoint["latency"]["p99_ms"] is not None
        assert snap["fleets"] == 1
        assert snap["store"]["stages"]  # simulate + serve stages persisted


class TestEvents:
    def test_slice_materializes_then_pages(self, tmp_path):
        service = _tiny_app(tmp_path).service

        async def go():
            first = await service.slice_events("tiny", offset=0, limit=5)
            second = await service.slice_events("tiny", offset=5, limit=5)
            return first, second

        first, second = asyncio.run(go())
        assert first["count"] == 5 and second["count"] == 5
        assert first["n_events"] == second["n_events"] > 0
        seqs = [e["seq"] for e in first["events"] + second["events"]]
        assert seqs == list(range(10))

    def test_bad_window_rejected(self, tmp_path):
        service = _tiny_app(tmp_path).service
        with pytest.raises(DataError, match="offset"):
            asyncio.run(service.slice_events("tiny", offset=-1, limit=5))
        with pytest.raises(DataError, match="limit"):
            asyncio.run(service.slice_events("tiny", offset=0, limit=0))


class TestTimeoutAndDrain:
    def test_slow_query_times_out(self, tmp_path, monkeypatch):
        def stall(*args):
            time.sleep(0.5)
            return {"late": True}

        monkeypatch.setattr("repro.serve.service.compute_query_payload",
                            stall)
        service = _tiny_app(tmp_path).service
        service.timeout_s = 0.05
        with pytest.raises(QueryTimeout):
            asyncio.run(service.query("tiny", "q1"))
        snap = service.metrics_snapshot()
        assert snap["endpoints"]["q1"]["errors"] == 1

    def test_drain_completes_in_flight_then_refuses(
            self, tmp_path, monkeypatch):
        def slowish(*args):
            time.sleep(0.2)
            return {"answer": 1}

        monkeypatch.setattr("repro.serve.service.compute_query_payload",
                            slowish)
        service = _tiny_app(tmp_path).service

        async def go():
            in_flight = asyncio.ensure_future(service.query("tiny", "q1"))
            await asyncio.sleep(0.05)  # let it reach the worker
            drained = await service.begin_drain(5.0)
            finished = await in_flight
            return drained, finished

        drained, finished = asyncio.run(go())
        assert drained == 1
        assert finished["answer"] == 1  # completed, not aborted
        with pytest.raises(ServiceUnavailable):
            asyncio.run(service.query("tiny", "q1"))
        with pytest.raises(ServiceUnavailable):
            service.register_fleet(dict(TINY, seed=9), name="late")
