"""Distribution-utility tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DataError
from repro.telemetry.stats import (
    BinSpec,
    binned_mean_sd,
    ecdf,
    make_range_bins,
    normalize_to_max,
    weighted_mean,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False,
                          min_value=-1e6, max_value=1e6)


class TestEcdf:
    def test_probabilities_reach_one(self):
        cdf = ecdf(np.array([3.0, 1.0, 2.0]))
        assert cdf.probabilities[-1] == pytest.approx(1.0)

    def test_evaluate(self):
        cdf = ecdf(np.array([1.0, 2.0, 3.0, 4.0]))
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(2.0) == pytest.approx(0.5)
        assert cdf.evaluate(10.0) == 1.0

    def test_quantile_extremes(self):
        cdf = ecdf(np.array([5.0, 1.0, 3.0]))
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 5.0

    def test_quantile_interior(self):
        cdf = ecdf(np.array([1.0, 2.0, 3.0, 4.0]))
        assert cdf.quantile(0.5) == 2.0
        assert cdf.quantile(0.75) == 3.0

    def test_empty_sample_rejected(self):
        with pytest.raises(DataError):
            ecdf(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(DataError):
            ecdf(np.array([1.0, np.nan]))

    def test_invalid_quantile_level(self):
        cdf = ecdf(np.array([1.0]))
        with pytest.raises(DataError):
            cdf.quantile(1.5)

    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.floats(min_value=0.01, max_value=1.0))
    def test_quantile_is_a_sample_value_with_enough_mass(self, sample, q):
        cdf = ecdf(np.array(sample))
        value = cdf.quantile(q)
        assert value in cdf.values
        assert cdf.evaluate(value) >= q - 1e-9

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_probabilities_monotone(self, sample):
        cdf = ecdf(np.array(sample))
        assert np.all(np.diff(cdf.probabilities) > 0)


class TestNormalize:
    def test_scales_to_unit_max(self):
        out = normalize_to_max(np.array([2.0, 4.0, 1.0]))
        assert out.max() == pytest.approx(1.0)
        assert out.tolist() == pytest.approx([0.5, 1.0, 0.25])

    def test_all_zero_stays_zero(self):
        assert normalize_to_max(np.zeros(3)).tolist() == [0, 0, 0]

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            normalize_to_max(np.array([]))


class TestBins:
    def test_make_range_bins_labels(self):
        bins = make_range_bins([20.0, 30.0], unit="%")
        assert bins.labels == ("<20%", "20-30%", ">30%")

    def test_assignment(self):
        bins = make_range_bins([10.0, 20.0])
        assert bins.assign(np.array([5.0, 10.0, 15.0, 25.0])).tolist() == [0, 1, 1, 2]

    def test_unsorted_edges_rejected(self):
        with pytest.raises(DataError):
            BinSpec(edges=(5.0, 3.0), labels=("a", "b", "c"))

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(DataError):
            BinSpec(edges=(1.0,), labels=("only",))

    def test_empty_edges_rejected(self):
        with pytest.raises(DataError):
            make_range_bins([])


class TestBinnedMeanSd:
    def test_mean_sd_per_bin(self):
        means, sds, counts = binned_mean_sd(
            np.array([0, 0, 1]), np.array([1.0, 3.0, 10.0]), 3
        )
        assert means[0] == pytest.approx(2.0)
        assert sds[0] == pytest.approx(1.0)
        assert means[1] == 10.0
        assert counts.tolist() == [2, 1, 0]

    def test_empty_bin_is_nan(self):
        means, sds, counts = binned_mean_sd(np.array([0]), np.array([1.0]), 2)
        assert np.isnan(means[1])
        assert counts[1] == 0

    def test_misaligned_rejected(self):
        with pytest.raises(DataError):
            binned_mean_sd(np.array([0, 1]), np.array([1.0]), 2)


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean(np.array([1.0, 3.0]), np.array([1.0, 3.0])) == pytest.approx(2.5)

    def test_zero_weights_rejected(self):
        with pytest.raises(DataError):
            weighted_mean(np.array([1.0]), np.array([0.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            weighted_mean(np.array([1.0, 2.0]), np.array([1.0]))
