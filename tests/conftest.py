"""Shared fixtures: session-scoped simulation runs.

Most behavioural tests need a realistic ticket stream; simulating one
per test would dominate runtime, so two canonical runs are built once
per session:

* ``tiny_run`` — a few racks, four months; fast, for structural tests.
* ``small_run`` — quarter scale, eighteen months; statistically stable
  enough for calibration and ground-truth-recovery assertions.
"""

from __future__ import annotations

import pytest

import repro
from repro.reporting import AnalysisContext


@pytest.fixture(scope="session")
def tiny_run() -> repro.SimulationResult:
    """A minimal but non-degenerate simulation."""
    return repro.simulate(repro.SimulationConfig.small(seed=11, scale=0.05, n_days=120))


@pytest.fixture(scope="session")
def small_run() -> repro.SimulationResult:
    """A statistically meaningful simulation (shared, do not mutate)."""
    return repro.simulate(repro.SimulationConfig.small(seed=3, scale=0.25, n_days=540))


@pytest.fixture(scope="session")
def small_context(small_run) -> AnalysisContext:
    """Cached analysis context over ``small_run``."""
    return AnalysisContext(small_run)
