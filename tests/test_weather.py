"""Weather model tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.environment.weather import (
    SiteClimate,
    WeatherSeries,
    dc1_site_climate,
    dc2_site_climate,
    wet_bulb_estimate_f,
)
from repro.errors import ConfigError
from repro.rng import RngRegistry


@pytest.fixture(scope="module")
def dc1_series():
    return WeatherSeries(dc1_site_climate(), 730, RngRegistry(seed=1).stream("w"))


class TestSiteClimates:
    def test_dc1_site_is_warmer_and_drier(self):
        dc1, dc2 = dc1_site_climate(), dc2_site_climate()
        assert dc1.mean_temp_f > dc2.mean_temp_f
        assert dc1.mean_rh < dc2.mean_rh

    def test_invalid_peak_day_rejected(self):
        with pytest.raises(ConfigError):
            SiteClimate(
                name="x", mean_temp_f=60, seasonal_amplitude_f=10,
                diurnal_amplitude_f=5, peak_day_of_year=400,
                anomaly_sd_f=3, anomaly_persistence=0.5,
                mean_rh=50, rh_temp_slope=-1, rh_noise_sd=5,
            )

    def test_persistence_must_be_below_one(self):
        with pytest.raises(ConfigError):
            SiteClimate(
                name="x", mean_temp_f=60, seasonal_amplitude_f=10,
                diurnal_amplitude_f=5, peak_day_of_year=200,
                anomaly_sd_f=3, anomaly_persistence=1.0,
                mean_rh=50, rh_temp_slope=-1, rh_noise_sd=5,
            )


class TestWeatherSeries:
    def test_series_length(self, dc1_series):
        assert dc1_series.temp_f.shape == (730,)
        assert dc1_series.rh.shape == (730,)

    def test_summer_hotter_than_winter(self, dc1_series):
        # Simulation starts Jan 1 by default; days 182-243 are midsummer.
        winter = dc1_series.temp_f[:30].mean()
        summer = dc1_series.temp_f[195:225].mean()
        assert summer > winter + 20

    def test_hot_days_are_dry_days(self, dc1_series):
        correlation = np.corrcoef(dc1_series.temp_f, dc1_series.rh)[0, 1]
        assert correlation < -0.5

    def test_rh_stays_in_physical_range(self, dc1_series):
        assert dc1_series.rh.min() >= 2.0
        assert dc1_series.rh.max() <= 99.0

    def test_anomalies_are_persistent(self, dc1_series):
        detrended = dc1_series.temp_f - np.convolve(
            dc1_series.temp_f, np.ones(31) / 31, mode="same"
        )
        inner = detrended[30:-30]
        lag1 = np.corrcoef(inner[:-1], inner[1:])[0, 1]
        assert lag1 > 0.3

    def test_day_accessor_matches_arrays(self, dc1_series):
        day = dc1_series.day(100)
        assert day.temp_f == pytest.approx(float(dc1_series.temp_f[100]))
        assert day.rh == pytest.approx(float(dc1_series.rh[100]))

    def test_out_of_range_day_rejected(self, dc1_series):
        with pytest.raises(ConfigError):
            dc1_series.day(730)

    def test_hourly_profile_peaks_mid_afternoon(self, dc1_series):
        hourly = dc1_series.hourly_temp_f(10)
        assert len(hourly) == 24
        assert int(np.argmax(hourly)) == 15

    def test_determinism(self):
        a = WeatherSeries(dc1_site_climate(), 100, RngRegistry(seed=4).stream("w"))
        b = WeatherSeries(dc1_site_climate(), 100, RngRegistry(seed=4).stream("w"))
        assert np.allclose(a.temp_f, b.temp_f)

    def test_zero_days_rejected(self):
        with pytest.raises(ConfigError):
            WeatherSeries(dc1_site_climate(), 0, RngRegistry(seed=1).stream("w"))


class TestWetBulb:
    def test_saturated_air_wet_bulb_equals_dry_bulb(self):
        assert wet_bulb_estimate_f(80.0, 100.0) == pytest.approx(80.0, abs=1.5)

    def test_dry_air_wet_bulb_well_below_dry_bulb(self):
        assert wet_bulb_estimate_f(95.0, 10.0) < 75.0

    def test_invalid_rh_rejected(self):
        with pytest.raises(ConfigError):
            wet_bulb_estimate_f(80.0, 0.0)

    @given(st.floats(min_value=30, max_value=110),
           st.floats(min_value=5, max_value=99))
    def test_wet_bulb_never_exceeds_dry_bulb(self, temp_f, rh):
        assert wet_bulb_estimate_f(temp_f, rh) <= temp_f + 1e-9

    @given(st.floats(min_value=40, max_value=100))
    def test_wet_bulb_monotone_in_humidity(self, temp_f):
        assert wet_bulb_estimate_f(temp_f, 20.0) <= wet_bulb_estimate_f(temp_f, 80.0)
