"""SimulationConfig tests."""

import pytest

import repro
from repro.config import PAPER_OBSERVATION_DAYS, SimulationConfig
from repro.datacenter.builder import FleetConfig
from repro.errors import ConfigError


class TestFactories:
    def test_paper_scale(self):
        config = SimulationConfig.paper_scale(seed=7)
        assert config.seed == 7
        assert config.n_days == PAPER_OBSERVATION_DAYS == 910
        assert config.fleet.scale == 1.0
        assert config.fleet.observation_days == config.n_days

    def test_small(self):
        config = SimulationConfig.small(seed=1, scale=0.1, n_days=120)
        assert config.fleet.scale == 0.1
        assert config.n_days == 120

    def test_defaults_are_paper_window(self):
        assert SimulationConfig().n_days == PAPER_OBSERVATION_DAYS


class TestValidation:
    def test_calendar_fields_validated(self):
        with pytest.raises(ConfigError):
            SimulationConfig(
                start_day_of_week=9,
                fleet=FleetConfig(scale=0.05, observation_days=910),
            )
        with pytest.raises(ConfigError):
            SimulationConfig(
                start_day_of_year=400,
                fleet=FleetConfig(scale=0.05, observation_days=910),
            )

    def test_fleet_window_must_match(self):
        with pytest.raises(ConfigError, match="observation_days"):
            SimulationConfig(
                n_days=100, fleet=FleetConfig(scale=0.05, observation_days=910),
            )

    def test_config_is_frozen(self):
        config = SimulationConfig.small()
        with pytest.raises(Exception):
            config.seed = 99  # type: ignore[misc]


class TestCalendarAlignment:
    def test_start_day_of_year_shifts_seasons(self):
        config = SimulationConfig(
            seed=17, n_days=180, start_day_of_year=181,  # July 1..December
            fleet=FleetConfig(scale=0.04, observation_days=180),
        )
        result = repro.simulate(config)
        first_day = result.calendar.day(0)
        assert first_day.month == 7
        # The run starts in DC1's hot season and ends in winter.
        assert result.environment.temp_f[:30].mean() > \
            result.environment.temp_f[-30:].mean() + 3.0

    def test_start_day_of_week_shifts_weekends(self):
        config = SimulationConfig(
            seed=17, n_days=60, start_day_of_week=6,  # start on Saturday
            fleet=FleetConfig(scale=0.04, observation_days=60),
        )
        result = repro.simulate(config)
        assert result.calendar.day(0).is_weekend
