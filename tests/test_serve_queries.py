"""Query parsing, addressing and payload shapes for repro.serve."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import DataError
from repro.reporting import AnalysisContext
from repro.serve.queries import (
    QUERY_DEFAULTS,
    json_safe,
    parse_query,
    q1_payload,
    q2_payload,
    q3_payload,
    query_stage_name,
)


class TestParseQuery:
    def test_defaults_fill_in(self):
        query = parse_query("q1", None)
        assert query.param_dict() == QUERY_DEFAULTS["q1"]

    def test_params_sorted_for_stable_identity(self):
        a = parse_query("q1", {"workload": "W2", "sla": 0.95})
        b = parse_query("q1", {"sla": 0.95, "workload": "W2"})
        assert a == b

    def test_string_numbers_coerce(self):
        query = parse_query("q1", {"sla": "0.95", "window_hours": "1"})
        params = query.param_dict()
        assert params["sla"] == pytest.approx(0.95)
        assert params["window_hours"] == pytest.approx(1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DataError, match="query kind"):
            parse_query("q9", None)

    def test_unknown_param_rejected(self):
        with pytest.raises(DataError, match="unknown"):
            parse_query("q1", {"slaa": 0.95})

    def test_bad_sla_rejected(self):
        with pytest.raises(DataError):
            parse_query("q1", {"sla": 1.5})

    def test_bad_quantile_rejected(self):
        with pytest.raises(DataError):
            parse_query("q2", {"peak_quantile": 2.0})

    def test_non_numeric_rejected(self):
        with pytest.raises(DataError):
            parse_query("q1", {"sla": "high"})


class TestStageNames:
    def test_params_embedded_in_name(self):
        name = query_stage_name(parse_query("q1", {"workload": "W3"}))
        assert name.startswith("serve:q1:")
        assert "workload=W3" in name

    def test_distinct_params_distinct_names(self):
        assert (query_stage_name(parse_query("q1", {"sla": 0.95}))
                != query_stage_name(parse_query("q1", {"sla": 1.0})))

    def test_events_maps_to_event_blocks(self):
        from repro.pipeline.stages import EVENT_BLOCKS_STAGE

        assert query_stage_name(parse_query("events", None)) == EVENT_BLOCKS_STAGE


class TestJsonSafe:
    def test_nan_and_inf_become_none(self):
        assert json_safe({"a": float("nan"), "b": math.inf}) == {
            "a": None, "b": None,
        }

    def test_numpy_scalars_unwrap(self):
        import numpy as np

        out = json_safe({"x": np.float64(1.5), "n": np.int64(3)})
        assert out == {"x": 1.5, "n": 3}
        json.dumps(out)  # must round-trip through stdlib json

    def test_nested_structures(self):
        out = json_safe([{"v": (1, 2.5)}])
        assert out == [{"v": [1, 2.5]}]


@pytest.fixture(scope="module")
def tiny_context(tiny_run):
    return AnalysisContext(tiny_run)


class TestPayloads:
    def test_q1_has_three_plans(self, tiny_context):
        payload = q1_payload(tiny_context, QUERY_DEFAULTS["q1"])
        assert set(payload["plans"]) == {"LB", "SF", "MF"}
        for plan in payload["plans"].values():
            assert plan["overprovision"] >= 0.0
        assert payload["plans"]["MF"]["clusters"]
        json.dumps(payload)

    def test_q1_ordering_lb_below_sf(self, tiny_context):
        payload = q1_payload(tiny_context, QUERY_DEFAULTS["q1"])
        assert (payload["plans"]["LB"]["overprovision"]
                <= payload["plans"]["SF"]["overprovision"] + 1e-12)

    def test_q2_ranks_all_skus(self, tiny_context):
        payload = q2_payload(tiny_context, QUERY_DEFAULTS["q2"])
        assert sorted(payload["ranking_most_reliable_first"]) == [
            "S1", "S2", "S3", "S4",
        ]
        assert set(payload["normalized_sf"]) == {"mean", "peak"}
        json.dumps(payload)

    def test_q3_covers_every_datacenter(self, tiny_context):
        payload = q3_payload(tiny_context, QUERY_DEFAULTS["q3"])
        names = {dc.name for dc in tiny_context.result.fleet.datacenters}
        assert set(payload["datacenters"]) == names
        for entry in payload["datacenters"].values():
            assert "group_rates" in entry and "thresholds" in entry
        json.dumps(payload)

    def test_q3_unknown_dc_rejected(self, tiny_context):
        with pytest.raises(DataError, match="datacenter"):
            q3_payload(tiny_context, dict(QUERY_DEFAULTS["q3"], dc="DC9"))
