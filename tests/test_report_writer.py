"""Report-writer tests."""

import pytest

from repro.errors import DataError
from repro.reporting.report import write_report


class TestWriteReport:
    def test_writes_selected_experiments(self, small_context, tmp_path):
        path = write_report(
            small_context, tmp_path / "report.md",
            experiment_ids=["table1", "fig03"],
        )
        text = path.read_text()
        assert text.startswith("# Reproduced evaluation")
        assert "## table1" in text
        assert "## fig03" in text
        assert "## fig10" not in text
        assert text.count("```") == 4  # one fenced block per experiment

    def test_includes_run_summary(self, small_context, tmp_path):
        path = write_report(small_context, tmp_path / "r.md",
                            experiment_ids=["table1"])
        assert "RMA tickets" in path.read_text()

    def test_unknown_experiment_rejected(self, small_context, tmp_path):
        with pytest.raises(DataError):
            write_report(small_context, tmp_path / "r.md",
                         experiment_ids=["fig99"])

    def test_custom_title(self, small_context, tmp_path):
        path = write_report(small_context, tmp_path / "r.md",
                            experiment_ids=["table1"], title="My run")
        assert path.read_text().startswith("# My run")
