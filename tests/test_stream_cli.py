"""`repro stream` end-to-end and the `streaming` experiment."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.reporting import EXPERIMENTS, get_experiment

SIM = ["--seed", "9", "--scale", "0.05", "--days", "60"]


@pytest.fixture(scope="module")
def export_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-stream") / "run"
    assert main(["simulate", *SIM, "--out", str(out)]) == 0
    return out


@pytest.fixture(scope="module")
def corrupt_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-stream-fd") / "fd"
    assert main(["corrupt", *SIM, "--severity", "0.5", "--out", str(out)]) == 0
    return out


class TestStreamCommand:
    def test_pristine_export_calibrated_zero_alerts(self, export_dir, capsys):
        assert main(["stream", *SIM, "--from", str(export_dir)]) == 0
        captured = capsys.readouterr()
        assert "alerts             : 0" in captured.out
        assert "calibrated spare fraction" in captured.err

    def test_stressed_spares_emit_alerts(self, export_dir, capsys):
        assert main(["stream", *SIM, "--from", str(export_dir),
                     "--spare-fraction", "0.0"]) == 0
        out = capsys.readouterr().out
        assert "[sla-risk]" in out

    def test_corrupt_bundle_streams(self, corrupt_dir, capsys):
        assert main(["stream", *SIM, "--from", str(corrupt_dir),
                     "--spare-fraction", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "events seen" in out and "tickets counted" in out

    def test_checkpoint_resume_matches_one_shot(self, export_dir, tmp_path,
                                                capsys):
        ckpt = tmp_path / "stream.npz"
        assert main(["stream", *SIM, "--from", str(export_dir),
                     "--spare-fraction", "0.01",
                     "--max-events", "500", "--checkpoint", str(ckpt)]) == 0
        first = capsys.readouterr()
        assert "wrote checkpoint" in first.err
        assert ckpt.exists()

        assert main(["stream", *SIM, "--from", str(export_dir),
                     "--resume", str(ckpt)]) == 0
        resumed = capsys.readouterr()
        assert "(resumed at event 500)" in resumed.err

        assert main(["stream", *SIM, "--from", str(export_dir),
                     "--spare-fraction", "0.01"]) == 0
        one_shot = capsys.readouterr()
        assert resumed.out == one_shot.out

    def test_follow_mode_on_static_directory(self, export_dir, capsys):
        assert main(["stream", *SIM, "--from", str(export_dir),
                     "--spare-fraction", "0.01", "--follow",
                     "--poll-interval", "0.01", "--max-idle-polls", "1"]) == 0
        out = capsys.readouterr().out
        assert "events seen" in out

    def test_window_hours_flag(self, export_dir, capsys):
        assert main(["stream", *SIM, "--from", str(export_dir),
                     "--spare-fraction", "0.5",
                     "--window-hours", "6"]) == 0
        assert "6h windows" in capsys.readouterr().out

    def test_mismatched_config_rejected(self, export_dir):
        from repro.errors import DataError

        with pytest.raises(DataError):
            main(["stream", "--seed", "9", "--scale", "0.1", "--days", "60",
                  "--from", str(export_dir)])


class TestStreamingExperiment:
    def test_registered(self):
        assert "streaming" in EXPERIMENTS

    def test_renders_and_verifies_contracts(self, tiny_run):
        from repro.reporting import AnalysisContext

        text = get_experiment("streaming").render(AnalysisContext(tiny_run))
        assert "λ bit-identical to batch : yes" in text
        assert "μ bit-identical to batch : yes" in text
        assert "checkpoint/resume exact  : yes" in text
        assert "alerts at calibration    : 0" in text

    def test_listed_by_cli(self, capsys):
        assert main(["list"]) == 0
        assert "streaming" in capsys.readouterr().out
