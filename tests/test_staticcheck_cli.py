"""``repro lint``: exit codes, formats, baselines and rule selection."""

import contextlib
import io
import json
import pathlib

import pytest

from repro.cli import main
from repro.errors import DataError

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

VIOLATION = "import time\n\ndef created():\n    return time.time()\n"


def run_cli(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(argv)
    return code, out.getvalue()


def fixture_package(tmp_path, source=VIOLATION):
    """A tiny on-disk package whose one module carries a violation."""
    package = tmp_path / "fixturepkg"
    package.mkdir()
    (package / "__init__.py").write_text("")
    (package / "clock.py").write_text(source)
    return package


class TestLintCommand:
    def test_repo_is_clean_exit_zero(self):
        code, out = run_cli(["lint"])
        assert code == 0
        assert "0 finding(s)" in out

    def test_fixture_violation_exit_one(self, tmp_path):
        package = fixture_package(tmp_path)
        code, out = run_cli(["lint", str(package)])
        assert code == 1
        assert "wallclock" in out
        assert "clock.py:4" in out

    def test_clean_fixture_exit_zero(self, tmp_path):
        package = fixture_package(tmp_path, source="x = 1\n")
        code, _ = run_cli(["lint", str(package)])
        assert code == 0

    def test_json_format_is_machine_readable(self, tmp_path):
        package = fixture_package(tmp_path)
        code, out = run_cli(["lint", "--format", "json", str(package)])
        assert code == 1
        payload = json.loads(out)
        assert payload["counts"]["new"] == 1
        assert payload["findings"][0]["rule"] == "wallclock"

    def test_repo_json_counts_match_contract(self):
        code, out = run_cli(["lint", "--format", "json"])
        assert code == 0
        payload = json.loads(out)
        assert payload["counts"]["new"] == 0
        assert payload["counts"]["baselined"] == 1
        assert set(payload["rules"]) == {
            "GT-leak", "RNG-discipline", "wallclock", "float-eq",
            "schema-fields", "layering",
            "GT-taint", "fingerprint-purity", "async-safety",
            "shared-mutable-state",
        }

    def test_rule_selection(self, tmp_path):
        package = fixture_package(tmp_path)
        code, _ = run_cli(["lint", str(package), "--rules", "float-eq"])
        assert code == 0  # wallclock violation invisible to float-eq

    def test_list_rules(self):
        code, out = run_cli(["lint", "--list-rules"])
        assert code == 0
        for rule_id in ("GT-leak", "RNG-discipline", "wallclock",
                        "float-eq", "schema-fields", "layering",
                        "GT-taint", "fingerprint-purity", "async-safety",
                        "shared-mutable-state"):
            assert rule_id in out

    def test_write_and_reuse_baseline(self, tmp_path):
        package = fixture_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        code, out = run_cli(["lint", str(package),
                             "--baseline", str(baseline), "--write-baseline",
                             "--rationale", "fixture clock is test scaffolding"])
        assert code == 0
        assert baseline.exists()
        code, out = run_cli(["lint", str(package),
                             "--baseline", str(baseline)])
        assert code == 0
        assert "1 baselined" in out

    def test_write_baseline_without_rationale_is_an_error(self, tmp_path):
        package = fixture_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        with pytest.raises(DataError, match="no rationale"):
            run_cli(["lint", str(package),
                     "--baseline", str(baseline), "--write-baseline"])
        assert not baseline.exists()

    def test_baselined_finding_resurfaces_when_line_changes(self, tmp_path):
        package = fixture_package(tmp_path)
        baseline = tmp_path / "baseline.json"
        run_cli(["lint", str(package), "--baseline", str(baseline),
                 "--write-baseline", "--rationale", "fixture clock"])
        (package / "clock.py").write_text(
            "import time\n\ndef created():\n    return time.time() + 1\n"
        )
        code, _ = run_cli(["lint", str(package), "--baseline", str(baseline)])
        assert code == 1

    def test_single_file_target(self):
        # The committed baseline applies by path+line fingerprint, so a
        # single-file lint of stats.py still comes out clean.
        code, out = run_cli(["lint", str(SRC / "telemetry" / "stats.py")])
        assert code == 0
        assert "1 baselined" in out
