"""Decision triggers: SLA-risk calibration contract and drift detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decisions.availability import AvailabilitySla
from repro.errors import DataError
from repro.failures.tickets import FAULT_CODE, FaultType
from repro.fielddata import FieldDataset, standard_pipeline
from repro.stream import (
    AlertKind,
    RateDriftDetector,
    SlaRiskMonitor,
    StreamAnalyzer,
    StreamInventory,
    calibrated_spare_fraction,
    flatten_field_dataset,
    flatten_result,
)
from repro.stream.events import Event, EventKind
from repro.telemetry.aggregate import mu_matrix

DISK = FAULT_CODE[FaultType.DISK]


def _tiny_inventory():
    return StreamInventory(
        rack_ids=("R0", "R1"),
        n_servers=np.array([10, 20]),
        server_base=np.array([0, 10]),
        commission_day=np.zeros(2, dtype=np.int64),
        decommission_day=np.full(2, 30, dtype=np.int64),
        sku_code=np.zeros(2, dtype=np.int64),
        sku_names=("S",),
        dc_code=np.zeros(2, dtype=np.int64),
        dc_names=("D",),
        n_days=30,
    )


def _open(t, rack=0, offset=0, repair=10.0, ordinal=0, fault=DISK, fp=False):
    return Event(seq=-1, time_hours=t, kind=EventKind.TICKET_OPEN,
                 rack_index=rack, server_offset=offset,
                 day_index=int(t // 24.0), fault_code=fault,
                 false_positive=fp, repair_hours=repair,
                 ticket_ordinal=ordinal)


def _close(open_event):
    import dataclasses

    return dataclasses.replace(open_event, kind=EventKind.TICKET_CLOSE,
                               time_hours=open_event.end_hour_abs)


class TestSlaRiskMonitor:
    def test_fires_on_breach_once_per_episode(self):
        monitor = SlaRiskMonitor(_tiny_inventory(), AvailabilitySla(1.0),
                                 spare_fraction=0.1)  # allowed = 1 server
        first = _open(0.0, offset=0)
        second = _open(1.0, offset=1, ordinal=1)
        third = _open(2.0, offset=2, ordinal=2)
        assert monitor.update(first) == []
        alerts = monitor.update(second)  # 2 down > 1.0 allowed
        assert len(alerts) == 1
        assert alerts[0].kind is AlertKind.SLA_RISK
        assert alerts[0].rack_index == 0 and alerts[0].value == 2.0
        assert monitor.update(third) == []  # still in breach: no re-alert

    def test_realerts_after_recovery(self):
        monitor = SlaRiskMonitor(_tiny_inventory(), AvailabilitySla(1.0),
                                 spare_fraction=0.1)
        a, b = _open(0.0, offset=0), _open(1.0, offset=1, ordinal=1)
        monitor.update(a)
        assert len(monitor.update(b)) == 1
        monitor.update(_close(a))  # back to 1 down <= allowed
        assert monitor.breached[0] == False  # noqa: E712
        c = _open(12.0, offset=2, ordinal=2)
        assert len(monitor.update(c)) == 1  # new episode

    def test_same_server_double_ticket_counts_once(self):
        monitor = SlaRiskMonitor(_tiny_inventory(), AvailabilitySla(1.0),
                                 spare_fraction=0.1)
        monitor.update(_open(0.0, offset=4))
        assert monitor.update(_open(1.0, offset=4, ordinal=1)) == []
        assert monitor.down[0] == 1

    def test_shortfall_tolerates_at_lower_sla(self):
        # SLA 0.9 on 10 servers tolerates 1 down even with zero spares.
        monitor = SlaRiskMonitor(_tiny_inventory(), AvailabilitySla(0.9),
                                 spare_fraction=0.0)
        assert monitor.update(_open(0.0, offset=0)) == []
        assert len(monitor.update(_open(1.0, offset=1, ordinal=1))) == 1

    def test_software_and_fp_ignored(self):
        monitor = SlaRiskMonitor(_tiny_inventory(), AvailabilitySla(1.0),
                                 spare_fraction=0.0)
        assert monitor.update(
            _open(0.0, fault=FAULT_CODE[FaultType.TIMEOUT])
        ) == []
        assert monitor.update(_open(1.0, fp=True, ordinal=1)) == []
        assert monitor.down[0] == 0

    def test_negative_fraction_rejected(self):
        with pytest.raises(DataError, match="spare_fraction"):
            SlaRiskMonitor(_tiny_inventory(), AvailabilitySla(1.0),
                           spare_fraction=-0.1)

    def test_per_rack_fractions(self):
        monitor = SlaRiskMonitor(
            _tiny_inventory(), AvailabilitySla(1.0),
            spare_fraction=np.array([0.0, 0.5]),
        )
        assert len(monitor.update(_open(0.0, rack=0, offset=0))) == 1
        # Rack 1 has 10 spares provisioned: far from breach.
        assert monitor.update(_open(1.0, rack=1, offset=0, ordinal=1)) == []


class TestCalibrationContract:
    """Calibrated provisioning is provably silent on its own history."""

    def _stream_with_fraction(self, result, fraction):
        analyzer = StreamAnalyzer(
            StreamInventory.from_result(result),
            sla=AvailabilitySla(1.0), spare_fraction=fraction, drift=False,
        )
        analyzer.consume(flatten_result(result))
        analyzer.finish()
        return analyzer

    def test_zero_spurious_alerts_on_pristine_run(self, tiny_run):
        fraction = calibrated_spare_fraction(
            mu_matrix(tiny_run), tiny_run.fleet.arrays().n_servers,
            AvailabilitySla(1.0),
        )
        analyzer = self._stream_with_fraction(tiny_run, fraction)
        assert analyzer.alerts == []

    def test_zero_spurious_alerts_on_severity_zero_bundle(self, tiny_run):
        dataset, _ = standard_pipeline(0.0, seed=1).apply(
            FieldDataset.from_result(tiny_run)
        )
        result = dataset.to_result(base=tiny_run)
        fraction = calibrated_spare_fraction(
            mu_matrix(result), result.fleet.arrays().n_servers,
            AvailabilitySla(1.0),
        )
        inventory = StreamInventory.from_field_dataset(dataset)
        analyzer = StreamAnalyzer(inventory, sla=AvailabilitySla(1.0),
                                  spare_fraction=fraction)
        analyzer.consume(flatten_field_dataset(dataset))
        analyzer.finish()
        assert [a for a in analyzer.alerts
                if a.kind is AlertKind.SLA_RISK] == []

    def test_stressed_provisioning_fires(self, tiny_run):
        fraction = calibrated_spare_fraction(
            mu_matrix(tiny_run), tiny_run.fleet.arrays().n_servers,
            AvailabilitySla(1.0),
        )
        stressed = self._stream_with_fraction(tiny_run, fraction * 0.25)
        assert any(a.kind is AlertKind.SLA_RISK for a in stressed.alerts)

    def test_calibration_shape_check(self):
        with pytest.raises(DataError, match="n_racks"):
            calibrated_spare_fraction(
                np.zeros((3, 4)), np.array([1, 2]), AvailabilitySla(1.0),
            )


class TestRateDriftDetector:
    def _feed_days(self, detector, rates):
        """rates[d] tickets on day d, spread through the day."""
        ordinal = 0
        alerts = []
        for day, count in enumerate(rates):
            for i in range(count):
                alerts += detector.update(_open(
                    day * 24.0 + (i + 0.5) * 24.0 / max(count, 1),
                    offset=i % 5, ordinal=ordinal,
                ))
                ordinal += 1
        alerts += detector.finish()
        return alerts

    def test_silent_on_stationary_rate(self):
        detector = RateDriftDetector(n_days=60)
        assert self._feed_days(detector, [3] * 60) == []

    def test_fires_on_surge(self):
        detector = RateDriftDetector(n_days=60)
        alerts = self._feed_days(detector, [3] * 40 + [12] * 20)
        assert alerts and alerts[0].kind is AlertKind.RATE_DRIFT
        assert "above" in alerts[0].message
        # One alert for the whole episode, not one per day.
        assert len(alerts) == 1

    def test_fires_on_collapse(self):
        detector = RateDriftDetector(n_days=80, min_excess=3.0)
        alerts = self._feed_days(detector, [6] * 50 + [0] * 30)
        assert alerts and "below" in alerts[0].message

    def test_min_excess_guards_quiet_fleets(self):
        # 0 → 0.3/day doubles the "rate" but is only ~2 events: silent.
        detector = RateDriftDetector(n_days=60, min_excess=5.0)
        rates = [0] * 50 + [1, 0, 0, 1, 0, 0, 0, 1, 0, 0]
        assert self._feed_days(detector, rates) == []

    def test_no_evaluation_before_baseline_fills(self):
        detector = RateDriftDetector(n_days=20)  # needs 35 days of history
        assert self._feed_days(detector, [0] * 10 + [9] * 10) == []

    def test_batch_counts_once(self):
        import dataclasses

        detector = RateDriftDetector(n_days=40)
        event = dataclasses.replace(_open(0.0), batch_id=3)
        detector.update(event)
        detector.update(dataclasses.replace(event, ticket_ordinal=1))
        assert detector.day_counts[0] == 1

    def test_parameter_validation(self):
        with pytest.raises(DataError):
            RateDriftDetector(n_days=0)
        with pytest.raises(DataError, match="ratio"):
            RateDriftDetector(n_days=10, ratio=1.0)

    def test_state_roundtrip_mid_episode(self):
        detector = RateDriftDetector(n_days=60)
        ordinal = 0
        for day in range(45):
            count = 3 if day < 40 else 12
            for i in range(count):
                detector.update(_open(day * 24.0 + i * 0.1, offset=i % 5,
                                      ordinal=ordinal))
                ordinal += 1
        clone = RateDriftDetector.from_state(detector.state_arrays(),
                                             detector.meta())
        tail_a, tail_b = [], []
        for day in range(45, 60):
            for i in range(12):
                event = _open(day * 24.0 + i * 0.1, offset=i % 5,
                              ordinal=ordinal)
                tail_a += detector.update(event)
                tail_b += clone.update(event)
                ordinal += 1
        tail_a += detector.finish()
        tail_b += clone.finish()
        assert tail_a == tail_b
