"""The batch-equivalence contract, property-style.

Streaming λ and μ must be *bit-identical* to the batch
`telemetry.aggregate` path on the same data — across randomized ticket
logs (arbitrary row order, correlated batches, false positives, long
repairs, out-of-range spills), window sizes, fault filters, and
arbitrary checkpoint/resume split points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.failures.tickets import FAULT_TYPES, HARDWARE_FAULTS, TicketLog
from repro.fielddata import FieldDataset
from repro.stream import (
    StreamAnalyzer,
    StreamInventory,
    StreamingLambda,
    StreamingMu,
    flatten_result,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.events import EventKind
from repro.telemetry.aggregate import lambda_matrix, mu_matrix

WINDOW_SIZES = (24.0, 6.0, 1.0, 7.5)


def random_ticket_log(rng: np.random.Generator, arrays, n_days: int,
                      n_tickets: int) -> TicketLog:
    """A deliberately nasty random log: shuffled row order, shared batch
    ids across racks/days, FP-first batches, zero-length and multi-week
    repairs, intervals spilling past the trace end."""
    n_racks = arrays.n_racks
    rack = rng.integers(0, n_racks, n_tickets)
    day = rng.integers(0, n_days, n_tickets)
    start = day * 24.0 + rng.uniform(0.0, 24.0, n_tickets)
    offset = np.array([
        rng.integers(0, arrays.n_servers[r]) for r in rack
    ], dtype=np.int64)
    fault = rng.integers(0, len(FAULT_TYPES), n_tickets)
    fp = rng.random(n_tickets) < 0.25
    repair = np.where(
        rng.random(n_tickets) < 0.1, 0.0,
        rng.exponential(30.0, n_tickets),
    )
    batch = np.where(
        rng.random(n_tickets) < 0.35,
        rng.integers(0, max(n_tickets // 6, 1), n_tickets),
        -1,
    )
    # Random row order: log ordinals deliberately decorrelated from time.
    log = TicketLog()
    log.append_chunk(
        day_index=day.astype(np.int64),
        start_hour_abs=start,
        rack_index=rack.astype(np.int64),
        server_offset=offset,
        fault_code=fault.astype(np.int64),
        false_positive=fp,
        repair_hours=repair,
        batch_id=batch.astype(np.int64),
    )
    log.finalize()
    return log


@pytest.fixture(scope="module")
def randomized_results(tiny_run):
    """tiny_run with its ticket log swapped for randomized logs."""
    arrays = tiny_run.fleet.arrays()
    results = []
    for seed in (0, 1, 2):
        rng = np.random.default_rng(seed)
        log = random_ticket_log(rng, arrays, tiny_run.n_days,
                                n_tickets=400 + seed * 137)
        dataset = FieldDataset.from_result(tiny_run).replace(tickets=log)
        results.append(dataset.to_result(base=tiny_run))
    return results


class TestLambdaEquivalence:
    def test_bit_identical_on_simulated_run(self, tiny_run):
        lam = StreamingLambda(tiny_run.fleet.n_racks, tiny_run.n_days)
        for event in flatten_result(tiny_run,
                                    kinds={EventKind.TICKET_OPEN}):
            lam.update(event)
        assert np.array_equal(lam.matrix(), lambda_matrix(tiny_run))

    def test_bit_identical_on_randomized_logs(self, randomized_results):
        for result in randomized_results:
            lam = StreamingLambda(result.fleet.n_racks, result.n_days)
            for event in flatten_result(result,
                                        kinds={EventKind.TICKET_OPEN}):
                lam.update(event)
            assert np.array_equal(lam.matrix(), lambda_matrix(result))

    def test_bit_identical_with_fault_filter(self, randomized_results):
        result = randomized_results[0]
        faults = list(HARDWARE_FAULTS)
        lam = StreamingLambda(result.fleet.n_racks, result.n_days,
                              faults=faults)
        for event in flatten_result(result, kinds={EventKind.TICKET_OPEN}):
            lam.update(event)
        assert np.array_equal(lam.matrix(), lambda_matrix(result, faults))

    def test_bit_identical_without_dedupe(self, randomized_results):
        result = randomized_results[1]
        lam = StreamingLambda(result.fleet.n_racks, result.n_days,
                              dedupe_batches=False)
        for event in flatten_result(result, kinds={EventKind.TICKET_OPEN}):
            lam.update(event)
        assert np.array_equal(
            lam.matrix(), lambda_matrix(result, dedupe_batches=False),
        )


class TestMuEquivalence:
    @pytest.mark.parametrize("window_hours", WINDOW_SIZES)
    def test_bit_identical_on_simulated_run(self, tiny_run, window_hours):
        arrays = tiny_run.fleet.arrays()
        mu = StreamingMu(arrays.n_servers, arrays.server_base,
                         tiny_run.n_days, window_hours=window_hours)
        for event in flatten_result(tiny_run,
                                    kinds={EventKind.TICKET_OPEN}):
            mu.update(event)
        assert np.array_equal(mu.matrix(),
                              mu_matrix(tiny_run, window_hours))

    @pytest.mark.parametrize("window_hours", WINDOW_SIZES)
    def test_bit_identical_on_randomized_logs(self, randomized_results,
                                              window_hours):
        for result in randomized_results:
            arrays = result.fleet.arrays()
            mu = StreamingMu(arrays.n_servers, arrays.server_base,
                             result.n_days, window_hours=window_hours)
            for event in flatten_result(result,
                                        kinds={EventKind.TICKET_OPEN}):
                mu.update(event)
            assert np.array_equal(mu.matrix(),
                                  mu_matrix(result, window_hours))

    def test_bit_identical_component_mode(self, randomized_results):
        result = randomized_results[2]
        arrays = result.fleet.arrays()
        mu = StreamingMu(arrays.n_servers, arrays.server_base,
                         result.n_days, per_server=False)
        for event in flatten_result(result, kinds={EventKind.TICKET_OPEN}):
            mu.update(event)
        assert np.array_equal(mu.matrix(),
                              mu_matrix(result, per_server=False))

    def test_matrix_readable_at_any_midpoint(self, tiny_run):
        """matrix() mid-stream never disturbs the final answer."""
        arrays = tiny_run.fleet.arrays()
        mu = StreamingMu(arrays.n_servers, arrays.server_base,
                         tiny_run.n_days)
        for i, event in enumerate(
            flatten_result(tiny_run, kinds={EventKind.TICKET_OPEN})
        ):
            mu.update(event)
            if i % 97 == 0:
                mu.matrix()
        assert np.array_equal(mu.matrix(), mu_matrix(tiny_run))


class TestCheckpointResumeEquivalence:
    def _full(self, result, window_hours=24.0):
        analyzer = StreamAnalyzer(
            StreamInventory.from_result(result),
            window_hours=window_hours, spare_fraction=0.01,
        )
        analyzer.consume(flatten_result(result))
        analyzer.finish()
        return analyzer

    def _assert_identical(self, resumed, full):
        assert np.array_equal(resumed.lambda_matrix(), full.lambda_matrix())
        assert np.array_equal(resumed.mu_matrix(), full.mu_matrix())
        assert resumed.alerts == full.alerts
        assert resumed.summary() == full.summary()

    def test_random_split_points(self, tiny_run, tmp_path):
        full = self._full(tiny_run)
        inventory = StreamInventory.from_result(tiny_run)
        rng = np.random.default_rng(7)
        splits = [0, 1, full.events_seen - 1, full.events_seen] + \
            rng.integers(2, full.events_seen - 2, 5).tolist()
        for i, split in enumerate(splits):
            partial = StreamAnalyzer(inventory, spare_fraction=0.01)
            partial.consume(flatten_result(tiny_run), max_events=split)
            path = save_checkpoint(partial, tmp_path / f"split-{i}.npz")
            resumed = load_checkpoint(path, inventory)
            assert resumed.events_seen == split
            resumed.consume(flatten_result(tiny_run, skip=split))
            resumed.finish()
            self._assert_identical(resumed, full)

    def test_double_checkpoint_chain(self, tiny_run, tmp_path):
        """checkpoint → resume → checkpoint again → resume again."""
        full = self._full(tiny_run)
        inventory = StreamInventory.from_result(tiny_run)
        third = full.events_seen // 3
        a = StreamAnalyzer(inventory, spare_fraction=0.01)
        a.consume(flatten_result(tiny_run), max_events=third)
        b = load_checkpoint(save_checkpoint(a, tmp_path / "a.npz"), inventory)
        b.consume(flatten_result(tiny_run, skip=b.events_seen),
                  max_events=third)
        c = load_checkpoint(save_checkpoint(b, tmp_path / "b.npz"), inventory)
        c.consume(flatten_result(tiny_run, skip=c.events_seen))
        c.finish()
        self._assert_identical(c, full)

    def test_randomized_log_with_hourly_windows(self, randomized_results,
                                                tmp_path):
        result = randomized_results[0]
        inventory = StreamInventory.from_result(result)
        full = self._full(result, window_hours=1.0)
        split = full.events_seen // 2
        partial = StreamAnalyzer(inventory, window_hours=1.0,
                                 spare_fraction=0.01)
        partial.consume(flatten_result(result), max_events=split)
        resumed = load_checkpoint(
            save_checkpoint(partial, tmp_path / "r.npz"), inventory,
        )
        resumed.consume(flatten_result(result, skip=split))
        resumed.finish()
        self._assert_identical(resumed, full)
        assert np.array_equal(resumed.mu_matrix(), mu_matrix(result, 1.0))

    def test_resume_rejects_wrong_position(self, tiny_run):
        from repro.errors import DataError

        analyzer = StreamAnalyzer(StreamInventory.from_result(tiny_run))
        events = flatten_result(tiny_run)
        analyzer.process(next(events))
        next(events)  # drop one → gap
        with pytest.raises(DataError, match="position"):
            analyzer.process(next(events))
