"""Columnar-table tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DataError, SchemaError
from repro.telemetry.schema import FeatureKind, FeatureSpec, Schema
from repro.telemetry.table import Table


@pytest.fixture
def table() -> Table:
    schema = Schema((
        FeatureSpec("color", FeatureKind.NOMINAL, ("red", "green", "blue")),
        FeatureSpec("size", FeatureKind.ORDINAL, ("S", "M", "L")),
    ))
    return Table({
        "color": np.array([0, 1, 2, 0, 1]),
        "size": np.array([0, 0, 1, 2, 2]),
        "value": np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
    }, schema=schema)


class TestConstruction:
    def test_empty_columns_rejected(self):
        with pytest.raises(DataError):
            Table({})

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            Table({"a": np.zeros(3), "b": np.zeros(4)})

    def test_schema_feature_without_column_rejected(self):
        schema = Schema((FeatureSpec("missing", FeatureKind.CONTINUOUS),))
        with pytest.raises(SchemaError):
            Table({"a": np.zeros(3)}, schema=schema)

    def test_basic_access(self, table):
        assert table.n_rows == 5
        assert len(table) == 5
        assert "value" in table
        assert set(table.column_names) == {"color", "size", "value"}

    def test_unknown_column_rejected(self, table):
        with pytest.raises(DataError):
            table.column("nope")


class TestSpecAndDecode:
    def test_spec_synthesized_for_unschema_column(self, table):
        spec = table.spec("value")
        assert spec.kind is FeatureKind.CONTINUOUS

    def test_decoded_labels(self, table):
        assert table.decoded("color").tolist() == ["red", "green", "blue", "red", "green"]

    def test_decoded_passthrough_for_continuous(self, table):
        assert np.allclose(table.decoded("value"), [1, 2, 3, 4, 5])

    def test_decoded_rejects_bad_codes(self):
        schema = Schema((FeatureSpec("c", FeatureKind.NOMINAL, ("a",)),))
        bad = Table({"c": np.array([0, 5])}, schema=schema)
        with pytest.raises(DataError):
            bad.decoded("c")


class TestDerivedTables:
    def test_filter(self, table):
        small = table.filter(table.column("value") > 3.0)
        assert small.n_rows == 2
        assert small.decoded("color").tolist() == ["red", "green"]

    def test_filter_requires_boolean_mask(self, table):
        with pytest.raises(DataError):
            table.filter(np.array([1, 0, 1, 0, 1]))

    def test_take(self, table):
        picked = table.take(np.array([4, 0]))
        assert picked.column("value").tolist() == [5.0, 1.0]

    def test_select(self, table):
        sub = table.select(["value", "color"])
        assert sub.column_names == ["value", "color"]
        assert "size" not in sub

    def test_with_column_adds(self, table):
        doubled = table.with_column("double", table.column("value") * 2)
        assert "double" in doubled
        assert "double" not in table  # original untouched

    def test_with_column_replaces_and_respects_spec(self, table):
        spec = FeatureSpec("flag", FeatureKind.NOMINAL, ("no", "yes"))
        extended = table.with_column("flag", np.array([0, 1, 0, 1, 0]), spec=spec)
        assert extended.decoded("flag").tolist() == ["no", "yes", "no", "yes", "no"]

    def test_with_column_length_mismatch_rejected(self, table):
        with pytest.raises(DataError):
            table.with_column("bad", np.zeros(3))

    def test_with_column_spec_name_mismatch_rejected(self, table):
        spec = FeatureSpec("other", FeatureKind.CONTINUOUS)
        with pytest.raises(SchemaError):
            table.with_column("bad", np.zeros(5), spec=spec)

    def test_concat(self, table):
        doubled = table.concat(table)
        assert doubled.n_rows == 10

    def test_concat_mismatched_columns_rejected(self, table):
        other = Table({"value": np.zeros(2)})
        with pytest.raises(DataError):
            table.concat(other)


class TestGroupBy:
    def test_group_indices_partition_rows(self, table):
        seen = []
        for _, indices in table.group_indices(["color"]):
            seen.extend(indices.tolist())
        assert sorted(seen) == list(range(5))

    def test_group_keys_decoded(self, table):
        keys = [key for key, _ in table.group_indices(["color"])]
        assert ("red",) in keys
        assert ("blue",) in keys

    def test_multi_key_grouping(self, table):
        groups = dict(table.group_indices(["color", "size"]))
        assert ("red", "S") in groups
        assert len(groups[("red", "S")]) == 1

    def test_group_reduce(self, table):
        stats = table.group_reduce(["color"], "value", {"mean": np.mean, "n": len})
        assert stats[("red",)]["mean"] == pytest.approx(2.5)
        assert stats[("green",)]["n"] == 2

    def test_empty_keys_rejected(self, table):
        with pytest.raises(DataError):
            list(table.group_indices([]))

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60))
    def test_group_sizes_sum_to_rows(self, codes):
        schema = Schema((FeatureSpec("k", FeatureKind.NOMINAL, ("a", "b", "c", "d")),))
        t = Table({"k": np.array(codes), "v": np.arange(len(codes), dtype=float)},
                  schema=schema)
        total = sum(len(ix) for _, ix in t.group_indices(["k"]))
        assert total == len(codes)


class TestFeatureMatrix:
    def test_matrix_shape_and_schema(self, table):
        matrix, schema = table.feature_matrix(["color", "value"])
        assert matrix.shape == (5, 2)
        assert schema.names == ["color", "value"]
        assert schema.get("color").kind is FeatureKind.NOMINAL
        assert schema.get("value").kind is FeatureKind.CONTINUOUS

    def test_matrix_values(self, table):
        matrix, _ = table.feature_matrix(["value"])
        assert np.allclose(matrix[:, 0], [1, 2, 3, 4, 5])


class TestHead:
    def test_head_renders_labels(self, table):
        text = table.head(2)
        assert "red" in text
        assert "color" in text
