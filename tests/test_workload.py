"""Workload catalog and assignment-policy tests."""

import numpy as np
import pytest

from repro.datacenter.sku import SkuCategory
from repro.datacenter.workload import (
    WorkloadCatalog,
    WorkloadCategory,
    WorkloadSpec,
    assign_workload,
    default_catalog,
    eligible_workloads,
)
from repro.errors import ConfigError


def make_spec(name="W1", **overrides) -> WorkloadSpec:
    base = {
        "name": name, "category": WorkloadCategory.COMPUTE,
        "stress_multiplier": 1.0, "disk_stress": 1.0,
        "weekday_utilization": 0.7, "weekend_utilization": 0.5,
        "software_churn": 1.0,
    }
    base.update(overrides)
    return WorkloadSpec(**base)


class TestWorkloadSpec:
    def test_utilization_by_day_kind(self):
        spec = make_spec()
        assert spec.utilization(is_weekend=False) == 0.7
        assert spec.utilization(is_weekend=True) == 0.5

    def test_zero_stress_rejected(self):
        with pytest.raises(ConfigError):
            make_spec(stress_multiplier=0.0)

    def test_utilization_above_one_rejected(self):
        with pytest.raises(ConfigError):
            make_spec(weekday_utilization=1.2)

    def test_negative_churn_rejected(self):
        with pytest.raises(ConfigError):
            make_spec(software_churn=-0.1)


class TestCatalog:
    def test_default_has_seven(self):
        assert default_catalog().names == [f"W{i}" for i in range(1, 8)]

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadCatalog([make_spec("W1"), make_spec("W1")])

    def test_unknown_lookup_raises(self):
        with pytest.raises(ConfigError):
            default_catalog().get("W99")

    def test_index_of(self):
        assert default_catalog().index_of("W3") == 2


class TestPlantedStressOrdering:
    """The ground-truth workload ordering behind Fig 6."""

    def test_w2_has_highest_stress(self):
        catalog = default_catalog()
        w2 = catalog.get("W2").stress_multiplier
        assert all(w2 >= w.stress_multiplier for w in catalog)

    def test_hpc_w3_has_lowest_stress(self):
        catalog = default_catalog()
        w3 = catalog.get("W3").stress_multiplier
        assert all(w3 <= w.stress_multiplier for w in catalog)

    def test_storage_data_below_storage_compute(self):
        catalog = default_catalog()
        for data_wl in ("W5", "W6"):
            for compute_wl in ("W4", "W7"):
                assert (catalog.get(data_wl).stress_multiplier
                        < catalog.get(compute_wl).stress_multiplier)

    def test_weekday_utilization_exceeds_weekend_except_hpc(self):
        catalog = default_catalog()
        for workload in catalog:
            if workload.name == "W3":
                continue  # HPC batch queues run through weekends
            assert workload.weekday_utilization > workload.weekend_utilization


class TestAssignment:
    def test_eligibility_respects_sku_category(self):
        assert eligible_workloads(SkuCategory.HPC) == ["W3"]
        assert set(eligible_workloads(SkuCategory.COMPUTE)) == {"W1", "W2"}
        assert set(eligible_workloads(SkuCategory.STORAGE)) == {"W5", "W6"}
        assert set(eligible_workloads(SkuCategory.MIXED)) == {"W4", "W7"}

    def test_hpc_always_w3(self):
        rng = np.random.default_rng(0)
        assert assign_workload(SkuCategory.HPC, "S7", rng) == "W3"

    def test_assignment_only_returns_eligible(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert assign_workload(SkuCategory.STORAGE, "S1", rng) in ("W5", "W6")

    def test_s2_biased_to_w2(self):
        """The planted Q2 confound: S2 lands on W2 ~95% of the time."""
        rng = np.random.default_rng(1)
        picks = [assign_workload(SkuCategory.COMPUTE, "S2", rng) for _ in range(400)]
        w2_share = picks.count("W2") / len(picks)
        assert w2_share > 0.85

    def test_s4_biased_to_w1(self):
        rng = np.random.default_rng(1)
        picks = [assign_workload(SkuCategory.COMPUTE, "S4", rng) for _ in range(400)]
        w1_share = picks.count("W1") / len(picks)
        assert 0.65 < w1_share < 0.95

    def test_other_compute_skus_unbiased(self):
        rng = np.random.default_rng(1)
        picks = [assign_workload(SkuCategory.COMPUTE, "S9", rng) for _ in range(600)]
        w1_share = picks.count("W1") / len(picks)
        assert 0.4 < w1_share < 0.6
