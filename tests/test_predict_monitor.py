"""Live predictive monitor: parity, analyzer integration, serving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DataError
from repro.predict import PredictiveMonitor, build_feature_dataset, train_predictor
from repro.stream import (
    AlertKind,
    StreamAnalyzer,
    StreamInventory,
    blocks_from_result,
    flatten_result,
    load_checkpoint,
    save_checkpoint,
)

THRESHOLD = 0.7


@pytest.fixture(scope="module")
def inventory(tiny_run) -> StreamInventory:
    return StreamInventory.from_result(tiny_run)


@pytest.fixture(scope="module")
def model(tiny_run):
    dataset = build_feature_dataset(tiny_run)
    fitted, _, _ = train_predictor(dataset)
    return fitted


def _run_blocks(tiny_run, monitor) -> list:
    alerts = []
    for block in blocks_from_result(tiny_run):
        alerts.extend(monitor.update_block(block))
    alerts.extend(monitor.finish())
    return alerts


class TestMonitor:
    def test_emits_day_boundary_alerts(self, tiny_run, inventory, model):
        monitor = PredictiveMonitor(inventory, model, threshold=THRESHOLD)
        alerts = _run_blocks(tiny_run, monitor)
        assert alerts and monitor.alerts_emitted == len(alerts)
        for alert in alerts:
            assert alert.kind is AlertKind.PREDICTED_FAILURE
            assert alert.time_hours % 24.0 == 0.0
            assert alert.value > THRESHOLD
            assert alert.threshold == THRESHOLD
            assert "failure risk" in alert.message

    def test_scalar_and_block_paths_agree(self, tiny_run, inventory, model):
        blocked = PredictiveMonitor(inventory, model, threshold=THRESHOLD)
        block_alerts = _run_blocks(tiny_run, blocked)

        scalar = PredictiveMonitor(inventory, model, threshold=THRESHOLD)
        scalar_alerts = []
        for event in flatten_result(tiny_run):
            scalar_alerts.extend(scalar.update(event))
        scalar_alerts.extend(scalar.finish())
        assert scalar_alerts == block_alerts

    def test_unfitted_model_rejected(self, inventory):
        from repro.predict import TwoStagePredictor

        with pytest.raises(DataError, match="fitted"):
            PredictiveMonitor(inventory, TwoStagePredictor())

    def test_threshold_validated(self, inventory, model):
        with pytest.raises(DataError, match="threshold"):
            PredictiveMonitor(inventory, model, threshold=1.5)

    def test_state_roundtrip_resumes_identically(self, tiny_run, inventory,
                                                 model):
        continuous = PredictiveMonitor(inventory, model, threshold=THRESHOLD)
        blocks = list(blocks_from_result(tiny_run))
        half = len(blocks) // 2 or 1
        tail_expected = []
        for i, block in enumerate(blocks):
            alerts = continuous.update_block(block)
            if i >= half:
                tail_expected.extend(alerts)
        tail_expected.extend(continuous.finish())

        prefix = PredictiveMonitor(inventory, model, threshold=THRESHOLD)
        for block in blocks[:half]:
            prefix.update_block(block)
        resumed = PredictiveMonitor.from_state(
            inventory, model, prefix.state_arrays(), prefix.meta(),
        )
        tail = []
        for block in blocks[half:]:
            tail.extend(resumed.update_block(block))
        tail.extend(resumed.finish())
        assert tail == tail_expected
        np.testing.assert_array_equal(resumed._flagged, continuous._flagged)


class TestAnalyzerIntegration:
    def test_attached_monitor_alerts_reach_the_summary(self, tiny_run,
                                                       inventory, model):
        analyzer = StreamAnalyzer(inventory)
        analyzer.attach_monitor(
            PredictiveMonitor(inventory, model, threshold=THRESHOLD))
        for block in blocks_from_result(tiny_run):
            analyzer.process_block(block)
        analyzer.finish()
        kinds = {alert["kind"] for alert in analyzer.summary()["alerts"]}
        assert AlertKind.PREDICTED_FAILURE.value in kinds

    def test_scalar_and_block_analyzers_agree(self, tiny_run, inventory,
                                              model):
        blocked = StreamAnalyzer(inventory)
        blocked.attach_monitor(
            PredictiveMonitor(inventory, model, threshold=THRESHOLD))
        for block in blocks_from_result(tiny_run):
            blocked.process_block(block)
        blocked.finish()

        scalar = StreamAnalyzer(inventory)
        scalar.attach_monitor(
            PredictiveMonitor(inventory, model, threshold=THRESHOLD))
        for event in flatten_result(tiny_run):
            scalar.process(event)
        scalar.finish()
        assert scalar.alerts == blocked.alerts

    def test_attach_after_feeding_rejected(self, tiny_run, inventory, model):
        analyzer = StreamAnalyzer(inventory)
        analyzer.consume_blocks(blocks_from_result(tiny_run), max_events=10)
        with pytest.raises(DataError, match="attach"):
            analyzer.attach_monitor(
                PredictiveMonitor(inventory, model))

    def test_checkpoint_requires_factories_for_extra_monitors(
            self, inventory, model, tmp_path):
        analyzer = StreamAnalyzer(inventory)
        analyzer.attach_monitor(
            PredictiveMonitor(inventory, model))
        path = tmp_path / "state.npz"
        save_checkpoint(analyzer, path)
        with pytest.raises(DataError, match="PredictiveMonitor"):
            load_checkpoint(path, inventory)


class TestServePredict:
    def test_parse_defaults(self):
        from repro.serve.queries import QUERY_DEFAULTS, parse_query

        query = parse_query("predict", None)
        assert query.param_dict() == QUERY_DEFAULTS["predict"]

    def test_parse_validates_domains(self):
        from repro.serve.queries import parse_query

        with pytest.raises(DataError, match="act_fraction"):
            parse_query("predict", {"act_fraction": 0.0})
        with pytest.raises(DataError, match="horizon_days"):
            parse_query("predict", {"horizon_days": 0})
        with pytest.raises(DataError, match="top"):
            parse_query("predict", {"top": 0})

    def test_stage_name_prefix(self):
        from repro.serve.queries import parse_query, query_stage_name

        name = query_stage_name(parse_query("predict", {"top": 5}))
        assert name.startswith("serve:predict:")
        assert "top=5" in name

    def test_http_route_serves_predict(self, tmp_path):
        import asyncio

        from repro.serve import build_app
        from repro.serve.http import Request

        app = build_app(store_dir=str(tmp_path), workers=2, use_threads=True)
        app.service.register_fleet(
            {"seed": 5, "scale": 0.05, "days": 60}, name="tiny")
        status, payload = asyncio.run(app.dispatch(Request(
            "GET", "/v1/fleets/tiny/predict?act_fraction=0.1", {}, b"",
        )))
        assert status == 200
        assert payload["act_fraction"] == pytest.approx(0.1)
        assert "operating_point" in payload["proactive"]
        assert isinstance(payload["top_risks"], list)

        status, payload = asyncio.run(app.dispatch(Request(
            "GET", "/v1/fleets/tiny/q7", {}, b"",
        )))
        assert status == 404
        assert "predict" in payload["error"]["message"]
