"""SKU catalog tests."""

import pytest

from repro.datacenter.sku import SkuCatalog, SkuCategory, SkuSpec, default_catalog
from repro.errors import ConfigError


def make_spec(name="S1", **overrides) -> SkuSpec:
    base = {
        "name": name, "category": SkuCategory.STORAGE, "vendor": "V",
        "servers_per_rack": 20, "hdds_per_server": 10, "dimms_per_server": 8,
        "rated_power_kw": 6.0,
    }
    base.update(overrides)
    return SkuSpec(**base)


class TestSkuSpecValidation:
    def test_valid_spec_constructs(self):
        spec = make_spec()
        assert spec.hdds_per_rack == 200
        assert spec.dimms_per_rack == 160

    def test_zero_servers_rejected(self):
        with pytest.raises(ConfigError):
            make_spec(servers_per_rack=0)

    def test_negative_components_rejected(self):
        with pytest.raises(ConfigError):
            make_spec(hdds_per_server=-1)

    def test_implausible_power_rejected(self):
        with pytest.raises(ConfigError):
            make_spec(rated_power_kw=500.0)

    def test_nonpositive_intrinsic_hazard_rejected(self):
        with pytest.raises(ConfigError):
            make_spec(intrinsic_hazard=0.0)

    def test_batch_rate_must_be_probability(self):
        with pytest.raises(ConfigError):
            make_spec(batch_failure_rate=1.5)

    def test_batch_mean_size_at_least_one(self):
        with pytest.raises(ConfigError):
            make_spec(batch_failure_mean_size=0.5)


class TestSkuCatalog:
    def test_lookup_by_name(self):
        catalog = SkuCatalog([make_spec("A"), make_spec("B")])
        assert catalog.get("B").name == "B"

    def test_unknown_name_raises(self):
        catalog = SkuCatalog([make_spec("A")])
        with pytest.raises(ConfigError, match="unknown SKU"):
            catalog.get("Z")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            SkuCatalog([make_spec("A"), make_spec("A")])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ConfigError):
            SkuCatalog([])

    def test_contains_and_len(self):
        catalog = SkuCatalog([make_spec("A")])
        assert "A" in catalog
        assert "B" not in catalog
        assert len(catalog) == 1

    def test_index_of(self):
        catalog = SkuCatalog([make_spec("A"), make_spec("B")])
        assert catalog.index_of("B") == 1

    def test_by_category(self):
        catalog = SkuCatalog([
            make_spec("A"),
            make_spec("B", category=SkuCategory.COMPUTE, servers_per_rack=44),
        ])
        storage = catalog.by_category(SkuCategory.STORAGE)
        assert [s.name for s in storage] == ["A"]


class TestDefaultCatalog:
    def test_has_seven_skus(self):
        assert default_catalog().names == [f"S{i}" for i in range(1, 8)]

    def test_table_iii_density_structure(self):
        catalog = default_catalog()
        for name in ("S2", "S4"):
            compute = catalog.get(name)
            assert compute.category is SkuCategory.COMPUTE
            assert compute.servers_per_rack > 40
            assert compute.hdds_per_server == 4
        for name in ("S1", "S3"):
            storage = catalog.get(name)
            assert storage.category is SkuCategory.STORAGE
            assert storage.servers_per_rack == 20
            assert storage.hdds_per_server > 10

    def test_planted_intrinsic_ratio_is_four(self):
        catalog = default_catalog()
        ratio = catalog.get("S2").intrinsic_hazard / catalog.get("S4").intrinsic_hazard
        assert ratio == pytest.approx(4.0)

    def test_s3_has_highest_batch_propensity(self):
        catalog = default_catalog()
        s3_burst = catalog.get("S3").batch_failure_rate
        assert all(
            s3_burst >= sku.batch_failure_rate for sku in catalog
        )

    def test_hpc_sku_is_most_reliable(self):
        catalog = default_catalog()
        s7 = catalog.get("S7")
        assert s7.category is SkuCategory.HPC
        assert all(s7.intrinsic_hazard <= sku.intrinsic_hazard for sku in catalog)
