"""Fleet builder tests: Table I structure, mixes and planted confounds."""

import numpy as np
import pytest

from repro.datacenter.builder import (
    DC1_RACKS_FULL,
    DC2_RACKS_FULL,
    FleetConfig,
    SkuMix,
    build_fleet,
    dc1_spec,
    dc2_spec,
)
from repro.datacenter.topology import CoolingKind, PackagingKind
from repro.errors import ConfigError
from repro.rng import RngRegistry


@pytest.fixture(scope="module")
def fleet():
    return build_fleet(FleetConfig(scale=0.3, observation_days=540), RngRegistry(seed=5))


class TestSkuMix:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            SkuMix({"S1": 0.5, "S2": 0.4})

    def test_counts_apportion_exactly(self):
        mix = SkuMix({"S1": 0.5, "S2": 0.3, "S3": 0.2})
        counts = mix.counts(10)
        assert sum(counts.values()) == 10
        assert counts["S1"] == 5

    def test_counts_drop_zero_entries(self):
        mix = SkuMix({"S1": 0.99, "S2": 0.01})
        assert "S2" not in mix.counts(10)

    def test_nonpositive_rack_count_rejected(self):
        with pytest.raises(ConfigError):
            SkuMix({"S1": 1.0}).counts(0)


class TestTableIStructure:
    def test_dc1_properties(self):
        spec = dc1_spec()
        assert spec.packaging is PackagingKind.CONTAINER
        assert spec.availability_nines == 3
        assert spec.cooling is CoolingKind.ADIABATIC
        assert spec.n_rows == 18
        assert len(spec.regions) == 4

    def test_dc2_properties(self):
        spec = dc2_spec()
        assert spec.packaging is PackagingKind.COLOCATED
        assert spec.availability_nines == 5
        assert spec.cooling is CoolingKind.CHILLED_WATER
        assert spec.n_rows == 32
        assert len(spec.regions) == 3

    def test_dc1_has_hot_regions(self):
        offsets = [region.thermal_offset_f for region in dc1_spec().regions]
        assert max(offsets) >= 4.0
        assert min(offsets) < 0.0

    def test_dc2_is_thermally_tight(self):
        offsets = [abs(region.thermal_offset_f) for region in dc2_spec().regions]
        assert max(offsets) <= 2.0


class TestFleetConstruction:
    def test_scaled_rack_counts(self, fleet):
        dc1, dc2 = fleet.datacenters
        assert dc1.n_racks == round(DC1_RACKS_FULL * 0.3)
        assert dc2.n_racks == round(DC2_RACKS_FULL * 0.3)

    def test_rack_ids_unique(self, fleet):
        ids = [rack.rack_id for rack in fleet.racks]
        assert len(set(ids)) == len(ids)

    def test_rows_within_spec(self, fleet):
        for dc in fleet.datacenters:
            assert max(rack.row for rack in dc.racks) <= dc.spec.n_rows

    def test_workloads_respect_sku_affinity(self, fleet):
        from repro.datacenter.workload import eligible_workloads

        for rack in fleet.racks:
            assert rack.workload in eligible_workloads(rack.sku.category)

    def test_deterministic_given_seed(self):
        config = FleetConfig(scale=0.05, observation_days=120)
        a = build_fleet(config, RngRegistry(seed=9))
        b = build_fleet(config, RngRegistry(seed=9))
        assert [r.rack_id for r in a.racks] == [r.rack_id for r in b.racks]
        assert [r.workload for r in a.racks] == [r.workload for r in b.racks]
        assert [r.commission_day for r in a.racks] == [r.commission_day for r in b.racks]

    def test_different_seed_differs(self):
        config = FleetConfig(scale=0.05, observation_days=120)
        a = build_fleet(config, RngRegistry(seed=9))
        b = build_fleet(config, RngRegistry(seed=10))
        assert ([r.workload for r in a.racks] != [r.workload for r in b.racks]
                or [r.commission_day for r in a.racks]
                != [r.commission_day for r in b.racks])

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            FleetConfig(scale=0.0)

    def test_invalid_bias_rejected(self):
        with pytest.raises(ConfigError):
            FleetConfig(s2_hot_bias=1.5)


class TestPlantedConfounds:
    def test_s2_placed_in_hot_dc1_regions(self, fleet):
        dc1 = fleet.datacenter("DC1")
        s2_racks = [rack for rack in dc1.racks if rack.sku.name == "S2"]
        assert len(s2_racks) >= 10
        hot_share = np.mean([
            rack.region_name in ("DC1-1", "DC1-2") for rack in s2_racks
        ])
        assert hot_share > 0.8

    def test_s2_is_young_s4_is_mature(self, fleet):
        midpoint = 540 / 2
        def mean_age(sku):
            ages = [midpoint - rack.commission_day
                    for rack in fleet.racks if rack.sku.name == sku]
            return np.mean(ages)
        assert mean_age("S2") < mean_age("S4") / 2

    def test_dc1_skews_compute_dc2_less_s2(self, fleet):
        def s2_share(dc_name):
            racks = fleet.datacenter(dc_name).racks
            return np.mean([rack.sku.name == "S2" for rack in racks])
        assert s2_share("DC1") > 3 * s2_share("DC2")
