"""Single-factor and multi-factor model tests."""

import numpy as np
import pytest

from repro.analysis.multi_factor import MultiFactorModel
from repro.analysis.single_factor import SingleFactorModel
from repro.analysis.cart.tree import TreeParams
from repro.errors import DataError, FitError
from repro.telemetry.schema import FeatureKind, FeatureSpec, Schema
from repro.telemetry.table import Table


@pytest.fixture(scope="module")
def confounded_table() -> Table:
    """Synthetic multiplicative data with a planted confound.

    rate = group_effect[g] * context_effect[c] * noise, where group 1 is
    over-represented in the high-context cells — SF overestimates group
    1's effect, a stratified MF should not.
    """
    rng = np.random.default_rng(11)
    n = 12000
    group = np.empty(n, dtype=int)
    context = np.empty(n, dtype=int)
    # context 1 is "harsh" (3x rates); group 1 lives mostly in it.
    for i in range(n):
        group[i] = rng.integers(0, 2)
        if group[i] == 1:
            context[i] = rng.random() < 0.9
        else:
            context[i] = rng.random() < 0.2
    group_effect = np.array([1.0, 2.0])    # true effect ratio = 2
    context_effect = np.array([1.0, 3.0])
    rate = group_effect[group] * context_effect[context]
    y = rng.poisson(rate).astype(float)
    schema = Schema((
        FeatureSpec("group", FeatureKind.NOMINAL, ("g0", "g1")),
        FeatureSpec("context", FeatureKind.NOMINAL, ("calm", "harsh")),
    ))
    return Table({
        "group": group.astype(float),
        "context": context.astype(float),
        "rate": y,
    }, schema=schema)


class TestSingleFactor:
    def test_by_factor_matches_manual(self, confounded_table):
        sf = SingleFactorModel(confounded_table, "rate")
        stats = sf.by_factor("group")
        values = confounded_table.column("rate")
        mask = confounded_table.column("group") == 1
        assert stats["g1"].mean == pytest.approx(values[mask].mean())
        assert stats["g1"].count == int(mask.sum())

    def test_sf_overestimates_confounded_ratio(self, confounded_table):
        sf = SingleFactorModel(confounded_table, "rate")
        stats = sf.by_factor("group")
        observed_ratio = stats["g1"].mean / stats["g0"].mean
        assert observed_ratio > 3.0  # true effect is only 2

    def test_ranking(self, confounded_table):
        sf = SingleFactorModel(confounded_table, "rate")
        ranked = sf.ranking("group")
        assert [level.label for level in ranked] == ["g0", "g1"]

    def test_ranking_invalid_statistic(self, confounded_table):
        with pytest.raises(DataError):
            SingleFactorModel(confounded_table, "rate").ranking("group", by="mode")

    def test_cdf_for_level(self, confounded_table):
        sf = SingleFactorModel(confounded_table, "rate")
        cdf = sf.cdf_for_level("group", "g0")
        assert cdf.n > 0
        with pytest.raises(DataError):
            sf.cdf_for_level("group", "missing")

    def test_missing_metric_rejected(self, confounded_table):
        with pytest.raises(DataError):
            SingleFactorModel(confounded_table, "nope")


class TestMultiFactorFit:
    @pytest.fixture(scope="class")
    def model(self, confounded_table):
        return MultiFactorModel.from_formula(
            "rate ~ group, N(context)",
            confounded_table,
            params=TreeParams(max_depth=4, min_split=100, min_bucket=50, cp=1e-3),
        )

    def test_missing_metric_rejected(self, confounded_table):
        with pytest.raises(DataError):
            MultiFactorModel.from_formula("nope ~ group", confounded_table)

    def test_missing_feature_rejected(self, confounded_table):
        with pytest.raises(DataError):
            MultiFactorModel.from_formula("rate ~ group, N(nope)", confounded_table)

    def test_stratified_effect_recovers_true_ratio(self, model):
        adjusted = model.stratified_effect("group", min_cell=50)
        ratio = adjusted["g1"].mean / adjusted["g0"].mean
        assert ratio == pytest.approx(2.0, abs=0.35)

    def test_stratified_ratio_recovers_true_ratio(self, model):
        ratio = model.stratified_ratio("group", "g1", "g0", min_cell=50)
        assert ratio == pytest.approx(2.0, abs=0.3)

    def test_stratified_ratio_inverse_pair(self, model):
        forward = model.stratified_ratio("group", "g1", "g0", min_cell=50)
        backward = model.stratified_ratio("group", "g0", "g1", min_cell=50)
        assert forward * backward == pytest.approx(1.0, abs=0.05)

    def test_stratified_ratio_without_normalized_terms_rejected(self, confounded_table):
        bare = MultiFactorModel.from_formula("rate ~ group", confounded_table)
        with pytest.raises(FitError):
            bare.stratified_ratio("group", "g1", "g0")

    def test_stratified_ratio_continuous_rejected(self, confounded_table):
        table = confounded_table.with_column(
            "x", np.arange(confounded_table.n_rows, dtype=float)
        )
        model = MultiFactorModel.from_formula("rate ~ x, N(context)", table)
        with pytest.raises(DataError):
            model.stratified_ratio("x", "a", "b")

    def test_common_support_effect_recovers_true_ratio(self, model):
        stats = model.common_support_effect("group", ("g0", "g1"),
                                            min_cell=50)
        assert set(stats) == {"g0", "g1"}
        ratio = stats["g1"].mean / stats["g0"].mean
        assert ratio == pytest.approx(2.0, abs=0.35)
        # Both levels are evaluated over the same strata.
        assert stats["g0"].n_strata == stats["g1"].n_strata

    def test_common_support_single_level_rejected(self, model):
        with pytest.raises(DataError):
            model.common_support_effect("group", ("g0",))

    def test_common_support_agrees_with_stratified_ratio(self, model):
        stats = model.common_support_effect("group", ("g0", "g1"),
                                            min_cell=50)
        direct = stats["g1"].mean / stats["g0"].mean
        geometric = model.stratified_ratio("group", "g1", "g0", min_cell=50)
        # Different weightings of the same strata: same ballpark.
        assert direct == pytest.approx(geometric, rel=0.25)

    def test_stratified_effect_on_continuous_rejected(self, confounded_table):
        table = confounded_table.with_column(
            "x", np.arange(confounded_table.n_rows, dtype=float)
        )
        model = MultiFactorModel.from_formula("rate ~ x, N(context)", table)
        with pytest.raises(DataError):
            model.stratified_effect("x")

    def test_normalized_effect_returns_pd(self, model):
        pd = model.normalized_effect("group")
        assert set(pd.as_dict()) == {"g0", "g1"}

    def test_effect_ratio(self, model):
        ratio = model.effect_ratio("group", "g1", "g0")
        assert ratio > 1.0

    def test_importance_nonempty(self, model):
        assert model.importance()

    def test_residual_variance_below_raw(self, model, confounded_table):
        raw = float(np.var(confounded_table.column("rate")))
        assert model.residual_variance() < raw

    def test_render_smoke(self, model):
        assert "root" in model.render()

    def test_default_feature_requires_single_studied(self, confounded_table):
        model = MultiFactorModel.from_formula("rate ~ group, context", confounded_table)
        with pytest.raises(FitError):
            model.normalized_effect()

    def test_stratified_requires_normalized_terms(self, confounded_table):
        model = MultiFactorModel.from_formula("rate ~ group", confounded_table)
        with pytest.raises(FitError):
            model.stratified_effect("group")


class TestClusters:
    def test_clusters_partition_rows(self, confounded_table):
        model = MultiFactorModel.from_formula(
            "rate ~ group, context", confounded_table,
            params=TreeParams(max_depth=3, min_split=50, min_bucket=25, cp=1e-3),
        )
        clusters = model.clusters()
        total = sum(cluster.size for cluster in clusters)
        assert total == confounded_table.n_rows
        assert len(clusters) >= 2

    def test_clusters_sorted_by_prediction(self, confounded_table):
        model = MultiFactorModel.from_formula(
            "rate ~ group, context", confounded_table,
            params=TreeParams(max_depth=3, min_split=50, min_bucket=25, cp=1e-3),
        )
        predictions = [cluster.prediction for cluster in model.clusters()]
        assert predictions == sorted(predictions)

    def test_cluster_descriptions_reference_features(self, confounded_table):
        model = MultiFactorModel.from_formula(
            "rate ~ group, context", confounded_table,
            params=TreeParams(max_depth=3, min_split=50, min_bucket=25, cp=1e-3),
        )
        for cluster in model.clusters():
            assert ("group" in cluster.description
                    or "context" in cluster.description
                    or cluster.description == "root")


class TestPruneByCv:
    def test_cv_pruning_runs(self, confounded_table):
        model = MultiFactorModel.from_formula(
            "rate ~ group, context", confounded_table,
            params=TreeParams(max_depth=5, min_split=50, min_bucket=25, cp=1e-4),
            prune_by_cv=True, cv_folds=3,
        )
        # The planted structure has exactly 4 cells.
        assert 2 <= model.tree.n_leaves <= 6
