"""Per-rule fixtures: each rule has a triggering and a clean case.

Snippets are linted via :func:`repro.staticcheck.lint_source`, which
places them at a chosen virtual module path — so the same snippet can be
put inside or outside the packages a rule guards.
"""

from repro.staticcheck import lint_source
from repro.staticcheck.contract import ground_truth_attributes, telemetry_field_names
from repro.staticcheck.framework import get_rule


def rules_hit(source, module="repro.analysis.fixture", rule=None):
    rules = [get_rule(rule)] if rule else None
    return [f.rule for f in lint_source(source, module=module, rules=rules)]


class TestGtLeak:
    def test_absolute_hazard_import_flagged(self):
        assert rules_hit("from repro.failures import hazards\n",
                         rule="GT-leak") == ["GT-leak"]

    def test_relative_hazard_import_flagged(self):
        assert rules_hit("from ..failures import hazards\n",
                         rule="GT-leak") == ["GT-leak"]

    def test_plain_import_hazards_flagged(self):
        assert rules_hit("import repro.failures.hazards\n",
                         rule="GT-leak") == ["GT-leak"]

    def test_ground_truth_attribute_flagged(self):
        assert rules_hit("def f(arrays):\n    return arrays.sku_intrinsic\n",
                         rule="GT-leak") == ["GT-leak"]

    def test_getattr_string_flagged(self):
        assert rules_hit("def f(a):\n    return getattr(a, 'region_hazard')\n",
                         rule="GT-leak") == ["GT-leak"]

    def test_generation_side_may_touch_hazards(self):
        source = ("from repro.failures import hazards\n"
                  "def f(arrays):\n    return arrays.sku_intrinsic\n")
        assert not rules_hit(source, module="repro.failures.fixture",
                             rule="GT-leak")

    def test_clean_analysis_module(self):
        source = ("from repro.telemetry.aggregate import lambda_matrix\n"
                  "def f(arrays):\n    return arrays.n_servers\n")
        assert not rules_hit(source, rule="GT-leak")

    def test_forbidden_set_is_generated_not_empty(self):
        attributes = ground_truth_attributes()
        assert {"sku_intrinsic", "region_hazard", "stress_multiplier"} <= attributes

    def test_predict_package_is_guarded(self):
        # The online predictor scores against *planted* ground truth, so
        # its package must sit on the analysis side of the GT boundary.
        assert rules_hit("import repro.failures.hazards\n",
                         module="repro.predict.fixture",
                         rule="GT-leak") == ["GT-leak"]

    def test_predict_from_import_flagged(self):
        assert rules_hit("from repro.failures import hazards\n",
                         module="repro.predict.fixture",
                         rule="GT-leak") == ["GT-leak"]

    def test_predict_ground_truth_attribute_flagged(self):
        assert rules_hit("def f(arrays):\n    return arrays.region_hazard\n",
                         module="repro.predict.fixture",
                         rule="GT-leak") == ["GT-leak"]


class TestRngDiscipline:
    def test_global_numpy_random_flagged(self):
        assert rules_hit("import numpy as np\nx = np.random.rand(3)\n",
                         rule="RNG-discipline") == ["RNG-discipline"]

    def test_unseeded_default_rng_flagged(self):
        source = ("import numpy as np\n"
                  "def f():\n    return np.random.default_rng()\n")
        assert rules_hit(source, rule="RNG-discipline") == ["RNG-discipline"]

    def test_stdlib_random_flagged(self):
        assert rules_hit("import random\nx = random.random()\n",
                         rule="RNG-discipline") == ["RNG-discipline"]

    def test_from_import_stdlib_random_flagged(self):
        assert rules_hit("from random import shuffle\nshuffle([1, 2])\n",
                         rule="RNG-discipline") == ["RNG-discipline"]

    def test_module_global_generator_flagged(self):
        source = "import numpy as np\nRNG = np.random.default_rng(7)\n"
        assert "RNG-discipline" in rules_hit(source, rule="RNG-discipline")

    def test_seeded_local_default_rng_allowed(self):
        source = ("import numpy as np\n"
                  "def f(seed):\n    return np.random.default_rng(seed)\n")
        assert not rules_hit(source, rule="RNG-discipline")

    def test_generator_parameter_draws_allowed(self):
        source = "def f(rng):\n    return rng.normal(size=3)\n"
        assert not rules_hit(source, rule="RNG-discipline")

    def test_rng_helper_module_exempt(self):
        source = ("import numpy as np\n"
                  "def stream():\n    return np.random.default_rng()\n")
        assert not rules_hit(source, module="repro.rng",
                             rule="RNG-discipline")


class TestWallclock:
    def test_time_time_call_flagged(self):
        assert rules_hit("import time\ndef f():\n    return time.time()\n",
                         rule="wallclock") == ["wallclock"]

    def test_datetime_now_flagged(self):
        source = ("from datetime import datetime\n"
                  "def f():\n    return datetime.now()\n")
        assert rules_hit(source, rule="wallclock") == ["wallclock"]

    def test_clock_reference_as_default_allowed(self):
        source = ("import time\n"
                  "def f(clock=time.time):\n    return clock()\n")
        assert not rules_hit(source, rule="wallclock")

    def test_applies_outside_analysis_packages_too(self):
        assert rules_hit("import time\ndef f():\n    return time.time()\n",
                         module="repro.cachelike", rule="wallclock") == ["wallclock"]


class TestFloatEq:
    def test_float_literal_equality_flagged(self):
        assert rules_hit("def f(x):\n    return x == 0.5\n",
                         rule="float-eq") == ["float-eq"]

    def test_float_call_equality_flagged(self):
        assert rules_hit("def f(x, y):\n    return float(x) != y\n",
                         rule="float-eq") == ["float-eq"]

    def test_arithmetic_operand_flagged(self):
        assert rules_hit("def f(x, y):\n    return x == y * 2.0\n",
                         rule="float-eq") == ["float-eq"]

    def test_int_equality_allowed(self):
        assert not rules_hit("def f(x):\n    return x == 3\n", rule="float-eq")

    def test_ordered_float_comparison_allowed(self):
        assert not rules_hit("def f(x):\n    return x <= 78.0\n",
                             rule="float-eq")

    def test_generation_side_not_in_scope(self):
        assert not rules_hit("def f(x):\n    return x == 0.5\n",
                             module="repro.failures.fixture", rule="float-eq")

    def test_noqa_with_rationale_suppresses(self):
        source = ("def f(severity):\n"
                  "    return severity == 0.0  # repro: noqa[float-eq]\n")
        assert not rules_hit(source, rule="float-eq")


class TestSchemaFields:
    def test_subscript_key_flagged(self):
        assert rules_hit("def f(c):\n    return c['day_index']\n",
                         rule="schema-fields") == ["schema-fields"]

    def test_dict_literal_key_flagged(self):
        assert rules_hit("d = {'rack_id': 1}\n",
                         module="repro.fielddata.fixture",
                         rule="schema-fields") == ["schema-fields"]

    def test_constant_spelled_key_allowed(self):
        source = ("from repro.telemetry.schema import TICKET_LOG\n"
                  "def f(c):\n    return c[TICKET_LOG.day_index]\n")
        assert not rules_hit(source, rule="schema-fields")

    def test_non_field_string_key_allowed(self):
        assert not rules_hit("def f(c):\n    return c['alerts']\n",
                             rule="schema-fields")

    def test_generation_side_not_in_scope(self):
        assert not rules_hit("def f(c):\n    return c['day_index']\n",
                             module="repro.failures.fixture",
                             rule="schema-fields")

    def test_declaring_module_exempt(self):
        assert not rules_hit("day_index = 'day_index'\nd = {'day_index': 1}\n",
                             module="repro.telemetry.schema",
                             rule="schema-fields")

    def test_key_set_is_generated_from_schema(self):
        fields = telemetry_field_names()
        assert {"day_index", "rack_id", "n_servers",
                "decommission_day"} <= fields
        assert "alerts" not in fields


class TestLayering:
    def test_upward_import_flagged(self):
        assert rules_hit("from repro.reporting import tables\n",
                         module="repro.failures.fixture",
                         rule="layering") == ["layering"]

    def test_function_level_upward_import_flagged(self):
        source = ("def f():\n"
                  "    from repro.stream.experiment import streaming_experiment\n"
                  "    return streaming_experiment\n")
        assert rules_hit(source, module="repro.telemetry.fixture",
                         rule="layering") == ["layering"]

    def test_downward_import_allowed(self):
        assert not rules_hit("from repro.failures import engine\n",
                             module="repro.reporting.fixture",
                             rule="layering")

    def test_same_package_import_allowed(self):
        assert not rules_hit("from repro.failures import tickets\n",
                             module="repro.failures.fixture",
                             rule="layering")

    def test_top_level_module_exempt(self):
        # cache, cli, parallel… orchestrate across layers by design.
        assert not rules_hit("from repro.reporting import tables\n",
                             module="repro.cache",
                             rule="layering")

    def test_top_level_import_target_not_ranked(self):
        assert not rules_hit("from repro import cache\n",
                             module="repro.reporting.fixture",
                             rule="layering")

    def test_baselined_exception_allowed(self):
        source = ("def f():\n"
                  "    from repro.fielddata.robustness import fielddata_experiment\n"
                  "    return fielddata_experiment\n")
        assert not rules_hit(source, module="repro.reporting.experiments",
                             rule="layering")

    def test_exception_is_module_specific(self):
        """The fielddata exception covers experiments, not all of reporting."""
        source = "from repro.fielddata import robustness\n"
        assert rules_hit(source, module="repro.reporting.fixture",
                         rule="layering") == ["layering"]

    def test_serve_may_import_every_layer(self):
        # serve is the topmost layer: the API edge composes everything.
        for target in ("from repro.pipeline import stages\n",
                       "from repro.stream import blocks\n",
                       "from repro.decisions import spares\n"):
            assert not rules_hit(target, module="repro.serve.fixture",
                                 rule="layering")

    def test_nothing_may_import_serve(self):
        # ...and nothing sits above it: any import of serve reaches up.
        source = "from repro.serve import ports\n"
        for module in ("repro.pipeline.fixture", "repro.reporting.fixture",
                       "repro.staticcheck.fixture", "repro.failures.fixture"):
            assert rules_hit(source, module=module,
                             rule="layering") == ["layering"]

    def test_layer_order_covers_every_package(self):
        import pathlib

        import repro
        from repro.staticcheck.contract import PACKAGE_LAYER_ORDER

        src = pathlib.Path(repro.__file__).parent
        packages = {p.name for p in src.iterdir()
                    if p.is_dir() and (p / "__init__.py").exists()}
        # Dotted entries rank single modules inside a package; the set
        # of first segments must still cover exactly the real packages.
        assert packages == {entry.split(".")[0]
                           for entry in PACKAGE_LAYER_ORDER}
        # Every dotted entry must name a module that actually exists.
        for entry in PACKAGE_LAYER_ORDER:
            if "." in entry:
                assert (src / (entry.replace(".", "/") + ".py")).exists()

    def test_repo_is_clean_under_layering(self):
        """The shipped tree has no non-baselined upward imports."""
        import pathlib

        import repro
        from repro.staticcheck import lint_paths
        from repro.staticcheck.framework import get_rule

        report = lint_paths([pathlib.Path(repro.__file__).parent],
                            rules=[get_rule("layering")])
        assert [f.render() for f in report.findings] == []
