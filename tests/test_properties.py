"""Cross-cutting property-based invariants over core data structures."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.cart.prune import prune
from repro.analysis.cart.tree import RegressionTree, TreeParams
from repro.analysis.partial_dependence import partial_dependence
from repro.telemetry.schema import FeatureKind, FeatureSpec, Schema
from repro.telemetry.stats import ecdf
from repro.telemetry.table import Table

response = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    min_size=10, max_size=80,
)


def fit_on(values):
    y = np.array(values)
    x = np.arange(len(y), dtype=float).reshape(-1, 1)
    schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
    tree = RegressionTree(TreeParams(max_depth=4, min_split=4, min_bucket=2,
                                     cp=0.01)).fit(x, y, schema)
    return tree, x, y


class TestTreeInvariants:
    @settings(max_examples=30)
    @given(response)
    def test_predictions_conserve_mean(self, values):
        tree, x, y = fit_on(values)
        assert tree.predict(x).mean() == pytest.approx(y.mean(), abs=1e-6)

    @settings(max_examples=30)
    @given(response)
    def test_predictions_within_response_range(self, values):
        tree, x, y = fit_on(values)
        predictions = tree.predict(x)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    @settings(max_examples=30)
    @given(response)
    def test_leaf_counts_sum_to_samples(self, values):
        tree, x, y = fit_on(values)
        assert sum(leaf.n for leaf in tree.leaves()) == len(y)

    @settings(max_examples=20)
    @given(response)
    def test_pruning_never_improves_training_fit(self, values):
        tree, x, y = fit_on(values)
        full_sse = float(((y - tree.predict(x)) ** 2).sum())
        pruned = prune(tree, 1e12)
        pruned_sse = float(((y - pruned.predict(x)) ** 2).sum())
        assert pruned_sse >= full_sse - 1e-6

    @settings(max_examples=20)
    @given(response)
    def test_pd_of_stump_is_constant(self, values):
        y = np.array(values)
        x = np.arange(len(y), dtype=float).reshape(-1, 1)
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        stump = RegressionTree(TreeParams(max_depth=0)).fit(x, y, schema)
        pd = partial_dependence(stump, "x", grid=np.array([0.0, 5.0, 50.0]))
        assert np.allclose(pd.values, y.mean())

    @settings(max_examples=20)
    @given(response)
    def test_pd_weighted_by_training_shares_averages_to_mean(self, values):
        """Averaging PD over the training x recovers the response mean
        (Friedman's PD is a projection; exact for a single feature)."""
        tree, x, y = fit_on(values)
        pd = partial_dependence(tree, "x", grid=x[:, 0])
        assert pd.values.mean() == pytest.approx(y.mean(), abs=1e-6)


class TestEcdfInvariants:
    @settings(max_examples=40)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=60),
           st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_evaluate_galois(self, sample, q):
        cdf = ecdf(np.array(sample))
        value = cdf.quantile(q)
        assert cdf.evaluate(value) >= min(q, 1.0) - 1e-9

    @settings(max_examples=40)
    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=2, max_size=60))
    def test_quantile_monotone(self, sample):
        cdf = ecdf(np.array(sample))
        levels = np.linspace(0.05, 1.0, 8)
        quantiles = [cdf.quantile(q) for q in levels]
        assert all(a <= b for a, b in zip(quantiles, quantiles[1:]))


codes = st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50)


class TestTableInvariants:
    @settings(max_examples=40)
    @given(codes)
    def test_filter_then_concat_preserves_rows(self, values):
        schema = Schema((FeatureSpec("k", FeatureKind.NOMINAL,
                                     ("a", "b", "c", "d")),))
        table = Table({"k": np.array(values),
                       "v": np.arange(len(values), dtype=float)}, schema=schema)
        mask = table.column("v") % 2 == 0
        split_a = table.filter(mask)
        split_b = table.filter(~mask)
        assert split_a.n_rows + split_b.n_rows == table.n_rows
        rejoined = split_a.concat(split_b)
        assert sorted(rejoined.column("v").tolist()) == sorted(
            table.column("v").tolist()
        )

    @settings(max_examples=40)
    @given(codes)
    def test_group_means_weighted_average_is_global_mean(self, values):
        schema = Schema((FeatureSpec("k", FeatureKind.NOMINAL,
                                     ("a", "b", "c", "d")),))
        v = np.arange(len(values), dtype=float)
        table = Table({"k": np.array(values), "v": v}, schema=schema)
        stats = table.group_reduce(["k"], "v", {"mean": np.mean, "n": len})
        weighted = sum(s["mean"] * s["n"] for s in stats.values())
        assert weighted / len(values) == pytest.approx(v.mean())

    @settings(max_examples=40)
    @given(codes)
    def test_decoded_encode_roundtrip(self, values):
        schema = Schema((FeatureSpec("k", FeatureKind.NOMINAL,
                                     ("a", "b", "c", "d")),))
        table = Table({"k": np.array(values)}, schema=schema)
        labels = table.decoded("k")
        spec = schema.get("k")
        assert [spec.encode(label) for label in labels] == list(values)
