"""Q2 (SKU ranking) and Q3 (climate) decision tests."""

import numpy as np
import pytest

from repro.decisions.climate import (
    FIG16_TEMP_BINS,
    climate_group_rates,
    discover_climate_thresholds,
    temperature_binned_rates,
)
from repro.decisions.sku_ranking import (
    compare_skus,
    procurement_scenarios,
)
from repro.decisions.tco import TcoModel, TcoParams
from repro.errors import ConfigError, DataError


@pytest.fixture(scope="module")
def comparison(small_context):
    return compare_skus(small_context.result, table=small_context.hardware_failures)


class TestSkuComparison:
    def test_all_skus_covered_by_sf(self, comparison):
        assert set(comparison.sf_mean) == {f"S{i}" for i in range(1, 8)}

    def test_sf_s2_worst_average(self, comparison):
        means = {label: stats.mean for label, stats in comparison.sf_mean.items()}
        assert means["S2"] == max(means.values())

    def test_sf_s4_best_compute_sku(self, comparison):
        assert comparison.sf_ratio("S2", "S4", "mean") > 5.0

    def test_sf_s3_highest_peak(self, comparison):
        peaks = {label: comparison.sf_peak[label].peak
                 for label in ("S1", "S2", "S3", "S4")}
        assert peaks["S3"] == max(peaks.values())

    def test_mf_collapses_the_ratio(self, comparison):
        sf_ratio = comparison.sf_ratio("S2", "S4", "mean")
        mf_ratio = comparison.mf_ratio("S2", "S4", "mean")
        assert mf_ratio < 0.85 * sf_ratio
        assert 2.5 < mf_ratio < 8.0  # intrinsic is ~4.2X

    def test_relative_order_preserved(self, comparison):
        """§VI-Q2: 'the relative ordering between the two compute SKUs
        are the same in both approaches'."""
        assert comparison.mf_ratio("S2", "S4", "mean") > 1.0

    def test_normalized_sf_peaks_at_one(self, comparison):
        bars = comparison.normalized_sf(statistic="mean")
        assert max(bars.values()) == pytest.approx(1.0)
        assert bars["S2"] == pytest.approx(1.0)

    def test_unknown_sku_rejected(self, comparison):
        with pytest.raises(DataError):
            comparison.sf_ratio("S9", "S4")


class TestProcurementScenarios:
    def test_equal_price_both_favour_s4(self, comparison):
        scenario = procurement_scenarios(comparison, price_ratios=(1.0,))[0]
        assert scenario.sf_savings > 0.05
        assert scenario.mf_savings > 0.0

    def test_sf_always_looks_better_for_s4(self, comparison):
        for scenario in procurement_scenarios(comparison, price_ratios=(1.0, 1.25, 1.5)):
            assert scenario.sf_savings > scenario.mf_savings

    def test_premium_erodes_savings(self, comparison):
        cheap, expensive = procurement_scenarios(comparison, price_ratios=(1.0, 1.5))
        assert expensive.sf_savings < cheap.sf_savings
        assert expensive.mf_savings < cheap.mf_savings

    def test_invalid_price_ratio_rejected(self, comparison):
        with pytest.raises(DataError):
            procurement_scenarios(comparison, price_ratios=(0.0,))


class TestTcoModel:
    def test_deployment_tco_scales_with_spares(self):
        tco = TcoModel()
        assert tco.deployment_tco(100, 0.2) > tco.deployment_tco(100, 0.1)

    def test_relative_savings_sign(self):
        tco = TcoModel()
        assert tco.relative_savings(100, 0.4, 0.2) > 0
        assert tco.relative_savings(100, 0.2, 0.4) < 0

    def test_component_cost_uses_paper_ratio(self):
        tco = TcoModel()
        disk_only = tco.component_spare_cost(10, 100, 0, 0.5, 0.0, 0.0)
        dimm_only = tco.component_spare_cost(10, 0, 100, 0.0, 0.5, 0.0)
        assert dimm_only / disk_only == pytest.approx(10.0 / 2.0)

    def test_server_spare_cost(self):
        assert TcoModel().server_spare_cost(10, 0.1) == pytest.approx(100.0)

    def test_sku_choice_antisymmetry_direction(self):
        tco = TcoModel()
        a_over_b = tco.sku_choice_savings(100, 100, 0.1, 0.001, 100, 0.3, 0.01)
        b_over_a = tco.sku_choice_savings(100, 100, 0.3, 0.01, 100, 0.1, 0.001)
        assert a_over_b > 0 > b_over_a

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            TcoParams(server_cost=0.0)
        with pytest.raises(ConfigError):
            TcoParams(horizon_days=0.0)
        with pytest.raises(ConfigError):
            TcoModel().deployment_tco(0, 0.1)


class TestClimateBins:
    def test_fig17_trend(self, small_context):
        binned = temperature_binned_rates(
            small_context.result, table=small_context.disk_failures,
        )
        rows = binned.as_rows()
        hottest = rows[-1][1]
        coolest = rows[0][1]
        assert hottest > 1.5 * coolest

    def test_fig16_flat_means_high_sd(self, small_context):
        binned = temperature_binned_rates(
            small_context.result, table=small_context.all_failures,
        )
        means = binned.means[np.isfinite(binned.means)]
        sds = binned.sds[np.isfinite(binned.sds)]
        # Within-bin spread dwarfs the between-bin spread (Fig 16's point).
        assert sds.mean() > 2 * (means.max() - means.min())

    def test_bin_labels(self):
        assert FIG16_TEMP_BINS.labels == ("<60", "60-65", "65-70", "70-75", ">75")


class TestClimateGroups:
    def test_dc1_hot_worse_than_cool(self, small_context):
        group = climate_group_rates(
            small_context.result, "DC1", table=small_context.disk_failures,
        )
        assert group.hot > 1.3 * group.cool
        assert group.hot_dry > group.hot

    def test_dc2_flatter_than_dc1(self, small_context):
        """DC2's thermal response is suppressed relative to DC1's.

        At this scale DC2's hot group holds only a few hundred rack-days
        (tens of disk events), so the ratio itself is noisy; the robust
        statement is the *contrast* with DC1 plus a loose ceiling.
        """
        dc1 = climate_group_rates(
            small_context.result, "DC1", table=small_context.disk_failures,
        )
        dc2 = climate_group_rates(
            small_context.result, "DC2", table=small_context.disk_failures,
        )
        if np.isfinite(dc2.hot):
            assert dc2.hot / dc2.cool < 1.75
            assert dc2.hot / dc2.cool < dc1.hot / dc1.cool + 0.25

    def test_normalization(self, small_context):
        group = climate_group_rates(
            small_context.result, "DC1", table=small_context.disk_failures,
        )
        cool, hot, hot_dry, overall = group.normalized_to(group.hot_dry)
        assert hot_dry == pytest.approx(1.0)
        assert cool < hot < hot_dry

    def test_unknown_dc_rejected(self, small_context):
        with pytest.raises(DataError):
            climate_group_rates(small_context.result, "DC9",
                                table=small_context.disk_failures)


class TestThresholdDiscovery:
    def test_dc1_threshold_near_78(self, small_context):
        found = discover_climate_thresholds(
            small_context.result, "DC1", table=small_context.disk_failures,
        )
        assert found.temp_threshold_f is not None
        assert 72.0 <= found.temp_threshold_f <= 82.0
        assert found.temp_gain_share > 0.002

    def test_dc1_rh_subsplit_near_25(self, small_context):
        found = discover_climate_thresholds(
            small_context.result, "DC1", table=small_context.disk_failures,
        )
        if found.rh_threshold is not None:
            # The sub-split identifies the *low*-RH side; its exact
            # location wanders with the seed (the paper found 25.5).
            assert 4.0 <= found.rh_threshold <= 33.0

    def test_dc2_no_significant_threshold(self, small_context):
        found = discover_climate_thresholds(
            small_context.result, "DC2", table=small_context.disk_failures,
        )
        assert found.temp_threshold_f is None
