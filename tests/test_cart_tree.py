"""Regression-tree tests."""

import numpy as np
import pytest

from repro.analysis.cart.export import describe_path, render_tree
from repro.analysis.cart.tree import Node, RegressionTree, TreeParams
from repro.errors import DataError, FitError
from repro.telemetry.schema import FeatureKind, FeatureSpec, Schema


def piecewise_data(n=600, seed=0):
    """y depends on a threshold of x0 and the category of x1."""
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(0, 10, n)
    x1 = rng.integers(0, 3, n).astype(float)
    y = (np.where(x0 <= 5.0, 1.0, 4.0)
         + np.where(x1 == 2, 3.0, 0.0)
         + rng.normal(0, 0.2, n))
    matrix = np.column_stack([x0, x1])
    schema = Schema((
        FeatureSpec("x0", FeatureKind.CONTINUOUS),
        FeatureSpec("x1", FeatureKind.NOMINAL, ("a", "b", "c")),
    ))
    return matrix, y, schema


class TestParamsValidation:
    def test_bad_cp_rejected(self):
        with pytest.raises(DataError):
            TreeParams(cp=1.5)

    def test_bad_min_split_rejected(self):
        with pytest.raises(DataError):
            TreeParams(min_split=1)

    def test_bad_max_leaves_rejected(self):
        with pytest.raises(DataError):
            TreeParams(max_leaves=0)


class TestFitting:
    def test_learns_piecewise_structure(self):
        matrix, y, schema = piecewise_data()
        tree = RegressionTree(TreeParams(max_depth=4, cp=0.01)).fit(matrix, y, schema)
        predictions = tree.predict(matrix)
        residual = y - predictions
        assert np.var(residual) < 0.15 * np.var(y)
        assert 3 <= tree.n_leaves <= 8

    def test_prediction_constant_within_leaf(self):
        matrix, y, schema = piecewise_data()
        tree = RegressionTree().fit(matrix, y, schema)
        leaf_ids = tree.apply(matrix)
        predictions = tree.predict(matrix)
        for leaf in np.unique(leaf_ids):
            assert len(np.unique(predictions[leaf_ids == leaf])) == 1

    def test_leaf_predictions_are_leaf_means(self):
        matrix, y, schema = piecewise_data()
        tree = RegressionTree().fit(matrix, y, schema)
        leaf_ids = tree.apply(matrix)
        for leaf in tree.leaves():
            members = leaf_ids == leaf.node_id
            assert leaf.prediction == pytest.approx(y[members].mean(), abs=1e-9)
            assert leaf.n == members.sum()

    def test_max_depth_zero_gives_stump(self):
        matrix, y, schema = piecewise_data(n=100)
        tree = RegressionTree(TreeParams(max_depth=0)).fit(matrix, y, schema)
        assert tree.n_leaves == 1
        assert tree.predict(matrix[:5]) == pytest.approx(np.full(5, y.mean()))

    def test_high_cp_prevents_weak_splits(self):
        rng = np.random.default_rng(0)
        matrix = rng.uniform(size=(200, 1))
        y = rng.normal(size=200)  # pure noise
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        tree = RegressionTree(TreeParams(cp=0.05)).fit(matrix, y, schema)
        assert tree.n_leaves <= 3

    def test_max_leaves_caps_growth(self):
        matrix, y, schema = piecewise_data()
        tree = RegressionTree(TreeParams(cp=0.0001, max_leaves=4)).fit(matrix, y, schema)
        assert tree.n_leaves <= 5  # cap checked before each split

    def test_sample_weights_shift_fit(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = np.where(x[:, 0] <= 0.5, 0.0, 1.0)
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        weights = np.where(x[:, 0] <= 0.5, 100.0, 1.0)
        tree = RegressionTree(TreeParams(max_depth=0)).fit(x, y, schema, weights)
        assert tree.root.prediction < 0.1  # weighted mean near 0

    def test_nan_response_rejected(self):
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        with pytest.raises(FitError):
            RegressionTree().fit(np.array([[1.0]]), np.array([np.nan]), schema)

    def test_nan_features_handled_via_default_direction(self):
        """Rows with missing feature values route with the informative side."""
        rng = np.random.default_rng(4)
        n = 600
        x = rng.uniform(0, 10, n)
        y = np.where(x <= 5.0, 0.0, 4.0) + rng.normal(0, 0.2, n)
        # Hide 20% of x, but only among high-x rows — the learned default
        # direction should send NaNs right.
        hidden = (rng.random(n) < 0.4) & (x > 5.0)
        x_obs = np.where(hidden, np.nan, x)
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        tree = RegressionTree(TreeParams(max_depth=3, cp=0.01)).fit(
            x_obs.reshape(-1, 1), y, schema,
        )
        assert tree.root is not None and tree.root.split is not None
        assert tree.root.split.nan_goes_left is False
        predictions = tree.predict(x_obs.reshape(-1, 1))
        assert np.var(y - predictions) < 0.2 * np.var(y)

    def test_prediction_with_nans_matches_default_direction(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 10, 300)
        y = np.where(x <= 5.0, 0.0, 4.0)
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        tree = RegressionTree(TreeParams(max_depth=2, cp=0.01)).fit(
            x.reshape(-1, 1), y, schema,
        )
        nan_prediction = tree.predict(np.array([[np.nan]]))[0]
        assert tree.root is not None and tree.root.split is not None
        side = (tree.root.left if tree.root.split.nan_goes_left
                else tree.root.right)
        assert side is not None
        # NaN rows land in the default-direction subtree.
        subtree_predictions = {leaf.prediction for leaf in side.leaves()}
        assert any(np.isclose(nan_prediction, p) for p in subtree_predictions)

    def test_empty_fit_rejected(self):
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        with pytest.raises(FitError):
            RegressionTree().fit(np.empty((0, 1)), np.empty(0), schema)

    def test_schema_width_mismatch_rejected(self):
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        with pytest.raises(FitError):
            RegressionTree().fit(np.zeros((5, 2)), np.zeros(5), schema)

    def test_unfitted_predict_rejected(self):
        with pytest.raises(FitError):
            RegressionTree().predict(np.zeros((2, 1)))


class TestIntrospection:
    @pytest.fixture(scope="class")
    def fitted(self):
        matrix, y, schema = piecewise_data()
        tree = RegressionTree(TreeParams(max_depth=4, cp=0.005)).fit(matrix, y, schema)
        return tree, matrix, y

    def test_importance_ranks_both_features(self, fitted):
        tree, _, _ = fitted
        importance = tree.importance()
        assert set(importance) == {"x0", "x1"}
        assert sum(importance.values()) == pytest.approx(1.0)

    def test_decision_path_reaches_each_leaf(self, fitted):
        tree, matrix, _ = fitted
        for leaf in tree.leaves():
            path = tree.decision_path(leaf.node_id)
            assert len(path) == leaf.depth

    def test_decision_path_unknown_leaf_rejected(self, fitted):
        tree, _, _ = fitted
        with pytest.raises(DataError):
            tree.decision_path(99999)

    def test_apply_routes_to_real_leaves(self, fitted):
        tree, matrix, _ = fitted
        leaf_ids = set(np.unique(tree.apply(matrix)).tolist())
        assert leaf_ids == {leaf.node_id for leaf in tree.leaves()}

    def test_render_mentions_features(self, fitted):
        tree, _, _ = fitted
        text = render_tree(tree)
        assert "root" in text
        assert "x0" in text or "x1" in text
        assert " *" in text  # leaf markers

    def test_describe_path_is_conjunction(self, fitted):
        tree, _, _ = fitted
        deepest = max(tree.leaves(), key=lambda leaf: leaf.depth)
        described = describe_path(tree, deepest.node_id)
        assert described.count(" and ") == deepest.depth - 1

    def test_node_helpers(self, fitted):
        tree, _, _ = fitted
        root = tree.root
        assert isinstance(root, Node)
        assert not root.is_leaf
        assert len(root.internal_nodes()) == tree.n_leaves - 1
        assert root.subtree_sse() <= root.sse


class TestNanEdgeCases:
    def test_pd_on_tree_fitted_with_nans(self):
        """Partial dependence works on NaN-fitted trees (finite grid)."""
        from repro.analysis.partial_dependence import partial_dependence

        rng = np.random.default_rng(6)
        x = rng.uniform(0, 10, 400)
        y = np.where(x <= 5.0, 0.0, 4.0)
        x_obs = np.where(rng.random(400) < 0.2, np.nan, x)
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        tree = RegressionTree(TreeParams(max_depth=3, cp=0.01)).fit(
            x_obs.reshape(-1, 1), y, schema,
        )
        pd = partial_dependence(tree, "x", grid=np.array([2.0, 8.0]))
        assert pd.values[1] > pd.values[0] + 2.0

    def test_prune_preserves_nan_routing(self):
        from repro.analysis.cart.prune import prune

        rng = np.random.default_rng(7)
        x = rng.uniform(0, 10, 500)
        y = np.where(x <= 5.0, 0.0, 4.0) + rng.normal(0, 0.1, 500)
        hidden = (rng.random(500) < 0.3) & (x > 5.0)
        x_obs = np.where(hidden, np.nan, x)
        schema = Schema((FeatureSpec("x", FeatureKind.CONTINUOUS),))
        tree = RegressionTree(TreeParams(max_depth=4, cp=0.005)).fit(
            x_obs.reshape(-1, 1), y, schema,
        )
        pruned = prune(tree, 1e-6)
        nan_prediction = pruned.predict(np.array([[np.nan]]))[0]
        assert nan_prediction > 2.0  # NaNs still route to the high side

    def test_all_nan_column_yields_no_split_on_it(self):
        rng = np.random.default_rng(8)
        informative = rng.uniform(0, 10, 300)
        useless = np.full(300, np.nan)
        y = np.where(informative <= 5.0, 0.0, 4.0)
        schema = Schema((
            FeatureSpec("dead", FeatureKind.CONTINUOUS),
            FeatureSpec("live", FeatureKind.CONTINUOUS),
        ))
        tree = RegressionTree(TreeParams(max_depth=3, cp=0.01)).fit(
            np.column_stack([useless, informative]), y, schema,
        )
        assert "dead" not in tree.importance()
        assert tree.n_leaves >= 2
