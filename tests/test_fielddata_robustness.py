"""Noise robustness: severity-0 bit-identity and the degradation table."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError, ReproError
from repro.fielddata.robustness import (
    DEFAULT_SEVERITIES,
    METRIC_NAMES,
    degrade_and_clean,
    headline_metrics,
    noise_sweep_result,
    render_noise_points,
)
from repro.reporting.sweeps import HEADLINE_METRICS


def _same_value(a: float, b: float) -> bool:
    return (math.isnan(a) and math.isnan(b)) or a == b


class TestHeadlineMetrics:
    def test_names_match_sweep_registry(self):
        assert set(METRIC_NAMES) == set(HEADLINE_METRICS)

    def test_matches_sweep_extractors(self, tiny_run):
        consolidated = headline_metrics(tiny_run)
        for name, (extractor, _) in HEADLINE_METRICS.items():
            try:
                expected = float(extractor(tiny_run))
            except ReproError:
                expected = float("nan")
            assert _same_value(consolidated[name], expected), name


class TestSeverityZero:
    def test_degrade_and_clean_is_bit_identical(self, tiny_run):
        direct = headline_metrics(tiny_run)
        _, point = degrade_and_clean(tiny_run, 0.0)
        for name in METRIC_NAMES:
            assert _same_value(point.metrics[name], direct[name]), name
        assert not point.cleaning.duplicates_removed
        assert point.lambda_naive == point.lambda_exposure

    def test_reconstituted_result_reuses_substrate(self, tiny_run):
        degraded, _ = degrade_and_clean(tiny_run, 0.0)
        assert degraded.calendar is tiny_run.calendar
        assert degraded.environment is tiny_run.environment


class TestNoiseSweep:
    def test_points_cover_requested_severities(self, tiny_run):
        points = noise_sweep_result(tiny_run, (0.0, 1.0))
        assert [point.severity for point in points] == [0.0, 1.0]
        for point in points:
            assert set(point.metrics) == set(METRIC_NAMES)

    def test_corruption_actually_bites(self, tiny_run):
        points = noise_sweep_result(tiny_run, (0.0, 1.0))
        assert points[1].cleaning.racks_censored > 0
        assert points[1].cleaning.cells_imputed > points[0].cleaning.cells_imputed

    def test_empty_severities_rejected(self, tiny_run):
        with pytest.raises(ConfigError):
            noise_sweep_result(tiny_run, ())

    def test_render_contains_table_and_verdicts(self, tiny_run):
        points = noise_sweep_result(tiny_run, DEFAULT_SEVERITIES)
        text = render_noise_points(points)
        for name in METRIC_NAMES:
            assert name in text
        assert "sev=0.00" in text
        assert "max drift" in text
        assert "exposure-aware" in text


class TestRegistry:
    def test_fielddata_experiment_registered(self):
        from repro.reporting import EXPERIMENTS, get_experiment

        assert "fielddata" in EXPERIMENTS
        experiment = get_experiment("fielddata")
        assert "severity" in experiment.description.lower()

    def test_experiment_renders(self, tiny_run):
        from repro.reporting import AnalysisContext, get_experiment

        text = get_experiment("fielddata").render(AnalysisContext(tiny_run))
        assert "Field-data robustness" in text


class TestNoiseSweepRunner:
    def test_run_noise_sweep_matches_plain_sweep_at_zero(self):
        from repro.reporting.sweeps import run_noise_sweep, run_sweep

        seeds = [7]
        plain = run_sweep(seeds, scale=0.05, n_days=120)
        noisy = run_noise_sweep(seeds, (0.0, 0.7), scale=0.05, n_days=120)
        assert set(noisy) == {0.0, 0.7}
        by_name = {summary.name: summary for summary in noisy[0.0]}
        for summary in plain:
            assert np.array_equal(summary.values, by_name[summary.name].values,
                                  equal_nan=True), summary.name

    def test_render_noise_sweep(self):
        from repro.reporting.sweeps import render_noise_sweep, run_noise_sweep

        noisy = run_noise_sweep([7], (0.0, 1.0), scale=0.05, n_days=120)
        text = render_noise_sweep(noisy, [7])
        assert "sev=0.00" in text
        assert "sev=1.00" in text
        assert "Q2 SF S2/S4" in text
