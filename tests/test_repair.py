"""Repair-model tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.failures.repair import DEFAULT_REPAIR, RepairDistribution, RepairModel
from repro.failures.tickets import FaultType, HARDWARE_FAULTS, TicketCategory, FAULT_CATEGORY


class TestRepairDistribution:
    def test_samples_cluster_around_median(self):
        dist = RepairDistribution(median_hours=10.0, sigma=0.5, replace_probability=0.5)
        samples = dist.sample(4000, np.random.default_rng(0))
        assert np.median(samples) == pytest.approx(10.0, rel=0.1)

    def test_mean_hours_analytic(self):
        dist = RepairDistribution(median_hours=10.0, sigma=0.6, replace_probability=0.5)
        samples = dist.sample(20000, np.random.default_rng(0))
        assert samples.mean() == pytest.approx(dist.mean_hours, rel=0.05)

    def test_zero_size_sample(self):
        dist = RepairDistribution(median_hours=10.0, sigma=0.5, replace_probability=0.5)
        assert dist.sample(0, np.random.default_rng(0)).shape == (0,)

    def test_negative_size_rejected(self):
        dist = RepairDistribution(median_hours=10.0, sigma=0.5, replace_probability=0.5)
        with pytest.raises(ConfigError):
            dist.sample(-1, np.random.default_rng(0))

    def test_invalid_median_rejected(self):
        with pytest.raises(ConfigError):
            RepairDistribution(median_hours=0.0, sigma=0.5, replace_probability=0.5)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigError):
            RepairDistribution(median_hours=1.0, sigma=0.5, replace_probability=1.5)


class TestDefaults:
    def test_all_fault_types_covered(self):
        assert set(DEFAULT_REPAIR) == set(FaultType)

    def test_hardware_slower_than_software(self):
        hardware_medians = [DEFAULT_REPAIR[f].median_hours for f in HARDWARE_FAULTS]
        software_medians = [
            DEFAULT_REPAIR[f].median_hours for f in FaultType
            if FAULT_CATEGORY[f] is TicketCategory.SOFTWARE
        ]
        assert min(hardware_medians) > max(software_medians)

    def test_hardware_faults_usually_replace(self):
        assert DEFAULT_REPAIR[FaultType.DISK].replace_probability > 0.8
        assert DEFAULT_REPAIR[FaultType.TIMEOUT].replace_probability == 0.0


class TestRepairModel:
    def test_override_applies(self):
        custom = RepairDistribution(median_hours=99.0, sigma=0.1, replace_probability=1.0)
        model = RepairModel({FaultType.DISK: custom})
        samples = model.sample_hours(FaultType.DISK, 100, np.random.default_rng(0))
        assert np.median(samples) == pytest.approx(99.0, rel=0.1)
        # Other faults keep their defaults.
        assert model.mean_hours(FaultType.MEMORY) == DEFAULT_REPAIR[FaultType.MEMORY].mean_hours

    def test_replacement_sampling(self):
        model = RepairModel()
        flags = model.sample_replacement(FaultType.DISK, 2000, np.random.default_rng(0))
        assert 0.9 < flags.mean() < 1.0

    def test_zero_size_replacement(self):
        model = RepairModel()
        assert model.sample_replacement(FaultType.DISK, 0, np.random.default_rng(0)).shape == (0,)
