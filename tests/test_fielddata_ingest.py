"""Typed CSV ingestion: round-trip equality and row-level diagnostics."""

import filecmp

import numpy as np
import pytest

from repro.errors import DataError
from repro.fielddata import (
    FieldDataset,
    export_dataset,
    load_field_dataset,
    load_inventory_csv,
    load_tickets_csv,
    standard_pipeline,
)
from repro.fielddata.dataset import TICKET_COLUMN_NAMES
from repro.telemetry.io import export_ticket_log_csv, export_fleet_inventory_csv


def _rewrite_cell(path, row, column_index, value):
    lines = path.read_text().splitlines()
    cells = lines[row - 1].split(",")
    cells[column_index] = value
    lines[row - 1] = ",".join(cells)
    path.write_text("\n".join(lines) + "\n")


class TestTicketRoundTrip:
    def test_load_preserves_every_column(self, tiny_run, tmp_path):
        path = tmp_path / "tickets.csv"
        export_ticket_log_csv(tiny_run.tickets, tiny_run.fleet, path)
        loaded = load_tickets_csv(path, tiny_run.fleet)
        for name in ("day_index", "rack_index", "server_offset",
                     "fault_code", "false_positive", "batch_id"):
            assert np.array_equal(getattr(loaded, name),
                                  getattr(tiny_run.tickets, name)), name

    def test_reexport_is_byte_identical(self, tiny_run, tmp_path):
        first = tmp_path / "first.csv"
        second = tmp_path / "second.csv"
        export_ticket_log_csv(tiny_run.tickets, tiny_run.fleet, first)
        loaded = load_tickets_csv(first, tiny_run.fleet)
        export_ticket_log_csv(loaded, tiny_run.fleet, second)
        assert filecmp.cmp(first, second, shallow=False)

    def test_bad_fault_label_names_the_row(self, tiny_run, tmp_path):
        path = tmp_path / "tickets.csv"
        export_ticket_log_csv(tiny_run.tickets, tiny_run.fleet, path)
        _rewrite_cell(path, row=3, column_index=6, value="Gremlins")
        with pytest.raises(DataError, match="row 3.*fault_type.*Gremlins"):
            load_tickets_csv(path, tiny_run.fleet)

    def test_unknown_rack_names_the_row(self, tiny_run, tmp_path):
        path = tmp_path / "tickets.csv"
        export_ticket_log_csv(tiny_run.tickets, tiny_run.fleet, path)
        _rewrite_cell(path, row=5, column_index=4, value="RACK-NOPE")
        with pytest.raises(DataError, match="row 5"):
            load_tickets_csv(path, tiny_run.fleet)

    def test_inconsistent_dc_rejected(self, tiny_run, tmp_path):
        path = tmp_path / "tickets.csv"
        export_ticket_log_csv(tiny_run.tickets, tiny_run.fleet, path)
        columns = path.read_text().splitlines()
        original_dc = columns[1].split(",")[3]
        other = "DC2" if original_dc == "DC1" else "DC1"
        _rewrite_cell(path, row=2, column_index=3, value=other)
        with pytest.raises(DataError, match="row 2.*belongs to"):
            load_tickets_csv(path, tiny_run.fleet)

    def test_missing_column_rejected(self, tiny_run, tmp_path):
        path = tmp_path / "tickets.csv"
        path.write_text("day_index,rack_id\n0,R1\n")
        with pytest.raises(DataError, match="missing column"):
            load_tickets_csv(path, tiny_run.fleet)


class TestInventoryRoundTrip:
    def test_plain_export_loads(self, tiny_run, tmp_path):
        path = tmp_path / "inventory.csv"
        export_fleet_inventory_csv(tiny_run.fleet, path)
        inventory = load_inventory_csv(path)
        assert inventory.n_racks == tiny_run.fleet.n_racks
        assert inventory.decommission_day is None
        inventory.validate_against(tiny_run.fleet)

    def test_censored_export_carries_decommission(self, tiny_run, tmp_path):
        path = tmp_path / "inventory.csv"
        decommission = np.full(tiny_run.fleet.n_racks, tiny_run.n_days,
                               dtype=np.int64)
        decommission[0] = 17
        export_fleet_inventory_csv(tiny_run.fleet, path,
                                   decommission_day=decommission)
        inventory = load_inventory_csv(path)
        assert inventory.decommission_day is not None
        assert np.array_equal(inventory.decommission_day, decommission)

    def test_length_mismatch_rejected(self, tiny_run, tmp_path):
        with pytest.raises(DataError):
            export_fleet_inventory_csv(
                tiny_run.fleet, tmp_path / "inv.csv",
                decommission_day=np.array([1, 2, 3], dtype=np.int64),
            )


class TestDatasetRoundTrip:
    def test_corrupted_dataset_round_trips(self, tiny_run, tmp_path):
        dataset = FieldDataset.from_result(tiny_run)
        corrupted, _ = standard_pipeline(0.8, seed=2).apply(dataset)
        paths = export_dataset(corrupted, tmp_path / "a")
        loaded = load_field_dataset(tmp_path / "a", tiny_run.config)
        for name in TICKET_COLUMN_NAMES:
            if name in ("start_hour_abs", "repair_hours"):
                continue  # CSV rounds these to 3 decimals
            assert np.array_equal(getattr(loaded.tickets, name),
                                  getattr(corrupted.tickets, name)), name
        assert np.array_equal(loaded.temp_f, corrupted.temp_f, equal_nan=True)
        assert np.array_equal(loaded.decommission_day,
                              corrupted.decommission_day)
        # second export of the loaded dataset is byte-identical
        paths2 = export_dataset(loaded, tmp_path / "b")
        for key in ("tickets", "inventory"):
            assert filecmp.cmp(paths[key], paths2[key], shallow=False), key

    def test_missing_sensor_bundle_rejected(self, tiny_run, tmp_path):
        dataset = FieldDataset.from_result(tiny_run)
        paths = export_dataset(dataset, tmp_path / "a")
        paths["sensors"].unlink()
        with pytest.raises(DataError, match="sensor bundle"):
            load_field_dataset(tmp_path / "a", tiny_run.config)

    def test_wrong_config_rejected(self, tiny_run, tmp_path):
        from repro.config import SimulationConfig

        dataset = FieldDataset.from_result(tiny_run)
        export_dataset(dataset, tmp_path / "a")
        other = SimulationConfig.small(seed=99, scale=0.08, n_days=120)
        with pytest.raises(DataError):
            load_field_dataset(tmp_path / "a", other)
