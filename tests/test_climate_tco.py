"""Climate-control TCO extension tests."""

import numpy as np
import pytest

from repro.decisions.climate_tco import (
    ClimateCostParams,
    _isotonic_nondecreasing,
    climate_tco_curve,
    fit_rate_curve,
)
from repro.errors import ConfigError, DataError
from repro.failures.tickets import FaultType
from repro.telemetry.aggregate import build_rack_day_table


class TestIsotonic:
    def test_already_monotone_unchanged(self):
        values = np.array([1.0, 2.0, 3.0])
        out = _isotonic_nondecreasing(values, np.ones(3))
        assert np.allclose(out, values)

    def test_violations_pooled(self):
        out = _isotonic_nondecreasing(np.array([2.0, 1.0]), np.ones(2))
        assert np.allclose(out, [1.5, 1.5])

    def test_weights_respected(self):
        out = _isotonic_nondecreasing(np.array([2.0, 1.0]),
                                      np.array([3.0, 1.0]))
        assert np.allclose(out, [1.75, 1.75])

    def test_output_nondecreasing(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=50)
        out = _isotonic_nondecreasing(values, rng.uniform(1, 5, 50))
        assert np.all(np.diff(out) >= -1e-12)

    def test_weighted_mean_preserved(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=30)
        weights = rng.uniform(1, 5, 30)
        out = _isotonic_nondecreasing(values, weights)
        assert np.average(out, weights=weights) == pytest.approx(
            np.average(values, weights=weights)
        )


class TestRateCurve:
    @pytest.fixture(scope="class")
    def disk_table(self, small_run):
        return build_rack_day_table(small_run, faults=[FaultType.DISK])

    def test_curve_is_monotone(self, small_run, disk_table):
        curve, baseline = fit_rate_curve(disk_table, "DC1")
        assert np.all(np.diff(curve.rates) >= -1e-12)
        assert len(baseline) == int(
            np.asarray(disk_table.decoded("dc") == "DC1").sum()
        )

    def test_hot_relative_rate_elevated(self, small_run, disk_table):
        curve, _ = fit_rate_curve(disk_table, "DC1")
        assert curve.evaluate(np.array([84.0]))[0] > \
            1.2 * curve.evaluate(np.array([66.0]))[0]

    def test_evaluate_clamps(self, small_run, disk_table):
        curve, _ = fit_rate_curve(disk_table, "DC1")
        assert curve.evaluate(np.array([-100.0]))[0] == curve.rates[0]
        assert curve.evaluate(np.array([500.0]))[0] == curve.rates[-1]

    def test_unknown_dc_rejected(self, disk_table):
        with pytest.raises(DataError):
            fit_rate_curve(disk_table, "DC9")


class TestTcoCurve:
    @pytest.fixture(scope="class")
    def curve(self, small_run):
        return climate_tco_curve(small_run)

    def test_covers_requested_caps(self, small_run):
        caps = np.array([74.0, 80.0])
        curve = climate_tco_curve(small_run, caps_f=caps)
        assert [e.cap_f for e in curve.evaluations] == caps.tolist()

    def test_cooling_cost_decreases_with_cap(self, curve):
        costs = [e.cooling_cost for e in curve.evaluations]
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_failure_cost_nondecreasing_with_cap(self, curve):
        costs = [e.failure_cost for e in curve.evaluations]
        assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:]))

    def test_optimal_is_minimum(self, curve):
        assert curve.optimal.total_cost == min(
            e.total_cost for e in curve.evaluations
        )

    def test_pricier_trim_raises_optimal_cap(self, small_run):
        cheap = climate_tco_curve(
            small_run, params=ClimateCostParams(
                trim_cost_per_rack_degree_day=0.001)
        )
        pricey = climate_tco_curve(
            small_run, params=ClimateCostParams(
                trim_cost_per_rack_degree_day=0.5)
        )
        assert pricey.optimal.cap_f >= cheap.optimal.cap_f

    def test_render(self, curve):
        text = curve.render()
        assert "optimal" in text
        assert "DC1" in text

    def test_negative_price_rejected(self):
        with pytest.raises(ConfigError):
            ClimateCostParams(trim_cost_per_rack_degree_day=-1.0)

    def test_empty_caps_rejected(self, small_run):
        with pytest.raises(DataError):
            climate_tco_curve(small_run, caps_f=np.array([]))
