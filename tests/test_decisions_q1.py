"""Q1 decision tests: availability math, server and component spares."""

import numpy as np
import pytest

from repro.decisions.availability import (
    AvailabilitySla,
    overprovision_fraction,
    required_spares,
    uniform_fraction_for_pool,
)
from repro.decisions.component_spares import ComponentProvisioner
from repro.decisions.spares import SpareProvisioner
from repro.errors import ConfigError, DataError


class TestAvailabilityMath:
    def test_full_sla_needs_max_mu(self):
        sla = AvailabilitySla(1.0)
        assert required_spares(np.array([0, 1, 3, 2]), sla, capacity=20) == 3.0

    def test_shortfall_reduces_requirement(self):
        sla = AvailabilitySla(0.90)
        assert required_spares(np.array([0, 5]), sla, capacity=20) == pytest.approx(3.0)

    def test_requirement_floors_at_zero(self):
        sla = AvailabilitySla(0.90)
        assert required_spares(np.array([0, 1]), sla, capacity=20) == 0.0

    def test_invalid_level_rejected(self):
        with pytest.raises(ConfigError):
            AvailabilitySla(0.0)
        with pytest.raises(ConfigError):
            AvailabilitySla(1.5)

    def test_percent_label(self):
        assert AvailabilitySla(0.95).percent_label == "95%"

    def test_empty_samples_rejected(self):
        with pytest.raises(DataError):
            required_spares(np.array([]), AvailabilitySla(1.0), 10)

    def test_negative_mu_rejected(self):
        with pytest.raises(DataError):
            required_spares(np.array([-1.0]), AvailabilitySla(1.0), 10)

    def test_uniform_pool_fraction(self):
        fractions = np.array([0.0, 0.1, 0.4])
        assert uniform_fraction_for_pool(fractions, AvailabilitySla(1.0)) == 0.4
        assert uniform_fraction_for_pool(
            fractions, AvailabilitySla(0.9)
        ) == pytest.approx(0.3)

    def test_overprovision_fraction(self):
        assert overprovision_fraction(5.0, 20.0) == 0.25
        with pytest.raises(DataError):
            overprovision_fraction(1.0, 0.0)


@pytest.fixture(scope="module")
def provisioner(small_run):
    return SpareProvisioner(small_run, window_hours=24.0)


class TestSpareProvisioner:
    def test_unknown_workload_rejected(self, provisioner):
        with pytest.raises(Exception):
            provisioner.workload_racks("W99")

    def test_eligible_racks_are_in_service(self, provisioner):
        racks = provisioner.workload_racks("W1")
        assert len(racks) > 0

    def test_ordering_lb_mf_sf_at_full_sla(self, provisioner):
        for workload in ("W1", "W6"):
            plans = provisioner.compare(workload, AvailabilitySla(1.0))
            assert (plans["LB"].overprovision
                    <= plans["MF"].overprovision + 1e-9)
            assert (plans["MF"].overprovision
                    <= plans["SF"].overprovision + 1e-9)

    def test_ordering_holds_at_lower_slas(self, provisioner):
        for level in (0.90, 0.95):
            plans = provisioner.compare("W6", AvailabilitySla(level))
            assert plans["LB"].overprovision <= plans["MF"].overprovision + 1e-9
            assert plans["MF"].overprovision <= plans["SF"].overprovision + 1e-9

    def test_requirement_grows_with_sla(self, provisioner):
        lax = provisioner.lower_bound("W6", AvailabilitySla(0.90)).overprovision
        strict = provisioner.lower_bound("W6", AvailabilitySla(1.0)).overprovision
        assert strict >= lax

    def test_sf_plan_is_uniform(self, provisioner):
        plan = provisioner.single_factor("W1", AvailabilitySla(1.0))
        assert len(np.unique(plan.per_rack_fraction)) == 1

    def test_mf_clusters_partition_racks(self, provisioner):
        plan = provisioner.multi_factor("W6", AvailabilitySla(1.0))
        assert plan.clusters is not None
        member_total = sum(cluster.n_racks for cluster in plan.clusters)
        assert member_total == len(plan.rack_indices)
        all_members = np.concatenate([c.rack_indices for c in plan.clusters])
        assert sorted(all_members.tolist()) == sorted(plan.rack_indices.tolist())

    def test_mf_covers_every_member_racks_requirement(self, provisioner):
        """Each cluster's fraction covers its members' pooled worst case."""
        sla = AvailabilitySla(1.0)
        plan = provisioner.multi_factor("W6", sla)
        assert plan.clusters is not None
        for cluster in plan.clusters:
            worst = cluster.requirement_samples.max()
            assert cluster.fraction >= worst - sla.shortfall - 1e-9

    def test_storage_needs_more_than_compute(self, provisioner):
        w1 = provisioner.multi_factor("W1", AvailabilitySla(1.0)).overprovision
        w6 = provisioner.multi_factor("W6", AvailabilitySla(1.0)).overprovision
        assert w6 > 2 * w1

    def test_hourly_multiplexing_reduces_mf(self, small_run, provisioner):
        hourly = SpareProvisioner(small_run, window_hours=1.0)
        daily_plan = provisioner.multi_factor("W6", AvailabilitySla(1.0))
        hourly_plan = hourly.multi_factor("W6", AvailabilitySla(1.0))
        assert hourly_plan.overprovision < daily_plan.overprovision

    def test_invalid_min_service_days(self, small_run):
        with pytest.raises(DataError):
            SpareProvisioner(small_run, min_service_days=0)


@pytest.fixture(scope="module")
def component_provisioner(small_run):
    return ComponentProvisioner(small_run, window_hours=24.0)


class TestComponentProvisioner:
    def test_plan_fields(self, component_provisioner):
        plan = component_provisioner.plan("W6", AvailabilitySla(1.0), "MF")
        assert plan.component_cost > 0
        assert plan.server_cost > 0
        resources = {r.resource for r in plan.resources}
        assert resources == {"disk", "dimm", "server"}

    def test_unknown_approach_rejected(self, component_provisioner):
        with pytest.raises(DataError):
            component_provisioner.plan("W6", AvailabilitySla(1.0), "XX")

    def test_mf_component_cheaper_for_compute(self, component_provisioner):
        plan = component_provisioner.plan("W1", AvailabilitySla(1.0), "MF")
        assert plan.component_vs_server < 0.95

    def test_mf_gains_more_from_components_than_sf(self, component_provisioner):
        """Fig 13's W1 contrast: SF cannot exploit component spares the
        way MF can (in the paper SF's component plan even exceeds its
        server plan; how far depends on whether a rack-scale outage
        dominates the workload's worst window)."""
        mf = component_provisioner.plan("W1", AvailabilitySla(1.0), "MF")
        sf = component_provisioner.plan("W1", AvailabilitySla(1.0), "SF")
        assert mf.component_vs_server < sf.component_vs_server + 0.05

    def test_lb_cheapest_overall(self, component_provisioner):
        plans = component_provisioner.compare("W6", AvailabilitySla(1.0))
        assert plans["LB"].component_cost <= plans["MF"].component_cost + 1e-9
        assert plans["MF"].component_cost <= plans["SF"].component_cost + 1e-9

    def test_storage_disk_fraction_dominates(self, component_provisioner):
        plan = component_provisioner.plan("W6", AvailabilitySla(1.0), "MF")
        fractions = {r.resource: r.fraction for r in plan.resources}
        assert fractions["disk"] > fractions["dimm"]


class TestIntegralProvisioning:
    @pytest.fixture(scope="class")
    def integral_provisioner(self, small_run):
        return SpareProvisioner(small_run, window_hours=24.0, integral=True)

    def test_spare_counts_are_whole_servers(self, integral_provisioner):
        sla = AvailabilitySla(0.95)
        for approach in ("LB", "SF", "MF"):
            plans = integral_provisioner.compare("W6", sla)
            plan = plans[approach]
            capacity = integral_provisioner.arrays.n_servers[plan.rack_indices]
            spares = plan.per_rack_fraction * capacity
            assert np.allclose(spares, np.round(spares), atol=1e-9), approach

    def test_integral_never_cheaper_than_continuous(self, small_run,
                                                    integral_provisioner):
        continuous = SpareProvisioner(small_run, window_hours=24.0)
        sla = AvailabilitySla(0.95)
        for approach in ("LB", "SF", "MF"):
            c = getattr(continuous, {"LB": "lower_bound",
                                     "SF": "single_factor",
                                     "MF": "multi_factor"}[approach])("W1", sla)
            d = getattr(integral_provisioner,
                        {"LB": "lower_bound", "SF": "single_factor",
                         "MF": "multi_factor"}[approach])("W1", sla)
            assert d.overprovision >= c.overprovision - 1e-9

    def test_ordering_survives_rounding(self, integral_provisioner):
        plans = integral_provisioner.compare("W6", AvailabilitySla(1.0))
        assert plans["LB"].overprovision <= plans["MF"].overprovision + 1e-9
        assert plans["MF"].overprovision <= plans["SF"].overprovision + 1e-9
