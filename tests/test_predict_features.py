"""Streaming feature extraction: parity, snapshots, checkpoint/resume."""

from __future__ import annotations

import dataclasses
import pathlib
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DataError
from repro.predict.features import (
    PREDICT_FEATURES,
    StreamingFeatures,
    load_feature_state,
    save_feature_state,
)
from repro.stream import StreamInventory, blocks_from_result, flatten_result
from repro.telemetry.schema import FeatureKind


@pytest.fixture(scope="module")
def inventory(tiny_run) -> StreamInventory:
    return StreamInventory.from_result(tiny_run)


def _assert_state_equal(a: StreamingFeatures, b: StreamingFeatures) -> None:
    state_a, state_b = a.state_arrays(), b.state_arrays()
    assert sorted(state_a) == sorted(state_b)
    for name in state_a:
        np.testing.assert_array_equal(state_a[name], state_b[name],
                                      err_msg=name)
    assert a.meta() == b.meta()


class TestParity:
    def test_scalar_and_block_paths_bit_identical(self, tiny_run, inventory):
        scalar = StreamingFeatures(inventory)
        for event in flatten_result(tiny_run):
            scalar.update(event)
        blocked = StreamingFeatures(inventory)
        for block in blocks_from_result(tiny_run):
            blocked.update_block(block)
        _assert_state_equal(scalar, blocked)

    def test_block_size_does_not_matter(self, tiny_run, inventory):
        coarse = StreamingFeatures(inventory)
        for block in blocks_from_result(tiny_run):
            coarse.update_block(block)
        fine = StreamingFeatures(inventory)
        for block in blocks_from_result(tiny_run, block_size=193):
            fine.update_block(block)
        _assert_state_equal(coarse, fine)

    def test_snapshots_agree_across_paths(self, tiny_run, inventory):
        day = inventory.n_days - 1
        scalar = StreamingFeatures(inventory)
        for event in flatten_result(tiny_run):
            scalar.update(event)
        blocked = StreamingFeatures(inventory)
        for block in blocks_from_result(tiny_run):
            blocked.update_block(block)
        left = scalar.feature_arrays(day)
        right = blocked.feature_arrays(day)
        assert sorted(left) == sorted(right)
        for name in left:
            np.testing.assert_array_equal(left[name], right[name],
                                          err_msg=name)


class TestSnapshots:
    def test_snapshot_carries_every_feature(self, tiny_run, inventory):
        features = StreamingFeatures(inventory)
        for block in blocks_from_result(tiny_run):
            features.update_block(block)
        snapshot = features.feature_arrays(inventory.n_days - 1)
        for name in PREDICT_FEATURES:
            assert name in snapshot
            assert len(snapshot[name]) == features.n_servers_total

    def test_snapshot_cannot_rewind(self, inventory):
        features = StreamingFeatures(inventory)
        features.feature_arrays(5)
        with pytest.raises(DataError, match="already at day"):
            features.feature_arrays(3)

    def test_schema_matches_feature_order(self, inventory):
        schema = StreamingFeatures(inventory).feature_schema()
        assert tuple(schema.names) == PREDICT_FEATURES
        assert schema.get("sku").kind is FeatureKind.NOMINAL
        assert schema.get("dc").kind is FeatureKind.NOMINAL
        assert schema.get("trailing_hw").kind is FeatureKind.CONTINUOUS


class TestCheckpoint:
    def test_roundtrip_preserves_state(self, tiny_run, inventory, tmp_path):
        features = StreamingFeatures(inventory)
        blocks = list(blocks_from_result(tiny_run))
        for block in blocks[: len(blocks) // 2 or 1]:
            features.update_block(block)
        path = tmp_path / "features.npz"
        save_feature_state(features, path, events_seen=1234)
        restored, seen = load_feature_state(path, inventory)
        assert seen == 1234
        _assert_state_equal(features, restored)

    def test_inventory_fingerprint_checked(self, tiny_run, inventory,
                                           tmp_path):
        features = StreamingFeatures(inventory)
        path = tmp_path / "features.npz"
        save_feature_state(features, path)
        other = dataclasses.replace(inventory, n_days=inventory.n_days + 1)
        with pytest.raises(DataError, match="fingerprint|inventory"):
            load_feature_state(path, other)

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_resume_bit_identical_to_continuous(self, tiny_run, inventory,
                                                data):
        """The tentpole resume property: a checkpoint taken at *any*
        event position, restored and fed the remaining stream in *any*
        blocking, ends bit-identical to the uninterrupted run."""
        block_size = data.draw(st.sampled_from((64, 257, 1024, 8192)))
        total = sum(len(b) for b in blocks_from_result(tiny_run))
        split = data.draw(st.integers(min_value=1, max_value=total - 1))

        continuous = StreamingFeatures(inventory)
        for block in blocks_from_result(tiny_run, block_size=block_size):
            continuous.update_block(block)

        prefix = StreamingFeatures(inventory)
        fed = 0
        for block in blocks_from_result(tiny_run, block_size=block_size):
            take = min(len(block), split - fed)
            if take:
                prefix.update_block(block.slice(0, take))
                fed += take
            if fed >= split:
                break
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "features.npz"
            save_feature_state(prefix, path, events_seen=split)
            resumed, seen = load_feature_state(path, inventory)
        assert seen == split
        for block in blocks_from_result(tiny_run, skip=split,
                                        block_size=block_size):
            resumed.update_block(block)

        _assert_state_equal(continuous, resumed)
        day = inventory.n_days - 1
        left = continuous.feature_arrays(day)
        right = resumed.feature_arrays(day)
        for name in left:
            np.testing.assert_array_equal(left[name], right[name],
                                          err_msg=name)
