"""CSV export/import and CLI tests."""


import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.errors import DataError
from repro.telemetry.io import (
    export_inventory_csv,
    export_table_csv,
    export_tickets_csv,
    iter_csv_rows,
    read_csv_table,
)
from repro.telemetry.aggregate import rack_static_table


class TestTicketExport:
    def test_roundtrip_counts_and_fields(self, tiny_run, tmp_path):
        path = tmp_path / "tickets.csv"
        n = export_tickets_csv(tiny_run, path)
        assert n == len(tiny_run.tickets)
        columns = read_csv_table(path)
        assert len(columns["ticket_id"]) == n
        assert set(columns["dc"]) <= {"DC1", "DC2"}
        assert set(columns["category"]) <= {"Hardware", "Software", "Boot", "Others"}

    def test_exported_days_match_log(self, tiny_run, tmp_path):
        path = tmp_path / "tickets.csv"
        export_tickets_csv(tiny_run, path)
        columns = read_csv_table(path)
        days = np.array([int(d) for d in columns["day_index"]])
        assert np.array_equal(days, tiny_run.tickets.day_index)


class TestInventoryExport:
    def test_one_row_per_rack(self, tiny_run, tmp_path):
        path = tmp_path / "inventory.csv"
        n = export_inventory_csv(tiny_run, path)
        assert n == tiny_run.fleet.n_racks
        columns = read_csv_table(path)
        assert len(set(columns["rack_id"])) == n
        assert set(columns["sku"]) <= {f"S{i}" for i in range(1, 8)}


class TestTableExport:
    def test_decoded_labels(self, tiny_run, tmp_path):
        table = rack_static_table(tiny_run)
        path = tmp_path / "racks.csv"
        n = export_table_csv(table, path)
        assert n == table.n_rows
        columns = read_csv_table(path)
        assert set(columns["dc"]) <= {"DC1", "DC2"}

    def test_codes_when_not_decoding(self, tiny_run, tmp_path):
        table = rack_static_table(tiny_run)
        path = tmp_path / "racks_codes.csv"
        export_table_csv(table, path, decode_categories=False)
        columns = read_csv_table(path)
        assert all(value.isdigit() for value in columns["dc"][:10])


class TestReadCsv:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DataError):
            read_csv_table(tmp_path / "nope.csv")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            read_csv_table(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(DataError):
            read_csv_table(path)


class TestIterCsvRows:
    def _write(self, tmp_path, n_rows):
        path = tmp_path / "data.csv"
        path.write_text(
            "a,b\n" + "".join(f"{i},{i * 2}\n" for i in range(n_rows))
        )
        return path

    def test_chunks_bounded_and_complete(self, tmp_path):
        path = self._write(tmp_path, 10)
        chunks = list(iter_csv_rows(path, chunk_rows=4))
        assert [len(rows) for _, rows in chunks] == [4, 4, 2]
        assert all(header == ["a", "b"] for header, _ in chunks)
        flat = [row for _, rows in chunks for row in rows]
        assert flat == [[str(i), str(i * 2)] for i in range(10)]

    def test_header_only_file_yields_empty_chunk(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        assert list(iter_csv_rows(path)) == [(["a", "b"], [])]

    def test_exact_multiple_of_chunk_size(self, tmp_path):
        path = self._write(tmp_path, 8)
        chunks = list(iter_csv_rows(path, chunk_rows=4))
        assert [len(rows) for _, rows in chunks] == [4, 4]

    def test_bad_chunk_rows_rejected(self, tmp_path):
        path = self._write(tmp_path, 2)
        with pytest.raises(DataError, match="chunk_rows"):
            list(iter_csv_rows(path, chunk_rows=0))

    def test_read_csv_table_matches_chunked_reader(self, tiny_run, tmp_path):
        path = tmp_path / "tickets.csv"
        export_tickets_csv(tiny_run, path)
        table = read_csv_table(path)
        rebuilt: dict[str, list[str]] = {}
        for header, rows in iter_csv_rows(path, chunk_rows=7):
            for name in header:
                rebuilt.setdefault(name, [])
            for row in rows:
                for name, cell in zip(header, row):
                    rebuilt[name].append(cell)
        assert rebuilt == table


class TestArgumentValidation:
    def test_negative_jobs_rejected_with_clear_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["simulate", "--jobs", "-2"]
            )
        assert excinfo.value.code == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_zero_jobs_means_all_cores_still_allowed(self):
        args = build_parser().parse_args(["simulate", "--jobs", "0"])
        assert args.jobs == 0

    def test_non_integer_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--jobs", "many"])
        assert "invalid" in capsys.readouterr().err

    def test_empty_seeds_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["simulate", "--seeds"])
        assert excinfo.value.code == 2
        assert "--seeds" in capsys.readouterr().err

    def test_negative_seed_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--seeds", "1", "-3"])
        assert "seeds must be >= 0" in capsys.readouterr().err

    def test_sweep_empty_seeds_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--seeds"])
        assert "--seeds" in capsys.readouterr().err


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig10" in output
        assert "table2" in output

    def test_simulate_command_writes_csvs(self, tmp_path, capsys):
        code = main([
            "simulate", "--seed", "5", "--scale", "0.03", "--days", "60",
            "--out", str(tmp_path / "out"),
        ])
        assert code == 0
        assert (tmp_path / "out" / "tickets.csv").exists()
        assert (tmp_path / "out" / "inventory.csv").exists()
        assert "RMA tickets" in capsys.readouterr().out

    def test_report_command(self, capsys):
        code = main([
            "report", "fig03", "--seed", "5", "--scale", "0.03",
            "--days", "90",
        ])
        assert code == 0
        assert "day of week" in capsys.readouterr().out

    def test_report_unknown_experiment_rejected(self):
        with pytest.raises(DataError):
            main(["report", "fig99", "--scale", "0.03", "--days", "60"])

    def test_sweep_command(self, capsys):
        code = main([
            "sweep", "--seeds", "9", "--scale", "0.05", "--days", "150",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Robustness sweep" in output
        assert "Q2 SF S2/S4" in output

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_corrupt_command_writes_dataset(self, tmp_path, capsys):
        code = main([
            "corrupt", "--seed", "5", "--scale", "0.03", "--days", "60",
            "--severity", "0.5", "--clean", "--out", str(tmp_path / "fd"),
        ])
        assert code == 0
        for name in ("tickets.csv", "inventory.csv", "sensors.npz"):
            assert (tmp_path / "fd" / name).exists()
        output = capsys.readouterr().out
        assert "corruption pipeline" in output
        assert "cleaning:" in output

    def test_corrupt_severity_zero_matches_simulate(self, tmp_path):
        main([
            "simulate", "--seed", "5", "--scale", "0.03", "--days", "60",
            "--out", str(tmp_path / "plain"),
        ])
        main([
            "corrupt", "--seed", "5", "--scale", "0.03", "--days", "60",
            "--severity", "0", "--out", str(tmp_path / "fd"),
        ])
        plain = (tmp_path / "plain" / "tickets.csv").read_text()
        corrupted = (tmp_path / "fd" / "tickets.csv").read_text()
        assert plain == corrupted

    def test_sweep_noise_command(self, capsys):
        code = main([
            "sweep", "--seeds", "9", "--scale", "0.05", "--days", "150",
            "--noise", "0", "1",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "Noise-robustness sweep" in output
        assert "sev=1.00" in output

    def test_sweep_noise_rejects_bad_severity(self):
        with pytest.raises(DataError):
            main([
                "sweep", "--seeds", "9", "--scale", "0.05", "--days", "150",
                "--noise", "2.0",
            ])
