"""CLI surface of the artifact pipeline: report provenance, dag, list.

Everything here drives :func:`repro.cli.main` end to end with a small
fast config, asserting the contracts CI's smoke job relies on — in
particular that a warm ``repro report`` performs zero computed
simulate-stage executions.
"""

import json

import pytest

from repro.cli import main
from repro.reporting.context import SIMULATE_STAGE

ARGS = ["--scale", "0.05", "--days", "60", "--seed", "21"]


def report(tmp_path, *extra):
    return main(["report", "fig10", *ARGS,
                 "--cache-dir", str(tmp_path / "store"), *extra])


class TestReportProvenance:
    def test_cold_report_writes_manifest(self, tmp_path, capsys):
        assert report(tmp_path) == 0
        captured = capsys.readouterr()
        assert "loaded from run cache" not in captured.err
        manifest = json.loads(
            (tmp_path / "store" / "manifest.json").read_text()
        )
        outcomes = {e["stage"]: e["outcome"] for e in manifest["executions"]}
        assert outcomes[SIMULATE_STAGE] == "computed"
        assert outcomes["render:fig10"] == "computed"

    def test_warm_report_is_identical_and_never_simulates(
            self, tmp_path, capsys):
        assert report(tmp_path) == 0
        cold = capsys.readouterr()
        assert report(tmp_path) == 0
        warm = capsys.readouterr()
        assert "loaded from run cache" in warm.err
        assert warm.out == cold.out  # bit-identical rendering
        manifest = json.loads(
            (tmp_path / "store" / "manifest.json").read_text()
        )
        computed = [e["stage"] for e in manifest["executions"]
                    if e["outcome"] == "computed"]
        assert computed == []

    def test_warm_report_to_file_matches_cold(self, tmp_path, capsys):
        cold_path, warm_path = tmp_path / "cold.md", tmp_path / "warm.md"
        assert report(tmp_path, "--out", str(cold_path)) == 0
        assert report(tmp_path, "--out", str(warm_path)) == 0
        capsys.readouterr()
        assert warm_path.read_bytes() == cold_path.read_bytes()

    def test_manifest_subcommand_renders_provenance(self, tmp_path, capsys):
        assert report(tmp_path) == 0
        capsys.readouterr()
        assert main(["pipeline", "manifest",
                     "--cache-dir", str(tmp_path / "store")]) == 0
        text = capsys.readouterr().out
        assert "stage executions" in text
        assert "[computed" in text
        assert SIMULATE_STAGE in text

    def test_manifest_subcommand_json(self, tmp_path, capsys):
        assert report(tmp_path) == 0
        capsys.readouterr()
        assert main(["pipeline", "manifest", "--format", "json",
                     "--cache-dir", str(tmp_path / "store")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert SIMULATE_STAGE in payload["stages"]

    def test_manifest_without_cache_dir_fails(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["pipeline", "manifest", "--no-cache"]) == 1
        assert "--cache-dir" in capsys.readouterr().err

    def test_manifest_before_any_report_fails(self, tmp_path, capsys):
        assert main(["pipeline", "manifest",
                     "--cache-dir", str(tmp_path / "empty")]) == 1
        assert "no manifest" in capsys.readouterr().err


class TestPipelineDag:
    def test_dag_text_lists_stages_in_dependency_order(self, capsys):
        assert main(["pipeline", "dag", *ARGS, "--no-cache"]) == 0
        lines = capsys.readouterr().out.splitlines()
        names = [line.split()[0] for line in lines]
        assert names.index(SIMULATE_STAGE) < names.index("render:fig10")
        assert any("codec=run" in line for line in lines)

    def test_dag_json_declares_deps_and_keys(self, capsys):
        assert main(["pipeline", "dag", *ARGS, "--format", "json",
                     "--no-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stages = payload["stages"]
        assert SIMULATE_STAGE in stages["render:fig10"]["deps"]
        assert "provisioner:24h" in stages["render:fig10"]["deps"]
        assert len(stages[SIMULATE_STAGE]["key"]) == 32
        assert stages[SIMULATE_STAGE]["codec"] == "run"

    def test_dag_key_tracks_config(self, capsys):
        assert main(["pipeline", "dag", *ARGS, "--format", "json",
                     "--no-cache"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["pipeline", "dag", "--scale", "0.05", "--days", "60",
                     "--seed", "99", "--format", "json", "--no-cache"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert (first["stages"][SIMULATE_STAGE]["key"]
                != second["stages"][SIMULATE_STAGE]["key"])

    def test_prune_needs_cache_dir(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["pipeline", "prune", "--no-cache"]) == 1
        assert "--cache-dir" in capsys.readouterr().err

    def test_prune_reports_removals(self, tmp_path, capsys):
        assert report(tmp_path) == 0
        capsys.readouterr()
        assert main(["pipeline", "prune", "--max-entries", "0",
                     "--cache-dir", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        assert "pruned 0" not in out


class TestListJson:
    def test_json_lists_declared_stage_deps(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        by_id = {e["id"]: e for e in payload["experiments"]}
        assert by_id["fig10"]["stages"] == ["provisioner:24h"]
        assert set(by_id["table4"]["stages"]) == {"provisioner:24h",
                                                  "provisioner:1h"}
        assert all(e["description"] for e in payload["experiments"])

    def test_text_format_unchanged(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)
