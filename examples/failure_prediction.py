"""Extension: predicting failures for pro-active maintenance (§VII).

The paper closes by naming "prediction of datacenter failures for
pro-active maintenance" as future work, and §V-C notes that plain CART
needs class re-balancing for it.  This example runs that extension:
a will-this-rack-fail-soon predictor trained on deployment features
plus short operational history, evaluated on a strictly later test
period.

Usage::

    python examples/failure_prediction.py [--paper-scale]
"""

import sys

import numpy as np

import repro
from repro.analysis.prediction import (
    FailurePredictor,
    build_prediction_dataset,
    time_split,
)


def main(paper_scale: bool = False) -> None:
    if paper_scale:
        config = repro.SimulationConfig.paper_scale(seed=0)
    else:
        config = repro.SimulationConfig.small(seed=2, scale=0.3, n_days=540)
    result = repro.simulate(config)
    print(result.summary(), "\n")

    dataset = build_prediction_dataset(result, horizon_days=3)
    train, test = time_split(dataset, train_fraction=0.7)
    print(f"dataset: {dataset.n_rows} rack-days "
          f"({train.n_rows} train / {test.n_rows} test, time-ordered split)")
    print(f"target: hardware RMA within 3 days "
          f"(base rate {dataset.column('will_fail').mean():.1%})\n")

    predictor = FailurePredictor().fit(train)
    metrics = predictor.evaluate(test)
    print("held-out performance:")
    print(f"  ROC-AUC            {metrics.auc:.3f}  (0.5 = chance)")
    print(f"  precision @ top10% {metrics.precision_at_decile:.1%} "
          f"(base rate {metrics.base_rate:.1%})")
    print(f"  recall    @ top10% {metrics.recall_at_decile:.1%}\n")

    assert predictor.tree is not None
    print("what the predictor learned (factor importance):")
    for name, share in predictor.tree.importance().items():
        print(f"  {name:22s} {share:6.1%}")

    print("\noperator view: the top-scored rack-days concentrate "
          f"{metrics.precision_at_decile / metrics.base_rate:.1f}X the "
          "average failure risk — a pro-active maintenance queue.")

    # Extension: close §VII's loop — price the predictions as a
    # proactive-maintenance policy.
    from repro.decisions import policy_curve

    print("\nproactive-maintenance operating curve:")
    for outcome in policy_curve(result, act_fractions=(0.01, 0.05, 0.10)):
        print(f"  {outcome.render()}")

    # Sanity: scores vs reality across score quintiles.
    scores = predictor.score(test)
    labels = test.column("will_fail").astype(float)
    print("\ncalibration by score quintile (observed failure share):")
    edges = np.quantile(scores, [0.2, 0.4, 0.6, 0.8])
    bins = np.searchsorted(edges, scores)
    for quintile in range(5):
        members = bins == quintile
        if members.any():
            print(f"  Q{quintile + 1}: {labels[members].mean():.1%} "
                  f"(n={int(members.sum())})")


if __name__ == "__main__":
    main("--paper-scale" in sys.argv[1:])
