"""Ground-truth audit: does the MF framework recover what we planted?

This is the one study the paper could not run: its authors never knew
the true generative process behind their production data.  Our
substrate is a simulator, so we can compare every MF conclusion against
the hazard model that actually produced the tickets.

Usage::

    python examples/ground_truth_audit.py [--paper-scale]
"""

import sys

import repro
from repro.datacenter.sku import default_catalog
from repro.decisions import compare_skus, discover_climate_thresholds
from repro.failures import hazards
from repro.reporting import AnalysisContext


def check(name: str, recovered: float, truth: float, tolerance: float) -> None:
    gap = abs(recovered - truth)
    verdict = "OK " if gap <= tolerance else "OFF"
    print(f"  [{verdict}] {name:42s} recovered {recovered:7.2f} "
          f"truth {truth:7.2f} (tol {tolerance:g})")


def main(paper_scale: bool = False) -> None:
    if paper_scale:
        config = repro.SimulationConfig.paper_scale(seed=0)
    else:
        config = repro.SimulationConfig.small(seed=2, scale=0.3, n_days=540)
    result = repro.simulate(config)
    print(result.summary(), "\n")
    context = AnalysisContext(result)
    catalog = default_catalog()

    print("Q2 — SKU intrinsic hazards (confounded in the raw data):")
    comparison = compare_skus(result, table=context.hardware_failures)
    truth_ratio = (catalog.get("S2").intrinsic_hazard
                   / catalog.get("S4").intrinsic_hazard)
    check("S2/S4 intrinsic ratio via MF", comparison.mf_ratio("S2", "S4"),
          truth_ratio, tolerance=2.0)
    sf_ratio = comparison.sf_ratio("S2", "S4")
    print(f"        (SF's confounded estimate was {sf_ratio:.2f} — "
          f"{sf_ratio / truth_ratio:.1f}X the truth)\n")

    print("Q3 — environmental thresholds planted in the disk hazard:")
    found = discover_climate_thresholds(result, "DC1",
                                        table=context.disk_failures)
    if found.temp_threshold_f is not None:
        check("DC1 temperature step location (F)", found.temp_threshold_f,
              78.0, tolerance=5.0)
    else:
        print("  [OFF] DC1 temperature step not found")
    if found.rh_threshold is not None:
        check("DC1 RH gate location (%)", found.rh_threshold, 25.0,
              tolerance=10.0)
    found_dc2 = discover_climate_thresholds(result, "DC2",
                                            table=context.disk_failures)
    status = "OK " if found_dc2.temp_threshold_f is None else "OFF"
    print(f"  [{status}] DC2 correctly shows no thermal response "
          f"(coupling suppressed by containment)\n")

    print("Hazard-shape spot checks against the planted curves:")
    import numpy as np

    step = (hazards.thermal_disk_multiplier(np.array([84.0]))[0]
            - hazards.thermal_disk_multiplier(np.array([72.0]))[0])
    print(f"  planted thermal step (72->84 F): +{step:.2f} "
          "(the paper reports a 50% increase above 78 F)")
    interaction = hazards.humidity_interaction_multiplier(
        np.array([85.0]), np.array([15.0])
    )[0]
    print(f"  planted hot-and-dry interaction: x{interaction:.2f} "
          "(the paper reports +25% below 25% RH)")
    bathtub = hazards.bathtub_age_multiplier(np.array([0.0, 24.0]))
    print(f"  planted infant-mortality edge: {bathtub[0] / bathtub[1]:.1f}X "
          "the mature rate (Fig 9's 'new equipment fails more')")


if __name__ == "__main__":
    main("--paper-scale" in sys.argv[1:])
