"""Q1 walkthrough: how many spares does each workload need?

Reproduces the paper's §VI-Q1 study — server-level spares (Fig 10/12),
MF rack clusters (Fig 11), component-level spares (Fig 13) and the TCO
savings of MF over SF (Table IV) — on a freshly simulated fleet.

Usage::

    python examples/spare_provisioning.py [--paper-scale]
"""

import sys

import repro
from repro.decisions import AvailabilitySla
from repro.reporting import AnalysisContext, table_iv
from repro.reporting.figures import (
    fig10_overprovision,
    fig11_cluster_cdfs,
    fig13_component_spares,
)


def main(paper_scale: bool = False) -> None:
    if paper_scale:
        config = repro.SimulationConfig.paper_scale(seed=0)
    else:
        config = repro.SimulationConfig.small(seed=2, scale=0.3, n_days=540)
    result = repro.simulate(config)
    print(result.summary(), "\n")
    context = AnalysisContext(result)

    # -- Q1-A: server spares at daily and hourly granularity ------------
    print(fig10_overprovision(context, 24.0).render(), "\n")
    print(fig10_overprovision(context, 1.0).render(), "\n")

    # -- The clusters behind MF's advantage (Fig 11) ---------------------
    provisioner = context.provisioner(24.0)
    for workload in ("W1", "W6"):
        plan = provisioner.multi_factor(workload, AvailabilitySla(1.0))
        assert plan.clusters is not None
        print(f"{workload}: {len(plan.clusters)} MF clusters "
              f"(overall over-provision {plan.overprovision:.1%})")
        for cluster in sorted(plan.clusters, key=lambda c: c.fraction):
            print(f"  {cluster.fraction:6.1%}  n={cluster.n_racks:3d}  "
                  f"{cluster.description}")
        cdfs = fig11_cluster_cdfs(context, workload)
        print(f"  (pooled SF sample: n={len(cdfs['SF'])}, "
              f"max={cdfs['SF'].max():.1f}%)\n")

    # -- Q1-B: component-level vs server-level spares (Fig 13) -----------
    print(fig13_component_spares(context).render(), "\n")

    # -- Table IV: what MF saves in TCO terms ----------------------------
    print(table_iv(context))

    # -- Extension (§II's open question): shared vs dedicated pools -------
    from repro.decisions import pooling_analysis

    print()
    for dc in ("DC1", "DC2"):
        print(pooling_analysis(result, dc, AvailabilitySla(1.0)).render())
        print()


if __name__ == "__main__":
    main("--paper-scale" in sys.argv[1:])
