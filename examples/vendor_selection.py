"""Q2 walkthrough: which vendor's SKU should we procure?

Reproduces §VI-Q2: the single-factor ranking (Fig 14), the multi-factor
normalization that corrects it (Fig 15), and the procurement TCO
scenarios in which trusting SF would overpay for the "reliable" SKU.

Usage::

    python examples/vendor_selection.py [--paper-scale]
"""

import sys

import repro
from repro.decisions import procurement_scenarios
from repro.reporting import AnalysisContext
from repro.reporting.figures import fig14_fig15_sku, render_fig14, render_fig15


def main(paper_scale: bool = False) -> None:
    if paper_scale:
        config = repro.SimulationConfig.paper_scale(seed=0)
    else:
        config = repro.SimulationConfig.small(seed=2, scale=0.3, n_days=540)
    result = repro.simulate(config)
    print(result.summary(), "\n")

    context = AnalysisContext(result)
    comparison = fig14_fig15_sku(context)

    print(render_fig14(comparison), "\n")
    print(render_fig15(comparison), "\n")

    sf = comparison.sf_ratio("S2", "S4", "mean")
    mf = comparison.mf_ratio("S2", "S4", "mean")
    print(f"S2/S4 average failure-rate ratio:  SF {sf:.1f}X   MF {mf:.1f}X")
    print("(the simulator's planted intrinsic ratio is 4.0X; the gap to")
    print(" SF comes from S2's hot placement, young age and W2 workload)\n")

    print("Procurement scenarios (choose S4 over S2):")
    for scenario in procurement_scenarios(comparison, price_ratios=(1.0, 1.25, 1.5)):
        verdict_sf = "buy S4" if scenario.sf_savings > 0 else "keep S2"
        verdict_mf = "buy S4" if scenario.mf_savings > 0 else "keep S2"
        print(f"  S4 priced {scenario.price_ratio:.2f}X: "
              f"SF says {scenario.sf_savings * 100:+6.1f}% ({verdict_sf}); "
              f"MF says {scenario.mf_savings * 100:+6.1f}% ({verdict_mf})")
    print("\nAt a high enough premium the SF estimate keeps endorsing S4")
    print("while the MF estimate correctly flags the premium as wasted —")
    print("the paper's §VI-Q2 conclusion.")

    from repro.decisions import compare_vendors, rank_vendors

    print("\nVendor-level rollup (exposure-weighted across each vendor's SKUs):")
    rollup = compare_vendors(result, comparison)
    for stats in rank_vendors(rollup):
        print(f"  {stats.vendor:8s} SKUs {', '.join(stats.skus):10s} "
              f"SF rate {stats.sf_mean:.3f}  MF-adjusted {stats.mf_mean:.3f}")
    print("VendorB carries the confounded S2 estate: its SF number "
          "overstates how bad its hardware really is.")


if __name__ == "__main__":
    main("--paper-scale" in sys.argv[1:])
