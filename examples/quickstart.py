"""Quickstart: simulate a small fleet and run a first multi-factor analysis.

Runs in a few seconds.  Usage::

    python examples/quickstart.py [seed]
"""

import sys

import repro
from repro.reporting import AnalysisContext, table_i, table_ii


def main(seed: int = 1) -> None:
    # 1. Simulate six months of a ~12%-scale two-DC fleet.
    config = repro.SimulationConfig.small(seed=seed, scale=0.12, n_days=180)
    result = repro.simulate(config)
    print(result.summary())
    print()

    # 2. The facility properties and the RMA ticket mix (Tables I-II).
    print(table_i(result))
    print()
    print(table_ii(result))
    print()

    # 3. Build the rack-day analysis table and fit a multi-factor CART.
    table = repro.build_rack_day_table(result)
    model = repro.MultiFactorModel.from_formula(
        "failures ~ workload, sku, dc, age_months, rated_power_kw, temp_f, rh",
        table,
        params=repro.TreeParams(max_depth=4, min_split=500, min_bucket=200,
                                cp=2e-3),
    )
    print("Fitted CART over the Table III features:")
    print(model.render(max_depth=3))
    print()
    print("Relative factor importance:")
    for name, share in model.importance().items():
        print(f"  {name:16s} {share:6.1%}")

    # 4. One single-factor view for comparison (Fig 6's workload bars).
    context = AnalysisContext(result)
    from repro.reporting.figures import fig06_workload

    print()
    print(fig06_workload(context).render())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
