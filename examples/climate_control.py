"""Q3 walkthrough: how much can we relax temperature/humidity control?

Reproduces §VI-Q3: the flat single-factor view of temperature vs all
failures (Fig 16), the disk-failure trend (Fig 17), and the MF
classification that finds per-DC operating envelopes (Fig 18) — with
the split thresholds *discovered* by the CART rather than assumed.

Usage::

    python examples/climate_control.py [--paper-scale]
"""

import sys

import numpy as np

import repro
from repro.decisions import climate_group_rates, discover_climate_thresholds
from repro.reporting import AnalysisContext
from repro.reporting.figures import (
    fig16_temperature_all,
    fig17_temperature_disk,
    fig18_climate_mf,
)


def main(paper_scale: bool = False) -> None:
    if paper_scale:
        config = repro.SimulationConfig.paper_scale(seed=0)
    else:
        config = repro.SimulationConfig.small(seed=2, scale=0.3, n_days=540)
    result = repro.simulate(config)
    print(result.summary(), "\n")
    context = AnalysisContext(result)

    print(fig16_temperature_all(context).render(), "\n")
    print(fig17_temperature_disk(context).render(), "\n")
    print(fig18_climate_mf(context).render(), "\n")

    print("Thresholds the MF tree discovers (paper: 78 F, 25.5% RH):")
    for dc in ("DC1", "DC2"):
        found = discover_climate_thresholds(
            result, dc, table=context.disk_failures,
        )
        if found.temp_threshold_f is None:
            print(f"  {dc}: no significant environmental split "
                  f"(gain share {found.temp_gain_share:.4f}) — its plant "
                  "never exposes the drives to the harmful regime")
            continue
        rh_text = (f", RH sub-split at {found.rh_threshold:.1f}%"
                   if found.rh_threshold is not None else "")
        print(f"  {dc}: temperature split at {found.temp_threshold_f:.1f} F"
              f"{rh_text} (gain share {found.temp_gain_share:.4f})")

    print("\nExtension (§VI-Q3's follow-up): setpoint choice as TCO.")
    from repro.decisions import ClimateCostParams, climate_tco_curve

    tco_curve = climate_tco_curve(result, table=context.disk_failures)
    print(tco_curve.render())
    pricey = climate_tco_curve(
        result, table=context.disk_failures,
        params=ClimateCostParams(trim_cost_per_rack_degree_day=0.5),
    )
    print(f"(with far pricier trim cooling the optimum rises to "
          f"{pricey.optimal.cap_f:.0f} F — run hotter, absorb the failures)")

    print("\nOperator guidance derived from the MF view:")
    group = climate_group_rates(result, "DC1", table=context.disk_failures)
    hot_penalty = group.hot / group.cool
    dry_penalty = group.hot_dry / group.hot if np.isfinite(group.hot_dry) else float("nan")
    print(f"  DC1 may run up to ~78 F without penalty; above it disk failure")
    print(f"  rates rise {hot_penalty - 1:.0%}, and letting RH drop below ~25%")
    print(f"  at those temperatures costs another {dry_penalty - 1:.0%}.")
    print("  DC2's envelope is not binding: its containment decouples drive")
    print("  temperature from room excursions, so chasing tighter setpoints")
    print("  there buys no reliability.")


if __name__ == "__main__":
    main("--paper-scale" in sys.argv[1:])
