"""Legacy setup shim so `pip install -e .` works without the `wheel`
package (this environment has an older setuptools and no network)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Multi-factor datacenter reliability analysis — reproduction of "
        "'Rain or Shine? Making Sense of Cloudy Reliability Data' (ICDCS 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
