"""CART from scratch: criteria, splitter, tree, pruning, rendering."""

from .criteria import gini_impurity, node_mean, node_sse, sse_split_scan
from .export import describe_path, render_tree
from .importance import permutation_importance
from .prune import PruneStep, cross_validated_alpha, prune, prune_sequence
from .splitter import Split, best_split, best_split_for_feature
from .tree import Node, RegressionTree, TreeParams

__all__ = [
    "Node",
    "PruneStep",
    "RegressionTree",
    "Split",
    "TreeParams",
    "best_split",
    "best_split_for_feature",
    "cross_validated_alpha",
    "describe_path",
    "gini_impurity",
    "node_mean",
    "node_sse",
    "permutation_importance",
    "prune",
    "prune_sequence",
    "render_tree",
    "sse_split_scan",
]
