"""Cost-complexity pruning (Breiman et al., ch. 3; rpart's cp table).

A fully-grown tree overfits; pruning trades leaves against fit via the
penalized risk  R_α(T) = R(T) + α·|leaves(T)|.  The *weakest link* of a
tree is the internal node t minimizing

    g(t) = (R(t) − R(T_t)) / (|leaves(T_t)| − 1)

where R is the SSE.  Collapsing weakest links in increasing g order
yields the nested sequence of optimal subtrees; α (or rpart-style cp)
then selects one — directly, or by k-fold cross-validation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from ...errors import DataError, FitError
from ...telemetry.schema import Schema
from .tree import Node, RegressionTree, TreeParams


@dataclass(frozen=True)
class PruneStep:
    """One entry of the pruning sequence.

    Attributes:
        alpha: penalty at which this subtree becomes optimal.
        n_leaves: leaf count of the subtree.
        risk: total leaf SSE of the subtree.
    """

    alpha: float
    n_leaves: int
    risk: float


def _weakest_link(root: Node) -> tuple[Node | None, float]:
    """The internal node with minimal g(t), and its g value."""
    best_node: Node | None = None
    best_g = np.inf
    for node in root.internal_nodes():
        n_sub_leaves = len(node.leaves())
        if n_sub_leaves < 2:
            continue
        g = (node.sse - node.subtree_sse()) / (n_sub_leaves - 1)
        if g < best_g:
            best_g = g
            best_node = node
    return best_node, best_g


def _collapse(node: Node) -> None:
    """Turn an internal node into a leaf in place."""
    node.split = None
    node.left = None
    node.right = None


def prune_sequence(tree: RegressionTree) -> list[tuple[PruneStep, RegressionTree]]:
    """The full nested subtree sequence, smallest alpha first.

    Returns a list of (step, pruned-tree) pairs starting with the
    unpruned tree at alpha 0 and ending at the root-only stump.  Trees
    are deep copies; the input tree is untouched.
    """
    if tree.root is None:
        raise FitError("cannot prune an unfitted tree")
    current = copy.deepcopy(tree)
    sequence: list[tuple[PruneStep, RegressionTree]] = [(
        PruneStep(alpha=0.0, n_leaves=current.n_leaves,
                  risk=current.root.subtree_sse()),
        copy.deepcopy(current),
    )]
    while current.root is not None and not current.root.is_leaf:
        weakest, g = _weakest_link(current.root)
        if weakest is None:
            break
        _collapse(weakest)
        current.rebuild_importance()
        sequence.append((
            PruneStep(alpha=float(g), n_leaves=current.n_leaves,
                      risk=current.root.subtree_sse()),
            copy.deepcopy(current),
        ))
    return sequence


def prune(tree: RegressionTree, alpha: float) -> RegressionTree:
    """The smallest subtree optimal at penalty ``alpha``."""
    if alpha < 0:
        raise DataError(f"alpha must be >= 0, got {alpha}")
    sequence = prune_sequence(tree)
    chosen = sequence[0][1]
    for step, subtree in sequence:
        if step.alpha <= alpha:
            chosen = subtree
        else:
            break
    return chosen


def cross_validated_alpha(
    matrix: np.ndarray,
    y: np.ndarray,
    schema: Schema,
    params: TreeParams,
    n_folds: int = 5,
    rng: np.random.Generator | None = None,
    sample_weight: np.ndarray | None = None,
) -> float:
    """Pick alpha by k-fold cross-validation (1-SE-free, min-risk rule).

    Grows a reference tree on all data to obtain the candidate alpha
    grid (geometric midpoints of its pruning sequence, as in rpart),
    then scores each candidate by held-out SSE.
    """
    matrix = np.asarray(matrix, dtype=float)
    y = np.asarray(y, dtype=float)
    if n_folds < 2:
        raise DataError(f"need at least 2 folds, got {n_folds}")
    if len(y) < n_folds:
        raise DataError(f"{len(y)} rows cannot fill {n_folds} folds")
    rng = rng or np.random.default_rng(0)
    weights = np.ones(len(y)) if sample_weight is None else np.asarray(sample_weight)

    reference = RegressionTree(params).fit(matrix, y, schema, weights)
    steps = [step for step, _ in prune_sequence(reference)]
    if len(steps) <= 1:
        return 0.0
    alphas = [steps[0].alpha]
    for a, b in zip(steps[:-1], steps[1:]):
        low = max(a.alpha, 1e-12)
        high = max(b.alpha, 1e-12)
        alphas.append(float(np.sqrt(low * high)))

    fold_of = rng.integers(0, n_folds, size=len(y))
    cv_risk = np.zeros(len(alphas))
    for fold in range(n_folds):
        hold = fold_of == fold
        if hold.all() or not hold.any():
            continue
        fold_tree = RegressionTree(params).fit(
            matrix[~hold], y[~hold], schema, weights[~hold]
        )
        for i, alpha in enumerate(alphas):
            pruned = prune(fold_tree, alpha)
            residual = y[hold] - pruned.predict(matrix[hold])
            cv_risk[i] += float((weights[hold] * residual**2).sum())
    return float(alphas[int(np.argmin(cv_risk))])
