"""Regression-tree construction (the rpart-style core of the MF framework).

"A CART tree is formed by a collection of rules that best split the
data set ... The splitting process is recursive and performed in a
top-down manner and stops when no further gain can be made or pre-set
stopping rules are met." (§V-C)

Stopping rules mirror rpart's: ``min_split`` (don't attempt to split
smaller nodes), ``min_bucket`` (children must keep at least this many
rows), ``max_depth``, and ``cp`` (a split must reduce the root's SSE by
at least ``cp`` relative — rpart's complexity parameter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import DataError, FitError
from ...telemetry.schema import FeatureSpec, Schema
from .criteria import node_mean, node_sse
from .splitter import Split, best_split


@dataclass(frozen=True)
class TreeParams:
    """Growth-control parameters (rpart naming).

    Attributes:
        max_depth: maximum node depth (root = 0).
        min_split: smallest node the builder will try to split.
        min_bucket: smallest allowed child node.
        cp: complexity parameter — minimum SSE reduction as a fraction
            of the root SSE for a split to be kept.
        max_leaves: optional hard cap on leaf count (None = unlimited).
    """

    max_depth: int = 8
    min_split: int = 20
    min_bucket: int = 7
    cp: float = 0.01
    max_leaves: int | None = None

    def __post_init__(self) -> None:
        if self.max_depth < 0:
            raise DataError(f"max_depth must be >= 0, got {self.max_depth}")
        if self.min_split < 2:
            raise DataError(f"min_split must be >= 2, got {self.min_split}")
        if self.min_bucket < 1:
            raise DataError(f"min_bucket must be >= 1, got {self.min_bucket}")
        if not 0.0 <= self.cp < 1.0:
            raise DataError(f"cp must be in [0, 1), got {self.cp}")
        if self.max_leaves is not None and self.max_leaves < 1:
            raise DataError(f"max_leaves must be >= 1, got {self.max_leaves}")


@dataclass
class Node:
    """One tree node.

    Attributes:
        node_id: stable integer id (breadth-ordered assignment).
        depth: distance from the root.
        n: training rows reaching this node.
        weight: total training weight reaching this node.
        prediction: (weighted) mean response.
        sse: weighted SSE of the node's response.
        split: fitted split, or None for a leaf.
        left / right: child nodes (None for leaves).
    """

    node_id: int
    depth: int
    n: int
    weight: float
    prediction: float
    sse: float
    split: Split | None = None
    left: "Node | None" = None
    right: "Node | None" = None

    @property
    def is_leaf(self) -> bool:
        """True when the node has no split."""
        return self.split is None

    def leaves(self) -> list["Node"]:
        """All leaf descendants (self if a leaf), left-to-right."""
        if self.is_leaf:
            return [self]
        assert self.left is not None and self.right is not None
        return self.left.leaves() + self.right.leaves()

    def internal_nodes(self) -> list["Node"]:
        """All non-leaf descendants including self if internal."""
        if self.is_leaf:
            return []
        assert self.left is not None and self.right is not None
        return [self] + self.left.internal_nodes() + self.right.internal_nodes()

    def subtree_sse(self) -> float:
        """Total SSE over the subtree's leaves."""
        return sum(leaf.sse for leaf in self.leaves())


class RegressionTree:
    """A fitted CART regression tree.

    Usage::

        tree = RegressionTree(params).fit(matrix, y, schema)
        predictions = tree.predict(matrix)
        leaf_ids = tree.apply(matrix)
    """

    def __init__(self, params: TreeParams | None = None):
        self.params = params or TreeParams()
        self.root: Node | None = None
        self.schema: Schema | None = None
        self.n_samples: int = 0
        self._importance_raw: dict[str, float] = {}

    # -- fitting ----------------------------------------------------------

    def fit(
        self,
        matrix: np.ndarray,
        y: np.ndarray,
        schema: Schema,
        sample_weight: np.ndarray | None = None,
    ) -> "RegressionTree":
        """Grow the tree; returns self.

        Args:
            matrix: (n_rows, n_features) floats; categorical columns hold
                integer codes.
            y: response vector.
            schema: feature specs, aligned with matrix columns.
            sample_weight: optional per-row weights.
        """
        matrix = np.asarray(matrix, dtype=float)
        y = np.asarray(y, dtype=float)
        if matrix.ndim != 2:
            raise FitError(f"matrix must be 2-D, got shape {matrix.shape}")
        if len(y) != matrix.shape[0]:
            raise FitError(f"{len(y)} responses for {matrix.shape[0]} rows")
        if matrix.shape[1] != len(schema):
            raise FitError(f"{matrix.shape[1]} columns but schema has {len(schema)}")
        if len(y) == 0:
            raise FitError("cannot fit a tree on zero rows")
        if not np.isfinite(y).all():
            raise FitError(
                "response contains NaN/inf values; fill or drop them first"
            )
        # NaNs in the feature matrix are allowed: the splitter learns a
        # default direction per split (Split.nan_goes_left).
        weights = (np.ones(len(y)) if sample_weight is None
                   else np.asarray(sample_weight, dtype=float))
        if weights.shape != y.shape:
            raise FitError("sample_weight must align with y")
        if (weights < 0).any() or weights.sum() <= 0:
            raise FitError("sample weights must be non-negative with positive sum")

        self.schema = schema
        self.n_samples = len(y)
        self._importance_raw = {}
        specs = list(schema)
        root_sse = node_sse(y, weights)
        self._next_id = 0
        self._n_leaves = 1
        self.root = self._grow(
            matrix, y, weights, specs, depth=0, root_sse=max(root_sse, 1e-300)
        )
        return self

    def _allocate_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def _grow(
        self,
        matrix: np.ndarray,
        y: np.ndarray,
        weights: np.ndarray,
        specs: list[FeatureSpec],
        depth: int,
        root_sse: float,
    ) -> Node:
        node = Node(
            node_id=self._allocate_id(),
            depth=depth,
            n=len(y),
            weight=float(weights.sum()),
            prediction=node_mean(y, weights),
            sse=node_sse(y, weights),
        )
        params = self.params
        if (depth >= params.max_depth or node.n < params.min_split
                or node.sse <= 1e-12):
            return node
        if params.max_leaves is not None and self._n_leaves >= params.max_leaves:
            return node

        split = best_split(matrix, y, weights, specs, params.min_bucket)
        if split is None or split.gain < params.cp * root_sse:
            return node

        go_left = split.goes_left(matrix[:, split.feature_index])
        node.split = split
        self._n_leaves += 1  # splitting one leaf nets one extra leaf
        self._importance_raw[split.feature_name] = (
            self._importance_raw.get(split.feature_name, 0.0) + split.gain
        )
        node.left = self._grow(
            matrix[go_left], y[go_left], weights[go_left], specs,
            depth + 1, root_sse,
        )
        node.right = self._grow(
            matrix[~go_left], y[~go_left], weights[~go_left], specs,
            depth + 1, root_sse,
        )
        return node

    # -- inference ----------------------------------------------------------

    def _require_fitted(self) -> Node:
        if self.root is None:
            raise FitError("tree is not fitted")
        return self.root

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        """Leaf-mean prediction for each row."""
        root = self._require_fitted()
        matrix = np.asarray(matrix, dtype=float)
        output = np.empty(matrix.shape[0])
        self._route(root, matrix, np.arange(matrix.shape[0]), output, as_leaf_id=False)
        return output

    def apply(self, matrix: np.ndarray) -> np.ndarray:
        """Leaf node-id for each row (cluster assignment)."""
        root = self._require_fitted()
        matrix = np.asarray(matrix, dtype=float)
        output = np.empty(matrix.shape[0])
        self._route(root, matrix, np.arange(matrix.shape[0]), output, as_leaf_id=True)
        return output.astype(np.int64)

    def _route(
        self,
        node: Node,
        matrix: np.ndarray,
        rows: np.ndarray,
        output: np.ndarray,
        as_leaf_id: bool,
    ) -> None:
        if node.is_leaf:
            output[rows] = node.node_id if as_leaf_id else node.prediction
            return
        assert node.split is not None and node.left is not None and node.right is not None
        go_left = node.split.goes_left(matrix[rows, node.split.feature_index])
        self._route(node.left, matrix, rows[go_left], output, as_leaf_id)
        self._route(node.right, matrix, rows[~go_left], output, as_leaf_id)

    # -- introspection ----------------------------------------------------

    @property
    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        return len(self._require_fitted().leaves())

    def leaves(self) -> list[Node]:
        """All leaves, left-to-right."""
        return self._require_fitted().leaves()

    def decision_path(self, leaf_id: int) -> list[tuple[Split, bool]]:
        """(split, went_left) pairs from the root to the given leaf."""
        root = self._require_fitted()
        path: list[tuple[Split, bool]] = []

        def descend(node: Node) -> bool:
            if node.node_id == leaf_id:
                return True
            if node.is_leaf:
                return False
            assert node.split is not None and node.left is not None and node.right is not None
            path.append((node.split, True))
            if descend(node.left):
                return True
            path[-1] = (node.split, False)
            if descend(node.right):
                return True
            path.pop()
            return False

        if not descend(root):
            raise DataError(f"no node with id {leaf_id}")
        return path

    def importance(self) -> dict[str, float]:
        """Relative variable importance (gain share per feature).

        Note: as the paper's §V-C footnote warns, correlated/redundant
        factors share importance in CART; interpret jointly.
        """
        self._require_fitted()
        total = sum(self._importance_raw.values())
        if total <= 0:
            return {}
        ranked = sorted(self._importance_raw.items(), key=lambda kv: -kv[1])
        return {name: gain / total for name, gain in ranked}

    def rebuild_importance(self) -> None:
        """Recompute gain-based importance from the current structure.

        Needed after pruning, which removes splits.
        """
        root = self._require_fitted()
        raw: dict[str, float] = {}
        for node in root.internal_nodes():
            assert node.split is not None
            raw[node.split.feature_name] = raw.get(node.split.feature_name, 0.0) \
                + node.split.gain
        self._importance_raw = raw
