"""Variable-importance measures beyond split-gain shares.

The paper's footnote 3 warns that with "redundant/correlated factors
... the redundant/correlated factors are also included in computing the
relative importance of factors" — the classic weakness of gain-based
importance (what :meth:`RegressionTree.importance` reports).
Permutation importance measures each feature's *predictive* necessity
instead: shuffle one column, measure how much the fit degrades.  A
factor whose signal is fully duplicated by a correlated twin scores near
zero, because the tree can route around it.
"""

from __future__ import annotations

import numpy as np

from ...errors import DataError, FitError
from .tree import RegressionTree


def permutation_importance(
    tree: RegressionTree,
    matrix: np.ndarray,
    y: np.ndarray,
    n_repeats: int = 5,
    rng: np.random.Generator | None = None,
) -> dict[str, float]:
    """Mean SSE increase when each feature column is shuffled.

    Args:
        tree: a fitted tree.
        matrix: evaluation feature matrix (training or held-out).
        y: evaluation responses.
        n_repeats: shuffles per feature (averaged).
        rng: randomness source (seeded default).

    Returns:
        feature name → mean SSE increase relative to the baseline SSE,
        sorted descending.  Values near zero mean the feature is
        unnecessary *given the others*.
    """
    if tree.root is None or tree.schema is None:
        raise FitError("tree is not fitted")
    matrix = np.asarray(matrix, dtype=float)
    y = np.asarray(y, dtype=float)
    if matrix.shape[0] != len(y):
        raise DataError("matrix and y must be aligned")
    if matrix.shape[1] != len(tree.schema):
        raise DataError("matrix width must match the tree's schema")
    if n_repeats < 1:
        raise DataError(f"n_repeats must be >= 1, got {n_repeats}")
    rng = rng or np.random.default_rng(0)

    baseline_sse = float(((y - tree.predict(matrix)) ** 2).sum())
    reference = max(baseline_sse, 1e-12)

    importance: dict[str, float] = {}
    for index, feature in enumerate(tree.schema.names):
        increases = []
        for _ in range(n_repeats):
            shuffled = matrix.copy()
            shuffled[:, index] = rng.permutation(shuffled[:, index])
            sse = float(((y - tree.predict(shuffled)) ** 2).sum())
            increases.append((sse - baseline_sse) / reference)
        importance[feature] = float(np.mean(increases))
    return dict(sorted(importance.items(), key=lambda kv: -kv[1]))
