"""Split-quality criteria for CART.

The paper's trees are regression trees over failure metrics (λ, μ), so
the primary criterion is within-node variance (sum of squared errors);
Gini impurity is provided for classification uses ("'Best' is
characterized using metrics such as Gini Impurity", §V-C).

All criteria support sample weights so analyses can weight racks by
capacity or rack-days by exposure.
"""

from __future__ import annotations

import numpy as np

from ...errors import DataError


def node_sse(y: np.ndarray, weights: np.ndarray | None = None) -> float:
    """Weighted sum of squared errors around the (weighted) mean."""
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        raise DataError("cannot compute SSE of an empty node")
    if weights is None:
        mean = y.mean()
        return float(((y - mean) ** 2).sum())
    weights = np.asarray(weights, dtype=float)
    if weights.shape != y.shape:
        raise DataError("weights must align with y")
    total = weights.sum()
    if total <= 0:
        raise DataError("weights must sum to a positive number")
    mean = float((weights * y).sum() / total)
    return float((weights * (y - mean) ** 2).sum())


def node_mean(y: np.ndarray, weights: np.ndarray | None = None) -> float:
    """Weighted mean of a node's response."""
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        raise DataError("cannot compute the mean of an empty node")
    if weights is None:
        return float(y.mean())
    weights = np.asarray(weights, dtype=float)
    total = weights.sum()
    if total <= 0:
        raise DataError("weights must sum to a positive number")
    return float((weights * y).sum() / total)


def gini_impurity(labels: np.ndarray, weights: np.ndarray | None = None) -> float:
    """Weighted Gini impurity of an integer-label sample."""
    labels = np.asarray(labels)
    if labels.size == 0:
        raise DataError("cannot compute Gini of an empty node")
    if weights is None:
        weights = np.ones(labels.shape)
    weights = np.asarray(weights, dtype=float)
    total = weights.sum()
    if total <= 0:
        raise DataError("weights must sum to a positive number")
    impurity = 1.0
    for label in np.unique(labels):
        p = float(weights[labels == label].sum() / total)
        impurity -= p * p
    return impurity


def sse_split_scan(
    y_sorted: np.ndarray,
    weights_sorted: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """SSE of (left, right) partitions for every prefix split point.

    Args:
        y_sorted: responses ordered by the candidate split variable.
        weights_sorted: aligned weights.

    Returns:
        (left_sse, right_sse), each of length ``n - 1``; entry ``i``
        corresponds to putting rows ``0..i`` on the left.

    Uses the identity ``SSE = Σ w y² − (Σ w y)² / Σ w`` with prefix
    sums, making the scan O(n) per feature.
    """
    y = np.asarray(y_sorted, dtype=float)
    w = np.asarray(weights_sorted, dtype=float)
    n = y.size
    if n < 2:
        raise DataError("need at least 2 rows to scan splits")
    if w.shape != y.shape:
        raise DataError("weights must align with y")

    wy = w * y
    wy2 = w * y * y
    cw = np.cumsum(w)
    cwy = np.cumsum(wy)
    cwy2 = np.cumsum(wy2)

    total_w, total_wy, total_wy2 = cw[-1], cwy[-1], cwy2[-1]
    left_w = cw[:-1]
    left_wy = cwy[:-1]
    left_wy2 = cwy2[:-1]
    right_w = total_w - left_w
    right_wy = total_wy - left_wy
    right_wy2 = total_wy2 - left_wy2

    with np.errstate(divide="ignore", invalid="ignore"):
        left_sse = left_wy2 - np.where(left_w > 0, left_wy**2 / left_w, 0.0)
        right_sse = right_wy2 - np.where(right_w > 0, right_wy**2 / right_w, 0.0)
    # Numerical noise can push tiny SSEs slightly negative.
    return np.maximum(left_sse, 0.0), np.maximum(right_sse, 0.0)
