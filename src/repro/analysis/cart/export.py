"""Textual rendering of fitted trees (rpart-style print)."""

from __future__ import annotations

from ...errors import FitError
from ...telemetry.schema import Schema
from .tree import Node, RegressionTree


def render_tree(tree: RegressionTree, max_depth: int | None = None) -> str:
    """Indented text rendering of a fitted tree.

    Each line shows the branch condition taken to reach the node, the
    node's row count and its mean response; leaves are starred, as in
    rpart's ``print.rpart``.
    """
    if tree.root is None or tree.schema is None:
        raise FitError("cannot render an unfitted tree")
    lines: list[str] = []
    _render_node(tree.root, tree.schema, "root", 0, max_depth, lines)
    return "\n".join(lines)


def _render_node(
    node: Node,
    schema: Schema,
    condition: str,
    depth: int,
    max_depth: int | None,
    lines: list[str],
) -> None:
    marker = " *" if node.is_leaf else ""
    lines.append(
        f"{'  ' * depth}{condition}  (n={node.n}, mean={node.prediction:.4g})"
        f"{marker}"
    )
    if node.is_leaf or (max_depth is not None and depth >= max_depth):
        return
    assert node.split is not None and node.left is not None and node.right is not None
    spec = schema.get(node.split.feature_name) if node.split.feature_name in schema else None
    left_condition = node.split.describe(spec)
    right_condition = f"not [{left_condition}]"
    _render_node(node.left, schema, left_condition, depth + 1, max_depth, lines)
    _render_node(node.right, schema, right_condition, depth + 1, max_depth, lines)


def describe_path(tree: RegressionTree, leaf_id: int) -> str:
    """Human-readable conjunction of conditions leading to a leaf."""
    if tree.schema is None:
        raise FitError("cannot describe paths of an unfitted tree")
    parts: list[str] = []
    for split, went_left in tree.decision_path(leaf_id):
        spec = tree.schema.get(split.feature_name) if split.feature_name in tree.schema else None
        condition = split.describe(spec)
        parts.append(condition if went_left else f"not [{condition}]")
    return " and ".join(parts) if parts else "root"
