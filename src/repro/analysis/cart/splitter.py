"""Best-split search over mixed-type features.

CART's split language differs by feature kind (Table III's C/N/O):

* **continuous / ordinal** — threshold splits ``x <= t``; candidates lie
  between consecutive distinct values in sort order.
* **nominal** — category-subset splits ``x ∈ S``.  Searching all 2^k
  subsets is exponential, but for a one-dimensional response the optimal
  binary partition orders categories by their mean response and scans
  that ordering (Fisher 1958; Breiman et al. 1984, thm 4.5) — O(k log k)
  instead of O(2^k).

All scans are weighted-SSE based (regression CART, as the paper uses
for λ/μ).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import DataError
from ...telemetry.schema import FeatureKind, FeatureSpec
from .criteria import node_sse, sse_split_scan


@dataclass(frozen=True)
class Split:
    """A fitted binary split.

    Attributes:
        feature_index: column index into the fitted feature matrix.
        feature_name: column name (for rendering and PD traversal).
        kind: the feature's kind, which fixes the split semantics.
        threshold: for continuous/ordinal — rows go left iff
            ``x <= threshold``.
        left_categories: for nominal — rows go left iff their code is in
            this frozenset.
        gain: SSE reduction achieved by the split.
        n_left / n_right: row counts sent each way at fit time.
        nan_goes_left: learned default direction for missing values —
            rows with NaN in this feature follow it (chosen at fit time
            as the direction that reduced SSE more, as in gradient-
            boosting trees).
    """

    feature_index: int
    feature_name: str
    kind: FeatureKind
    gain: float
    n_left: int
    n_right: int
    threshold: float | None = None
    left_categories: frozenset[int] | None = None
    nan_goes_left: bool = True

    def __post_init__(self) -> None:
        if self.kind == FeatureKind.NOMINAL:
            if self.left_categories is None:
                raise DataError(f"nominal split on {self.feature_name} needs categories")
        elif self.threshold is None:
            raise DataError(f"threshold split on {self.feature_name} needs a threshold")

    def goes_left(self, values: np.ndarray) -> np.ndarray:
        """Boolean routing mask for a column of feature values.

        Missing values (NaN) follow the learned default direction.
        """
        values = np.asarray(values, dtype=float)
        missing = np.isnan(values)
        if self.kind == FeatureKind.NOMINAL:
            assert self.left_categories is not None
            filled = np.where(missing, 0.0, values)
            routed = np.isin(filled.astype(np.int64), list(self.left_categories))
        else:
            assert self.threshold is not None
            with np.errstate(invalid="ignore"):
                routed = values <= self.threshold
        if missing.any():
            routed = np.where(missing, self.nan_goes_left, routed)
        return routed.astype(bool)

    def describe(self, spec: FeatureSpec | None = None) -> str:
        """Human-readable left-branch condition."""
        if self.kind == FeatureKind.NOMINAL:
            assert self.left_categories is not None
            codes = sorted(self.left_categories)
            if spec is not None and spec.categories is not None:
                labels = [spec.decode(code) for code in codes]
            else:
                labels = [str(code) for code in codes]
            return f"{self.feature_name} in {{{', '.join(labels)}}}"
        assert self.threshold is not None
        if spec is not None and spec.categories is not None:
            # Ordinal: render the threshold as its category label.
            code = int(np.floor(self.threshold))
            code = max(0, min(code, len(spec.categories) - 1))
            return f"{self.feature_name} <= {spec.decode(code)}"
        return f"{self.feature_name} <= {self.threshold:.4g}"


def _scan_ordered(
    order_values: np.ndarray,
    y: np.ndarray,
    weights: np.ndarray,
    min_bucket: int,
) -> tuple[float, float, int] | None:
    """Best threshold over pre-encoded ordered values.

    Returns (gain_sse_drop, threshold, split_position) or None when no
    legal split exists.  ``threshold`` is the midpoint between the two
    straddling distinct values.
    """
    order = np.argsort(order_values, kind="stable")
    x_sorted = order_values[order]
    y_sorted = y[order]
    w_sorted = weights[order]
    n = len(y_sorted)
    if n < 2 * min_bucket:
        return None

    left_sse, right_sse = sse_split_scan(y_sorted, w_sorted)
    split_sse = left_sse + right_sse

    positions = np.arange(1, n)  # split after index position-1
    valid = (positions >= min_bucket) & (n - positions >= min_bucket)
    # A threshold must separate distinct values.
    valid &= x_sorted[1:] != x_sorted[:-1]
    if not valid.any():
        return None

    candidate_sse = np.where(valid, split_sse, np.inf)
    best = int(np.argmin(candidate_sse))
    parent_sse = node_sse(y_sorted, w_sorted)
    gain = parent_sse - float(candidate_sse[best])
    if not np.isfinite(gain) or gain <= 0:
        return None
    threshold = float((x_sorted[best] + x_sorted[best + 1]) / 2.0)
    return gain, threshold, best + 1


def best_split_for_feature(
    values: np.ndarray,
    y: np.ndarray,
    weights: np.ndarray,
    spec: FeatureSpec,
    feature_index: int,
    min_bucket: int,
) -> Split | None:
    """Best SSE-reducing split on one feature, or None.

    Args:
        values: the feature column (codes for categorical features).
        y: response.
        weights: sample weights.
        spec: the feature's schema entry (drives split semantics).
        feature_index: position of this column in the feature matrix.
        min_bucket: minimum rows per child (rpart's ``minbucket``).
    """
    values = np.asarray(values, dtype=float)
    y = np.asarray(y, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if not (len(values) == len(y) == len(weights)):
        raise DataError("values/y/weights must be aligned")
    if min_bucket < 1:
        raise DataError(f"min_bucket must be >= 1, got {min_bucket}")

    # Missing values: search the split on the observed rows, then learn
    # the default direction that reduces SSE more (see Split docstring).
    missing = np.isnan(values)
    if missing.any():
        observed = ~missing
        if observed.sum() < 2 * min_bucket:
            return None
        split = best_split_for_feature(
            values[observed], y[observed], weights[observed],
            spec, feature_index, min_bucket,
        )
        if split is None:
            return None
        return _with_nan_direction(split, values, y, weights)

    if spec.kind in (FeatureKind.CONTINUOUS, FeatureKind.ORDINAL):
        scanned = _scan_ordered(values, y, weights, min_bucket)
        if scanned is None:
            return None
        gain, threshold, position = scanned
        return Split(
            feature_index=feature_index,
            feature_name=spec.name,
            kind=spec.kind,
            gain=gain,
            threshold=threshold,
            n_left=position,
            n_right=len(y) - position,
        )

    # Nominal: order categories by weighted mean response, then treat the
    # rank as an ordered variable (optimal for binary SSE partitions).
    codes = values.astype(np.int64)
    unique = np.unique(codes)
    if len(unique) < 2:
        return None
    means = np.empty(len(unique))
    for i, code in enumerate(unique):
        mask = codes == code
        w = weights[mask]
        means[i] = (w * y[mask]).sum() / w.sum()
    category_rank = {int(code): float(rank)
                     for rank, code in zip(np.argsort(np.argsort(means)), unique)}
    ranked = np.array([category_rank[int(code)] for code in codes])

    scanned = _scan_ordered(ranked, y, weights, min_bucket)
    if scanned is None:
        return None
    gain, threshold, position = scanned
    left_codes = frozenset(
        int(code) for code in unique if category_rank[int(code)] <= threshold
    )
    return Split(
        feature_index=feature_index,
        feature_name=spec.name,
        kind=spec.kind,
        gain=gain,
        left_categories=left_codes,
        n_left=position,
        n_right=len(y) - position,
    )


def _with_nan_direction(
    split: Split,
    values: np.ndarray,
    y: np.ndarray,
    weights: np.ndarray,
) -> Split:
    """Pick the NaN default direction and restate the split's full-node gain."""
    from dataclasses import replace

    parent = node_sse(y, weights)
    best: Split | None = None
    best_total = np.inf
    for nan_left in (True, False):
        candidate = replace(split, nan_goes_left=nan_left)
        go_left = candidate.goes_left(values)
        if go_left.all() or not go_left.any():
            continue
        total = (node_sse(y[go_left], weights[go_left])
                 + node_sse(y[~go_left], weights[~go_left]))
        if total < best_total:
            best_total = total
            best = replace(
                candidate,
                gain=parent - total,
                n_left=int(go_left.sum()),
                n_right=int((~go_left).sum()),
            )
    if best is None or best.gain <= 0:
        return replace(split, gain=0.0)
    return best


def best_split(
    matrix: np.ndarray,
    y: np.ndarray,
    weights: np.ndarray,
    specs: list[FeatureSpec],
    min_bucket: int,
) -> Split | None:
    """Best split across all features (the CART greedy step)."""
    if matrix.ndim != 2:
        raise DataError(f"feature matrix must be 2-D, got shape {matrix.shape}")
    if matrix.shape[1] != len(specs):
        raise DataError(
            f"{matrix.shape[1]} columns but {len(specs)} feature specs"
        )
    best: Split | None = None
    for index, spec in enumerate(specs):
        candidate = best_split_for_feature(
            matrix[:, index], y, weights, spec, index, min_bucket
        )
        if candidate is None:
            continue
        if best is None or candidate.gain > best.gain:
            best = candidate
    return best
