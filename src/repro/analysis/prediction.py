"""Failure prediction — the paper's declared future work (§VII).

§V-C sketches why plain CART is not enough for prediction: "failed
devices are a minority when compared to non-failed devices over the
entire observation period, one may need pre-processing to balance these
two sets".  This module implements exactly that extension:

1. :func:`build_prediction_dataset` turns a simulation run into a
   supervised problem — for each rack-day, *will this rack file a
   hardware RMA within the next horizon?* — with deployment-time
   features (Table III) plus short operational history (trailing
   failure counts, the strongest practical predictor in the
   disk-failure-prediction literature the paper cites [6, 25]).
2. :class:`FailurePredictor` fits the library's own CART on the binary
   target with **balanced sample weights** (the re-balancing
   pre-processing) and scores rack-days by leaf positive rates.
3. :func:`roc_auc` / :meth:`FailurePredictor.evaluate` quantify the
   ranking quality with a time-ordered train/test split (no leakage
   from the future into training).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError, FitError
from ..failures.engine import SimulationResult
from ..failures.tickets import FaultType, HARDWARE_FAULTS
from ..telemetry.aggregate import build_rack_day_table, lambda_matrix
from ..telemetry.schema import FeatureKind, FeatureSpec
from ..telemetry.table import Table
from .cart.tree import RegressionTree, TreeParams

PREDICTION_FEATURES = (
    "sku", "workload", "dc", "region", "age_months", "rated_power_kw",
    "temp_f", "rh", "trailing_failures", "trailing_batchiness",
)


def _trailing_sum(matrix: np.ndarray, window: int) -> np.ndarray:
    """Per-rack trailing sum over the previous ``window`` days.

    Entry (r, d) sums days d-window .. d-1 (never the current day —
    that would leak the label into the features).
    """
    if window < 1:
        raise DataError(f"window must be >= 1, got {window}")
    cumulative = np.cumsum(matrix, axis=1)
    padded = np.concatenate(
        [np.zeros((matrix.shape[0], 1)), cumulative], axis=1
    )
    upper = padded[:, :-1]                     # sum of days 0..d-1
    lower = np.zeros_like(upper)
    if matrix.shape[1] > window:
        lower[:, window:] = padded[:, :-window - 1][:, : matrix.shape[1] - window]
    return upper - lower


def _future_any(matrix: np.ndarray, horizon: int) -> np.ndarray:
    """Entry (r, d) is 1 when days d+1 .. d+horizon contain any event."""
    if horizon < 1:
        raise DataError(f"horizon must be >= 1, got {horizon}")
    cumulative = np.cumsum(matrix, axis=1)
    padded = np.concatenate(
        [np.zeros((matrix.shape[0], 1)), cumulative], axis=1
    )
    n_days = matrix.shape[1]
    future_end = np.minimum(np.arange(n_days) + 1 + horizon, n_days)
    future = padded[:, future_end] - padded[:, np.arange(n_days) + 1]
    return (future > 0).astype(float)


def build_prediction_dataset(
    result: SimulationResult,
    horizon_days: int = 3,
    trailing_window: int = 14,
    faults: list[FaultType] | None = None,
) -> Table:
    """Supervised dataset: features per rack-day, binary future label.

    Columns: every Table III feature, two trailing-history features
    (``trailing_failures``: hardware RMAs in the previous window;
    ``trailing_batchiness``: batch-deduped vs raw ticket gap, a proxy
    for correlated-failure exposure), and the label ``will_fail``.

    Rack-days within ``horizon_days`` of the window end are dropped
    (their label would be censored).
    """
    faults = faults if faults is not None else list(HARDWARE_FAULTS)
    table = build_rack_day_table(result, faults=faults)

    hardware = lambda_matrix(result, faults, dedupe_batches=False)
    deduped = lambda_matrix(result, faults, dedupe_batches=True)
    trailing = _trailing_sum(hardware, trailing_window)
    batchiness = _trailing_sum(hardware - deduped, trailing_window)
    label = _future_any(deduped, horizon_days)

    racks = table.column("rack_index").astype(np.int64)
    days = table.column("day_index").astype(np.int64)

    table = table.with_column(
        "trailing_failures", trailing[racks, days],
        spec=FeatureSpec("trailing_failures", FeatureKind.CONTINUOUS),
    ).with_column(
        "trailing_batchiness", batchiness[racks, days],
        spec=FeatureSpec("trailing_batchiness", FeatureKind.CONTINUOUS),
    ).with_column("will_fail", label[racks, days])

    observable = days < result.n_days - horizon_days
    dataset = table.filter(np.asarray(observable))
    if dataset.n_rows == 0:
        raise DataError("no observable rack-days; run too short for the horizon")
    return dataset


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (Mann-Whitney U form, ties averaged)."""
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=float)
    if scores.shape != labels.shape:
        raise DataError("scores and labels must be aligned")
    positives = labels > 0.5
    n_pos = int(positives.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise DataError("AUC needs both classes present")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores))
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ranks over tied scores.
    sorted_scores = scores[order]
    boundaries = np.flatnonzero(np.diff(sorted_scores) != 0)
    starts = np.concatenate(([0], boundaries + 1))
    ends = np.concatenate((boundaries + 1, [len(scores)]))
    for start, end in zip(starts.tolist(), ends.tolist()):
        if end - start > 1:
            ranks[order[start:end]] = (start + 1 + end) / 2.0
    rank_sum = ranks[positives].sum()
    u_statistic = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


@dataclass(frozen=True)
class PredictionMetrics:
    """Held-out evaluation of a failure predictor.

    Attributes:
        auc: ranking quality (0.5 = chance).
        precision_at_decile: precision among the top-10%-scored rack-days.
        recall_at_decile: share of failures caught in that top decile.
        base_rate: positive share in the test period.
        n_test: test rows.
    """

    auc: float
    precision_at_decile: float
    recall_at_decile: float
    base_rate: float
    n_test: int


class FailurePredictor:
    """CART-based will-it-fail predictor with class re-balancing.

    Args:
        params: tree growth parameters.
        rebalance: weight the minority (failure) class up so both
            classes carry equal total weight — §V-C's pre-processing.
    """

    def __init__(self, params: TreeParams | None = None, rebalance: bool = True):
        self.params = params or TreeParams(
            max_depth=7, min_split=400, min_bucket=150, cp=2e-4,
        )
        self.rebalance = rebalance
        self.tree: RegressionTree | None = None
        self._features: list[str] = list(PREDICTION_FEATURES)

    def fit(self, dataset: Table) -> "FailurePredictor":
        """Fit on a prediction dataset (see :func:`build_prediction_dataset`)."""
        if "will_fail" not in dataset:
            raise DataError("dataset lacks the 'will_fail' label column")
        matrix, schema = dataset.feature_matrix(self._features)
        labels = dataset.column("will_fail").astype(float)
        if self.rebalance:
            positive = labels > 0.5
            n_pos = int(positive.sum())
            n_neg = len(labels) - n_pos
            if n_pos == 0 or n_neg == 0:
                raise FitError("cannot rebalance: one class is empty")
            weights = np.where(positive, 0.5 / n_pos, 0.5 / n_neg) * len(labels)
        else:
            weights = np.ones(len(labels))
        self.tree = RegressionTree(self.params).fit(matrix, labels, schema, weights)
        return self

    def score(self, dataset: Table) -> np.ndarray:
        """Failure propensity score per row (leaf positive rate)."""
        if self.tree is None:
            raise FitError("predictor is not fitted")
        matrix, _ = dataset.feature_matrix(self._features)
        return self.tree.predict(matrix)

    def evaluate(self, dataset: Table) -> PredictionMetrics:
        """Score a held-out dataset and compute ranking metrics."""
        scores = self.score(dataset)
        labels = dataset.column("will_fail").astype(float)
        auc = roc_auc(scores, labels)
        k = max(1, len(scores) // 10)
        top = np.argsort(scores)[::-1][:k]
        hits = float(labels[top].sum())
        total_pos = float(labels.sum())
        return PredictionMetrics(
            auc=auc,
            precision_at_decile=hits / k,
            recall_at_decile=hits / total_pos if total_pos else 0.0,
            base_rate=float(labels.mean()),
            n_test=len(scores),
        )


def time_split(
    dataset: Table,
    train_fraction: float = 0.7,
    embargo_days: int = 0,
) -> tuple[Table, Table]:
    """Chronological train/test split on the ``day_index`` column.

    ``embargo_days`` drops the last days *before* the cutoff from the
    training split.  When rows carry labels computed over a forward
    window (e.g. "fails within the next h days"), a train row just
    before the cutoff has a label that reads events from the evaluation
    period — an embargo of the label horizon removes that overlap.
    """
    if not 0.0 < train_fraction < 1.0:
        raise DataError(f"train_fraction must be in (0, 1), got {train_fraction}")
    if embargo_days < 0:
        raise DataError(f"embargo_days must be >= 0, got {embargo_days}")
    days = dataset.column("day_index").astype(np.int64)
    cutoff = np.quantile(days, train_fraction)
    train = dataset.filter(days <= cutoff - embargo_days)
    test = dataset.filter(days > cutoff)
    if train.n_rows == 0 or test.n_rows == 0:
        raise DataError("degenerate time split; adjust train_fraction")
    return train, test
