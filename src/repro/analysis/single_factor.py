"""Single-factor (SF) baselines.

§V-A: "We define a single factor (SF) approach to failure analysis as
one which uses only the characteristics of failure metrics and their
relationship with a decision variable, without considering the numerous
factors that impact failure occurrences."

These baselines are what the paper shows to be insufficient; our
benchmarks run them side-by-side with the MF framework to reproduce the
SF-vs-MF contrasts (Figs 10-18).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from ..telemetry.stats import Ecdf, ecdf
from ..telemetry.table import Table


@dataclass(frozen=True)
class FactorLevelStats:
    """Aggregate failure statistics for one level of a factor.

    Attributes:
        label: the factor level (e.g. ``"S2"`` or ``"W6"``).
        mean: mean of the metric across observations at this level.
        sd: standard deviation (the error bars of Figs 2-9, 14).
        peak: high quantile of the metric (``peak_quantile`` below) —
            the paper's μmax-style peak failure rate.
        count: number of observations.
    """

    label: str
    mean: float
    sd: float
    peak: float
    count: int


class SingleFactorModel:
    """Aggregate a metric by one factor, ignoring everything else.

    Args:
        table: observation table (e.g. rack-days).
        metric: response column name.
        peak_quantile: quantile used as the "peak" statistic.  The
            paper's peak failure rate is the worst observed window; a
            slightly sub-1.0 default makes the statistic robust to the
            single most extreme simulated event while preserving the
            "peak" semantics.
    """

    def __init__(self, table: Table, metric: str, peak_quantile: float = 0.999):
        if metric not in table:
            raise DataError(f"metric column {metric!r} missing from table")
        if not 0.0 < peak_quantile <= 1.0:
            raise DataError(f"peak_quantile must be in (0, 1], got {peak_quantile}")
        self.table = table
        self.metric = metric
        self.peak_quantile = peak_quantile

    def by_factor(self, factor: str) -> dict[str, FactorLevelStats]:
        """Per-level statistics of the metric for one factor."""
        values = self.table.column(self.metric).astype(float)
        stats: dict[str, FactorLevelStats] = {}
        for key, indices in self.table.group_indices([factor]):
            label = key[0] if isinstance(key[0], str) else f"{key[0]:g}"
            group = values[indices]
            stats[label] = FactorLevelStats(
                label=label,
                mean=float(group.mean()),
                sd=float(group.std()),
                peak=float(np.quantile(group, self.peak_quantile)),
                count=len(group),
            )
        if not stats:
            raise DataError(f"factor {factor!r} produced no groups")
        return stats

    def cdf_for_level(self, factor: str, label: str) -> Ecdf:
        """Empirical CDF of the metric at one factor level.

        This is the pooled distribution SF provisioning reads its
        uniform spare fraction from (Fig 1's solid curve).
        """
        decoded = self.table.decoded(factor)
        mask = decoded == label
        if not mask.any():
            raise DataError(f"no rows with {factor} == {label!r}")
        return ecdf(self.table.column(self.metric).astype(float)[np.asarray(mask)])

    def pooled_cdf(self) -> Ecdf:
        """Empirical CDF of the metric over all observations."""
        return ecdf(self.table.column(self.metric).astype(float))

    def ranking(self, factor: str, by: str = "mean") -> list[FactorLevelStats]:
        """Factor levels sorted ascending by ``mean``/``peak``/``sd``.

        The SF vendor-selection procedure of §VI-Q2: "histogram the
        number of failures for each SKU and use that to base vendor
        selection".
        """
        if by not in ("mean", "peak", "sd"):
            raise DataError(f"unknown ranking statistic {by!r}")
        stats = self.by_factor(factor)
        return sorted(stats.values(), key=lambda level: getattr(level, by))
