"""The multi-factor (MF) analysis facade.

Ties the pieces together the way §V-C describes:

* **Cat. 1** (grouping / aggregate behaviour): fit a CART on all listed
  factors, read rack clusters off the leaves and factor rankings off the
  variable importances.
* **Cat. 2** (influence of a decision variable): fit a CART on the
  decision variable *plus* the ``N(·)`` factors, then compute the
  partial dependence of the metric on the decision variable — the other
  factors' influence is integrated out over their joint distribution.

Usage::

    model = MultiFactorModel.from_formula(
        "failures ~ sku, N(dc), N(workload), N(age_months)",
        table,
    )
    pd = model.normalized_effect("sku")     # Fig 15's bars
    clusters = model.clusters()             # Fig 11's groups
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError, FitError
from ..telemetry.table import Table
from .cart.export import render_tree
from .cart.prune import cross_validated_alpha, prune
from .cart.tree import RegressionTree, TreeParams
from .clustering import Cluster, clusters_from_tree
from .formula import Formula, parse_formula
from .partial_dependence import PartialDependence, partial_dependence, partial_dependence_2d


@dataclass(frozen=True)
class AdjustedLevelStats:
    """Stratum-standardized statistics for one level of the studied factor.

    Attributes:
        label: factor level (e.g. ``"S2"``).
        mean: directly standardized mean rate — the level's rate in each
            stratum, averaged with common stratum weights.
        sd: standardized within-stratum standard deviation (the reduced
            error bars of Fig 15).
        peak: standardized high-quantile rate (μmax analogue).
        n: observations of this level across contributing strata.
        n_strata: strata in which the level had enough support.
    """

    label: str
    mean: float
    sd: float
    peak: float
    n: int
    n_strata: int


class MultiFactorModel:
    """A fitted MF model: CART over a formula's features.

    Build via :meth:`from_formula` (preferred) or :meth:`fit`.
    """

    def __init__(
        self,
        formula: Formula,
        tree: RegressionTree,
        matrix: np.ndarray,
        table: Table,
    ):
        self.formula = formula
        self.tree = tree
        self.matrix = matrix
        self.table = table

    # -- construction ----------------------------------------------------

    @staticmethod
    def from_formula(
        formula: str | Formula,
        table: Table,
        params: TreeParams | None = None,
        sample_weight: np.ndarray | None = None,
        prune_by_cv: bool = False,
        cv_folds: int = 5,
    ) -> "MultiFactorModel":
        """Fit an MF model from a formula string and a table.

        Args:
            formula: ``"metric ~ x1, N(x2), ..."`` or a parsed Formula.
            table: observations; must contain the metric and features.
            params: tree growth parameters.
            sample_weight: optional per-row weights (e.g. rack capacity).
            prune_by_cv: run k-fold cost-complexity pruning after growth.
            cv_folds: folds for ``prune_by_cv``.
        """
        if isinstance(formula, str):
            formula = parse_formula(formula)
        if formula.metric not in table:
            raise DataError(f"metric {formula.metric!r} missing from table")
        for name in formula.feature_names:
            if name not in table:
                raise DataError(f"feature {name!r} missing from table")

        matrix, schema = table.feature_matrix(formula.feature_names)
        y = table.column(formula.metric).astype(float)
        params = params or TreeParams()
        tree = RegressionTree(params).fit(matrix, y, schema, sample_weight)
        if prune_by_cv and tree.n_leaves > 1:
            alpha = cross_validated_alpha(
                matrix, y, schema, params, n_folds=cv_folds,
                sample_weight=sample_weight,
            )
            tree = prune(tree, alpha)
        return MultiFactorModel(formula=formula, tree=tree, matrix=matrix, table=table)

    # -- Cat. 2: normalized influence --------------------------------------

    def normalized_effect(
        self,
        feature: str | None = None,
        grid: np.ndarray | None = None,
    ) -> PartialDependence:
        """Partial dependence of the metric on the studied feature.

        With a Cat. 2 formula the feature defaults to the (single)
        un-normalized term.
        """
        if feature is None:
            studied = self.formula.studied
            if len(studied) != 1:
                raise FitError(
                    f"formula {self.formula} studies {len(studied)} features; "
                    "name one explicitly"
                )
            feature = studied[0]
        return partial_dependence(
            self.tree, feature, grid=grid, training_matrix=self.matrix
        )

    def normalized_effect_2d(
        self,
        feature_x: str,
        feature_y: str,
        grid_x: np.ndarray,
        grid_y: np.ndarray,
    ) -> np.ndarray:
        """Joint partial dependence on two features (T × RH surfaces)."""
        return partial_dependence_2d(self.tree, feature_x, feature_y, grid_x, grid_y)

    def effect_ratio(self, feature: str, label_a: str, label_b: str) -> float:
        """PD(label_a) / PD(label_b) — e.g. the MF S2/S4 ratio of Fig 15."""
        pd = self.normalized_effect(feature)
        values = pd.as_dict()
        for label in (label_a, label_b):
            if label not in values:
                raise DataError(f"{label!r} not a level of {feature!r}")
        denominator = values[label_b]
        if denominator == 0:
            raise DataError(f"PD of {label_b!r} is zero; ratio undefined")
        return values[label_a] / denominator

    def stratified_effect(
        self,
        feature: str | None = None,
        peak_quantile: float = 0.999,
        stratifier_params: TreeParams | None = None,
        min_cell: int = 15,
    ) -> dict[str, AdjustedLevelStats]:
        """Stratum-standardized influence of the studied factor.

        This is the paper's literal reading of ``Metric ~ X1, N(X2..Xn)``:
        "a path from the root to a leaf in the tree where X1 is the leaf
        node and N(X2), ..., N(Xn) represents the fixed values of other
        factors observed at this node" (§V-C).  Concretely:

        1. fit a *stratifier* tree on the ``N(·)`` features only — each
           leaf is a stratum holding the other factors (approximately)
           fixed;
        2. within each stratum, compute the metric's mean/sd/peak per
           level of X1;
        3. directly standardize: average each level's per-stratum rates
           with common weights (the stratum sizes), so every level is
           evaluated against the *same* background mix.

        Compared to pure partial dependence (:meth:`normalized_effect`),
        this estimator is markedly more robust when X1 is strongly
        confounded with the normalized factors — the situation the Q2
        study plants (S2 racks are young, hot-placed, and W2-loaded).

        Args:
            feature: studied factor; defaults to the formula's single
                un-normalized term.  Must be categorical.
            peak_quantile: quantile reported as the peak rate.
            stratifier_params: growth parameters for the stratifier tree
                (default: a deliberately coarse tree, preserving overlap
                between X1 levels inside strata).
            min_cell: minimum rows a level needs inside a stratum for
                that stratum to contribute to the level's estimate.
        """
        if feature is None:
            studied = self.formula.studied
            if len(studied) != 1:
                raise FitError(
                    f"formula {self.formula} studies {len(studied)} features; "
                    "name one explicitly"
                )
            feature = studied[0]
        spec = self.table.spec(feature)
        if not spec.is_categorical:
            raise DataError(
                f"stratified_effect needs a categorical factor, {feature!r} is not"
            )
        normalized = self.formula.normalized
        if not normalized:
            raise FitError(
                f"formula {self.formula} has no N(...) terms to stratify on"
            )
        if min_cell < 1:
            raise DataError(f"min_cell must be >= 1, got {min_cell}")

        stratifier_params = stratifier_params or TreeParams(
            max_depth=8, min_split=max(4 * min_cell, 40),
            min_bucket=max(2 * min_cell, 20), cp=1e-4,
        )
        matrix_n, schema_n = self.table.feature_matrix(normalized)
        y = self.table.column(self.formula.metric).astype(float)
        stratifier = RegressionTree(stratifier_params).fit(matrix_n, y, schema_n)
        strata = stratifier.apply(matrix_n)
        codes = self.table.column(feature).astype(np.int64)

        assert spec.categories is not None
        levels = range(len(spec.categories))
        accumulators = {
            level: {"w": 0.0, "mean": 0.0, "sd": 0.0, "peak": 0.0,
                    "n": 0, "strata": 0}
            for level in levels
        }
        for stratum in np.unique(strata):
            in_stratum = strata == stratum
            weight = float(in_stratum.sum())
            for level in levels:
                cell = in_stratum & (codes == level)
                count = int(cell.sum())
                if count < min_cell:
                    continue
                cell_y = y[cell]
                acc = accumulators[level]
                acc["w"] += weight
                acc["mean"] += weight * float(cell_y.mean())
                acc["sd"] += weight * float(cell_y.std())
                acc["peak"] += weight * float(np.quantile(cell_y, peak_quantile))
                acc["n"] += count
                acc["strata"] += 1

        result: dict[str, AdjustedLevelStats] = {}
        for level in levels:
            acc = accumulators[level]
            if acc["w"] <= 0:
                continue
            result[spec.decode(level)] = AdjustedLevelStats(
                label=spec.decode(level),
                mean=acc["mean"] / acc["w"],
                sd=acc["sd"] / acc["w"],
                peak=acc["peak"] / acc["w"],
                n=acc["n"],
                n_strata=acc["strata"],
            )
        if not result:
            raise DataError(
                f"no level of {feature!r} had {min_cell}+ rows in any stratum"
            )
        return result

    def _stratify(
        self,
        feature: str,
        stratifier_params: TreeParams,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fit the N(·)-feature stratifier; return (strata, codes, y)."""
        spec = self.table.spec(feature)
        if not spec.is_categorical:
            raise DataError(
                f"stratified estimation needs a categorical factor, "
                f"{feature!r} is not"
            )
        normalized = self.formula.normalized
        if not normalized:
            raise FitError(f"formula {self.formula} has no N(...) terms")
        matrix_n, schema_n = self.table.feature_matrix(normalized)
        y = self.table.column(self.formula.metric).astype(float)
        stratifier = RegressionTree(stratifier_params).fit(matrix_n, y, schema_n)
        strata = stratifier.apply(matrix_n)
        codes = self.table.column(feature).astype(np.int64)
        return strata, codes, y

    @staticmethod
    def default_pairwise_stratifier() -> TreeParams:
        """Coarse stratifier for common-support estimation.

        Deliberately shallow: coarse strata preserve overlap between
        confounded levels, which matters more than within-stratum
        residual variation for the ratio estimators (measured across
        seeds in the Q2 calibration; see docs/calibration.md).
        """
        return TreeParams(max_depth=4, min_split=120, min_bucket=60, cp=2e-3)

    def stratified_ratio(
        self,
        feature: str,
        label_a: str,
        label_b: str,
        stratifier_params: TreeParams | None = None,
        min_cell: int = 30,
    ) -> float:
        """Common-support ratio of the metric between two factor levels.

        Unlike :meth:`stratified_effect`, which standardizes each level
        over whatever strata support it (so two levels living in
        disjoint regimes never have their confounds cancelled), this
        estimator uses only strata where *both* levels have at least
        ``min_cell`` observations and combines the per-stratum rate
        ratios as a weighted geometric mean.  For strongly confounded
        comparisons (the Q2 S2-vs-S4 question) this is the
        lowest-variance of the Cat. 2 estimators.
        """
        spec = self.table.spec(feature)
        stratifier_params = stratifier_params or self.default_pairwise_stratifier()
        strata, codes, y = self._stratify(feature, stratifier_params)
        assert spec.categories is not None
        code_a, code_b = spec.encode(label_a), spec.encode(label_b)

        log_ratio_sum = 0.0
        weight_sum = 0.0
        for stratum in np.unique(strata):
            in_stratum = strata == stratum
            cell_a = in_stratum & (codes == code_a)
            cell_b = in_stratum & (codes == code_b)
            if cell_a.sum() < min_cell or cell_b.sum() < min_cell:
                continue
            rate_a = float(y[cell_a].mean())
            rate_b = float(y[cell_b].mean())
            if rate_a <= 0 or rate_b <= 0:
                continue
            weight = float(min(cell_a.sum(), cell_b.sum()))
            log_ratio_sum += weight * np.log(rate_a / rate_b)
            weight_sum += weight
        if weight_sum <= 0:
            raise DataError(
                f"no stratum supports both {label_a!r} and {label_b!r} "
                f"with {min_cell}+ rows each"
            )
        return float(np.exp(log_ratio_sum / weight_sum))

    def common_support_effect(
        self,
        feature: str,
        labels: tuple[str, ...],
        peak_quantile: float = 0.999,
        stratifier_params: TreeParams | None = None,
        min_cell: int = 30,
    ) -> dict[str, AdjustedLevelStats]:
        """Level statistics standardized over the levels' shared strata.

        The comparison-grade companion to :meth:`stratified_effect`:
        every requested level is evaluated against the *same* stratum
        set (those where all levels have ≥ ``min_cell`` rows) with the
        same weights, so their confounds cancel in ratios.  Used for
        Fig 15's S2-vs-S4 bars.
        """
        if len(labels) < 2:
            raise DataError("common support needs at least two levels")
        spec = self.table.spec(feature)
        stratifier_params = stratifier_params or self.default_pairwise_stratifier()
        strata, codes, y = self._stratify(feature, stratifier_params)
        assert spec.categories is not None
        level_codes = {label: spec.encode(label) for label in labels}

        shared = []
        for stratum in np.unique(strata):
            in_stratum = strata == stratum
            if all((in_stratum & (codes == code)).sum() >= min_cell
                   for code in level_codes.values()):
                shared.append(stratum)
        if not shared:
            raise DataError(
                f"no stratum supports all of {labels} with {min_cell}+ rows"
            )

        output: dict[str, AdjustedLevelStats] = {}
        for label, code in level_codes.items():
            weight_sum = 0.0
            mean_sum = sd_sum = peak_sum = 0.0
            n_total = 0
            for stratum in shared:
                in_stratum = strata == stratum
                cell = in_stratum & (codes == code)
                weight = float(in_stratum.sum())
                cell_y = y[cell]
                weight_sum += weight
                mean_sum += weight * float(cell_y.mean())
                sd_sum += weight * float(cell_y.std())
                peak_sum += weight * float(np.quantile(cell_y, peak_quantile))
                n_total += int(cell.sum())
            output[label] = AdjustedLevelStats(
                label=label,
                mean=mean_sum / weight_sum,
                sd=sd_sum / weight_sum,
                peak=peak_sum / weight_sum,
                n=n_total,
                n_strata=len(shared),
            )
        return output

    # -- Cat. 1: grouping and insight ---------------------------------------

    def clusters(self) -> list[Cluster]:
        """Rack/observation clusters: one per populated tree leaf."""
        return clusters_from_tree(self.tree, self.matrix)

    def importance(self) -> dict[str, float]:
        """Relative factor importance (share of total split gain)."""
        return self.tree.importance()

    def residual_variance(self) -> float:
        """Within-leaf variance of the metric (noise left unexplained).

        §VI-Q2 reports that MF's per-SKU rates show "a significant drop
        in variation (up to 50%) compared to the SF approach"; this is
        the quantity that drops.
        """
        y = self.table.column(self.formula.metric).astype(float)
        residuals = y - self.tree.predict(self.matrix)
        return float(np.var(residuals))

    def render(self, max_depth: int | None = None) -> str:
        """Text rendering of the underlying tree."""
        return render_tree(self.tree, max_depth=max_depth)
