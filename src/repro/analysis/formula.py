"""Formula mini-language: ``Metric ~ X1, N(X2), ..., N(Xn)``.

§V-C introduces two procedure notations:

* ``Metric ~ X1, X2, ..., Xn`` — Cat. 1: fit a CART on all features
  and read groups/importances off the tree.
* ``Metric ~ X1, N(X2), ..., N(Xn)`` — Cat. 2: quantify the influence
  of X1 with the other (``N(·)``-wrapped) factors normalized out via
  partial dependence.

This module parses those strings into a structured :class:`Formula`.
Both comma and ``+`` separators are accepted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import FormulaError

_TERM_RE = re.compile(r"^(?:(N)\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*\)|([A-Za-z_][A-Za-z0-9_]*))$")


@dataclass(frozen=True)
class Term:
    """One right-hand-side term.

    Attributes:
        name: feature name.
        normalized: True when written ``N(name)`` — the factor is to be
            integrated out (partial dependence) rather than studied.
    """

    name: str
    normalized: bool

    def __str__(self) -> str:
        return f"N({self.name})" if self.normalized else self.name


@dataclass(frozen=True)
class Formula:
    """A parsed analysis formula.

    Attributes:
        metric: left-hand-side response column (λ, μ, ...).
        terms: right-hand-side terms in written order.
    """

    metric: str
    terms: tuple[Term, ...]

    @property
    def feature_names(self) -> list[str]:
        """All feature names, studied and normalized alike."""
        return [term.name for term in self.terms]

    @property
    def studied(self) -> list[str]:
        """Features of interest (un-normalized terms)."""
        return [term.name for term in self.terms if not term.normalized]

    @property
    def normalized(self) -> list[str]:
        """Features to integrate out (``N(·)`` terms)."""
        return [term.name for term in self.terms if term.normalized]

    @property
    def is_partial_dependence(self) -> bool:
        """True for Cat. 2 formulas (at least one ``N(·)`` term)."""
        return any(term.normalized for term in self.terms)

    def __str__(self) -> str:
        return f"{self.metric} ~ {', '.join(str(t) for t in self.terms)}"


def parse_formula(text: str) -> Formula:
    """Parse a formula string.

    Examples::

        parse_formula("mu ~ sku, age_months, rated_power_kw")
        parse_formula("lambda ~ sku, N(dc), N(workload), N(age_months)")

    Raises:
        FormulaError: on malformed input (missing ``~``, empty sides,
            bad term syntax, duplicate features).
    """
    if not isinstance(text, str):
        raise FormulaError(f"formula must be a string, got {type(text).__name__}")
    if text.count("~") != 1:
        raise FormulaError(f"formula needs exactly one '~': {text!r}")
    left, right = (side.strip() for side in text.split("~"))
    if not left:
        raise FormulaError(f"missing metric on the left of '~': {text!r}")
    if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", left):
        raise FormulaError(f"invalid metric name {left!r}")
    if not right:
        raise FormulaError(f"missing features on the right of '~': {text!r}")

    raw_terms = [part.strip() for part in re.split(r"[,+]", right)]
    terms: list[Term] = []
    for raw in raw_terms:
        if not raw:
            raise FormulaError(f"empty term in formula: {text!r}")
        match = _TERM_RE.match(raw)
        if match is None:
            raise FormulaError(f"malformed term {raw!r} in formula {text!r}")
        wrapped, wrapped_name, bare_name = match.groups()
        if wrapped:
            terms.append(Term(name=wrapped_name, normalized=True))
        else:
            terms.append(Term(name=bare_name, normalized=False))

    names = [term.name for term in terms]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise FormulaError(f"duplicate features {sorted(duplicates)} in {text!r}")
    if left in names:
        raise FormulaError(f"metric {left!r} also appears as a feature")
    return Formula(metric=left, terms=tuple(terms))
