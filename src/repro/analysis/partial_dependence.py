"""Partial dependence through a fitted CART tree.

The paper's Cat. 2 procedure ``Metric ~ X1, N(X2), ..., N(Xn)``
quantifies the marginal influence of X1 with the other observed factors
normalized out (§V-C, following Hastie et al. [18]).  For tree models
partial dependence has Friedman's exact weighted-traversal form: descend
the tree; at a split on the feature of interest follow the branch the
grid value selects, at any other split average both children weighted by
their training share.

The result is the model's expected response at each value of X1 with
all other features integrated over their joint training distribution —
the "normalized" SKU/temperature effects of Figs 15 and 18.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError, FitError
from .cart.tree import Node, RegressionTree


@dataclass(frozen=True)
class PartialDependence:
    """A computed partial-dependence curve.

    Attributes:
        feature: the feature of interest (X1).
        grid: evaluation points (category codes for categorical X1).
        values: model-average response at each grid point.
        labels: decoded category labels where applicable, else string
            renderings of the grid.
    """

    feature: str
    grid: np.ndarray
    values: np.ndarray
    labels: tuple[str, ...]

    def as_dict(self) -> dict[str, float]:
        """label → PD value mapping."""
        return {label: float(value) for label, value in zip(self.labels, self.values)}


def _pd_traverse(node: Node, feature: str, value: float) -> float:
    """Friedman's weighted traversal for one grid value."""
    if node.is_leaf:
        return node.prediction
    assert node.split is not None and node.left is not None and node.right is not None
    split = node.split
    if split.feature_name == feature:
        goes_left = bool(split.goes_left(np.array([value]))[0])
        child = node.left if goes_left else node.right
        return _pd_traverse(child, feature, value)
    total = node.left.weight + node.right.weight
    if total <= 0:
        raise DataError(f"node {node.node_id} has non-positive child weight")
    return (
        node.left.weight / total * _pd_traverse(node.left, feature, value)
        + node.right.weight / total * _pd_traverse(node.right, feature, value)
    )


def partial_dependence(
    tree: RegressionTree,
    feature: str,
    grid: np.ndarray | None = None,
    n_grid: int = 25,
    training_matrix: np.ndarray | None = None,
) -> PartialDependence:
    """Partial dependence of the tree's response on one feature.

    Args:
        tree: a fitted :class:`RegressionTree`.
        feature: feature name (must be in the tree's schema).
        grid: explicit evaluation points; defaults to all categories for
            categorical features, or an evenly spaced grid over the
            training range (requires ``training_matrix``) otherwise.
        n_grid: grid size for the automatic continuous grid.
        training_matrix: fit-time matrix, used only to derive the
            automatic continuous grid.
    """
    if tree.root is None or tree.schema is None:
        raise FitError("tree is not fitted")
    spec = tree.schema.get(feature)

    if grid is None:
        if spec.is_categorical:
            assert spec.categories is not None
            grid = np.arange(len(spec.categories), dtype=float)
        else:
            if training_matrix is None:
                raise DataError(
                    f"continuous feature {feature!r} needs an explicit grid "
                    "or the training matrix"
                )
            column = np.asarray(training_matrix, dtype=float)[
                :, tree.schema.names.index(feature)
            ]
            grid = np.linspace(column.min(), column.max(), n_grid)
    grid = np.asarray(grid, dtype=float)
    if grid.size == 0:
        raise DataError("empty partial-dependence grid")

    values = np.array([_pd_traverse(tree.root, feature, v) for v in grid])
    if spec.is_categorical:
        assert spec.categories is not None
        labels = tuple(spec.decode(int(v)) for v in grid)
    else:
        labels = tuple(f"{v:.4g}" for v in grid)
    return PartialDependence(feature=feature, grid=grid, values=values, labels=labels)


def _pd_traverse_pair(
    node: Node, features: tuple[str, str], values: tuple[float, float]
) -> float:
    """Two-feature weighted traversal (for T × RH interaction maps)."""
    if node.is_leaf:
        return node.prediction
    assert node.split is not None and node.left is not None and node.right is not None
    split = node.split
    if split.feature_name in features:
        value = values[features.index(split.feature_name)]
        goes_left = bool(split.goes_left(np.array([value]))[0])
        child = node.left if goes_left else node.right
        return _pd_traverse_pair(child, features, values)
    total = node.left.weight + node.right.weight
    return (
        node.left.weight / total * _pd_traverse_pair(node.left, features, values)
        + node.right.weight / total * _pd_traverse_pair(node.right, features, values)
    )


def partial_dependence_2d(
    tree: RegressionTree,
    feature_x: str,
    feature_y: str,
    grid_x: np.ndarray,
    grid_y: np.ndarray,
) -> np.ndarray:
    """Joint partial dependence on two features.

    Returns a (len(grid_x), len(grid_y)) matrix — the temperature ×
    humidity response surface behind Fig 18.
    """
    if tree.root is None or tree.schema is None:
        raise FitError("tree is not fitted")
    tree.schema.get(feature_x)
    tree.schema.get(feature_y)
    if feature_x == feature_y:
        raise DataError("the two PD features must differ")
    grid_x = np.asarray(grid_x, dtype=float)
    grid_y = np.asarray(grid_y, dtype=float)
    surface = np.empty((grid_x.size, grid_y.size))
    for i, vx in enumerate(grid_x):
        for j, vy in enumerate(grid_y):
            surface[i, j] = _pd_traverse_pair(
                tree.root, (feature_x, feature_y), (float(vx), float(vy))
            )
    return surface
