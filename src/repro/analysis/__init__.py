"""Analysis framework: CART, partial dependence, SF and MF models."""

from .cart import (
    Node,
    PruneStep,
    RegressionTree,
    Split,
    TreeParams,
    best_split,
    cross_validated_alpha,
    describe_path,
    gini_impurity,
    node_mean,
    node_sse,
    permutation_importance,
    prune,
    prune_sequence,
    render_tree,
)
from .clustering import Cluster, cluster_summary, clusters_from_tree
from .formula import Formula, Term, parse_formula
from .multi_factor import MultiFactorModel
from .prediction import (
    FailurePredictor,
    PredictionMetrics,
    build_prediction_dataset,
    roc_auc,
    time_split,
)
from .partial_dependence import (
    PartialDependence,
    partial_dependence,
    partial_dependence_2d,
)
from .single_factor import FactorLevelStats, SingleFactorModel

__all__ = [
    "Cluster",
    "FactorLevelStats",
    "FailurePredictor",
    "Formula",
    "MultiFactorModel",
    "Node",
    "PartialDependence",
    "PredictionMetrics",
    "PruneStep",
    "RegressionTree",
    "SingleFactorModel",
    "Split",
    "Term",
    "TreeParams",
    "best_split",
    "build_prediction_dataset",
    "cluster_summary",
    "clusters_from_tree",
    "cross_validated_alpha",
    "describe_path",
    "gini_impurity",
    "node_mean",
    "node_sse",
    "parse_formula",
    "partial_dependence",
    "partial_dependence_2d",
    "permutation_importance",
    "prune",
    "prune_sequence",
    "render_tree",
    "roc_auc",
    "time_split",
]
