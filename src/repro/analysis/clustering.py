"""Leaf clusters: turning a fitted tree into groups of racks.

§V-C: "a grouping of the population will be reached ... the CART tree
would consider the different features that would best describe the
resulting failure rates for a group of racks, creating branches
accordingly and dynamically figuring out both the number of groups as
well as the racks within each group."

A :class:`Cluster` is one leaf of a rack-level tree: the racks routed to
it, the leaf's mean response, and the human-readable path that defines
the group (the "additional insights" of §VI-Q1, e.g. "age, power rating
and SKU type are the key factors in the formation of the storage
workload clusters").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError, FitError
from .cart.export import describe_path
from .cart.tree import RegressionTree


@dataclass(frozen=True)
class Cluster:
    """One rack group discovered by the MF model.

    Attributes:
        cluster_id: the underlying leaf's node id.
        member_rows: row indices (into the fitted table) of members.
        prediction: the leaf's mean response.
        description: conjunction of split conditions defining the group.
    """

    cluster_id: int
    member_rows: np.ndarray
    prediction: float
    description: str

    @property
    def size(self) -> int:
        """Number of member rows."""
        return len(self.member_rows)


def clusters_from_tree(
    tree: RegressionTree,
    matrix: np.ndarray,
) -> list[Cluster]:
    """Materialize every leaf of ``tree`` as a :class:`Cluster`.

    Clusters are ordered by ascending prediction (calm groups first),
    matching how Fig 11 orders its per-cluster CDFs.
    """
    if tree.root is None:
        raise FitError("tree is not fitted")
    matrix = np.asarray(matrix, dtype=float)
    leaf_ids = tree.apply(matrix)
    clusters: list[Cluster] = []
    for leaf in tree.leaves():
        member_rows = np.flatnonzero(leaf_ids == leaf.node_id)
        if member_rows.size == 0:
            continue
        clusters.append(Cluster(
            cluster_id=leaf.node_id,
            member_rows=member_rows,
            prediction=leaf.prediction,
            description=describe_path(tree, leaf.node_id),
        ))
    if not clusters:
        raise DataError("tree routed no rows to any leaf")
    clusters.sort(key=lambda cluster: cluster.prediction)
    return clusters


def cluster_summary(clusters: list[Cluster]) -> str:
    """Multi-line textual summary of a clustering."""
    if not clusters:
        raise DataError("no clusters to summarize")
    lines = [f"{len(clusters)} clusters:"]
    for rank, cluster in enumerate(clusters, start=1):
        lines.append(
            f"  [{rank}] n={cluster.size:4d} mean={cluster.prediction:.4g}  "
            f"{cluster.description}"
        )
    return "\n".join(lines)
