"""The action vocabulary controllers may emit.

Actions are declarative: a controller decides *what* should happen and
the simulation session (or the policy runtime, for operational
inventory) carries it out through sanctioned mutation points.  The
split keeps the ground-truth boundary intact — a controller module
never touches the hazard model, and the only substrate writes happen
inside :meth:`~repro.failures.engine.SimulationSession.apply`, below
the field-data boundary, at the generation frontier.

Three action families mirror the paper's decision chapters:

* :class:`OrderSpares` — Q1: adjust a rack's provisioned spare pool,
  with a procurement lead time.  Operational inventory only: it never
  perturbs the physical realization, so spare-only policies replay the
  identical ticket stream and score counterfactually.
* :class:`SwapSku` — Q2: swap a rack's hardware SKU at the next
  refresh point (the generation frontier).
* :class:`MoveSetpoints` — Q3: retarget the cooling plant's
  temperature/humidity setpoints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Default procurement lead time for spare orders, in days.  Chosen to
#: sit just above the predictive monitor's alert horizon: a predicted
#: failure leaves (roughly) enough runway for the spares to land, while
#: a purely reactive order always arrives a full lead time after the
#: breach began.
DEFAULT_LEAD_TIME_DAYS = 3


@dataclass(frozen=True)
class OrderSpares:
    """Order additional spare servers for one rack.

    Attributes:
        rack_index: target rack (inventory row).
        n_servers: how many spare servers to add to the rack's pool.
        lead_time_days: procurement delay; the spares join the pool
            this many days after the order is placed.
    """

    rack_index: int
    n_servers: int = 1
    lead_time_days: int = DEFAULT_LEAD_TIME_DAYS

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ConfigError(f"spare order needs n_servers >= 1, got {self.n_servers}")
        if self.lead_time_days < 0:
            raise ConfigError("lead_time_days must be >= 0")

    def apply_to(self, session) -> None:
        """Spares are operational inventory, not simulated hardware.

        The policy runtime's :class:`~repro.autonomics.spares.SpareLedger`
        books the order; the session only records it in its action log
        (which :meth:`~repro.failures.engine.SimulationSession.apply`
        does for every action), so the physical realization — and hence
        seed-comparability across spare-only policies — is untouched.
        """


@dataclass(frozen=True)
class SwapSku:
    """Swap racks onto a different hardware SKU at the next refresh.

    Attributes:
        rack_ids: rack labels to refresh.
        sku_name: replacement SKU (must be a drop-in: same
            servers-per-rack, enforced by the fleet mutation point).
    """

    rack_ids: tuple[str, ...]
    sku_name: str

    def __post_init__(self) -> None:
        if not self.rack_ids:
            raise ConfigError("SKU swap needs at least one rack id")

    def apply_to(self, session) -> None:
        """Queue the refresh on the session's fleet mutation point."""
        session.swap_sku(self.rack_ids, self.sku_name)


@dataclass(frozen=True)
class MoveSetpoints:
    """Move the cooling plant's temperature/humidity setpoints.

    Attributes:
        temp_delta_f: inlet-temperature shift in °F (negative = cool).
        rh_delta: relative-humidity shift in percentage points.
        rack_indices: affected racks; ``None`` means fleet-wide.
    """

    temp_delta_f: float = 0.0
    rh_delta: float = 0.0
    rack_indices: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not (self.temp_delta_f or self.rh_delta):
            raise ConfigError("setpoint move needs a non-zero delta")

    def apply_to(self, session) -> None:
        """Queue the move on the session's environment mutation point."""
        session.move_setpoints(
            temp_delta_f=self.temp_delta_f,
            rh_delta=self.rh_delta,
            rack_indices=(
                None if self.rack_indices is None else list(self.rack_indices)
            ),
        )


#: Every concrete action type, for validation and docs.
ACTION_TYPES = (OrderSpares, SwapSku, MoveSetpoints)
