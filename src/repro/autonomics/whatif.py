"""Closed-loop policy runs and the same-seed what-if comparison.

One :func:`run_policy` call drives a full control loop: a
:class:`~repro.failures.engine.SimulationSession` steps through the
observation window while a :class:`~repro.stream.analyzer.StreamAnalyzer`
(SLA gauge + drift detector, optionally a
:class:`~repro.predict.monitor.PredictiveMonitor`) rides the event feed;
at every decision interval the controller observes the window's alerts
and answers with actions, which route through the session's mutation
points (physical) and the :class:`~repro.autonomics.spares.SpareLedger`
(operational).

:func:`compare_policies` replays the *same seed* under k controllers.
Spare-only policies share one physical realization — every scored
delta is the policy's doing — while setpoint/SKU policies diverge only
at the generation frontier, keeping the comparison honest.  Scoring
reuses the paper's decision machinery: SLA attainment from the
streamed μ matrix against the ledger's provisioning trajectory, TCO
from :class:`~repro.decisions.tco.TcoModel` plus
:func:`~repro.decisions.proactive.evaluate_scored` intervention
accounting.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..decisions.availability import AvailabilitySla
from ..decisions.proactive import ProactivePolicy, evaluate_scored
from ..decisions.tco import TcoModel
from ..errors import ConfigError
from ..failures.engine import SimulationResult, SimulationSession
from ..failures.tickets import HARDWARE_FAULTS
from ..stream.analyzer import StreamAnalyzer
from ..stream.events import StreamInventory
from ..telemetry.aggregate import lambda_matrix
from .actions import OrderSpares
from .controller import Controller, Observation, PredictiveController, make_controller
from .feed import SessionEventFeed
from .spares import SpareLedger

if TYPE_CHECKING:
    from ..config import SimulationConfig
    from ..predict.model import TwoStagePredictor

#: Default closed-loop scenario knobs (shared by the experiment, the
#: serve query, the CLI and the smoke job).
DEFAULT_SLA_LEVEL = 0.95
DEFAULT_DECIDE_EVERY_DAYS = 7
DEFAULT_INITIAL_SPARE_FRACTION = 0.02
#: Scoring scope starts here: monitors need a feature warmup, and both
#: policies' first orders can only land after a lead time.
DEFAULT_WARMUP_DAYS = 28
#: Cost of one rack-day in SLA breach, in the same units as the
#: failure/intervention costs (ProactivePolicy prices one failure at
#: 8 units; a full day of a rack below its availability target — SLA
#: credits, degraded service — is substantially worse).  This is what
#: makes availability *worth buying*: without it the what-if would
#: always favor the policy that provisions least.
DEFAULT_SLA_PENALTY_UNITS = 150.0


@dataclass
class PolicyRunOutcome:
    """Everything one controlled run produced, scored.

    Attributes:
        policy_id: the controller's identifier.
        result: the (possibly action-perturbed) simulation result.
        sla_attainment: fraction of in-scope rack-days meeting the SLA.
        breach_rack_days: in-scope rack-days in breach.
        tco_units: total cost of ownership in TCO-model units
            (deployment + failure/intervention side).
        deployment_units: capacity + time-averaged spares CapEx side.
        failure_units: failure costs net of prevented, intervention
            costs, and the SLA-breach penalty on breach rack-days.
        failures_in_scope: hardware failures inside the scoring scope.
        failures_prevented: failures averted by proactive interventions.
        n_interventions: proactive interventions priced.
        spare_servers_ordered: total spare servers ordered.
        mean_spare_fraction: fleet-wide time-averaged spare fraction.
        n_alerts: total monitor alerts over the run.
        n_actions: total actions applied.
    """

    policy_id: str
    result: SimulationResult
    sla_attainment: float
    breach_rack_days: int
    tco_units: float
    deployment_units: float
    failure_units: float
    failures_in_scope: float
    failures_prevented: float
    n_interventions: int
    spare_servers_ordered: int
    mean_spare_fraction: float
    n_alerts: int
    n_actions: int

    def score_row(self) -> dict:
        """JSON-safe scoring row (no result bundle)."""
        return {
            "policy": self.policy_id,
            "sla_attainment": self.sla_attainment,
            "breach_rack_days": self.breach_rack_days,
            "tco_units": self.tco_units,
            "deployment_units": self.deployment_units,
            "failure_units": self.failure_units,
            "failures_in_scope": self.failures_in_scope,
            "failures_prevented": self.failures_prevented,
            "n_interventions": self.n_interventions,
            "spare_servers_ordered": self.spare_servers_ordered,
            "mean_spare_fraction": self.mean_spare_fraction,
            "n_alerts": self.n_alerts,
            "n_actions": self.n_actions,
        }


def train_shakedown_predictor(
    config: "SimulationConfig",
    horizon_days: int = 3,
) -> "TwoStagePredictor":
    """Fit the predictive controller's model on a shakedown run.

    The model trains on a *different seed* of the same fleet (a
    commissioning/shakedown period), so the controlled run is entirely
    out-of-sample — no leakage from the stream being controlled.
    """
    from ..predict import build_feature_dataset, train_predictor

    shakedown = dataclasses.replace(config, seed=config.seed + 1)
    dataset = build_feature_dataset(shakedown_result(shakedown), horizon_days=horizon_days)
    model, _, _ = train_predictor(dataset, horizon_days=horizon_days)
    return model


def shakedown_result(config: "SimulationConfig") -> SimulationResult:
    """The shakedown run itself (separate hook for caching/tests)."""
    from ..failures.engine import simulate

    return simulate(config)


def _window_column_means(rows: np.ndarray) -> np.ndarray:
    """Per-column mean ignoring NaN dropouts (NaN when all dropped)."""
    mask = np.isfinite(rows)
    counts = mask.sum(axis=0)
    sums = np.where(mask, rows, 0.0).sum(axis=0)
    out = np.full(rows.shape[1], np.nan)
    seen = counts > 0
    out[seen] = sums[seen] / counts[seen]
    return out


def run_policy(
    config: "SimulationConfig",
    controller: Controller,
    sla_level: float = DEFAULT_SLA_LEVEL,
    initial_spare_fraction: float = DEFAULT_INITIAL_SPARE_FRACTION,
    decide_every_days: int = DEFAULT_DECIDE_EVERY_DAYS,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
    predictor: "TwoStagePredictor | None" = None,
    predict_threshold: float = 0.6,
    proactive_policy: ProactivePolicy | None = None,
    sla_penalty_units: float = DEFAULT_SLA_PENALTY_UNITS,
) -> PolicyRunOutcome:
    """Drive one controller through a full closed-loop run and score it."""
    if decide_every_days < 1:
        raise ConfigError(f"decide_every_days must be >= 1, got {decide_every_days}")
    sla = AvailabilitySla(sla_level)
    session = SimulationSession(config)
    inventory = StreamInventory.from_fleet(session.fleet, config.n_days)
    ledger = SpareLedger(
        inventory.n_servers, config.n_days, initial_spare_fraction,
    )
    analyzer = StreamAnalyzer(
        inventory, sla=sla, spare_fraction=ledger.fraction_now(), drift=True,
    )
    if controller.wants_predictions:
        if predictor is None:
            predictor = train_shakedown_predictor(config)
        from ..predict import PredictiveMonitor

        analyzer.attach_monitor(PredictiveMonitor(
            inventory, predictor, threshold=predict_threshold,
        ))
    feed = SessionEventFeed(session, inventory)
    capacity = inventory.n_servers.astype(np.int64)
    alerts_seen = 0
    n_actions = 0

    while not session.exhausted:
        window_start = session.day
        window = min(decide_every_days, config.n_days - window_start)
        session.step(window)
        # Spares delivered by the window's start were live during it.
        if ledger.deliver_until(window_start) and analyzer.monitor is not None:
            analyzer.monitor.set_spare_fraction(ledger.fraction_now())
        for block in feed.blocks_until(session.day):
            analyzer.process_block(block)
        new_alerts = tuple(analyzer.alerts[alerts_seen:])
        alerts_seen = len(analyzer.alerts)
        observation = Observation(
            day=session.day,
            window_days=window,
            alerts=new_alerts,
            down=(analyzer.monitor.down.copy() if analyzer.monitor is not None
                  else np.zeros(inventory.n_racks, dtype=np.int64)),
            capacity=capacity,
            spares=ledger.spares.copy(),
            racks_on_order=frozenset(ledger.racks_on_order()),
            observed_temp_f=_window_column_means(
                session.bms.temp_f[window_start:session.day]
            ),
            observed_rh=_window_column_means(
                session.bms.rh[window_start:session.day]
            ),
        )
        actions = controller.decide(observation)
        n_actions += len(actions)
        for action in actions:
            if isinstance(action, OrderSpares):
                ledger.book(
                    session.day, action.rack_index,
                    action.n_servers, action.lead_time_days,
                )
        if not session.exhausted:
            session.apply(actions)
    analyzer.finish()
    result = session.result()
    return _score_run(
        result=result,
        controller=controller,
        analyzer=analyzer,
        ledger=ledger,
        sla=sla,
        warmup_days=warmup_days,
        proactive_policy=proactive_policy or ProactivePolicy(),
        n_actions=n_actions,
        sla_penalty_units=sla_penalty_units,
    )


def _score_run(
    result: SimulationResult,
    controller: Controller,
    analyzer: StreamAnalyzer,
    ledger: SpareLedger,
    sla: AvailabilitySla,
    warmup_days: int,
    proactive_policy: ProactivePolicy,
    n_actions: int,
    sla_penalty_units: float,
) -> PolicyRunOutcome:
    """Score one controlled run: SLA attainment + TCO."""
    n_days = result.n_days
    warmup = min(warmup_days, n_days)
    capacity = ledger.capacity.astype(float)

    # SLA attainment: streamed daily μ (peak concurrent down per rack
    # per day) against the ledger's provisioning trajectory, with the
    # monitor's shortfall tolerance and float fuzz.
    mu_daily = analyzer.mu.matrix().T  # (n_windows, n_racks)
    trajectory = ledger.spares_trajectory()[:mu_daily.shape[0]]
    allowed = trajectory + sla.shortfall * capacity[np.newaxis, :]
    breach = mu_daily > allowed + 1e-9 * np.maximum(capacity, 1.0)[np.newaxis, :]
    in_scope = breach[warmup:]
    breach_rack_days = int(in_scope.sum())
    attainment = 1.0 - breach_rack_days / max(in_scope.size, 1)

    # Failure-cost side: hardware failure count over the same scope for
    # every policy; proactive interventions (predictive only) prevent a
    # slice of them and are priced per intervention.
    hardware = lambda_matrix(
        result, list(HARDWARE_FAULTS), dedupe_batches=False,
    ).astype(float)
    failures_in_scope = float(hardware[:, warmup:].sum())
    prevented = 0.0
    interventions = 0
    flagged = getattr(controller, "flagged", None)
    if isinstance(controller, PredictiveController) and flagged:
        racks = np.array([rack for rack, _, _ in flagged], dtype=np.int64)
        days = np.array([day for _, day, _ in flagged], dtype=np.int64)
        scores = np.array([score for _, _, score in flagged], dtype=float)
        outcome = evaluate_scored(result, racks, days, scores, proactive_policy)
        prevented = float(outcome.failures_prevented)
        interventions = int(outcome.n_interventions)
    failure_units = (
        (failures_in_scope - prevented) * proactive_policy.failure_cost
        + interventions * proactive_policy.intervention_cost
        + breach_rack_days * sla_penalty_units
    )

    tco = TcoModel()
    deployment_units = tco.deployment_tco(
        int(capacity.sum()), ledger.mean_fraction(),
    )
    return PolicyRunOutcome(
        policy_id=controller.policy_id,
        result=result,
        sla_attainment=float(attainment),
        breach_rack_days=breach_rack_days,
        tco_units=float(deployment_units + failure_units),
        deployment_units=float(deployment_units),
        failure_units=float(failure_units),
        failures_in_scope=failures_in_scope,
        failures_prevented=prevented,
        n_interventions=interventions,
        spare_servers_ordered=ledger.total_ordered(),
        mean_spare_fraction=ledger.mean_fraction(),
        n_alerts=len(analyzer.alerts),
        n_actions=n_actions,
    )


def compare_policies(
    config: "SimulationConfig",
    policies: tuple[str, ...] = ("reactive", "predictive"),
    sla_level: float = DEFAULT_SLA_LEVEL,
    initial_spare_fraction: float = DEFAULT_INITIAL_SPARE_FRACTION,
    decide_every_days: int = DEFAULT_DECIDE_EVERY_DAYS,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
    sla_penalty_units: float = DEFAULT_SLA_PENALTY_UNITS,
) -> dict:
    """Replay the same seed under each policy and tabulate the scores.

    Returns a JSON-safe payload: one score row per policy plus a
    ``verdict`` block comparing the predictive controller against the
    reactive baseline when both ran (the ROADMAP's closed-loop
    question: does acting on predictions beat break/fix at equal or
    lower cost?).
    """
    if not policies:
        raise ConfigError("need at least one policy to compare")
    controllers = [make_controller(policy_id) for policy_id in policies]
    predictor = None
    if any(controller.wants_predictions for controller in controllers):
        predictor = train_shakedown_predictor(config)
    outcomes: list[PolicyRunOutcome] = []
    for controller in controllers:
        outcomes.append(run_policy(
            config, controller,
            sla_level=sla_level,
            initial_spare_fraction=initial_spare_fraction,
            decide_every_days=decide_every_days,
            warmup_days=warmup_days,
            predictor=predictor,
            sla_penalty_units=sla_penalty_units,
        ))
    rows = [outcome.score_row() for outcome in outcomes]
    by_id = {row["policy"]: row for row in rows}
    payload = {
        "scenario": {
            "seed": config.seed,
            "n_days": config.n_days,
            "sla_level": sla_level,
            "initial_spare_fraction": initial_spare_fraction,
            "decide_every_days": decide_every_days,
            "warmup_days": warmup_days,
            "sla_penalty_units": sla_penalty_units,
            "policies": list(policies),
        },
        "policies": rows,
    }
    if "reactive" in by_id and "predictive" in by_id:
        reactive, predictive = by_id["reactive"], by_id["predictive"]
        payload["verdict"] = {
            "predictive_beats_reactive_sla": bool(
                predictive["sla_attainment"] >= reactive["sla_attainment"]
            ),
            "predictive_tco_leq_reactive": bool(
                predictive["tco_units"] <= reactive["tco_units"]
            ),
            "sla_attainment_delta": (
                predictive["sla_attainment"] - reactive["sla_attainment"]
            ),
            "tco_delta_units": predictive["tco_units"] - reactive["tco_units"],
        }
    return payload
