"""Closed-loop autonomics: controllers acting on the live stream.

The package closes the paper's loop: the streaming monitors
(:mod:`repro.stream`) watch a live
:class:`~repro.failures.engine.SimulationSession`, a
:class:`~repro.autonomics.controller.Controller` turns their alerts
into declarative :mod:`~repro.autonomics.actions`, and the
:mod:`~repro.autonomics.whatif` engine replays the same seed under
competing policies to score SLA attainment against TCO.

Everything here lives on the analysis side of the ground-truth
boundary: controllers see tickets, sensor readings and their own
ledger — never hazards.
"""

from .actions import (
    ACTION_TYPES,
    DEFAULT_LEAD_TIME_DAYS,
    MoveSetpoints,
    OrderSpares,
    SwapSku,
)
from .controller import (
    BUILTIN_POLICIES,
    Controller,
    NullController,
    Observation,
    PredictiveController,
    ReactiveController,
    ThresholdController,
    make_controller,
)
from .experiment import (
    autonomics_experiment,
    autonomics_query_payload,
    compute_autonomics_payload,
    render_autonomics,
)
from .feed import SessionEventFeed
from .spares import SpareLedger
from .whatif import (
    PolicyRunOutcome,
    compare_policies,
    run_policy,
    train_shakedown_predictor,
)

__all__ = [
    "ACTION_TYPES",
    "BUILTIN_POLICIES",
    "Controller",
    "DEFAULT_LEAD_TIME_DAYS",
    "MoveSetpoints",
    "NullController",
    "Observation",
    "OrderSpares",
    "PolicyRunOutcome",
    "PredictiveController",
    "ReactiveController",
    "SessionEventFeed",
    "SpareLedger",
    "SwapSku",
    "ThresholdController",
    "autonomics_experiment",
    "autonomics_query_payload",
    "compare_policies",
    "compute_autonomics_payload",
    "make_controller",
    "render_autonomics",
    "run_policy",
    "train_shakedown_predictor",
]
