"""Incremental event feed over a live simulation session.

Controllers consume the run the way an operator would: as the
time-ordered telemetry stream (ticket opens/closes, sensor samples,
inventory changes) — never the hazard model.  This module turns a
:class:`~repro.failures.engine.SimulationSession`'s buffered tickets
into exactly that stream, step by step, with globally consistent
``seq`` numbering so a :class:`~repro.stream.analyzer.StreamAnalyzer`
(and anything attached to it) can ride along live.

Correctness of the incremental cut: the session generates whole
chunks ahead of the observation frontier, so every event with
``time_hours < frontier * 24`` comes from already-generated tickets,
and events from chunks generated later all carry strictly later
times.  The merged prefix below the frontier is therefore stable
across re-flattens, and a simple (events emitted so far) cursor plus
``skip=`` resumes the stream without drift.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from ..stream.blocks import DEFAULT_BLOCK_SIZE, EventBlock, blocks_from_parts
from ..stream.events import StreamInventory


class SessionEventFeed:
    """Replays a stepping session as a seamless event-block stream.

    Args:
        session: the live simulation session to observe.
        inventory: stream inventory projected from the session's fleet
            (taken at construction; SKU refreshes later in the run are
            visible to the operator only through their effect on the
            ticket stream, as in the field).
        block_size: flattener block granularity.
    """

    def __init__(
        self,
        session,
        inventory: StreamInventory,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        self.session = session
        self.inventory = inventory
        self.block_size = block_size
        #: Absolute stream position: events already handed out.
        self.events_emitted = 0
        self._last_frontier = 0

    def blocks_until(self, day: int) -> list[EventBlock]:
        """Every not-yet-emitted event with ``time_hours < day * 24``.

        ``day`` must not exceed the session's generation frontier
        (events past it are not realized yet) and must be monotone
        across calls.  Blocks carry contiguous ``seq`` starting at the
        feed's cursor, so feeding them to an analyzer resumed at
        ``events_emitted`` is seamless.
        """
        if day < self._last_frontier:
            raise DataError(
                f"feed frontier moved backwards: {day} < {self._last_frontier}"
            )
        if day > self.session.generation_frontier:
            raise DataError(
                f"day {day} is past the generation frontier "
                f"{self.session.generation_frontier}"
            )
        self._last_frontier = day
        cut_hours = day * 24.0
        tickets = self.session.tickets_so_far()
        bms = self.session.bms
        blocks: list[EventBlock] = []
        for block in blocks_from_parts(
            self.inventory, tickets,
            temp_f=bms.temp_f, rh=bms.rh,
            skip=self.events_emitted, block_size=self.block_size,
        ):
            times = block.time_hours
            take = int(np.searchsorted(times, cut_hours, side="left"))
            if take == 0:
                break
            emitted = block.slice(0, take) if take < len(block) else block
            blocks.append(emitted)
            self.events_emitted += len(emitted)
            if take < len(block):
                break
        return blocks
