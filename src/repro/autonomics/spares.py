"""Operational spare inventory with procurement lead times.

Spares are not simulated hardware: ordering them never perturbs the
failure realization, which is exactly what lets the what-if engine
replay the same seed under different spare policies and attribute every
outcome delta to the policy.  The ledger therefore lives on the
analysis side: it books :class:`~repro.autonomics.actions.OrderSpares`
actions, applies arrivals as the run's frontier passes their lead
time, and reconstructs the full per-rack provisioning trajectory for
SLA-attainment and TCO scoring afterwards.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class SpareLedger:
    """Per-rack spare-server bookkeeping over one controlled run.

    Args:
        capacity: per-rack server counts, shape ``(n_racks,)``.
        n_days: observation-window length.
        initial_fraction: provisioned spare fraction at day 0 (scalar
            or per-rack array).
    """

    def __init__(
        self,
        capacity: np.ndarray,
        n_days: int,
        initial_fraction: float | np.ndarray = 0.0,
    ):
        self.capacity = np.asarray(capacity, dtype=np.int64)
        self.n_racks = len(self.capacity)
        self.n_days = int(n_days)
        fraction = np.broadcast_to(
            np.asarray(initial_fraction, dtype=float), (self.n_racks,)
        )
        if (fraction < 0).any():
            raise ConfigError("initial spare fraction must be >= 0")
        #: Spare servers on hand right now, per rack (fractional seeds
        #: round down: you cannot rack half a server).
        self.spares = np.floor(fraction * self.capacity).astype(np.int64)
        self._initial = self.spares.copy()
        #: Pending orders: (arrival_day, rack_index, n_servers).
        self.pending: list[tuple[int, int, int]] = []
        #: Every booked order: (order_day, arrival_day, rack, n_servers).
        self.orders: list[tuple[int, int, int, int]] = []

    def book(self, order_day: int, rack_index: int, n_servers: int,
             lead_time_days: int) -> None:
        """Book one spare order; it arrives after the lead time."""
        if not 0 <= rack_index < self.n_racks:
            raise ConfigError(
                f"rack_index {rack_index} outside [0, {self.n_racks})"
            )
        arrival = order_day + lead_time_days
        self.pending.append((arrival, rack_index, n_servers))
        self.orders.append((order_day, arrival, rack_index, n_servers))

    def racks_on_order(self) -> set[int]:
        """Racks with at least one undelivered order (for cooldowns)."""
        return {rack for _, rack, _ in self.pending}

    def deliver_until(self, day: int) -> list[tuple[int, int, int]]:
        """Apply every arrival with ``arrival_day <= day``.

        Returns the delivered (arrival_day, rack, n_servers) triples in
        booking order.
        """
        delivered = [order for order in self.pending if order[0] <= day]
        if delivered:
            self.pending = [order for order in self.pending if order[0] > day]
            for _, rack, n_servers in delivered:
                self.spares[rack] += n_servers
        return delivered

    def fraction_now(self) -> np.ndarray:
        """Current provisioned spare fraction per rack."""
        return self.spares / np.maximum(self.capacity, 1)

    def spares_trajectory(self) -> np.ndarray:
        """Provisioned spare servers per ``(day, rack)`` over the run.

        Reconstructed from the order book: each order contributes from
        its arrival day on.  Shape ``(n_days, n_racks)``.
        """
        trajectory = np.tile(self._initial, (self.n_days, 1))
        for _, arrival, rack, n_servers in self.orders:
            if arrival < self.n_days:
                trajectory[arrival:, rack] += n_servers
        return trajectory

    def mean_fraction(self) -> float:
        """Fleet-wide time-averaged spare fraction (the TCO input)."""
        trajectory = self.spares_trajectory()
        total_capacity = float(self.capacity.sum())
        return float(trajectory.sum(axis=1).mean() / max(total_capacity, 1.0))

    def total_ordered(self) -> int:
        """Total spare servers ordered over the run."""
        return sum(n for _, _, _, n in self.orders)
