"""The controller port and the built-in closed-loop policies.

A :class:`Controller` observes the run the way an operator would — the
streaming monitors' alerts, the BMS's observed conditions, its own
spare ledger — and answers with declarative actions.  The substrate
never leaks in: observations are assembled by the policy runtime from
per-step event blocks and monitor state only.

Built-in policies span the paper's decision space:

* :class:`NullController` — the no-op baseline whose stepped run must
  be bit-identical to batch ``simulate()`` (the determinism gate).
* :class:`ReactiveController` — classic break/fix: order spares only
  after an SLA-risk breach fires, and eat the full procurement lead
  time while the rack stays exposed.
* :class:`PredictiveController` — DC-Prophet-style: act on
  PREDICTED_FAILURE alerts ahead of the fault (orders land roughly
  when the failure does instead of a lead time after the breach) and
  schedule proactive interventions on the flagged rack-days; breaches
  that slip through still get the reactive response.
* :class:`ThresholdController` — plant-level rule: when observed
  inlet temperatures run hot, pull the cooling setpoint down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..stream.triggers import Alert, AlertKind
from .actions import DEFAULT_LEAD_TIME_DAYS, MoveSetpoints, OrderSpares


@dataclass(frozen=True)
class Observation:
    """What a controller is allowed to see at one decision point.

    Attributes:
        day: current observation frontier (days since run start).
        window_days: days covered since the previous decision.
        alerts: monitor alerts that fired inside the window.
        down: per-rack servers currently down (SLA gauge state).
        capacity: per-rack server counts.
        spares: per-rack spare servers on hand.
        racks_on_order: racks with an undelivered spare order.
        observed_temp_f: per-rack mean observed inlet °F over the
            window (NaN where every reading dropped out).
        observed_rh: per-rack mean observed %RH over the window.
    """

    day: int
    window_days: int
    alerts: tuple[Alert, ...]
    down: np.ndarray
    capacity: np.ndarray
    spares: np.ndarray
    racks_on_order: frozenset[int]
    observed_temp_f: np.ndarray
    observed_rh: np.ndarray

    def alerts_of(self, kind: AlertKind) -> tuple[Alert, ...]:
        """The window's alerts of one kind."""
        return tuple(alert for alert in self.alerts if alert.kind is kind)


class Controller:
    """Port for closed-loop policies: observe, then act.

    Subclasses implement :meth:`decide`; the runtime calls it once per
    decision interval and routes the returned actions through the
    session (physical) and the spare ledger (operational).
    """

    #: Stable identifier used in comparisons, payloads and the CLI.
    policy_id: str = "abstract"

    def decide(self, observation: Observation) -> list:
        """Return the actions to apply at this decision point."""
        raise NotImplementedError

    #: Whether the runtime should attach a PredictiveMonitor.
    wants_predictions: bool = False


class NullController(Controller):
    """Does nothing — the determinism baseline."""

    policy_id = "null"

    def decide(self, observation: Observation) -> list:
        return []


@dataclass
class ReactiveController(Controller):
    """Break/fix: top up a rack's spares only after it breaches.

    Attributes:
        order_servers: spare servers per order.
        lead_time_days: procurement delay on every order.
    """

    order_servers: int = 2
    lead_time_days: int = DEFAULT_LEAD_TIME_DAYS
    policy_id: str = field(default="reactive", init=False)

    def decide(self, observation: Observation) -> list:
        actions = []
        seen: set[int] = set()
        for alert in observation.alerts_of(AlertKind.SLA_RISK):
            rack = alert.rack_index
            if rack in seen or rack in observation.racks_on_order:
                continue
            seen.add(rack)
            actions.append(OrderSpares(
                rack_index=rack,
                n_servers=self.order_servers,
                lead_time_days=self.lead_time_days,
            ))
        return actions


@dataclass
class PredictiveController(Controller):
    """Act on predicted failures before they land.

    Orders the same spare increment as the reactive policy but at
    prediction time, so the procurement lead time is (mostly) absorbed
    by the prediction horizon; flagged rack-days additionally feed the
    proactive-maintenance accounting
    (:func:`~repro.decisions.proactive.evaluate_scored`).  SLA breaches
    that slip past the predictor still get the reactive response —
    prediction augments break/fix, it does not replace it.
    """

    order_servers: int = 2
    lead_time_days: int = DEFAULT_LEAD_TIME_DAYS
    policy_id: str = field(default="predictive", init=False)
    wants_predictions: bool = field(default=True, init=False)

    def __post_init__(self) -> None:
        #: (rack, day, score) triples for proactive accounting.
        self.flagged: list[tuple[int, int, float]] = []
        #: Racks already topped up on a prediction.  Spares persist, so
        #: re-ordering every time the same rack is re-flagged only buys
        #: inventory the rack already has; one predictive top-up per
        #: rack, with the reactive breach response as the uncapped
        #: escalation path for racks that need more.
        self._predictive_ordered: set[int] = set()

    def decide(self, observation: Observation) -> list:
        actions = []
        seen: set[int] = set()
        for alert in observation.alerts_of(AlertKind.PREDICTED_FAILURE):
            rack = alert.rack_index
            self.flagged.append((rack, observation.day, float(alert.value)))
            if (
                rack in seen
                or rack in observation.racks_on_order
                or rack in self._predictive_ordered
            ):
                continue
            seen.add(rack)
            self._predictive_ordered.add(rack)
            actions.append(OrderSpares(
                rack_index=rack,
                n_servers=self.order_servers,
                lead_time_days=self.lead_time_days,
            ))
        for alert in observation.alerts_of(AlertKind.SLA_RISK):
            rack = alert.rack_index
            if rack in seen or rack in observation.racks_on_order:
                continue
            seen.add(rack)
            actions.append(OrderSpares(
                rack_index=rack,
                n_servers=self.order_servers,
                lead_time_days=self.lead_time_days,
            ))
        return actions


@dataclass
class ThresholdController(Controller):
    """Plant-level rule: cool the room when observed inlets run hot.

    Attributes:
        hot_temp_f: observed mean inlet °F that triggers a setpoint pull.
        setpoint_step_f: °F removed per trigger (negative shift).
        max_total_shift_f: total cooling budget — the plant cannot be
            retargeted indefinitely.
        order_servers / lead_time_days: breach response, same as the
            reactive policy.
    """

    hot_temp_f: float = 80.0
    setpoint_step_f: float = 2.0
    max_total_shift_f: float = 6.0
    order_servers: int = 2
    lead_time_days: int = DEFAULT_LEAD_TIME_DAYS
    policy_id: str = field(default="threshold", init=False)

    def __post_init__(self) -> None:
        self._shifted_f = 0.0

    def decide(self, observation: Observation) -> list:
        actions = []
        temps = observation.observed_temp_f
        hot = np.nanmean(temps) if np.isfinite(temps).any() else np.nan
        if (
            np.isfinite(hot)
            and hot > self.hot_temp_f
            and self._shifted_f + self.setpoint_step_f <= self.max_total_shift_f
        ):
            self._shifted_f += self.setpoint_step_f
            actions.append(MoveSetpoints(temp_delta_f=-self.setpoint_step_f))
        seen: set[int] = set()
        for alert in observation.alerts_of(AlertKind.SLA_RISK):
            rack = alert.rack_index
            if rack in seen or rack in observation.racks_on_order:
                continue
            seen.add(rack)
            actions.append(OrderSpares(
                rack_index=rack,
                n_servers=self.order_servers,
                lead_time_days=self.lead_time_days,
            ))
        return actions


#: Registry of built-in policies by id.
BUILTIN_POLICIES: tuple[str, ...] = ("null", "reactive", "predictive", "threshold")


def make_controller(policy_id: str, **kwargs) -> Controller:
    """Instantiate a built-in policy by id."""
    from ..errors import ConfigError

    if policy_id == "null":
        return NullController()
    if policy_id == "reactive":
        return ReactiveController(**kwargs)
    if policy_id == "predictive":
        return PredictiveController(**kwargs)
    if policy_id == "threshold":
        return ThresholdController(**kwargs)
    raise ConfigError(
        f"unknown policy {policy_id!r}; built-ins: {', '.join(BUILTIN_POLICIES)}"
    )
