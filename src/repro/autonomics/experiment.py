"""The ``autonomics`` experiment: same-seed closed-loop policy shootout.

One payload answers the closed-loop question — if an autonomic
controller had been riding the monitors and acting, would the fleet
have met its SLA, and at what cost?  The what-if engine replays the
run's seed under each built-in policy and scores SLA attainment and
TCO; the payload is a JSON-safe dict so the pipeline persists it as a
content-addressed artifact (stage ``autonomics:compare``) and the
report/service layers render or serve it without recomputing.
"""

from __future__ import annotations

from ..errors import DataError
from ..reporting.context import AnalysisContext, autonomics_stage
from .controller import BUILTIN_POLICIES
from .whatif import (
    DEFAULT_DECIDE_EVERY_DAYS,
    DEFAULT_INITIAL_SPARE_FRACTION,
    DEFAULT_SLA_LEVEL,
    DEFAULT_SLA_PENALTY_UNITS,
    DEFAULT_WARMUP_DAYS,
    compare_policies,
)

#: Policies the registered experiment compares, in run order.
DEFAULT_POLICIES: tuple[str, ...] = ("null", "reactive", "predictive")

#: Steps of the autonomics pipeline; the stage names are
#: ``autonomics_stage(step)`` for each.
STAGE_STEPS = ("compare",)

#: Declared stage dependencies of the registered ``autonomics``
#: experiment (cross-checked against the registry and the catalogue).
STAGE_DEPS = tuple(autonomics_stage(step) for step in STAGE_STEPS)

#: Source modules whose content invalidates the experiment's rendering.
CODE_MODULES = ("repro.autonomics.experiment",)


def compute_autonomics_payload(
    config,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    sla_level: float = DEFAULT_SLA_LEVEL,
    initial_spare_fraction: float = DEFAULT_INITIAL_SPARE_FRACTION,
    decide_every_days: int = DEFAULT_DECIDE_EVERY_DAYS,
    warmup_days: int = DEFAULT_WARMUP_DAYS,
    sla_penalty_units: float = DEFAULT_SLA_PENALTY_UNITS,
) -> dict:
    """The policy shootout as one JSON-safe payload.

    A thin naming shim over :func:`~repro.autonomics.whatif.compare_policies`
    so the pipeline stage, the experiment and the serve query all share
    one entry point and its defaults.
    """
    return compare_policies(
        config,
        policies=policies,
        sla_level=sla_level,
        initial_spare_fraction=initial_spare_fraction,
        decide_every_days=decide_every_days,
        warmup_days=warmup_days,
        sla_penalty_units=sla_penalty_units,
    )


def render_autonomics(payload: dict) -> str:
    """Text rendering of an ``autonomics:compare`` payload."""
    scenario = payload["scenario"]
    lines = [
        "[autonomics] closed-loop policy shootout on one seed",
        "  would an autonomic controller have met the SLA, and at "
        "what cost?",
        f"  seed {scenario['seed']}, {scenario['n_days']} days, SLA "
        f"{scenario['sla_level']:.2%}, decisions every "
        f"{scenario['decide_every_days']} d, scoring after day "
        f"{scenario['warmup_days']}",
        "",
        "  policy      attain%  breach-d  spares  interv  prevented"
        "       TCO",
    ]
    for row in payload["policies"]:
        lines.append(
            f"  {row['policy']:<10}"
            f"  {row['sla_attainment']:>6.2%}"
            f"  {row['breach_rack_days']:>8}"
            f"  {row['spare_servers_ordered']:>6}"
            f"  {row['n_interventions']:>6}"
            f"  {row['failures_prevented']:>9.1f}"
            f"  {row['tco_units']:>8.0f}"
        )
    verdict = payload.get("verdict")
    if verdict is not None:
        sla_word = (
            "matches or beats" if verdict["predictive_beats_reactive_sla"]
            else "trails"
        )
        tco_word = (
            "at equal or lower" if verdict["predictive_tco_leq_reactive"]
            else "but at higher"
        )
        lines += [
            "",
            f"  verdict: acting on predictions {sla_word} break/fix on "
            f"SLA attainment ({verdict['sla_attainment_delta']:+.2%}) "
            f"{tco_word} TCO ({verdict['tco_delta_units']:+.0f} units).",
        ]
    return "\n".join(lines)


def autonomics_experiment(context: AnalysisContext) -> str:
    """Registered experiment entry point (artifact-aware)."""
    payload = None
    artifacts = getattr(context, "artifacts", None)
    if artifacts is not None and artifacts.has_stage(
        autonomics_stage("compare")
    ):
        payload = artifacts.get(autonomics_stage("compare"))
    if payload is None:
        payload = compute_autonomics_payload(context.result.config)
    return render_autonomics(payload)


def autonomics_query_payload(context: AnalysisContext, params: dict) -> dict:
    """Serve-layer payload: the shootout, optionally re-parameterized."""
    policies = params.get("policies", ",".join(DEFAULT_POLICIES))
    if isinstance(policies, str):
        policies = tuple(p.strip() for p in policies.split(",") if p.strip())
    unknown = [p for p in policies if p not in BUILTIN_POLICIES]
    if unknown:
        raise DataError(
            f"unknown policies {unknown}; "
            f"built-ins: {', '.join(BUILTIN_POLICIES)}"
        )
    if not policies:
        raise DataError("need at least one policy")
    sla_level = float(params.get("sla_level", DEFAULT_SLA_LEVEL))
    if not 0.0 < sla_level <= 1.0:
        raise DataError(f"sla_level must be in (0, 1], got {sla_level}")
    decide_every = int(params.get("decide_every_days",
                                  DEFAULT_DECIDE_EVERY_DAYS))

    artifacts = getattr(context, "artifacts", None)
    defaults = (
        policies == DEFAULT_POLICIES
        and sla_level == DEFAULT_SLA_LEVEL
        and decide_every == DEFAULT_DECIDE_EVERY_DAYS
    )
    if (
        defaults
        and artifacts is not None
        and artifacts.has_stage(autonomics_stage("compare"))
    ):
        return artifacts.get(autonomics_stage("compare"))
    return compute_autonomics_payload(
        context.result.config,
        policies=policies,
        sla_level=sla_level,
        decide_every_days=decide_every,
    )
