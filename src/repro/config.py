"""Top-level simulation configuration.

One :class:`SimulationConfig` fully determines a run: fleet construction,
observation-window length and calendar alignment, fault base rates and
the master seed.  Two runs with equal configs produce identical tickets,
sensor readings and downstream analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .datacenter.builder import FleetConfig
from .errors import ConfigError
from .failures.faultmodel import FaultRateConfig
from .units import DAYS_PER_WEEK, DAYS_PER_YEAR

# The paper's observation window: "data spans a period of more than
# 2.5 years" (§IV).
PAPER_OBSERVATION_DAYS = 910


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of one simulation run.

    Attributes:
        seed: master RNG seed; every subsystem derives named streams
            from it (see :class:`repro.rng.RngRegistry`).
        n_days: observation-window length in days.
        fleet: fleet-construction knobs (scale, SKU mixes, confounds).
        rates: fault base rates (Table II calibration).
        start_day_of_week: weekday of day 0 (0=Sunday).
        start_day_of_year: day-of-year of day 0 (0=Jan 1); the paper's
            month-of-year effect needs runs spanning whole years.
    """

    seed: int = 0
    n_days: int = PAPER_OBSERVATION_DAYS
    fleet: FleetConfig = field(default_factory=FleetConfig)
    rates: FaultRateConfig = field(default_factory=FaultRateConfig)
    start_day_of_week: int = 0
    start_day_of_year: int = 0

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise ConfigError(f"n_days must be >= 1, got {self.n_days}")
        if not 0 <= self.start_day_of_week < DAYS_PER_WEEK:
            raise ConfigError(f"start_day_of_week out of range: {self.start_day_of_week}")
        if not 0 <= self.start_day_of_year < DAYS_PER_YEAR:
            raise ConfigError(f"start_day_of_year out of range: {self.start_day_of_year}")
        if self.fleet.observation_days != self.n_days:
            raise ConfigError(
                "fleet.observation_days must equal n_days "
                f"({self.fleet.observation_days} != {self.n_days}); "
                "use SimulationConfig.small()/paper_scale() or build the "
                "FleetConfig with matching observation_days"
            )

    @staticmethod
    def paper_scale(seed: int = 0) -> "SimulationConfig":
        """Full paper-scale run: 331+290 racks over 910 days."""
        return SimulationConfig(
            seed=seed,
            n_days=PAPER_OBSERVATION_DAYS,
            fleet=FleetConfig(scale=1.0, observation_days=PAPER_OBSERVATION_DAYS),
        )

    @staticmethod
    def small(seed: int = 0, scale: float = 0.12, n_days: int = 240) -> "SimulationConfig":
        """A miniature run for tests and quick exploration."""
        return SimulationConfig(
            seed=seed,
            n_days=n_days,
            fleet=FleetConfig(scale=scale, observation_days=n_days),
        )
