"""repro — reproduction of "Rain or Shine? Making Sense of Cloudy
Reliability Data" (ICDCS 2017).

A synthetic datacenter-fleet simulator (topology, environment, RMA
ticket generation) plus the paper's multi-factor analysis framework
(CART, partial dependence) and its three decision studies: spare
provisioning (Q1), SKU/vendor ranking (Q2) and environmental operating
ranges (Q3).

Quickstart::

    import repro

    result = repro.simulate(repro.SimulationConfig.small(seed=1))
    print(result.summary())
"""

from .analysis import (
    FailurePredictor,
    MultiFactorModel,
    RegressionTree,
    SingleFactorModel,
    TreeParams,
    parse_formula,
    partial_dependence,
    render_tree,
)
from .config import PAPER_OBSERVATION_DAYS, SimulationConfig
from .decisions import (
    AvailabilitySla,
    ComponentProvisioner,
    SpareProvisioner,
    TcoModel,
    compare_skus,
    procurement_scenarios,
)
from .errors import (
    ConfigError,
    DataError,
    FitError,
    FormulaError,
    ReproError,
    SchemaError,
    SimulationError,
)
from .cache import RunCache, simulate_cached
from .failures.engine import SimulationResult, simulate
from .fielddata import (
    CorruptionPipeline,
    FieldDataset,
    clean_dataset,
    degrade_and_clean,
    load_field_dataset,
    load_inventory_csv,
    load_tickets_csv,
    standard_pipeline,
)
from .parallel import map_seeds, run_experiments
from .reporting import AnalysisContext, EXPERIMENTS, get_experiment
from .rng import RngRegistry
from .stream import (
    Alert,
    AlertKind,
    Event,
    EventKind,
    StreamAnalyzer,
    StreamInventory,
    flatten_field_dataset,
    flatten_result,
    load_checkpoint,
    save_checkpoint,
)
from .telemetry import Table, build_rack_day_table, lambda_matrix, mu_matrix

__version__ = "1.0.0"

__all__ = [
    "EXPERIMENTS",
    "PAPER_OBSERVATION_DAYS",
    "Alert",
    "AlertKind",
    "AnalysisContext",
    "AvailabilitySla",
    "Event",
    "EventKind",
    "ComponentProvisioner",
    "ConfigError",
    "CorruptionPipeline",
    "DataError",
    "FailurePredictor",
    "FieldDataset",
    "FitError",
    "FormulaError",
    "MultiFactorModel",
    "RegressionTree",
    "ReproError",
    "RngRegistry",
    "RunCache",
    "SchemaError",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "SingleFactorModel",
    "SpareProvisioner",
    "StreamAnalyzer",
    "StreamInventory",
    "Table",
    "TcoModel",
    "TreeParams",
    "build_rack_day_table",
    "clean_dataset",
    "compare_skus",
    "degrade_and_clean",
    "flatten_field_dataset",
    "flatten_result",
    "get_experiment",
    "lambda_matrix",
    "load_checkpoint",
    "load_field_dataset",
    "load_inventory_csv",
    "load_tickets_csv",
    "map_seeds",
    "save_checkpoint",
    "standard_pipeline",
    "mu_matrix",
    "parse_formula",
    "partial_dependence",
    "procurement_scenarios",
    "render_tree",
    "run_experiments",
    "simulate",
    "simulate_cached",
    "__version__",
]
