"""Availability SLAs and the spare-sizing math on μ distributions.

§VI-Q1: "We define the availability SLA for a workload as the
percentage of servers that needs to be available to that workload at
all times."  With capacity C, SLA level s and spare count k, every
window must satisfy

    C − μ + k  ≥  s · C      ⇔      k  ≥  μ − (1 − s) · C,

so the required spares are ``(max observed μ − allowed shortfall)⁺``:
a 100% SLA provisions for the worst observed window in full, while a
95% SLA may leave up to 5% of capacity uncovered at the worst moment.
This shortfall form keeps SF ≥ MF ≥ LB at every SLA (Fig 10's ordering).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, DataError

# The three example SLAs the paper evaluates (Figs 10, 12; Table IV).
PAPER_SLAS = (0.90, 0.95, 1.00)


@dataclass(frozen=True)
class AvailabilitySla:
    """An availability target.

    Attributes:
        level: fraction of servers that must be available at all times
            (0.90, 0.95, 1.00 in the paper's evaluation).
    """

    level: float

    def __post_init__(self) -> None:
        if not 0.0 < self.level <= 1.0:
            raise ConfigError(f"SLA level must be in (0, 1], got {self.level}")

    @property
    def percent_label(self) -> str:
        """Rendering such as ``"95%"``."""
        return f"{self.level * 100:g}%"

    @property
    def shortfall(self) -> float:
        """Fraction of capacity allowed to be down at the worst moment."""
        return 1.0 - self.level


def required_spares(
    mu_samples: np.ndarray,
    sla: AvailabilitySla,
    capacity: float,
) -> float:
    """Spares keeping ``sla.level`` of ``capacity`` available always.

    ``(max μ − (1 − level) · capacity)⁺`` per the module docstring.
    """
    mu_samples = np.asarray(mu_samples, dtype=float)
    if mu_samples.size == 0:
        raise DataError("no μ samples to size spares from")
    if (mu_samples < 0).any():
        raise DataError("μ samples must be non-negative")
    if capacity <= 0:
        raise DataError(f"capacity must be positive, got {capacity}")
    return float(max(0.0, mu_samples.max() - sla.shortfall * capacity))


def overprovision_fraction(spares: float, capacity: float) -> float:
    """Spare count as a fraction of provisioned capacity."""
    if capacity <= 0:
        raise DataError(f"capacity must be positive, got {capacity}")
    if spares < 0:
        raise DataError(f"spares must be >= 0, got {spares}")
    return float(spares / capacity)


def uniform_fraction_for_pool(
    mu_fractions: np.ndarray,
    sla: AvailabilitySla,
) -> float:
    """The single spare fraction covering a pooled μ/capacity sample.

    This is the SF provisioning rule: one fraction applied uniformly to
    every rack of the workload, read off the pooled CDF (Fig 1's solid
    curve, §VI-Q1 approach (b)): the worst pooled fraction minus the
    allowed shortfall.
    """
    mu_fractions = np.asarray(mu_fractions, dtype=float)
    if mu_fractions.size == 0:
        raise DataError("empty pooled μ-fraction sample")
    return float(max(0.0, mu_fractions.max() - sla.shortfall))
