"""Q1-B: component-level vs server-level spare provisioning.

§VI-Q1-B: "Rather than keeping spares at the server level, it can
sometimes be more cost-effective to keep spares for the individual
components that fail within the server" — hard disks and memory, pooled
at rack level ("aggregate scale"), with every other hardware failure
still covered by server spares.  Costs use the paper's 100 : 2 : 10
server : disk : DIMM ratio.

Reproduction targets (Fig 13, 100% SLA, daily):

* MF: component-level cost clearly below server-level; ≈40% lower for
  the compute workload W1, ≈10% for the storage workload W6.
* SF: component-level cost *exceeds* server-level cost for W1 — the
  "conservative sum of peak provisioning across resources".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.cart.tree import RegressionTree, TreeParams
from ..analysis.clustering import clusters_from_tree
from ..errors import DataError
from ..failures.engine import SimulationResult
from ..failures.tickets import FaultType
from ..telemetry.aggregate import mu_matrix, rack_static_table
from .availability import AvailabilitySla, required_spares, uniform_fraction_for_pool
from .tco import TcoModel

# Resource split of hardware faults: disks and DIMMs get their own spare
# pools; everything else (power, server, network) consumes server spares.
COMPONENT_FAULTS: dict[str, list[FaultType]] = {
    "disk": [FaultType.DISK],
    "dimm": [FaultType.MEMORY],
    "server": [FaultType.POWER, FaultType.SERVER, FaultType.NETWORK],
}


@dataclass(frozen=True)
class ResourceProvision:
    """Spare fractions for one resource pool under one approach."""

    resource: str
    fraction: float
    units_total: int


@dataclass(frozen=True)
class ComponentPlan:
    """Q1-B answer for one workload/SLA/approach.

    Attributes:
        approach: ``"LB"``, ``"SF"`` or ``"MF"``.
        workload: workload name.
        component_cost: CapEx of the disk+DIMM+server mixed pool.
        server_cost: CapEx of the all-server-spares alternative.
        resources: per-resource fractions backing ``component_cost``.
        server_fraction: fraction backing ``server_cost``.
    """

    approach: str
    workload: str
    component_cost: float
    server_cost: float
    resources: tuple[ResourceProvision, ...]
    server_fraction: float

    @property
    def component_vs_server(self) -> float:
        """component cost / server cost (< 1 means components win)."""
        if self.server_cost <= 0:
            raise DataError("server-level plan has zero cost")
        return self.component_cost / self.server_cost


class ComponentProvisioner:
    """Computes Fig 13's component-vs-server spare costs.

    Args:
        result: simulation run.
        window_hours: μ window (the paper presents daily).
        tco: cost model (defaults to the paper's ratios).
        min_service_days: rack eligibility threshold, as in Q1-A.
    """

    def __init__(
        self,
        result: SimulationResult,
        window_hours: float = 24.0,
        tco: TcoModel | None = None,
        min_service_days: int = 56,
    ):
        self.result = result
        self.window_hours = window_hours
        self.tco = tco or TcoModel()
        self.arrays = result.fleet.arrays()

        # Raw device intervals for component pools (each failed disk is a
        # spare consumed); merged per-server intervals for server pools.
        self.mu_by_resource = {
            "disk": mu_matrix(result, window_hours, COMPONENT_FAULTS["disk"],
                              per_server=False),
            "dimm": mu_matrix(result, window_hours, COMPONENT_FAULTS["dimm"],
                              per_server=False),
            "server": mu_matrix(result, window_hours, COMPONENT_FAULTS["server"],
                                per_server=True),
        }
        self.mu_all = mu_matrix(result, window_hours, per_server=True)

        n_windows = self.mu_all.shape[1]
        window_start_day = np.arange(n_windows) * window_hours / 24.0
        self._in_service = (
            self.arrays.commission_day[:, np.newaxis]
            <= window_start_day[np.newaxis, :]
        )
        service_days = self._in_service.sum(axis=1) * window_hours / 24.0
        self._eligible = service_days >= min_service_days

    # -- shared helpers ----------------------------------------------------

    def workload_racks(self, workload: str) -> np.ndarray:
        """Eligible rack indices assigned to ``workload``."""
        self.result.fleet.workloads.get(workload)
        code = self.arrays.workload_names.index(workload)
        racks = np.flatnonzero((self.arrays.workload_code == code) & self._eligible)
        if racks.size == 0:
            raise DataError(f"no eligible racks for workload {workload!r}")
        return racks

    def _units(self, resource: str, racks: np.ndarray) -> np.ndarray:
        """Per-rack unit capacity of a resource pool."""
        if resource == "disk":
            return (self.arrays.n_servers[racks]
                    * self.arrays.hdds_per_server[racks]).astype(float)
        if resource == "dimm":
            return (self.arrays.n_servers[racks]
                    * self.arrays.dimms_per_server[racks]).astype(float)
        if resource == "server":
            return self.arrays.n_servers[racks].astype(float)
        raise DataError(f"unknown resource {resource!r}")

    def _fractions_lb(self, mu: np.ndarray, racks: np.ndarray,
                      units: np.ndarray, sla: AvailabilitySla) -> np.ndarray:
        """Per-rack oracle fractions for one resource."""
        fractions = np.empty(len(racks))
        for i, rack in enumerate(racks.tolist()):
            samples = mu[rack][self._in_service[rack]]
            fractions[i] = required_spares(samples, sla, units[i]) / units[i]
        return fractions

    def _fraction_sf(self, mu: np.ndarray, racks: np.ndarray,
                     units: np.ndarray, sla: AvailabilitySla) -> float:
        """Pooled uniform fraction for one resource."""
        pooled = np.concatenate([
            mu[rack][self._in_service[rack]] / units[i]
            for i, rack in enumerate(racks.tolist())
        ])
        return uniform_fraction_for_pool(pooled, sla)

    def _fractions_mf(self, mu: np.ndarray, racks: np.ndarray,
                      units: np.ndarray, sla: AvailabilitySla) -> np.ndarray:
        """Cluster-wise fractions for one resource (as in Q1-A's MF)."""
        requirement = self._fractions_lb(mu, racks, units, sla)
        static = rack_static_table(self.result).take(racks)
        matrix, schema = static.feature_matrix(
            ["dc", "region", "sku", "age_months", "rated_power_kw"]
        )
        min_bucket = max(3, len(racks) // 18)
        params = TreeParams(
            max_depth=6, min_split=2 * min_bucket, min_bucket=min_bucket,
            cp=0.004, max_leaves=12,
        )
        tree = RegressionTree(params).fit(matrix, requirement, schema)
        fractions = np.empty(len(racks))
        for cluster in clusters_from_tree(tree, matrix):
            member_rows = cluster.member_rows
            pooled = np.concatenate([
                mu[racks[row]][self._in_service[racks[row]]] / units[row]
                for row in member_rows.tolist()
            ])
            fractions[member_rows] = uniform_fraction_for_pool(pooled, sla)
        return fractions

    # -- the headline comparison -------------------------------------------

    def plan(self, workload: str, sla: AvailabilitySla, approach: str) -> ComponentPlan:
        """Component-vs-server plan for one workload and approach."""
        if approach not in ("LB", "SF", "MF"):
            raise DataError(f"unknown approach {approach!r}")
        racks = self.workload_racks(workload)

        resources: list[ResourceProvision] = []
        component_cost = 0.0
        for resource, mu in self.mu_by_resource.items():
            units = self._units(resource, racks)
            if approach == "LB":
                fractions = self._fractions_lb(mu, racks, units, sla)
            elif approach == "SF":
                fractions = np.full(
                    len(racks), self._fraction_sf(mu, racks, units, sla)
                )
            else:
                fractions = self._fractions_mf(mu, racks, units, sla)
            spare_units = float((fractions * units).sum())
            mean_fraction = spare_units / units.sum()
            resources.append(ResourceProvision(
                resource=resource,
                fraction=mean_fraction,
                units_total=int(units.sum()),
            ))
            unit_cost = {
                "disk": self.tco.params.disk_cost,
                "dimm": self.tco.params.dimm_cost,
                "server": self.tco.params.server_cost,
            }[resource]
            component_cost += spare_units * unit_cost

        server_units = self._units("server", racks)
        if approach == "LB":
            server_fractions = self._fractions_lb(self.mu_all, racks, server_units, sla)
        elif approach == "SF":
            server_fractions = np.full(
                len(racks), self._fraction_sf(self.mu_all, racks, server_units, sla)
            )
        else:
            server_fractions = self._fractions_mf(self.mu_all, racks, server_units, sla)
        server_spares = float((server_fractions * server_units).sum())
        server_fraction = server_spares / server_units.sum()
        server_cost = server_spares * self.tco.params.server_cost

        return ComponentPlan(
            approach=approach,
            workload=workload,
            component_cost=component_cost,
            server_cost=server_cost,
            resources=tuple(resources),
            server_fraction=server_fraction,
        )

    def compare(self, workload: str, sla: AvailabilitySla) -> dict[str, ComponentPlan]:
        """All three approaches for one workload (one Fig 13 bar group)."""
        return {
            approach: self.plan(workload, sla, approach)
            for approach in ("LB", "SF", "MF")
        }
