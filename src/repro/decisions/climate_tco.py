"""Climate-control TCO: how hot may a DC run before failures outweigh
the cooling savings?

§VI-Q3 closes with: "while DC operators can leverage the MF to identify
the control knob settings for achieving desired availability targets, a
more extensive analysis (considering cost of environment control) is
required to minimize overall TCO."  This module is that analysis:

1. estimate the disk-failure-rate response to temperature from the
   observed rack-days (an empirical rate curve, no ground-truth access);
2. for each candidate temperature cap, predict the failures avoided by
   mechanically trimming all hotter days down to the cap;
3. price both sides — mechanical trim cooling (per rack-degree-day) vs
   failure handling (repair OpEx + amortized spare CapEx) — and find
   the cap minimizing the total.

With the planted ≈50% step at 78 °F, the optimum lands just below the
step for any trim price that is cheap relative to failure handling, and
drifts upward (run hotter, eat the failures) as trim energy gets more
expensive — the cost-reliability trade-off curve the paper asks for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, DataError
from ..failures.engine import SimulationResult
from ..failures.tickets import FaultType
from ..telemetry.aggregate import build_rack_day_table
from ..telemetry.table import Table


@dataclass(frozen=True)
class ClimateCostParams:
    """Prices for the trade-off (server-cost units, as in TcoModel).

    Attributes:
        trim_cost_per_rack_degree_day: mechanical cooling energy+capex
            to hold one rack one degree Fahrenheit below its free-cooled
            supply for one day.
        failure_cost_per_event: repair OpEx plus amortized spare CapEx
            consumed by one disk RMA.
    """

    trim_cost_per_rack_degree_day: float = 0.002
    failure_cost_per_event: float = 8.0

    def __post_init__(self) -> None:
        if self.trim_cost_per_rack_degree_day < 0:
            raise ConfigError("trim cost must be >= 0")
        if self.failure_cost_per_event < 0:
            raise ConfigError("failure cost must be >= 0")


@dataclass(frozen=True)
class TemperatureRateCurve:
    """Empirical disk-failure rate vs inlet temperature.

    Attributes:
        bin_edges: temperature bin boundaries (1-degree bins).
        rates: mean rack-day disk-failure rate per bin (NaN = no data;
            evaluation clamps into the observed range).
    """

    bin_edges: np.ndarray
    rates: np.ndarray

    def evaluate(self, temp_f: np.ndarray) -> np.ndarray:
        """Rate at given temperatures (clamped to the observed range)."""
        temp = np.asarray(temp_f, dtype=float)
        index = np.clip(
            np.searchsorted(self.bin_edges, temp, side="right") - 1,
            0, len(self.rates) - 1,
        )
        return self.rates[index]


def fit_rate_curve(
    table: Table,
    dc_name: str,
    bin_width_f: float = 1.0,
    min_bin_rows: int = 50,
    normalize_features: tuple[str, ...] = (
        "age_months", "sku", "workload", "rated_power_kw", "region", "rh",
    ),
) -> tuple[TemperatureRateCurve, np.ndarray]:
    """Fit the disk-rate-vs-temperature response for one DC.

    Raw temperature-binned rates are confounded — cold days are early-
    window days when infant-mortality racks dominate, and hot days are
    also dry days — so, as in
    :func:`~repro.decisions.climate.discover_climate_thresholds`, a CART
    on the non-temperature factors (humidity included: it is a separate
    control knob) is fitted first and the curve is estimated on the
    *relative residual* (observed / expected).  The
    returned curve is a relative multiplier; the per-row baseline
    expectations come back alongside it so callers can price absolute
    failure counts.

    Returns:
        (relative-rate curve, per-row baseline expectations) — both
        restricted to the DC's rows in table order.
    """
    in_dc = np.asarray(table.decoded("dc") == dc_name)
    if not in_dc.any():
        raise DataError(f"no rack-days for {dc_name!r}")
    sub = table.filter(in_dc)
    temp = sub.column("temp_f").astype(float)
    failures = sub.column("failures").astype(float)

    from ..analysis.cart.tree import RegressionTree, TreeParams

    matrix_n, schema_n = sub.feature_matrix(list(normalize_features))
    normalizer = RegressionTree(TreeParams(
        max_depth=6, min_split=400, min_bucket=150, cp=5e-4,
    )).fit(matrix_n, failures, schema_n)
    baseline = np.maximum(normalizer.predict(matrix_n), 1e-9)
    relative = failures / baseline

    low = np.floor(temp.min())
    high = np.ceil(temp.max()) + bin_width_f
    edges = np.arange(low, high, bin_width_f)
    rates = np.full(len(edges), np.nan)
    index = np.clip(np.searchsorted(edges, temp, side="right") - 1,
                    0, len(edges) - 1)
    for b in range(len(edges)):
        members = index == b
        if members.sum() >= min_bin_rows:
            rates[b] = relative[members].mean()
    if np.isnan(rates).all():
        raise DataError("no temperature bin has enough rows")
    counts = np.bincount(index, minlength=len(edges)).astype(float)
    # Fill sparse bins from the nearest populated one.
    populated = np.flatnonzero(np.isfinite(rates))
    for b in np.flatnonzero(np.isnan(rates)):
        nearest = populated[np.argmin(np.abs(populated - b))]
        rates[b] = rates[nearest]
        counts[b] = max(counts[b], 1.0)
    # Physical prior: heat never helps disks (Fig 17's monotone trend) —
    # isotonic regression removes binned sampling noise.
    rates = _isotonic_nondecreasing(rates, np.maximum(counts, 1.0))
    return TemperatureRateCurve(bin_edges=edges, rates=rates), baseline


def _isotonic_nondecreasing(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Weighted pool-adjacent-violators: closest non-decreasing sequence."""
    blocks = [[float(v), float(w)] for v, w in zip(values, weights)]
    merged: list[list[float]] = []  # [mean, weight, length]
    for value, weight in blocks:
        merged.append([value, weight, 1.0])
        while len(merged) > 1 and merged[-2][0] > merged[-1][0]:
            mean_b, weight_b, len_b = merged.pop()
            mean_a, weight_a, len_a = merged.pop()
            total = weight_a + weight_b
            merged.append([
                (mean_a * weight_a + mean_b * weight_b) / total,
                total, len_a + len_b,
            ])
    output = np.empty(len(values))
    position = 0
    for mean, _, length in merged:
        output[position:position + int(length)] = mean
        position += int(length)
    return output


@dataclass(frozen=True)
class SetpointEvaluation:
    """Costs of enforcing one temperature cap over the observed window."""

    cap_f: float
    trim_degree_days: float
    expected_failures: float
    cooling_cost: float
    failure_cost: float

    @property
    def total_cost(self) -> float:
        """Cooling plus failure handling."""
        return self.cooling_cost + self.failure_cost


@dataclass(frozen=True)
class ClimateTcoCurve:
    """The full trade-off curve and its optimum."""

    dc: str
    evaluations: tuple[SetpointEvaluation, ...]

    @property
    def optimal(self) -> SetpointEvaluation:
        """The cap minimizing total cost."""
        return min(self.evaluations, key=lambda e: e.total_cost)

    def render(self) -> str:
        """Text table of the curve."""
        lines = [f"Climate-control TCO curve for {self.dc} "
                 "(costs in server-cost units over the window):"]
        for evaluation in self.evaluations:
            marker = "  <-- optimal" if evaluation is self.optimal else ""
            lines.append(
                f"  cap {evaluation.cap_f:5.1f} F: cooling "
                f"{evaluation.cooling_cost:10.1f}  failures "
                f"{evaluation.failure_cost:10.1f}  total "
                f"{evaluation.total_cost:10.1f}{marker}"
            )
        return "\n".join(lines)


def climate_tco_curve(
    result: SimulationResult,
    dc_name: str = "DC1",
    caps_f: np.ndarray | None = None,
    params: ClimateCostParams | None = None,
    table: Table | None = None,
) -> ClimateTcoCurve:
    """Evaluate temperature caps for one DC and find the TCO optimum.

    Args:
        result: simulation run.
        dc_name: facility to optimize (DC1 is the interesting one).
        caps_f: candidate caps; defaults to 70..88 °F.
        params: prices.
        table: pre-built disk rack-day table (built if omitted).
    """
    params = params or ClimateCostParams()
    if caps_f is None:
        caps_f = np.arange(70.0, 89.0, 2.0)
    if len(caps_f) == 0:
        raise DataError("need at least one candidate cap")
    if table is None:
        table = build_rack_day_table(result, faults=[FaultType.DISK])

    curve, baseline = fit_rate_curve(table, dc_name)
    in_dc = np.asarray(table.decoded("dc") == dc_name)
    temp = table.column("temp_f").astype(float)[in_dc]

    evaluations = []
    for cap in np.asarray(caps_f, dtype=float):
        trimmed = np.minimum(temp, cap)
        degree_days = float(np.maximum(0.0, temp - cap).sum())
        expected = float((baseline * curve.evaluate(trimmed)).sum())
        evaluations.append(SetpointEvaluation(
            cap_f=float(cap),
            trim_degree_days=degree_days,
            expected_failures=expected,
            cooling_cost=degree_days * params.trim_cost_per_rack_degree_day,
            failure_cost=expected * params.failure_cost_per_event,
        ))
    return ClimateTcoCurve(dc=dc_name, evaluations=tuple(evaluations))
