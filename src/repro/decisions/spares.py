"""Q1-A: server spare provisioning — LB, SF and MF approaches.

§VI-Q1 compares three ways to size per-rack server spares against an
availability SLA:

* **LB (lower bound)** — pretend each rack's own future μ distribution
  was known before deployment and provision exactly its SLA quantile.
  Not realizable; the floor every practical approach is measured against.
* **SF (single factor)** — pool the μ/capacity fractions of *all* racks
  of the workload and apply the pooled SLA quantile uniformly to every
  rack ("a conservative one-size-fits-all provisioning").
* **MF (multi factor)** — CART-cluster the racks on deployment-time
  features (DC, region, SKU, age, power, ...), pool μ within each
  cluster, and provision each cluster its own fraction.  New racks are
  provisioned by the cluster they fall into.

The headline reproduction targets: MF is well under half of SF at the
100% SLA and close to LB (Fig 10); MF finds ~10 clusters spanning
2-50% for the compute workload W1 and ~5 clusters spanning 2-85% for
the storage workload W6 (Fig 11); moving from daily to hourly windows
roughly halves MF while leaving SF nearly unchanged (Fig 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.cart.tree import RegressionTree, TreeParams
from ..analysis.clustering import Cluster, clusters_from_tree
from ..errors import DataError
from ..failures.engine import SimulationResult
from ..telemetry.aggregate import mu_matrix, rack_static_table
from .availability import (
    AvailabilitySla,
    required_spares,
    uniform_fraction_for_pool,
)


@dataclass(frozen=True)
class ClusterProvision:
    """Provisioning decision for one MF cluster.

    Attributes:
        description: the cluster's defining feature conditions.
        rack_indices: fleet rack indices of the members.
        fraction: spare fraction provisioned for every member rack.
        requirement_samples: the members' pooled μ/capacity samples
            (Fig 11 plots their CDF per cluster).
    """

    description: str
    rack_indices: np.ndarray
    fraction: float
    requirement_samples: np.ndarray

    @property
    def n_racks(self) -> int:
        """Number of member racks."""
        return len(self.rack_indices)


@dataclass(frozen=True)
class SparePlan:
    """A complete provisioning answer for one workload/SLA/granularity.

    Attributes:
        approach: ``"LB"``, ``"SF"`` or ``"MF"``.
        workload: workload name.
        sla: availability target.
        window_hours: μ window (24 = daily, 1 = hourly).
        rack_indices: racks covered by the plan.
        per_rack_fraction: spare fraction assigned to each rack (aligned
            with ``rack_indices``).
        overprovision: total spares / total capacity — the y-axis of
            Figs 10 and 12.
        clusters: MF cluster details (None for LB/SF).
    """

    approach: str
    workload: str
    sla: AvailabilitySla
    window_hours: float
    rack_indices: np.ndarray
    per_rack_fraction: np.ndarray
    overprovision: float
    clusters: tuple[ClusterProvision, ...] | None = None


class SpareProvisioner:
    """Shared machinery for the three provisioning approaches.

    Builds the per-rack μ matrices once and answers LB/SF/MF queries for
    any workload, SLA and window granularity.

    Args:
        result: simulation run.
        window_hours: μ window length.
        min_service_days: racks observed for fewer in-service days are
            excluded (their μ distribution is too short to provision
            from — matching how an operator would treat brand-new racks).
    """

    def __init__(
        self,
        result: SimulationResult,
        window_hours: float = 24.0,
        min_service_days: int = 56,
        integral: bool = False,
    ):
        if min_service_days < 1:
            raise DataError(f"min_service_days must be >= 1, got {min_service_days}")
        self.result = result
        self.window_hours = window_hours
        # Integral mode rounds every rack's spare allocation up to whole
        # servers (physical provisioning); continuous mode (default)
        # keeps fractions, which compare more cleanly across approaches.
        self.integral = integral
        self.arrays = result.fleet.arrays()
        self.mu = mu_matrix(result, window_hours)
        self._in_service = self._service_mask()
        service_days = (
            self._in_service.sum(axis=1) * window_hours / 24.0
        )
        self._eligible = service_days >= min_service_days

    def _service_mask(self) -> np.ndarray:
        """(n_racks, n_windows) bool: window starts after commissioning."""
        n_windows = self.mu.shape[1]
        window_start_day = np.arange(n_windows) * self.window_hours / 24.0
        return (
            self.arrays.commission_day[:, np.newaxis]
            <= window_start_day[np.newaxis, :]
        )

    def workload_racks(self, workload: str) -> np.ndarray:
        """Eligible rack indices assigned to ``workload``."""
        self.result.fleet.workloads.get(workload)
        code = self.arrays.workload_names.index(workload)
        racks = np.flatnonzero((self.arrays.workload_code == code) & self._eligible)
        if racks.size == 0:
            raise DataError(f"no eligible racks for workload {workload!r}")
        return racks

    def rack_requirement(self, rack: int, sla: AvailabilitySla) -> float:
        """Spare count the rack's own μ history demands at this SLA."""
        samples = self.mu[rack][self._in_service[rack]]
        if samples.size == 0:
            raise DataError(f"rack {rack} has no in-service windows")
        return required_spares(samples, sla, float(self.arrays.n_servers[rack]))

    def pooled_fractions(self, racks: np.ndarray) -> np.ndarray:
        """All in-service μ/capacity samples of the given racks, pooled."""
        parts = []
        for rack in np.asarray(racks, dtype=np.int64):
            samples = self.mu[rack][self._in_service[rack]]
            parts.append(samples / float(self.arrays.n_servers[rack]))
        pooled = np.concatenate(parts) if parts else np.empty(0)
        if pooled.size == 0:
            raise DataError("no pooled μ samples")
        return pooled

    # -- the three approaches ---------------------------------------------

    def lower_bound(self, workload: str, sla: AvailabilitySla) -> SparePlan:
        """Oracle per-rack provisioning (§VI-Q1 approach (a))."""
        racks = self.workload_racks(workload)
        capacity = self.arrays.n_servers[racks].astype(float)
        spares = np.array([self.rack_requirement(r, sla) for r in racks])
        if self.integral:
            spares = np.ceil(spares)
        return SparePlan(
            approach="LB",
            workload=workload,
            sla=sla,
            window_hours=self.window_hours,
            rack_indices=racks,
            per_rack_fraction=spares / capacity,
            overprovision=float(spares.sum() / capacity.sum()),
        )

    def single_factor(self, workload: str, sla: AvailabilitySla) -> SparePlan:
        """Uniform-fraction provisioning from the pooled workload CDF."""
        racks = self.workload_racks(workload)
        fraction = uniform_fraction_for_pool(self.pooled_fractions(racks), sla)
        capacity = self.arrays.n_servers[racks].astype(float)
        if self.integral:
            spares = np.ceil(fraction * capacity)
            per_rack = spares / capacity
            overprovision = float(spares.sum() / capacity.sum())
        else:
            per_rack = np.full(len(racks), fraction)
            overprovision = fraction
        return SparePlan(
            approach="SF",
            workload=workload,
            sla=sla,
            window_hours=self.window_hours,
            rack_indices=racks,
            per_rack_fraction=per_rack,
            overprovision=overprovision,
        )

    def multi_factor(
        self,
        workload: str,
        sla: AvailabilitySla,
        params: TreeParams | None = None,
        clusters_from: SparePlan | None = None,
    ) -> SparePlan:
        """Cluster-wise provisioning (§VI-Q1 approach (c)).

        The clustering tree regresses each rack's own SLA requirement
        fraction on its deployment-time features; leaves become the
        provisioning clusters.

        Args:
            params: clustering-tree growth parameters.
            clusters_from: reuse another MF plan's rack grouping instead
                of re-clustering — e.g. hourly provisioning (Fig 12)
                reuses the daily clusters, since clusters are
                deployment-time groupings while the window granularity
                is a provisioning-time choice.
        """
        racks = self.workload_racks(workload)
        capacity = self.arrays.n_servers[racks].astype(float)

        if clusters_from is not None:
            if clusters_from.clusters is None:
                raise DataError("clusters_from plan carries no clusters")
            groups = [
                (cluster.description,
                 np.array([rack for rack in cluster.rack_indices
                           if rack in set(racks.tolist())], dtype=np.int64))
                for cluster in clusters_from.clusters
            ]
            groups = [(description, members) for description, members in groups
                      if members.size]
        else:
            requirement_fraction = np.array([
                self.rack_requirement(r, sla) for r in racks
            ]) / capacity
            static = rack_static_table(self.result).take(racks)
            features = ["dc", "region", "sku", "age_months", "rated_power_kw"]
            matrix, schema = static.feature_matrix(features)
            if params is None:
                min_bucket = max(3, len(racks) // 18)
                params = TreeParams(
                    max_depth=6,
                    min_split=2 * min_bucket,
                    min_bucket=min_bucket,
                    cp=0.004,
                    max_leaves=12,
                )
            tree = RegressionTree(params).fit(matrix, requirement_fraction, schema)
            groups = [
                (cluster.description, racks[cluster.member_rows])
                for cluster in clusters_from_tree(tree, matrix)
            ]

        rack_position = {rack: i for i, rack in enumerate(racks.tolist())}
        per_rack_fraction = np.empty(len(racks))
        provisions: list[ClusterProvision] = []
        for description, member_racks in groups:
            samples = self.pooled_fractions(member_racks)
            fraction = uniform_fraction_for_pool(samples, sla)
            member_rows = np.array(
                [rack_position[rack] for rack in member_racks.tolist()],
                dtype=np.int64,
            )
            per_rack_fraction[member_rows] = fraction
            provisions.append(ClusterProvision(
                description=description,
                rack_indices=member_racks,
                fraction=fraction,
                requirement_samples=samples,
            ))
        if self.integral:
            spares = np.ceil(per_rack_fraction * capacity)
            per_rack_fraction = spares / capacity
            overprovision = float(spares.sum() / capacity.sum())
        else:
            overprovision = float(
                (per_rack_fraction * capacity).sum() / capacity.sum()
            )
        return SparePlan(
            approach="MF",
            workload=workload,
            sla=sla,
            window_hours=self.window_hours,
            rack_indices=racks,
            per_rack_fraction=per_rack_fraction,
            overprovision=overprovision,
            clusters=tuple(provisions),
        )

    def compare(
        self,
        workload: str,
        sla: AvailabilitySla,
        params: TreeParams | None = None,
    ) -> dict[str, SparePlan]:
        """All three plans for one workload/SLA (one Fig 10 bar group)."""
        return {
            "LB": self.lower_bound(workload, sla),
            "SF": self.single_factor(workload, sla),
            "MF": self.multi_factor(workload, sla, params),
        }
