"""Q3: how do environmental settings affect failures?

§VI-Q3 studies temperature (and relative humidity) against failure
rates three ways:

* **Fig 16** — SF: all failures binned by operating temperature; the
  bin means barely move but within-bin variation is large.
* **Fig 17** — hard-disk failures binned by temperature: a clear rising
  trend.
* **Fig 18** — the MF classification: per-DC groups [T ≤ 78 °F],
  [T ≥ 78.8 °F], [T ≥ 78.8 °F ∧ RH ≤ 25.5%] and [All], normalized to
  the hot-dry group.  DC1 shows a ≈50% disk-failure increase above
  78 °F and a further ≈25% when also dry; DC2 is flat (its chilled-
  water plant never reaches the regime).

The module also lets the CART *discover* the split thresholds from the
data (rather than hard-coding 78/25), reproducing how the paper's tree
"identifies temperature at 78 °F as a splitting criteria".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.cart.splitter import best_split_for_feature
from ..analysis.cart.tree import RegressionTree, TreeParams
from ..errors import DataError
from ..failures.engine import SimulationResult
from ..failures.tickets import FaultType
from ..telemetry.aggregate import build_rack_day_table
from ..telemetry.stats import BinSpec, binned_mean_sd
from ..telemetry.table import Table

# Fig 16/17's temperature bins: <60, 60-65, 65-70, 70-75, >75 °F.
FIG16_TEMP_BINS = BinSpec(
    edges=(60.0, 65.0, 70.0, 75.0),
    labels=("<60", "60-65", "65-70", "70-75", ">75"),
)

# Fig 18's split values as the paper reports them.
PAPER_TEMP_SPLIT_F = 78.0
PAPER_TEMP_SPLIT_HIGH_F = 78.8
PAPER_RH_SPLIT = 25.5


@dataclass(frozen=True)
class BinnedRates:
    """Mean/sd failure rate per temperature bin (Figs 16-17)."""

    bins: BinSpec
    means: np.ndarray
    sds: np.ndarray
    counts: np.ndarray

    def as_rows(self) -> list[tuple[str, float, float, int]]:
        """(label, mean, sd, count) rows in bin order."""
        return [
            (label, float(mean), float(sd), int(count))
            for label, mean, sd, count in zip(
                self.bins.labels, self.means, self.sds, self.counts
            )
        ]


def temperature_binned_rates(
    result: SimulationResult,
    faults: list[FaultType] | None = None,
    bins: BinSpec = FIG16_TEMP_BINS,
    table: Table | None = None,
) -> BinnedRates:
    """Failure rate by operating-temperature bin.

    ``faults=None`` reproduces Fig 16 (all failures); pass
    ``[FaultType.DISK]`` for Fig 17.
    """
    if table is None:
        table = build_rack_day_table(result, faults=faults)
    temp = table.column("temp_f").astype(float)
    failures = table.column("failures").astype(float)
    bin_index = bins.assign(temp)
    means, sds, counts = binned_mean_sd(bin_index, failures, bins.n_bins)
    return BinnedRates(bins=bins, means=means, sds=sds, counts=counts)


@dataclass(frozen=True)
class ClimateGroupRates:
    """Fig 18's four groups for one DC, plus discovered thresholds.

    Attributes:
        dc: datacenter name.
        cool: mean disk failure rate for T <= 78 °F rack-days.
        hot: mean rate for T >= 78.8 °F rack-days.
        hot_dry: mean rate for T >= 78.8 °F and RH <= 25.5%.
        overall: mean rate over all rack-days.
        counts: rack-day counts per group, same order.
    """

    dc: str
    cool: float
    hot: float
    hot_dry: float
    overall: float
    counts: tuple[int, int, int, int]

    def normalized_to(self, reference: float) -> tuple[float, float, float, float]:
        """(cool, hot, hot_dry, overall) scaled by ``reference``.

        Fig 18 normalizes every bar to the mean rate of the
        T>78 ∧ RH<=25% sub-group (of DC1).
        """
        if reference <= 0:
            raise DataError("reference rate must be positive")
        return (
            self.cool / reference,
            self.hot / reference,
            self.hot_dry / reference,
            self.overall / reference,
        )


def climate_group_rates(
    result: SimulationResult,
    dc_name: str,
    temp_split: float = PAPER_TEMP_SPLIT_F,
    temp_split_high: float = PAPER_TEMP_SPLIT_HIGH_F,
    rh_split: float = PAPER_RH_SPLIT,
    table: Table | None = None,
    within_rack_normalized: bool = True,
) -> ClimateGroupRates:
    """Disk failure rates for Fig 18's temperature/RH groups in one DC.

    With ``within_rack_normalized`` (the MF view) each rack-day's count
    is divided by its rack's own mean rate before grouping, so static
    confounds — hot racks also being high-hazard racks — cancel and the
    groups isolate the *temperature/RH* effect, as the paper's
    normalization of "other factors such as age, SKU, workload, power
    rating" does.  Groups with no rack-days report a NaN mean.
    """
    if table is None:
        table = build_rack_day_table(result, faults=[FaultType.DISK])
    dc_labels = table.decoded("dc")
    in_dc = np.asarray(dc_labels == dc_name)
    if not in_dc.any():
        raise DataError(f"no rack-days for datacenter {dc_name!r}")
    temp = table.column("temp_f").astype(float)[in_dc]
    rh = table.column("rh").astype(float)[in_dc]
    failures = table.column("failures").astype(float)[in_dc]
    if within_rack_normalized:
        racks = table.column("rack_index").astype(np.int64)[in_dc]
        rack_mean = np.zeros(int(racks.max()) + 1)
        for rack in np.unique(racks):
            rack_mean[rack] = failures[racks == rack].mean()
        keep = rack_mean[racks] > 0
        failures = failures[keep] / rack_mean[racks[keep]]
        temp = temp[keep]
        rh = rh[keep]

    cool_mask = temp <= temp_split
    hot_mask = temp >= temp_split_high
    hot_dry_mask = hot_mask & (rh <= rh_split)

    def mean_or_nan(mask: np.ndarray) -> float:
        return float(failures[mask].mean()) if mask.any() else float("nan")

    return ClimateGroupRates(
        dc=dc_name,
        cool=mean_or_nan(cool_mask),
        hot=mean_or_nan(hot_mask),
        hot_dry=mean_or_nan(hot_dry_mask),
        overall=float(failures.mean()),
        counts=(
            int(cool_mask.sum()), int(hot_mask.sum()),
            int(hot_dry_mask.sum()), int(in_dc.sum()),
        ),
    )


@dataclass(frozen=True)
class DiscoveredThresholds:
    """Split points the CART finds for one DC's disk failures.

    Attributes:
        dc: datacenter name.
        temp_threshold_f: best temperature split (None if no split
            clears the gain floor — the DC2 case).
        rh_threshold: best RH split *within the hot side* of the
            temperature split (None likewise).
        temp_gain_share: the temperature split's SSE gain as a share of
            the DC's total response SSE (significance proxy).
    """

    dc: str
    temp_threshold_f: float | None
    rh_threshold: float | None
    temp_gain_share: float


def discover_climate_thresholds(
    result: SimulationResult,
    dc_name: str,
    min_gain_share: float = 0.002,
    table: Table | None = None,
    normalize_features: tuple[str, ...] = (
        "age_months", "sku", "workload", "rated_power_kw", "region",
    ),
) -> DiscoveredThresholds:
    """Let the tree find the 78 °F / 25% RH split points from data.

    Following §VI-Q3 ("normalizing other factors such as age, SKU,
    workload, power rating"), the non-environmental factors are first
    fitted by a CART and removed as residuals — without this the
    infant-mortality wave of racks commissioned in (cold) early months
    masquerades as a low-temperature effect.  The residual disk-failure
    response is then split on (temp, rh) within one DC; the function
    reports the root temperature threshold and the RH sub-split on the
    hot branch, mirroring how the paper reads its classification tree.
    """
    if table is None:
        table = build_rack_day_table(result, faults=[FaultType.DISK])
    in_dc = np.asarray(table.decoded("dc") == dc_name)
    if not in_dc.any():
        raise DataError(f"no rack-days for datacenter {dc_name!r}")
    sub = table.filter(in_dc)
    matrix, schema = sub.feature_matrix(["temp_f", "rh"])
    y = sub.column("failures").astype(float)

    if normalize_features:
        matrix_n, schema_n = sub.feature_matrix(list(normalize_features))
        normalizer = RegressionTree(TreeParams(
            max_depth=6, min_split=400, min_bucket=150, cp=5e-4,
        )).fit(matrix_n, y, schema_n)
        y = y - normalizer.predict(matrix_n)

    from ..analysis.cart.criteria import node_sse

    total_sse = node_sse(y)
    if total_sse <= 0:
        return DiscoveredThresholds(dc=dc_name, temp_threshold_f=None,
                                    rh_threshold=None, temp_gain_share=0.0)

    temp_split = best_split_for_feature(
        matrix[:, 0], y, np.ones(len(y)), schema.get("temp_f"), 0,
        min_bucket=max(50, len(y) // 200),
    )
    if temp_split is None or temp_split.gain / total_sse < min_gain_share:
        return DiscoveredThresholds(dc=dc_name, temp_threshold_f=None,
                                    rh_threshold=None,
                                    temp_gain_share=0.0 if temp_split is None
                                    else temp_split.gain / total_sse)

    assert temp_split.threshold is not None
    hot = matrix[:, 0] > temp_split.threshold
    rh_threshold: float | None = None
    if hot.sum() >= 100:
        rh_split = best_split_for_feature(
            matrix[hot, 1], y[hot], np.ones(int(hot.sum())),
            schema.get("rh"), 1, min_bucket=max(25, int(hot.sum()) // 50),
        )
        hot_sse = node_sse(y[hot])
        if (rh_split is not None and hot_sse > 0
                and rh_split.gain / hot_sse >= min_gain_share):
            rh_threshold = rh_split.threshold
    return DiscoveredThresholds(
        dc=dc_name,
        temp_threshold_f=float(temp_split.threshold),
        rh_threshold=rh_threshold,
        temp_gain_share=float(temp_split.gain / total_sse),
    )
