"""Spare pooling: dedicated per-workload pools vs a shared pool.

§II poses (without answering): "Should spares be maintained for each
class of applications separately, or is it better to have a shared
pool?"  With per-rack μ in hand the answer is a diversification
computation: concurrent failures across workloads rarely align, so a
shared pool sized for the *joint* worst window needs fewer spares than
the sum of per-workload pools sized for each workload's own worst
window — at the price of cross-workload sharing (network distance,
compatibility).  This module quantifies that benefit.

μ here is aggregated at the DC level (a spare pool lives in a building;
sharing across DCs is not physical).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from ..failures.engine import SimulationResult
from ..telemetry.aggregate import mu_matrix
from .availability import AvailabilitySla


@dataclass(frozen=True)
class PoolingAnalysis:
    """Shared-vs-dedicated pool sizing for one DC and SLA.

    Attributes:
        dc: facility name.
        sla: availability target.
        dedicated_spares: workload → spare count for its own pool.
        shared_spares: one pool covering the joint worst window.
        diversification_benefit: spares saved by sharing
            (Σ dedicated − shared).
    """

    dc: str
    sla: AvailabilitySla
    dedicated_spares: dict[str, float]
    shared_spares: float
    diversification_benefit: float

    @property
    def dedicated_total(self) -> float:
        """Sum of the per-workload pools."""
        return float(sum(self.dedicated_spares.values()))

    @property
    def benefit_fraction(self) -> float:
        """Diversification benefit relative to dedicated sizing."""
        total = self.dedicated_total
        if total <= 0:
            return 0.0
        return self.diversification_benefit / total

    def render(self) -> str:
        """Text summary."""
        lines = [f"Spare pooling in {self.dc} at the "
                 f"{self.sla.percent_label} SLA:"]
        for workload, spares in sorted(self.dedicated_spares.items()):
            lines.append(f"  dedicated pool {workload}: {spares:7.1f} spares")
        lines.append(f"  dedicated total:      {self.dedicated_total:7.1f}")
        lines.append(f"  shared pool:          {self.shared_spares:7.1f}")
        lines.append(
            f"  sharing saves {self.diversification_benefit:.1f} spares "
            f"({self.benefit_fraction:.0%})"
        )
        return "\n".join(lines)


def pooling_analysis(
    result: SimulationResult,
    dc_name: str,
    sla: AvailabilitySla | None = None,
    window_hours: float = 24.0,
) -> PoolingAnalysis:
    """Size dedicated-per-workload vs shared spare pools for one DC.

    Both sizings use the same SLA semantics as Q1: the pool must cover
    its scope's worst-window concurrent unavailability beyond the
    allowed shortfall.

    The shared pool can never need more spares than the dedicated pools
    combined (max of a sum ≤ sum of maxima, and the shortfall allowance
    only reinforces the inequality).
    """
    sla = sla or AvailabilitySla(1.0)
    arrays = result.fleet.arrays()
    dc_names = list(arrays.dc_names)
    if dc_name not in dc_names:
        raise DataError(f"unknown DC {dc_name!r}; have {dc_names}")
    dc_code = dc_names.index(dc_name)
    in_dc = arrays.dc_code == dc_code
    if not in_dc.any():
        raise DataError(f"{dc_name} has no racks")

    mu = mu_matrix(result, window_hours)
    n_windows = mu.shape[1]
    window_start_day = np.arange(n_windows) * window_hours / 24.0
    in_service = (
        arrays.commission_day[:, np.newaxis] <= window_start_day[np.newaxis, :]
    )
    active_mu = np.where(in_service, mu, 0)

    dedicated: dict[str, float] = {}
    for code, workload in enumerate(arrays.workload_names):
        members = in_dc & (arrays.workload_code == code)
        if not members.any():
            continue
        pooled = active_mu[members].sum(axis=0)
        capacity = float(arrays.n_servers[members].sum())
        dedicated[workload] = float(
            max(0.0, pooled.max() - sla.shortfall * capacity)
        )
    if not dedicated:
        raise DataError(f"{dc_name} hosts no workloads")

    joint = active_mu[in_dc].sum(axis=0)
    joint_capacity = float(arrays.n_servers[in_dc].sum())
    shared = float(max(0.0, joint.max() - sla.shortfall * joint_capacity))

    return PoolingAnalysis(
        dc=dc_name,
        sla=sla,
        dedicated_spares=dedicated,
        shared_spares=shared,
        diversification_benefit=float(sum(dedicated.values()) - shared),
    )
