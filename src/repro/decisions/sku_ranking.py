"""Q2: are some SKUs (vendors) more reliable than others?

§VI-Q2 ranks rack SKUs by two metrics — the peak failure rate μmax
(drives spare CapEx) and the average failure rate λ (drives maintenance
OpEx) — first with the single-factor histogram approach (Fig 14), then
with the multi-factor normalization (Fig 15), and finally runs the
numbers through TCO procurement scenarios.

Both metrics are computed "for spatial granularity of a rack and
temporal granularity of a day": λ is the filed-RMA count per rack-day;
the peak is a high quantile of the per-rack-day concurrent-
unavailability fraction μ/capacity (spare capacity is sized per rack,
so fractions are the comparable unit across SKUs of different density).

Reproduction targets:

* SF: S2's average rate ≈ 10X S4's (ours lands ≈8-9X via the planted
  workload/placement/age confounds); S3 the highest peak; S4 best on
  both metrics.
* MF: the S2/S4 average-rate ratio collapses toward the intrinsic ≈4X,
  with visibly reduced between-rack variance.
* TCO: at equal prices both approaches favour S4 and agree within a few
  points; at a 1.5X price premium SF still (wrongly) shows savings
  while MF shows a loss.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from ..analysis.cart.tree import TreeParams
from ..analysis.multi_factor import AdjustedLevelStats, MultiFactorModel
from ..analysis.single_factor import FactorLevelStats, SingleFactorModel
from ..errors import DataError
from ..failures.engine import SimulationResult
from ..failures.tickets import HARDWARE_FAULTS
from ..telemetry.aggregate import build_rack_day_table
from ..telemetry.table import Table
from .tco import TcoModel

# The four representative SKUs Fig 14 plots: storage S1/S3, compute S2/S4.
FIG14_SKUS = ("S1", "S3", "S2", "S4")

_NORMALIZED_TERMS = (
    "N(dc), N(workload), N(age_months), N(rated_power_kw), "
    "N(region), N(temp_f), N(rh)"
)
MF_FORMULA = f"failures ~ sku, {_NORMALIZED_TERMS}"
MF_PEAK_FORMULA = f"mu_fraction ~ sku, {_NORMALIZED_TERMS}"


@dataclass(frozen=True)
class SkuComparison:
    """SF and MF views of SKU reliability.

    Attributes:
        sf_mean: per-SKU aggregate λ stats (mean = average failure rate,
            sd = Fig 14's error bars).
        sf_peak: per-SKU aggregate μ-fraction stats (peak = μmax proxy).
        mf_mean: per-SKU stratum-standardized λ stats (Fig 15).
        mf_peak: per-SKU stratum-standardized μ-fraction stats.
    """

    sf_mean: dict[str, FactorLevelStats]
    sf_peak: dict[str, FactorLevelStats]
    mf_mean: dict[str, AdjustedLevelStats]
    mf_peak: dict[str, AdjustedLevelStats]
    mf_common_support_ratios: dict[tuple[str, str], float] | None = None
    mf_pair: dict[str, AdjustedLevelStats] | None = None
    mf_pair_peak: dict[str, AdjustedLevelStats] | None = None

    def _lookup(self, stats: dict, label: str):
        if label not in stats:
            raise DataError(f"SKU {label!r} missing from comparison")
        return stats[label]

    def sf_ratio(self, a: str, b: str, statistic: str = "mean") -> float:
        """SF-estimated ratio between two SKUs (``mean`` or ``peak``)."""
        stats = self.sf_mean if statistic == "mean" else self.sf_peak
        denominator = getattr(self._lookup(stats, b), statistic)
        if denominator == 0:
            raise DataError(f"SF {statistic} of {b!r} is zero")
        return getattr(self._lookup(stats, a), statistic) / denominator

    def mf_ratio(self, a: str, b: str, statistic: str = "mean") -> float:
        """MF-adjusted ratio between two SKUs (``mean`` or ``peak``).

        When common-support statistics exist for the pair (``mf_pair``,
        computed over the strata both SKUs share) they are used — the
        per-level ``stratified_effect`` stats standardize each level
        over different stratum sets, so confounds do not cancel in their
        ratios when the levels live in disjoint regimes (S2 young/hot vs
        S4 old/cool).
        """
        pair = self.mf_pair if statistic == "mean" else self.mf_pair_peak
        if pair is not None and a in pair and b in pair:
            denominator = getattr(pair[b], statistic)
            if denominator == 0:
                raise DataError(f"MF {statistic} of {b!r} is zero")
            return getattr(pair[a], statistic) / denominator
        stats = self.mf_mean if statistic == "mean" else self.mf_peak
        denominator = getattr(self._lookup(stats, b), statistic)
        if denominator == 0:
            raise DataError(f"MF {statistic} of {b!r} is zero")
        return getattr(self._lookup(stats, a), statistic) / denominator

    def normalized_sf(self, skus: tuple[str, ...] = FIG14_SKUS,
                      statistic: str = "mean") -> dict[str, float]:
        """Fig 14 bars: SF statistic normalized to its max over ``skus``."""
        stats = self.sf_mean if statistic == "mean" else self.sf_peak
        values = {label: getattr(self._lookup(stats, label), statistic)
                  for label in skus}
        top = max(values.values())
        if top <= 0:
            raise DataError("all SF statistics are zero")
        return {label: value / top for label, value in values.items()}


def default_q2_tree_params() -> TreeParams:
    """CART parameters used by the Q2 MF fits."""
    return TreeParams(max_depth=7, min_split=200, min_bucket=80, cp=3e-4)


def compare_skus(
    result: SimulationResult,
    table: Table | None = None,
    peak_quantile: float = 0.999,
    tree_params: TreeParams | None = None,
) -> SkuComparison:
    """Run both Q2 analyses on a simulation's hardware failures.

    Args:
        result: simulation run.
        table: pre-built hardware rack-day table with μ columns
            (built if omitted).
        peak_quantile: quantile used as the peak failure rate.
        tree_params: CART parameters for the MF models.
    """
    if table is None:
        table = build_rack_day_table(
            result, faults=list(HARDWARE_FAULTS), include_mu=True,
        )
    for required in ("failures", "mu_fraction"):
        if required not in table:
            raise DataError(f"table lacks the {required!r} column")
    params = tree_params or default_q2_tree_params()

    sf_mean = SingleFactorModel(table, "failures",
                                peak_quantile=peak_quantile).by_factor("sku")
    sf_peak = SingleFactorModel(table, "mu_fraction",
                                peak_quantile=peak_quantile).by_factor("sku")

    mf_mean_model = MultiFactorModel.from_formula(MF_FORMULA, table, params=params)
    mf_peak_model = MultiFactorModel.from_formula(MF_PEAK_FORMULA, table, params=params)
    common_support = {}
    mf_pair = None
    mf_pair_peak = None
    # Miniature fleets may lack overlapping strata; leave the defaults.
    with contextlib.suppress(DataError):
        common_support[("S2", "S4")] = mf_mean_model.stratified_ratio(
            "sku", "S2", "S4",
        )
        mf_pair = mf_mean_model.common_support_effect(
            "sku", ("S2", "S4"), peak_quantile=peak_quantile,
        )
        mf_pair_peak = mf_peak_model.common_support_effect(
            "sku", ("S2", "S4"), peak_quantile=peak_quantile,
        )
    return SkuComparison(
        sf_mean=sf_mean,
        sf_peak=sf_peak,
        mf_mean=mf_mean_model.stratified_effect("sku", peak_quantile=peak_quantile),
        mf_peak=mf_peak_model.stratified_effect("sku", peak_quantile=peak_quantile),
        mf_common_support_ratios=common_support or None,
        mf_pair=mf_pair,
        mf_pair_peak=mf_pair_peak,
    )


@dataclass(frozen=True)
class VendorStats:
    """Vendor-level reliability rollup (a vendor may ship several SKUs).

    Attributes:
        vendor: vendor label.
        skus: the vendor's SKUs present in the comparison.
        sf_mean: exposure-weighted SF average failure rate.
        mf_mean: exposure-weighted MF-adjusted average failure rate.
        exposure: rack-days across the vendor's SKUs.
    """

    vendor: str
    skus: tuple[str, ...]
    sf_mean: float
    mf_mean: float
    exposure: int


def compare_vendors(
    result: SimulationResult,
    comparison: SkuComparison | None = None,
) -> dict[str, VendorStats]:
    """Roll the Q2 SKU comparison up to vendors.

    §II's procurement question is phrased per *vendor*; since "rack SKU
    [is] a proxy for a specific combination of server models and
    vendors", the vendor view weights each of a vendor's SKUs by its
    observed exposure (rack-days).
    """
    comparison = comparison or compare_skus(result)
    catalog = result.fleet.skus
    by_vendor: dict[str, list[str]] = {}
    for sku in catalog:
        by_vendor.setdefault(sku.vendor, []).append(sku.name)

    rollup: dict[str, VendorStats] = {}
    for vendor, skus in sorted(by_vendor.items()):
        present = [name for name in skus
                   if name in comparison.sf_mean and name in comparison.mf_mean]
        if not present:
            continue
        exposures = np.array([comparison.sf_mean[name].count for name in present],
                             dtype=float)
        sf_values = np.array([comparison.sf_mean[name].mean for name in present])
        mf_values = np.array([comparison.mf_mean[name].mean for name in present])
        total = exposures.sum()
        rollup[vendor] = VendorStats(
            vendor=vendor,
            skus=tuple(present),
            sf_mean=float((sf_values * exposures).sum() / total),
            mf_mean=float((mf_values * exposures).sum() / total),
            exposure=int(total),
        )
    if not rollup:
        raise DataError("no vendor had SKUs present in the comparison")
    return rollup


def rank_vendors(
    rollup: dict[str, VendorStats],
    by: str = "mf_mean",
) -> list[VendorStats]:
    """Vendors sorted most-reliable first by the chosen statistic."""
    if by not in ("sf_mean", "mf_mean"):
        raise DataError(f"unknown vendor ranking statistic {by!r}")
    return sorted(rollup.values(), key=lambda stats: getattr(stats, by))


@dataclass(frozen=True)
class ProcurementScenario:
    """One §VI-Q2 TCO scenario.

    Attributes:
        price_ratio: price of S4 relative to S2.
        sf_savings: relative TCO savings of choosing S4, per SF rates.
        mf_savings: the same, per MF-adjusted rates.
    """

    price_ratio: float
    sf_savings: float
    mf_savings: float


def procurement_scenarios(
    comparison: SkuComparison,
    price_ratios: tuple[float, ...] = (1.0, 1.5),
    n_servers: int = 10_000,
    base_price: float = 100.0,
    tco: TcoModel | None = None,
    sku_a: str = "S4",
    sku_b: str = "S2",
    servers_per_rack: float = 46.0,
) -> list[ProcurementScenario]:
    """TCO savings of procuring ``sku_a`` instead of ``sku_b``.

    Peak μ fractions size the spare pool (CapEx); average λ converted to
    per-server rates drives maintenance (OpEx).  SF uses the raw per-SKU
    stats, MF the adjusted ones — reproducing the paper's "paying a
    higher premium for S4 is not cost effective" reversal at 1.5X.
    """
    tco = tco or TcoModel()
    scenarios = []
    for ratio in price_ratios:
        if ratio <= 0:
            raise DataError(f"price ratio must be positive, got {ratio}")
        price_a = base_price * ratio
        price_b = base_price

        def savings(mean_a, peak_a, mean_b, peak_b) -> float:
            return tco.sku_choice_savings(
                n_servers=n_servers,
                price_a=price_a,
                peak_a=peak_a.peak,
                avg_a=mean_a.mean / servers_per_rack,
                price_b=price_b,
                peak_b=peak_b.peak,
                avg_b=mean_b.mean / servers_per_rack,
            )

        scenarios.append(ProcurementScenario(
            price_ratio=ratio,
            sf_savings=savings(
                comparison.sf_mean[sku_a], comparison.sf_peak[sku_a],
                comparison.sf_mean[sku_b], comparison.sf_peak[sku_b],
            ),
            mf_savings=savings(
                comparison.mf_mean[sku_a], comparison.mf_peak[sku_a],
                comparison.mf_mean[sku_b], comparison.mf_peak[sku_b],
            ),
        ))
    return scenarios
