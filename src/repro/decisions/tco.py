"""Total-cost-of-ownership model.

The paper quantifies its decisions in TCO terms: spare provisioning
savings (Table IV, "using [24]"), component-vs-server spare costs
(§VI-Q1-B, with a server : disk : DIMM cost ratio of 100 : 2 : 10 from a
commercial estimator [4]), and SKU procurement scenarios (§VI-Q2).

The model is deliberately parametric and linear, matching how the paper
uses it: a per-server CapEx, a facility overhead proportional to
provisioned capacity, spares priced at the hardware they duplicate, and
maintenance OpEx proportional to failure rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

# The paper's cost ratio from the server-cost estimator tool [4].
SERVER_COST_UNITS = 100.0
DISK_COST_UNITS = 2.0
DIMM_COST_UNITS = 10.0


@dataclass(frozen=True)
class TcoParams:
    """TCO model coefficients (all in server-cost units).

    Attributes:
        server_cost: CapEx of one server.
        disk_cost: CapEx of one spare HDD (1 TB granularity).
        dimm_cost: CapEx of one spare DIMM (16 GB granularity).
        facility_overhead: non-IT CapEx+OpEx per provisioned server slot
            (power distribution, cooling, space) over the horizon —
            spares occupy slots too.
        maintenance_cost_per_event: labor+logistics OpEx per hardware
            RMA resolution.
        horizon_days: planning horizon over which OpEx accrues.
    """

    server_cost: float = SERVER_COST_UNITS
    disk_cost: float = DISK_COST_UNITS
    dimm_cost: float = DIMM_COST_UNITS
    facility_overhead: float = 25.0
    maintenance_cost_per_event: float = 6.0
    horizon_days: float = 3.0 * 365.0

    def __post_init__(self) -> None:
        for name in ("server_cost", "disk_cost", "dimm_cost"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"TcoParams.{name} must be positive")
        if self.facility_overhead < 0 or self.maintenance_cost_per_event < 0:
            raise ConfigError("overhead/maintenance costs must be >= 0")
        if self.horizon_days <= 0:
            raise ConfigError("horizon_days must be positive")


class TcoModel:
    """Evaluates deployment TCO under different spare/procurement plans."""

    def __init__(self, params: TcoParams | None = None):
        self.params = params or TcoParams()

    # -- Q1: spare-provisioning TCO (Table IV) ---------------------------

    def deployment_tco(
        self,
        n_servers: int,
        spare_fraction: float,
        failure_rate_per_server_day: float = 0.0,
    ) -> float:
        """TCO of a deployment carrying ``spare_fraction`` server spares.

        TCO = (base + spare) servers × (server cost + facility overhead)
            + maintenance OpEx over the horizon.
        """
        if n_servers <= 0:
            raise ConfigError(f"n_servers must be positive, got {n_servers}")
        if spare_fraction < 0:
            raise ConfigError(f"spare_fraction must be >= 0, got {spare_fraction}")
        p = self.params
        provisioned = n_servers * (1.0 + spare_fraction)
        capex = provisioned * (p.server_cost + p.facility_overhead)
        opex = (n_servers * failure_rate_per_server_day * p.horizon_days
                * p.maintenance_cost_per_event)
        return float(capex + opex)

    def relative_savings(
        self,
        n_servers: int,
        spare_fraction_baseline: float,
        spare_fraction_improved: float,
        failure_rate_per_server_day: float = 0.0,
    ) -> float:
        """Relative TCO savings of the improved plan over the baseline.

        This is Table IV's statistic: (TCO_SF − TCO_MF) / TCO_SF.
        """
        baseline = self.deployment_tco(
            n_servers, spare_fraction_baseline, failure_rate_per_server_day
        )
        improved = self.deployment_tco(
            n_servers, spare_fraction_improved, failure_rate_per_server_day
        )
        return (baseline - improved) / baseline

    # -- Q1-B: component-level spare cost (Fig 13) -----------------------

    def component_spare_cost(
        self,
        n_servers: int,
        n_disks: int,
        n_dimms: int,
        disk_fraction: float,
        dimm_fraction: float,
        server_fraction: float,
    ) -> float:
        """CapEx of a mixed spare pool (disk + DIMM + server spares)."""
        for name, value in (("disk_fraction", disk_fraction),
                            ("dimm_fraction", dimm_fraction),
                            ("server_fraction", server_fraction)):
            if value < 0:
                raise ConfigError(f"{name} must be >= 0, got {value}")
        p = self.params
        return float(
            disk_fraction * n_disks * p.disk_cost
            + dimm_fraction * n_dimms * p.dimm_cost
            + server_fraction * n_servers * p.server_cost
        )

    def server_spare_cost(self, n_servers: int, server_fraction: float) -> float:
        """CapEx of an all-server spare pool."""
        if server_fraction < 0:
            raise ConfigError(f"server_fraction must be >= 0, got {server_fraction}")
        return float(server_fraction * n_servers * self.params.server_cost)

    # -- Q2: SKU procurement scenarios (§VI-Q2) ---------------------------

    def sku_procurement_tco(
        self,
        n_servers: int,
        price_per_server: float,
        peak_rate_fraction: float,
        avg_rate_per_server_day: float,
    ) -> float:
        """TCO of procuring one SKU for a deployment.

        Spares are sized by the SKU's peak failure rate (CapEx) and
        maintenance accrues with its average rate (OpEx) — the paper's
        two Q2 metrics.
        """
        if price_per_server <= 0:
            raise ConfigError("price_per_server must be positive")
        if peak_rate_fraction < 0 or avg_rate_per_server_day < 0:
            raise ConfigError("rates must be >= 0")
        p = self.params
        provisioned = n_servers * (1.0 + peak_rate_fraction)
        capex = provisioned * (price_per_server + p.facility_overhead)
        opex = (n_servers * avg_rate_per_server_day * p.horizon_days
                * p.maintenance_cost_per_event)
        return float(capex + opex)

    def sku_choice_savings(
        self,
        n_servers: int,
        price_a: float,
        peak_a: float,
        avg_a: float,
        price_b: float,
        peak_b: float,
        avg_b: float,
    ) -> float:
        """Relative savings of procuring SKU A instead of SKU B.

        Positive = A is cheaper in TCO terms.  Used for the paper's
        "S4 at 1X vs 1.5X the price of S2" scenarios.
        """
        tco_a = self.sku_procurement_tco(n_servers, price_a, peak_a, avg_a)
        tco_b = self.sku_procurement_tco(n_servers, price_b, peak_b, avg_b)
        return (tco_b - tco_a) / tco_b
