"""Proactive maintenance: what does acting on predictions buy?

§VII names "prediction of datacenter failures for pro-active
maintenance" as the framework's natural continuation.  This module
closes that loop as a counterfactual what-if on the observed ticket
stream:

1. score every rack-day with a fitted
   :class:`~repro.analysis.prediction.FailurePredictor` (trained on an
   earlier period — no leakage);
2. "intervene" on the top-scored rack-days of the evaluation period
   (inspect the rack, swap aging components); each intervention is
   assumed to prevent a fraction of that rack's hardware failures in
   the following window;
3. price interventions against the failures they avert.

The result is the operating curve an operator actually needs: net
savings as a function of how aggressively they act on the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.prediction import FailurePredictor, build_prediction_dataset, time_split
from ..errors import ConfigError, DataError
from ..failures.engine import SimulationResult
from ..failures.tickets import HARDWARE_FAULTS
from ..telemetry.aggregate import lambda_matrix
from ..telemetry.table import Table


@dataclass(frozen=True)
class ProactivePolicy:
    """Knobs of the intervention policy.

    Attributes:
        act_fraction: act on this share of the highest-scored rack-days.
        prevention_window_days: an intervention protects its rack for
            this many following days.
        prevention_effectiveness: fraction of the window's hardware
            failures a successful intervention averts (component swaps
            cannot prevent everything).
        intervention_cost: technician visit + parts, in server-cost
            units.
        failure_cost: cost of one un-prevented hardware failure.
    """

    act_fraction: float = 0.05
    prevention_window_days: int = 3
    prevention_effectiveness: float = 0.6
    intervention_cost: float = 1.0
    failure_cost: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 < self.act_fraction <= 1.0:
            raise ConfigError("act_fraction must be in (0, 1]")
        if self.prevention_window_days < 1:
            raise ConfigError("prevention_window_days must be >= 1")
        if not 0.0 <= self.prevention_effectiveness <= 1.0:
            raise ConfigError("prevention_effectiveness must be in [0, 1]")
        if self.intervention_cost < 0 or self.failure_cost < 0:
            raise ConfigError("costs must be >= 0")


@dataclass(frozen=True)
class ProactiveOutcome:
    """Counterfactual accounting of one policy evaluation.

    Attributes:
        policy: the evaluated policy.
        n_interventions: technician visits made.
        failures_in_scope: hardware failures in the evaluation period.
        failures_prevented: expected failures averted.
        intervention_cost: total visit cost.
        averted_cost: failure cost avoided.
    """

    policy: ProactivePolicy
    n_interventions: int
    failures_in_scope: float
    failures_prevented: float
    intervention_cost: float
    averted_cost: float

    @property
    def net_savings(self) -> float:
        """Averted failure cost minus intervention spend."""
        return self.averted_cost - self.intervention_cost

    @property
    def prevention_share(self) -> float:
        """Share of in-scope failures averted."""
        if self.failures_in_scope <= 0:
            return 0.0
        return self.failures_prevented / self.failures_in_scope

    @property
    def reactive_cost(self) -> float:
        """TCO of the do-nothing baseline: eat every failure's cost."""
        return self.failures_in_scope * self.policy.failure_cost

    @property
    def total_cost(self) -> float:
        """TCO under the policy: visits plus the failures still eaten."""
        remaining = self.failures_in_scope - self.failures_prevented
        return self.intervention_cost + remaining * self.policy.failure_cost

    @property
    def beats_reactive(self) -> bool:
        """True when acting is strictly cheaper than doing nothing."""
        return self.total_cost < self.reactive_cost

    def render(self) -> str:
        """One-paragraph summary."""
        return (
            f"act on top {self.policy.act_fraction:.0%} rack-days: "
            f"{self.n_interventions} interventions avert "
            f"{self.failures_prevented:.0f} of "
            f"{self.failures_in_scope:.0f} failures "
            f"({self.prevention_share:.0%}); net savings "
            f"{self.net_savings:+.0f} units"
        )


def _account_interventions(
    result: SimulationResult,
    racks: np.ndarray,
    days: np.ndarray,
    scores: np.ndarray,
    policy: ProactivePolicy,
) -> ProactiveOutcome:
    """Price acting on the top-scored rack-days of the scored period."""
    if not len(scores) == len(racks) == len(days):
        raise DataError("racks, days and scores must align")
    if len(scores) == 0:
        raise DataError("cannot evaluate a policy on zero scored rack-days")
    k = max(1, int(round(policy.act_fraction * len(scores))))
    chosen = np.argsort(scores)[::-1][:k]

    hardware = lambda_matrix(result, list(HARDWARE_FAULTS),
                             dedupe_batches=False).astype(float)
    n_days = hardware.shape[1]

    # Per-rack coverage mask over days: an intervention on (r, d) covers
    # days d+1 .. d+window; overlaps merge (no double counting).
    covered = np.zeros_like(hardware, dtype=bool)
    for row in chosen.tolist():
        rack, day = int(racks[row]), int(days[row])
        start = day + 1
        end = min(day + 1 + policy.prevention_window_days, n_days)
        covered[rack, start:end] = True

    test_start = int(days.min())
    in_scope = np.zeros(n_days, dtype=bool)
    in_scope[test_start:] = True
    failures_in_scope = float(hardware[:, in_scope].sum())
    prevented = float(
        hardware[covered & in_scope[np.newaxis, :]].sum()
        * policy.prevention_effectiveness
    )
    return ProactiveOutcome(
        policy=policy,
        n_interventions=k,
        failures_in_scope=failures_in_scope,
        failures_prevented=prevented,
        intervention_cost=k * policy.intervention_cost,
        averted_cost=prevented * policy.failure_cost,
    )


def evaluate_policy(
    result: SimulationResult,
    policy: ProactivePolicy | None = None,
    predictor: FailurePredictor | None = None,
    dataset: Table | None = None,
    train_fraction: float = 0.6,
) -> ProactiveOutcome:
    """Counterfactually evaluate a proactive-maintenance policy.

    The predictor is trained on the first ``train_fraction`` of days and
    the policy is scored on the remainder.  Interventions on overlapping
    windows of the same rack do not double-count averted failures.
    """
    policy = policy or ProactivePolicy()
    if dataset is None:
        dataset = build_prediction_dataset(
            result, horizon_days=policy.prevention_window_days,
        )
    train, test = time_split(dataset, train_fraction=train_fraction)
    if predictor is None:
        predictor = FailurePredictor().fit(train)
    scores = predictor.score(test)
    racks = test.column("rack_index").astype(np.int64)
    days = test.column("day_index").astype(np.int64)
    return _account_interventions(result, racks, days, scores, policy)


def evaluate_scored(
    result: SimulationResult,
    racks: np.ndarray,
    days: np.ndarray,
    scores: np.ndarray,
    policy: ProactivePolicy | None = None,
) -> ProactiveOutcome:
    """Evaluate a policy on externally scored rack-days.

    The caller brings its own predictor — any model that emits one risk
    score per ``(rack, day)`` of the evaluation period (e.g. the
    streaming two-stage predictor) plugs in here without this module
    knowing how the scores were made.  Accounting is identical to
    :func:`evaluate_policy`.
    """
    policy = policy or ProactivePolicy()
    racks = np.asarray(racks, dtype=np.int64)
    days = np.asarray(days, dtype=np.int64)
    scores = np.asarray(scores, dtype=float)
    return _account_interventions(result, racks, days, scores, policy)


def scored_policy_curve(
    result: SimulationResult,
    racks: np.ndarray,
    days: np.ndarray,
    scores: np.ndarray,
    act_fractions: tuple[float, ...] = (0.01, 0.02, 0.05, 0.10, 0.20),
    base_policy: ProactivePolicy | None = None,
) -> list[ProactiveOutcome]:
    """Sweep the act-fraction knob over externally scored rack-days."""
    if not act_fractions:
        raise DataError("need at least one act fraction")
    base_policy = base_policy or ProactivePolicy()
    outcomes = []
    for fraction in act_fractions:
        policy = ProactivePolicy(
            act_fraction=fraction,
            prevention_window_days=base_policy.prevention_window_days,
            prevention_effectiveness=base_policy.prevention_effectiveness,
            intervention_cost=base_policy.intervention_cost,
            failure_cost=base_policy.failure_cost,
        )
        outcomes.append(evaluate_scored(result, racks, days, scores, policy))
    return outcomes


def policy_curve(
    result: SimulationResult,
    act_fractions: tuple[float, ...] = (0.01, 0.02, 0.05, 0.10, 0.20),
    base_policy: ProactivePolicy | None = None,
) -> list[ProactiveOutcome]:
    """Sweep the act-fraction knob (one predictor fit, reused).

    Returns outcomes in the given order; the net-savings curve typically
    rises while the model's top scores stay precise, then falls once
    interventions chase base-rate rack-days.
    """
    if not act_fractions:
        raise DataError("need at least one act fraction")
    base_policy = base_policy or ProactivePolicy()
    dataset = build_prediction_dataset(
        result, horizon_days=base_policy.prevention_window_days,
    )
    train, _ = time_split(dataset, train_fraction=0.6)
    predictor = FailurePredictor().fit(train)
    outcomes = []
    for fraction in act_fractions:
        policy = ProactivePolicy(
            act_fraction=fraction,
            prevention_window_days=base_policy.prevention_window_days,
            prevention_effectiveness=base_policy.prevention_effectiveness,
            intervention_cost=base_policy.intervention_cost,
            failure_cost=base_policy.failure_cost,
        )
        outcomes.append(evaluate_policy(
            result, policy, predictor=predictor, dataset=dataset,
        ))
    return outcomes
