"""The ``predict`` experiment: train, score, and price the predictor.

One payload ties the subsystem together — build the leak-free snapshot
dataset, fit the two-stage predictor on the embargoed chronological
split, score the evaluation period exactly against the realized failure
stream, and translate the scores into the proactive-maintenance Q1
curve.  The payload is a JSON-safe dict so the pipeline can persist it
as a content-addressed artifact (stage ``predict:score``) and the
report/service layers can render or serve it without recomputing.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from ..failures.engine import SimulationResult
from ..reporting.context import AnalysisContext, predict_stage
from ..stream.blocks import StreamInventory
from ..telemetry.table import Table
from .dataset import build_feature_dataset
from .model import TwoStagePredictor, train_predictor
from .scoring import DEFAULT_ACT_FRACTIONS, proactive_comparison, score_predictions

#: Default label horizon (days) for the registered experiment.
DEFAULT_HORIZON_DAYS = 3

#: Default snapshot cadence (days) for the registered experiment.
DEFAULT_SAMPLE_EVERY = 7

#: Steps of the prediction pipeline, in dependency order; the stage
#: names are ``predict_stage(step)`` for each.
STAGE_STEPS = ("features", "train", "score")

#: Declared stage dependencies of the registered ``predict`` experiment
#: (cross-checked against the registry and the pipeline catalogue).
STAGE_DEPS = tuple(predict_stage(step) for step in STAGE_STEPS)

#: Source modules whose content invalidates the experiment's rendering.
CODE_MODULES = ("repro.predict.experiment",)


def compute_predict_payload(
    result: SimulationResult,
    horizon_days: int = DEFAULT_HORIZON_DAYS,
    sample_every: int = DEFAULT_SAMPLE_EVERY,
    dataset: Table | None = None,
    trained: tuple[TwoStagePredictor, Table, Table] | None = None,
    act_fractions: tuple[float, ...] = DEFAULT_ACT_FRACTIONS,
    top: int = 10,
) -> dict:
    """The full prediction evaluation as one JSON-safe payload.

    ``dataset`` and ``trained`` let the pipeline reuse the upstream
    stage artifacts; when omitted they are computed here.
    """
    if dataset is None:
        dataset = build_feature_dataset(
            result, horizon_days=horizon_days, sample_every=sample_every,
        )
    if trained is None:
        trained = train_predictor(dataset, horizon_days=horizon_days)
    model, train, test = trained
    scores = model.score(test)
    lead = model.lead_time_days(test)
    metrics = score_predictions(model, test, act_fractions=act_fractions)
    proactive = proactive_comparison(
        result, test, scores, horizon_days=model.horizon_days,
        act_fractions=act_fractions,
    )

    inventory = StreamInventory.from_result(result)
    order = np.argsort(scores)[::-1][: max(int(top), 0)]
    racks = test.column("rack_index").astype(np.int64)
    offsets = test.column("server_offset").astype(np.int64)
    days = test.column("day_index").astype(np.int64)
    top_risks = [
        {
            "rack": inventory.rack_ids[int(racks[row])],
            "server": int(offsets[row]),
            "day": int(days[row]),
            "score": float(scores[row]),
            "lead_days": float(lead[row]),
        }
        for row in order.tolist()
    ]
    return {
        "question": "which servers fail within the horizon, and is "
                    "acting on that cheaper than reacting?",
        "horizon_days": int(model.horizon_days),
        "n_rows": int(dataset.n_rows),
        "n_train": int(train.n_rows),
        "n_test": int(test.n_rows),
        "metrics": metrics,
        "proactive": proactive,
        "top_risks": top_risks,
    }


def render_predict(payload: dict) -> str:
    """Text rendering of a ``predict:score`` payload."""
    metrics = payload["metrics"]
    proactive = payload["proactive"]
    auc = metrics["auc"]
    lines = [
        "[predict] online failure prediction vs planted ground truth",
        f"  {payload['question']}",
        f"  horizon: {payload['horizon_days']} days; "
        f"rows: {payload['n_rows']} "
        f"(train {payload['n_train']}, eval {payload['n_test']}); "
        f"base rate {metrics['base_rate']:.3%}",
        f"  ranking AUC: {auc:.3f}" if auc is not None
        else "  ranking AUC: n/a (one-class evaluation split)",
        "",
        "  act%   flagged  precision  recall  lead(actual/pred days)",
    ]
    for point in metrics["curves"]:
        actual = point["mean_lead_days"]
        lines.append(
            f"  {point['act_fraction']:>4.0%}  {point['n_flagged']:>8}"
            f"  {point['precision']:>9.3f}  {point['recall']:>6.3f}"
            f"  {actual if actual is None else format(actual, '.1f')}"
            f" / {point['mean_predicted_lead_days']:.1f}"
        )
    lines += [
        "",
        f"  proactive vs reactive (baseline TCO "
        f"{proactive['reactive_cost']:.0f} units):",
        "  act%   visits  prevented  share   net     TCO",
    ]
    for point in proactive["curve"]:
        marker = "  << beats reactive" if point["beats_reactive"] else ""
        lines.append(
            f"  {point['act_fraction']:>4.0%}  {point['n_interventions']:>6}"
            f"  {point['failures_prevented']:>9.1f}"
            f"  {point['prevention_share']:>5.1%}"
            f"  {point['net_savings']:>+6.1f}  {point['total_cost']:>6.1f}"
            f"{marker}"
        )
    verdict = ("beats" if proactive["beats_reactive"] else "does not beat")
    lines += [
        "",
        f"  verdict: acting on predictions {verdict} the reactive baseline.",
        "",
        "  top risks (eval period):",
    ]
    for risk in payload["top_risks"]:
        lines.append(
            f"    {risk['rack']}/{risk['server']} day {risk['day']}: "
            f"score {risk['score']:.2f}, "
            f"predicted lead {risk['lead_days']:.1f} d"
        )
    return "\n".join(lines)


def predict_experiment(context: AnalysisContext) -> str:
    """Registered experiment entry point (artifact-aware)."""
    payload = None
    artifacts = getattr(context, "artifacts", None)
    if artifacts is not None and artifacts.has_stage(predict_stage("score")):
        payload = artifacts.get(predict_stage("score"))
    if payload is None:
        payload = compute_predict_payload(context.result)
    return render_predict(payload)


def predict_query_payload(context: AnalysisContext, params: dict) -> dict:
    """Serve-layer payload: the evaluation sliced to one operating point."""
    horizon_days = int(params.get("horizon_days", DEFAULT_HORIZON_DAYS))
    act_fraction = float(params.get("act_fraction", 0.05))
    top = int(params.get("top", 10))
    if not 0.0 < act_fraction <= 1.0:
        raise DataError(f"act_fraction must be in (0, 1], got {act_fraction}")
    full = None
    artifacts = getattr(context, "artifacts", None)
    if (
        artifacts is not None
        and horizon_days == DEFAULT_HORIZON_DAYS
        and artifacts.has_stage(predict_stage("score"))
    ):
        full = artifacts.get(predict_stage("score"))
    if full is None:
        full = compute_predict_payload(
            context.result, horizon_days=horizon_days,
            act_fractions=(act_fraction,), top=top,
        )

    def nearest(curve: list[dict]) -> dict:
        return min(
            curve, key=lambda p: abs(p["act_fraction"] - act_fraction),
        )

    return {
        "question": full["question"],
        "horizon_days": full["horizon_days"],
        "act_fraction": act_fraction,
        "auc": full["metrics"]["auc"],
        "base_rate": full["metrics"]["base_rate"],
        "n_test": full["metrics"]["n_test"],
        "operating_point": nearest(full["metrics"]["curves"]),
        "proactive": {
            "reactive_cost": full["proactive"]["reactive_cost"],
            "beats_reactive": full["proactive"]["beats_reactive"],
            "operating_point": nearest(full["proactive"]["curve"]),
        },
        "top_risks": full["top_risks"][:top],
    }
