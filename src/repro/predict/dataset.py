"""Supervised dataset construction: one streaming pass, leak-free rows.

:func:`build_feature_dataset` turns a simulation run into the
per-server supervised problem the two-stage predictor trains on — *will
this server file a hardware ticket within the next horizon, and if so,
in how many days?* — by replaying the run's flattened event stream
through :class:`~repro.predict.features.StreamingFeatures` and
snapshotting the state at sampled day boundaries.

The leakage boundary is structural, not conventional: a snapshot for
day *d* is taken after feeding exactly the events with
``time < (d + 1) · 24 h`` (the stream is split *inside* blocks at the
boundary), so no feature can read an event from the label window.  The
labels themselves come from the realized hardware ticket stream — the
planted failures as an operator would observe them — never from the
hazard model that generated them.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from ..failures.engine import SimulationResult
from ..failures.tickets import FAULT_CODE, HARDWARE_FAULTS
from ..stream.blocks import EventBlock, StreamInventory, blocks_from_result
from ..telemetry.table import Table
from .features import (
    DEFAULT_HOT_TEMP_F,
    DEFAULT_HUMID_RH,
    StreamingFeatures,
)

#: Label columns added next to the feature snapshot.
LABEL_WILL_FAIL = "will_fail"
LABEL_DAYS_TO_FAILURE = "days_to_failure"


def _record_failures(
    failures: np.ndarray,
    block: EventBlock,
    inventory: StreamInventory,
    hw_codes: np.ndarray,
) -> None:
    """Mark realized hardware ticket-opens into ``failures[gid, day]``."""
    columns = block.open_ticket_columns()
    if columns is None:
        return
    rack = columns["rack"]
    offset = columns["offset"]
    keep = (
        ~columns["fp"]
        & (rack >= 0) & (rack < inventory.n_racks)
        & (offset >= 0)
        & np.isin(columns["fault"], hw_codes)
    )
    keep[keep] &= offset[keep] < inventory.n_servers[rack[keep]]
    if not keep.any():
        return
    gid = inventory.server_base[rack[keep]] + offset[keep]
    day = np.maximum(
        (columns["time"][keep] // 24.0).astype(np.int64), 0,
    )
    in_range = day < failures.shape[1]
    np.add.at(failures, (gid[in_range], day[in_range]), 1)


def build_feature_dataset(
    result: SimulationResult,
    horizon_days: int = 3,
    window_days: int = 14,
    sample_every: int = 7,
    hot_temp_f: float = DEFAULT_HOT_TEMP_F,
    humid_rh: float = DEFAULT_HUMID_RH,
) -> Table:
    """Per-server feature snapshots with future-window labels.

    Snapshot days run from ``window_days`` (the first day with a full
    trailing ring) to ``n_days - horizon_days`` (the last day whose
    label window is uncensored), every ``sample_every`` days.  Each row
    carries the :data:`~repro.predict.features.PREDICT_FEATURES`
    columns plus ``will_fail`` (any hardware ticket in days
    ``d+1 .. d+horizon``) and ``days_to_failure`` (days until the first
    one; 0 for rows that do not fail).

    Raises :class:`~repro.errors.DataError` when the run is too short
    to produce any uncensored snapshot day.
    """
    if horizon_days < 1:
        raise DataError(f"horizon_days must be >= 1, got {horizon_days}")
    if sample_every < 1:
        raise DataError(f"sample_every must be >= 1, got {sample_every}")
    n_days = result.n_days
    sample_days = list(range(window_days, n_days - horizon_days, sample_every))
    if not sample_days:
        raise DataError(
            f"no sampleable days: run of {n_days} days cannot fit a "
            f"{window_days}-day window plus a {horizon_days}-day horizon"
        )

    inventory = StreamInventory.from_result(result)
    extractor = StreamingFeatures(
        inventory, window_days=window_days,
        hot_temp_f=hot_temp_f, humid_rh=humid_rh,
    )
    hw_codes = np.array(
        sorted(FAULT_CODE[fault] for fault in HARDWARE_FAULTS), dtype=np.int64,
    )
    failures = np.zeros(
        (extractor.n_servers_total, n_days), dtype=np.int64,
    )

    snapshots: list[dict[str, np.ndarray]] = []
    day_iter = iter(sample_days)
    pending = next(day_iter, None)
    for block in blocks_from_result(result):
        _record_failures(failures, block, inventory, hw_codes)
        start = 0
        while pending is not None:
            boundary = (pending + 1) * 24.0
            position = int(np.searchsorted(
                block.time_hours, boundary, side="left",
            ))
            if position >= len(block):
                break
            if position > start:
                extractor.update_block(block.slice(start, position))
            snapshots.append(extractor.feature_arrays(pending))
            start = position
            pending = next(day_iter, None)
        if start < len(block):
            extractor.update_block(block.slice(start))
    while pending is not None:
        snapshots.append(extractor.feature_arrays(pending))
        pending = next(day_iter, None)

    failed = failures > 0
    labels: list[np.ndarray] = []
    lead: list[np.ndarray] = []
    for day in sample_days:
        window = failed[:, day + 1 : day + 1 + horizon_days]
        will_fail = window.any(axis=1)
        first = np.argmax(window, axis=1) + 1
        labels.append(will_fail.astype(np.float64))
        lead.append(np.where(will_fail, first, 0).astype(np.float64))

    columns = {
        name: np.concatenate([snapshot[name] for snapshot in snapshots])
        for name in snapshots[0]
    }
    columns[LABEL_WILL_FAIL] = np.concatenate(labels)
    columns[LABEL_DAYS_TO_FAILURE] = np.concatenate(lead)
    return Table(columns, schema=extractor.feature_schema())
