"""The two-stage predictor: flag catastrophic servers, then date them.

Stage A is a balanced CART classifier (the §V-C minority re-balancing,
on the library's own :class:`~repro.analysis.cart.tree.RegressionTree`)
over the per-server streaming features: *will this server file a
hardware ticket within the horizon?*  Stage B is a small regression
tree fitted on the positive training rows only: *in how many days?* —
the lead-time estimate a technician schedule actually needs.  Servers
the classifier does not flag never reach stage B.

Training is leak-free by construction: the caller splits with
:func:`~repro.analysis.prediction.time_split` using an embargo of the
label horizon, so no training row's label window overlaps the
evaluation period (see :func:`train_predictor`).
"""

from __future__ import annotations

import numpy as np

from ..analysis.cart.tree import RegressionTree, TreeParams
from ..analysis.prediction import time_split
from ..errors import DataError, FitError
from ..telemetry.table import Table
from .dataset import LABEL_DAYS_TO_FAILURE, LABEL_WILL_FAIL
from .features import PREDICT_FEATURES

#: Minimum positive training rows before stage B fits a tree; below
#: this the lead-time estimate falls back to the positive-class mean.
MIN_REGRESSION_ROWS = 40


class TwoStagePredictor:
    """Classifier + time-to-failure regressor on streaming features.

    Args:
        horizon_days: label horizon the model is trained for (carried
            for reporting and the proactive prevention window).
        classifier_params: stage A tree growth parameters.
        regressor_params: stage B tree growth parameters.
    """

    def __init__(
        self,
        horizon_days: int = 3,
        classifier_params: TreeParams | None = None,
        regressor_params: TreeParams | None = None,
    ):
        if horizon_days < 1:
            raise DataError(f"horizon_days must be >= 1, got {horizon_days}")
        self.horizon_days = int(horizon_days)
        self.classifier_params = classifier_params or TreeParams(
            max_depth=6, min_split=200, min_bucket=80, cp=1e-4,
        )
        self.regressor_params = regressor_params or TreeParams(
            max_depth=4, min_split=100, min_bucket=40, cp=1e-3,
        )
        self.classifier: RegressionTree | None = None
        self.regressor: RegressionTree | None = None
        self.fallback_lead_days: float = float(horizon_days)
        self._features = list(PREDICT_FEATURES)

    def fit(self, train: Table) -> "TwoStagePredictor":
        """Fit both stages on a training snapshot table."""
        if LABEL_WILL_FAIL not in train:
            raise DataError(f"dataset lacks the {LABEL_WILL_FAIL!r} label")
        matrix, schema = train.feature_matrix(self._features)
        labels = train.column(LABEL_WILL_FAIL).astype(float)
        positive = labels > 0.5
        n_pos = int(positive.sum())
        n_neg = len(labels) - n_pos
        if n_pos == 0 or n_neg == 0:
            raise FitError("cannot rebalance: one class is empty")
        weights = np.where(positive, 0.5 / n_pos, 0.5 / n_neg) * len(labels)
        self.classifier = RegressionTree(self.classifier_params).fit(
            matrix, labels, schema, weights,
        )

        lead = train.column(LABEL_DAYS_TO_FAILURE).astype(float)[positive]
        self.fallback_lead_days = float(lead.mean())
        self.regressor = None
        if n_pos >= MIN_REGRESSION_ROWS:
            self.regressor = RegressionTree(self.regressor_params).fit(
                matrix[positive], lead, schema,
            )
        return self

    def score(self, table: Table) -> np.ndarray:
        """Stage A failure propensity per row (leaf positive rate)."""
        if self.classifier is None:
            raise FitError("predictor is not fitted")
        matrix, _ = table.feature_matrix(self._features)
        return self.classifier.predict(matrix)

    def lead_time_days(self, table: Table) -> np.ndarray:
        """Stage B predicted days-to-failure per row.

        Meaningful for rows stage A flags; when stage B had too few
        positive rows to fit, every row gets the positive-class mean.
        """
        if self.classifier is None:
            raise FitError("predictor is not fitted")
        if self.regressor is None:
            return np.full(table.n_rows, self.fallback_lead_days)
        matrix, _ = table.feature_matrix(self._features)
        return self.regressor.predict(matrix)


def train_predictor(
    dataset: Table,
    horizon_days: int = 3,
    train_fraction: float = 0.7,
    classifier_params: TreeParams | None = None,
    regressor_params: TreeParams | None = None,
) -> tuple[TwoStagePredictor, Table, Table]:
    """Embargoed chronological split + fit; returns (model, train, test).

    The split embargoes ``horizon_days`` before the cutoff so no
    training row's label window reaches into the evaluation period.
    """
    train, test = time_split(
        dataset, train_fraction=train_fraction, embargo_days=horizon_days,
    )
    model = TwoStagePredictor(
        horizon_days=horizon_days,
        classifier_params=classifier_params,
        regressor_params=regressor_params,
    ).fit(train)
    return model, train, test
