"""Online failure prediction over the event stream.

The paper names "prediction of datacenter failures for pro-active
maintenance" (§VII) as the framework's natural continuation; this
package closes that loop on the operator-visible side of the
field-data boundary:

* :mod:`repro.predict.features` — per-server rolling-window features
  computed incrementally over :class:`~repro.stream.blocks.EventBlock`
  batches (O(servers) state, checkpointable);
* :mod:`repro.predict.dataset` — one streaming pass turning a run into
  a supervised per-server table with future-window labels;
* :mod:`repro.predict.model` — the two-stage predictor (catastrophic
  classifier + time-to-failure regressor) on the library's own CART;
* :mod:`repro.predict.scoring` — exact precision/recall/lead-time
  scoring against the planted failures *as realized in the stream*;
* :mod:`repro.predict.monitor` — a live :class:`PredictiveMonitor`
  that joins the stream analyzer's trigger set;
* :mod:`repro.predict.experiment` — the declared ``predict``
  experiment (content-addressed ``predict:features`` →
  ``predict:train`` → ``predict:score`` stages).

Everything here consumes simulator *outputs* only — tickets, sensors,
inventory.  The GT-leak staticcheck rule forbids this package from
importing the planted hazard model, and the scoring harness's "ground
truth" is the realized hardware ticket stream itself.
"""

from .dataset import build_feature_dataset
from .features import (
    PREDICT_FEATURES,
    StreamingFeatures,
    load_feature_state,
    save_feature_state,
)
from .model import TwoStagePredictor, train_predictor
from .monitor import PredictiveMonitor
from .scoring import proactive_comparison, score_predictions

__all__ = [
    "PREDICT_FEATURES",
    "PredictiveMonitor",
    "StreamingFeatures",
    "TwoStagePredictor",
    "build_feature_dataset",
    "load_feature_state",
    "proactive_comparison",
    "save_feature_state",
    "score_predictions",
    "train_predictor",
]
