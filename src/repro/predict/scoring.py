"""Exact scoring: precision/recall/lead-time against planted failures.

The simulator's planted failures are *realized* as hardware tickets in
the event stream, so the evaluation can score the predictor exactly —
no sampling, no survey noise — while staying on the operator-visible
side of the field-data boundary: everything here reads labels from the
dataset rows (which came from the ticket stream) and never the hazard
model.  Scoring the evaluation split only is what keeps the boundary
honest: features precede the cutoff, labels follow it.

Two views come out:

* :func:`score_predictions` — ranking quality (AUC) plus operating
  points: for each act-fraction, the precision/recall of acting on the
  top-scored rows and the realized vs predicted lead time;
* :func:`proactive_comparison` — the decision-side translation: fold
  per-server scores into per-rack-day interventions through
  :mod:`repro.decisions.proactive` and compare total cost against the
  do-nothing reactive baseline.
"""

from __future__ import annotations

import numpy as np

from ..analysis.prediction import roc_auc
from ..decisions.proactive import ProactivePolicy, scored_policy_curve
from ..errors import DataError
from ..failures.engine import SimulationResult
from ..telemetry.schema import TICKET_LOG
from ..telemetry.table import Table
from .dataset import LABEL_DAYS_TO_FAILURE, LABEL_WILL_FAIL
from .model import TwoStagePredictor

#: Act-fraction operating points reported by default.
DEFAULT_ACT_FRACTIONS = (0.01, 0.02, 0.05, 0.10, 0.20)


def score_predictions(
    model: TwoStagePredictor,
    test: Table,
    act_fractions: tuple[float, ...] = DEFAULT_ACT_FRACTIONS,
) -> dict:
    """Ranking metrics and operating points on the evaluation split."""
    if test.n_rows == 0:
        raise DataError("empty evaluation split")
    scores = model.score(test)
    lead_pred = model.lead_time_days(test)
    labels = test.column(LABEL_WILL_FAIL).astype(float)
    actual_lead = test.column(LABEL_DAYS_TO_FAILURE).astype(float)
    positives = labels > 0.5
    total_pos = float(labels.sum())

    auc = None
    if 0 < positives.sum() < len(labels):
        auc = roc_auc(scores, labels)

    order = np.argsort(scores)[::-1]
    curves = []
    for fraction in act_fractions:
        k = max(1, int(round(fraction * len(scores))))
        top = order[:k]
        hits = positives[top]
        n_hits = float(hits.sum())
        curves.append({
            "act_fraction": float(fraction),
            "n_flagged": int(k),
            "precision": n_hits / k,
            "recall": n_hits / total_pos if total_pos else 0.0,
            "mean_lead_days": (
                float(actual_lead[top][hits].mean()) if n_hits else None
            ),
            "mean_predicted_lead_days": float(lead_pred[top].mean()),
        })
    return {
        "auc": auc,
        "base_rate": float(labels.mean()),
        "n_test": int(len(scores)),
        "horizon_days": model.horizon_days,
        "curves": curves,
    }


def rack_day_scores(
    test: Table, scores: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fold per-server rows into per-(rack, day) max scores.

    Interventions are rack visits (a technician inspects the rack, not
    one server), so the rack-day's risk is its riskiest server.
    Returns aligned ``(racks, days, scores)`` arrays.
    """
    if len(scores) != test.n_rows:
        raise DataError("scores must align with the evaluation rows")
    racks = test.column(TICKET_LOG.rack_index).astype(np.int64)
    days = test.column(TICKET_LOG.day_index).astype(np.int64)
    keys = np.stack([racks, days], axis=1)
    unique, inverse = np.unique(keys, axis=0, return_inverse=True)
    folded = np.full(len(unique), -np.inf)
    np.maximum.at(folded, inverse, np.asarray(scores, dtype=float))
    return unique[:, 0], unique[:, 1], folded


def proactive_comparison(
    result: SimulationResult,
    test: Table,
    scores: np.ndarray,
    horizon_days: int,
    act_fractions: tuple[float, ...] = DEFAULT_ACT_FRACTIONS,
    base_policy: ProactivePolicy | None = None,
) -> dict:
    """Score-driven proactive Q1 curve vs the reactive baseline.

    Each act-fraction's outcome prices technician interventions on the
    top-scored rack-days against the failures they avert; the reactive
    baseline simply eats every failure's cost.  ``beats_reactive`` is
    True when some operating point's total cost undercuts it.
    """
    base_policy = base_policy or ProactivePolicy(
        prevention_window_days=horizon_days,
    )
    racks, days, folded = rack_day_scores(test, scores)
    outcomes = scored_policy_curve(
        result, racks, days, folded,
        act_fractions=act_fractions, base_policy=base_policy,
    )
    reactive_cost = outcomes[0].reactive_cost
    return {
        "reactive_cost": reactive_cost,
        "beats_reactive": any(o.beats_reactive for o in outcomes),
        "curve": [
            {
                "act_fraction": o.policy.act_fraction,
                "n_interventions": o.n_interventions,
                "failures_prevented": o.failures_prevented,
                "prevention_share": o.prevention_share,
                "net_savings": o.net_savings,
                "total_cost": o.total_cost,
                "beats_reactive": o.beats_reactive,
            }
            for o in outcomes
        ],
    }
