"""Live failure-risk monitoring: predictions as stream triggers.

:class:`PredictiveMonitor` joins the stream analyzer's trigger set
(:class:`~repro.stream.triggers.SlaRiskMonitor`,
:class:`~repro.stream.triggers.RateDriftDetector`): it folds every
event into a :class:`~repro.predict.features.StreamingFeatures`
extractor and, as each day completes, scores the whole fleet with a
fitted :class:`~repro.predict.model.TwoStagePredictor`, emitting one
:data:`~repro.stream.triggers.AlertKind.PREDICTED_FAILURE` alert per
risk episode per server.

Day-roll semantics mirror the drift detector: a day is evaluated the
moment the first event of a *later* day arrives, before that event is
folded — so the features behind every score contain exactly the
completed day's history.  The block path splits blocks at day
boundaries to keep that ordering, which makes scalar and block
processing bit-identical (alerts are anchored to the day boundary
time, not the triggering event, so a resume cannot shift timestamps).
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from ..stream.blocks import EventBlock
from ..stream.events import Event, StreamInventory
from ..stream.triggers import Alert, AlertKind
from .features import StreamingFeatures
from .model import TwoStagePredictor


class PredictiveMonitor:
    """Per-server failure-risk trigger over a fitted predictor.

    Args:
        inventory: the stream's rack geometry.
        model: a fitted two-stage predictor.
        threshold: score above which a server is in a risk episode.
        window_days: feature trailing window (must match what the
            model was trained on).
        eval_every_days: score the fleet every Nth completed day
            (1 = daily).
        hot_temp_f / humid_rh: sensor excursion thresholds, forwarded
            to the feature extractor.
    """

    def __init__(
        self,
        inventory: StreamInventory,
        model: TwoStagePredictor,
        threshold: float = 0.6,
        window_days: int = 14,
        eval_every_days: int = 1,
        hot_temp_f: float | None = None,
        humid_rh: float | None = None,
    ):
        if not 0.0 < threshold < 1.0:
            raise DataError(f"threshold must be in (0, 1), got {threshold}")
        if eval_every_days < 1:
            raise DataError(
                f"eval_every_days must be >= 1, got {eval_every_days}"
            )
        if model.classifier is None:
            raise DataError("PredictiveMonitor needs a fitted predictor")
        kwargs = {}
        if hot_temp_f is not None:
            kwargs["hot_temp_f"] = hot_temp_f
        if humid_rh is not None:
            kwargs["humid_rh"] = humid_rh
        self.inventory = inventory
        self.model = model
        self.threshold = float(threshold)
        self.eval_every_days = int(eval_every_days)
        self.features = StreamingFeatures(
            inventory, window_days=window_days, **kwargs,
        )
        self._flagged = np.zeros(self.features.n_servers_total, dtype=bool)
        self._current_day = 0
        self.alerts_emitted = 0

    # -- evaluation ----------------------------------------------------------

    def _evaluate_day(self, day: int) -> list[Alert]:
        """Score the fleet as of the end of ``day``; alert new episodes."""
        table = self.features.feature_table(day)
        scores = self.model.score(table)
        risky = scores > self.threshold
        rising = risky & ~self._flagged
        self._flagged = risky
        if not rising.any():
            return []
        boundary_time = (day + 1) * 24.0
        rack_of = self.features._rack_of
        offset_of = self.features._offset_of
        alerts = []
        for gid in np.nonzero(rising)[0].tolist():
            rack = int(rack_of[gid])
            alerts.append(Alert(
                kind=AlertKind.PREDICTED_FAILURE,
                time_hours=boundary_time,
                rack_index=rack,
                value=float(scores[gid]),
                threshold=self.threshold,
                message=(
                    f"server {self.inventory.rack_ids[rack]}"
                    f"/{int(offset_of[gid])}: failure risk "
                    f"{scores[gid]:.2f} over the next "
                    f"{self.model.horizon_days} days"
                ),
            ))
        self.alerts_emitted += len(alerts)
        return alerts

    def _roll_to(self, day: int) -> list[Alert]:
        """Evaluate the completed days in ``[current, day)``."""
        alerts: list[Alert] = []
        for completed in range(self._current_day, day):
            if completed % self.eval_every_days == 0:
                alerts.extend(self._evaluate_day(completed))
        self._current_day = max(self._current_day, day)
        return alerts

    # -- stream consumption --------------------------------------------------

    def update(self, event: Event) -> list[Alert]:
        """Fold one event in; returns alerts for any days it completes."""
        day = max(int(event.time_hours // 24.0), 0)
        alerts: list[Alert] = []
        if day > self._current_day:
            alerts = self._roll_to(day)
        self.features.update(event)
        return alerts

    def update_block(self, block: EventBlock) -> list[Alert]:
        """Fold a whole block in; returns new alerts in order."""
        return [alert for _, alert in self._update_block_indexed(block)]

    def _update_block_indexed(
        self, block: EventBlock,
    ) -> list[tuple[int, Alert]]:
        """Block update returning ``(block row, alert)`` pairs.

        The block is split at day boundaries: each completed day is
        evaluated before any later-day event is folded, exactly like
        the scalar path.
        """
        if not len(block):
            return []
        day = np.maximum((block.time_hours // 24.0).astype(np.int64), 0)
        out: list[tuple[int, Alert]] = []
        start = 0
        n = len(block)
        while start < n:
            current = int(day[start])
            if current > self._current_day:
                out.extend(
                    (start, alert) for alert in self._roll_to(current)
                )
            stop = int(np.searchsorted(day, current, side="right"))
            self.features.update_block(block.slice(start, stop))
            start = stop
        return out

    def finish(self, time_hours: float | None = None) -> list[Alert]:
        """Evaluate the remaining completed days at end of stream."""
        if time_hours is None:
            time_hours = self.inventory.n_days * 24.0
        final = min(int(time_hours // 24.0), self.inventory.n_days)
        return self._roll_to(final)

    # -- checkpoint support --------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Flat-array serialization (model carried separately)."""
        arrays = {
            f"features.{name}": array
            for name, array in self.features.state_arrays().items()
        }
        arrays["flagged"] = self._flagged.copy()
        return arrays

    def meta(self) -> dict:
        """JSON-serializable configuration + scalars."""
        return {
            "threshold": self.threshold,
            "eval_every_days": self.eval_every_days,
            "current_day": self._current_day,
            "alerts_emitted": self.alerts_emitted,
            "features": self.features.meta(),
        }

    @staticmethod
    def from_state(
        inventory: StreamInventory,
        model: TwoStagePredictor,
        arrays: dict[str, np.ndarray],
        meta: dict,
    ) -> "PredictiveMonitor":
        """Rebuild a monitor from state + the (deterministic) model.

        The fitted trees are not serialized — they are a deterministic
        function of the training data, so callers re-fit (or keep) the
        model and hand it back here.
        """
        features_meta = meta["features"]
        monitor = PredictiveMonitor(
            inventory, model,
            threshold=float(meta["threshold"]),
            window_days=int(features_meta["window_days"]),
            eval_every_days=int(meta["eval_every_days"]),
        )
        monitor.features = StreamingFeatures.from_state(
            inventory,
            {
                name.split(".", 1)[1]: array
                for name, array in arrays.items()
                if name.startswith("features.")
            },
            features_meta,
        )
        monitor._flagged = np.asarray(arrays["flagged"], dtype=bool).copy()
        monitor._current_day = int(meta["current_day"])
        monitor.alerts_emitted = int(meta["alerts_emitted"])
        return monitor
