"""Streaming per-server feature extraction for failure prediction.

:class:`StreamingFeatures` folds the flattened event stream into
O(servers) rolling state and snapshots it into the per-server feature
vectors the predictor consumes:

* per-server ticket history — trailing hardware-ticket counts over a
  ring of the last ``window_days`` days, lifetime hardware/disk/other
  totals, inter-arrival statistics (mean gap, hours since last);
* per-rack sensor excursions — trailing hot-inlet counts and the
  lifetime high-humidity share of readings;
* inventory context — SKU, datacenter, age and rack capacity.

Both the scalar :meth:`~StreamingFeatures.update` and the columnar
:meth:`~StreamingFeatures.update_block` paths commit bit-identical
state (the block path is the throughput path; the scalar path is the
executable specification), and :func:`save_feature_state` /
:func:`load_feature_state` checkpoint the extractor mid-trace with the
same one-``.npz`` convention as :mod:`repro.stream.checkpoint` — a
resumed extractor's snapshots are bit-identical to a continuous pass.

The day rings share :class:`~repro.stream.estimators.StreamingGroupCounts`'s
advance rule: event days are non-decreasing in stream order, so a block
can advance once to its final day and land only the rows whose slots
that advance left alive (``day > final - window``) — every older row's
slot would have been zeroed by a later scalar advance anyway.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from ..errors import DataError
from ..failures.tickets import FAULT_CODE, FaultType, HARDWARE_FAULTS
from ..stream.blocks import KIND_RANK, EventBlock, group_start_flags
from ..stream.events import Event, EventKind, StreamInventory
from ..telemetry.schema import (
    INVENTORY_CSV,
    TICKET_LOG,
    FeatureKind,
    FeatureSpec,
    Schema,
)
from ..telemetry.table import Table

_SENSOR_CODE = KIND_RANK[EventKind.SENSOR_SAMPLE]

#: Hot-inlet excursion threshold (°F) — the paper's temperature split.
DEFAULT_HOT_TEMP_F = 78.0

#: High-humidity excursion threshold (%RH) — the BMS alarm band's
#: upper edge (see :class:`repro.environment.bms.AlarmThresholds`).
DEFAULT_HUMID_RH = 80.0

#: Feature columns a snapshot table carries, in matrix order.
PREDICT_FEATURES = (
    "sku",
    "dc",
    "age_days",
    "capacity",
    "trailing_hw",
    "rack_trailing_hw",
    "total_hw",
    "total_disk",
    "total_other",
    "mean_gap_hours",
    "hours_since_hw",
    "hot_excursions",
    "humid_share",
)

#: Bump on any incompatible change to the feature-state bundle layout.
PREDICT_CHECKPOINT_SCHEMA = 1


class StreamingFeatures:
    """Incremental per-server feature state over one event stream.

    Args:
        inventory: the stream's rack geometry.
        window_days: trailing-window length for the day rings.
        hot_temp_f: inlet readings above this count as hot excursions.
        humid_rh: RH readings above this count as humid excursions.
    """

    def __init__(
        self,
        inventory: StreamInventory,
        window_days: int = 14,
        hot_temp_f: float = DEFAULT_HOT_TEMP_F,
        humid_rh: float = DEFAULT_HUMID_RH,
    ):
        if window_days < 1:
            raise DataError(f"window_days must be >= 1, got {window_days}")
        self.inventory = inventory
        self.window_days = int(window_days)
        self.hot_temp_f = float(hot_temp_f)
        self.humid_rh = float(humid_rh)

        n_servers = inventory.n_servers.astype(np.int64)
        self.n_servers_total = int(n_servers.sum())
        self._rack_of = np.repeat(
            np.arange(inventory.n_racks, dtype=np.int64), n_servers,
        )
        self._offset_of = (
            np.arange(self.n_servers_total, dtype=np.int64)
            - inventory.server_base[self._rack_of]
        )
        codes = sorted(FAULT_CODE[fault] for fault in HARDWARE_FAULTS)
        self._hw_codes = np.array(codes, dtype=np.int64)
        self._hw_code_set = set(codes)
        self._disk_code = FAULT_CODE[FaultType.DISK]

        window = self.window_days
        total = self.n_servers_total
        racks = inventory.n_racks
        self._hw_ring = np.zeros((total, window), dtype=np.int64)
        self._hot_ring = np.zeros((racks, window), dtype=np.int64)
        self.hw_total = np.zeros(total, dtype=np.int64)
        self.disk_total = np.zeros(total, dtype=np.int64)
        self.other_total = np.zeros(total, dtype=np.int64)
        self.last_hw_time = np.full(total, np.nan, dtype=np.float64)
        self.gap_sum = np.zeros(total, dtype=np.float64)
        self.gap_count = np.zeros(total, dtype=np.int64)
        self.sensor_count = np.zeros(racks, dtype=np.int64)
        self.hot_total = np.zeros(racks, dtype=np.int64)
        self.humid_total = np.zeros(racks, dtype=np.int64)
        self._current_day = 0

    # -- ring bookkeeping ---------------------------------------------------

    def _advance(self, day: int) -> None:
        """Roll both day rings forward, zeroing the slots entered."""
        if day <= self._current_day:
            return
        steps = min(self.window_days, day - self._current_day)
        for offset in range(1, steps + 1):
            slot = (self._current_day + offset) % self.window_days
            self._hw_ring[:, slot] = 0
            self._hot_ring[:, slot] = 0
        self._current_day = day

    # -- scalar path (the executable specification) -------------------------

    def update(self, event: Event) -> None:
        """Fold one event into the feature state."""
        if event.kind is EventKind.SENSOR_SAMPLE:
            rack = event.rack_index
            if not 0 <= rack < self.inventory.n_racks:
                return
            day = max(int(event.time_hours // 24.0), 0)
            self._advance(day)
            self.sensor_count[rack] += 1
            if event.value > self.hot_temp_f:
                self.hot_total[rack] += 1
                self._hot_ring[rack, day % self.window_days] += 1
            if event.value2 > self.humid_rh:
                self.humid_total[rack] += 1
            return
        if event.kind is not EventKind.TICKET_OPEN or event.false_positive:
            return
        rack = event.rack_index
        if not 0 <= rack < self.inventory.n_racks:
            return
        offset = event.server_offset
        if not 0 <= offset < int(self.inventory.n_servers[rack]):
            return
        day = max(int(event.time_hours // 24.0), 0)
        self._advance(day)
        gid = int(self.inventory.server_base[rack]) + offset
        if int(event.fault_code) in self._hw_code_set:
            self.hw_total[gid] += 1
            self._hw_ring[gid, day % self.window_days] += 1
            if int(event.fault_code) == self._disk_code:
                self.disk_total[gid] += 1
            last = self.last_hw_time[gid]
            if not np.isnan(last):
                self.gap_sum[gid] += event.time_hours - last
                self.gap_count[gid] += 1
            self.last_hw_time[gid] = event.time_hours
        else:
            self.other_total[gid] += 1

    # -- columnar path ------------------------------------------------------

    def update_block(self, block: EventBlock) -> None:
        """Fold a whole block in — bit-identical to per-event updates."""
        if not len(block):
            return
        sensor_rows = np.nonzero(block.kind_code == _SENSOR_CODE)[0]
        srack = np.empty(0, dtype=np.int64)
        sday = np.empty(0, dtype=np.int64)
        if len(sensor_rows):
            srack = block.rack_index[sensor_rows].astype(np.int64)
            in_range = (srack >= 0) & (srack < self.inventory.n_racks)
            sensor_rows = sensor_rows[in_range]
            srack = srack[in_range]
            sday = np.maximum(
                (block.time_hours[sensor_rows] // 24.0).astype(np.int64), 0,
            )

        gid = np.empty(0, dtype=np.int64)
        tday = np.empty(0, dtype=np.int64)
        ttime = np.empty(0, dtype=np.float64)
        fault = np.empty(0, dtype=np.int64)
        columns = block.open_ticket_columns()
        if columns is not None:
            rack = columns["rack"]
            offset = columns["offset"]
            keep = (
                ~columns["fp"]
                & (rack >= 0) & (rack < self.inventory.n_racks)
                & (offset >= 0)
            )
            keep[keep] &= (
                offset[keep] < self.inventory.n_servers[rack[keep]]
            )
            if keep.any():
                gid = self.inventory.server_base[rack[keep]] + offset[keep]
                ttime = columns["time"][keep]
                tday = np.maximum((ttime // 24.0).astype(np.int64), 0)
                fault = columns["fault"][keep]

        final = -1
        if len(sday):
            final = int(sday[-1])
        if len(tday):
            final = max(final, int(tday[-1]))
        if final < 0:
            return
        self._advance(final)
        recent_cut = final - self.window_days

        if len(sensor_rows):
            np.add.at(self.sensor_count, srack, 1)
            hot = block.value[sensor_rows] > self.hot_temp_f
            np.add.at(self.hot_total, srack[hot], 1)
            live = hot & (sday > recent_cut)
            np.add.at(
                self._hot_ring,
                (srack[live], sday[live] % self.window_days), 1,
            )
            humid = block.value2[sensor_rows] > self.humid_rh
            np.add.at(self.humid_total, srack[humid], 1)

        if len(gid):
            hardware = np.isin(fault, self._hw_codes)
            np.add.at(self.hw_total, gid[hardware], 1)
            live = hardware & (tday > recent_cut)
            np.add.at(
                self._hw_ring,
                (gid[live], tday[live] % self.window_days), 1,
            )
            disk = hardware & (fault == self._disk_code)
            np.add.at(self.disk_total, gid[disk], 1)
            np.add.at(self.other_total, gid[~hardware], 1)
            if hardware.any():
                self._commit_gaps(gid[hardware], ttime[hardware])

    def _commit_gaps(self, gid: np.ndarray, time: np.ndarray) -> None:
        """Inter-arrival accounting for one block's hardware opens.

        ``np.add.at`` applies additions sequentially in index order, and
        the stable per-gid sort preserves stream order within each gid,
        so every ``gap_sum`` slot accumulates its gaps in exactly the
        order the scalar path would — float-for-float identical.
        """
        order = np.argsort(gid, kind="stable")
        g = gid[order]
        t = time[order]
        flags = group_start_flags(g)
        first = np.nonzero(flags)[0]
        previous = np.empty(len(g), dtype=np.float64)
        previous[1:] = t[:-1]
        previous[first] = self.last_hw_time[g[first]]
        valid = ~np.isnan(previous)
        np.add.at(self.gap_sum, g[valid], t[valid] - previous[valid])
        np.add.at(self.gap_count, g[valid], 1)
        last_rows = np.append(first[1:] - 1, len(g) - 1)
        self.last_hw_time[g[last_rows]] = t[last_rows]

    # -- snapshots -----------------------------------------------------------

    def feature_arrays(self, day: int) -> dict[str, np.ndarray]:
        """Per-server feature vectors as of the end of ``day``.

        ``day`` must not precede the extractor's current day (features
        never look back past expired ring slots); snapshotting a later
        day first expires the ring slots the quiet days left behind.
        Never-seen sentinels (``hours_since_hw`` / ``mean_gap_hours``
        for servers with no hardware history) saturate at the snapshot
        time — "at least this long".
        """
        day = int(day)
        if day < self._current_day:
            raise DataError(
                f"cannot snapshot day {day}: extractor already at day "
                f"{self._current_day}"
            )
        self._advance(day)
        snapshot_time = (day + 1) * 24.0
        rack = self._rack_of
        inventory = self.inventory

        trailing_hw = self._hw_ring.sum(axis=1).astype(np.float64)
        rack_trailing = np.add.reduceat(trailing_hw, inventory.server_base)
        hot_trailing = self._hot_ring.sum(axis=1).astype(np.float64)
        hours_since = np.where(
            np.isnan(self.last_hw_time),
            snapshot_time,
            snapshot_time - self.last_hw_time,
        )
        mean_gap = np.where(
            self.gap_count > 0,
            self.gap_sum / np.maximum(self.gap_count, 1),
            snapshot_time,
        )
        humid_share = (
            self.humid_total / np.maximum(self.sensor_count, 1)
        ).astype(np.float64)

        total = self.n_servers_total
        return {
            TICKET_LOG.rack_index: rack.copy(),
            TICKET_LOG.server_offset: self._offset_of.copy(),
            TICKET_LOG.day_index: np.full(total, day, dtype=np.int64),
            INVENTORY_CSV.sku: inventory.sku_code[rack],
            INVENTORY_CSV.dc: inventory.dc_code[rack],
            "age_days": (day - inventory.commission_day[rack]).astype(np.float64),
            "capacity": inventory.n_servers[rack].astype(np.float64),
            "trailing_hw": trailing_hw,
            "rack_trailing_hw": rack_trailing[rack],
            "total_hw": self.hw_total.astype(np.float64),
            "total_disk": self.disk_total.astype(np.float64),
            "total_other": self.other_total.astype(np.float64),
            "mean_gap_hours": mean_gap,
            "hours_since_hw": hours_since,
            "hot_excursions": hot_trailing[rack],
            "humid_share": humid_share[rack],
        }

    def feature_schema(self) -> Schema:
        """Schema of a snapshot table (SKU/DC nominal, rest continuous)."""
        specs = [
            FeatureSpec("sku", FeatureKind.NOMINAL,
                        tuple(self.inventory.sku_names)),
            FeatureSpec("dc", FeatureKind.NOMINAL,
                        tuple(self.inventory.dc_names)),
        ]
        specs.extend(
            FeatureSpec(name, FeatureKind.CONTINUOUS)
            for name in PREDICT_FEATURES[2:]
        )
        return Schema(tuple(specs))

    def feature_table(self, day: int) -> Table:
        """A snapshot as a :class:`~repro.telemetry.table.Table`."""
        return Table(self.feature_arrays(day), schema=self.feature_schema())

    # -- checkpoint support --------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Flat-array serialization of the feature state."""
        return {
            "hw_ring": self._hw_ring.copy(),
            "hot_ring": self._hot_ring.copy(),
            "hw_total": self.hw_total.copy(),
            "disk_total": self.disk_total.copy(),
            "other_total": self.other_total.copy(),
            "last_hw_time": self.last_hw_time.copy(),
            "gap_sum": self.gap_sum.copy(),
            "gap_count": self.gap_count.copy(),
            "sensor_count": self.sensor_count.copy(),
            "hot_total": self.hot_total.copy(),
            "humid_total": self.humid_total.copy(),
        }

    def meta(self) -> dict:
        """JSON-serializable configuration + scalars."""
        return {
            "window_days": self.window_days,
            "hot_temp_f": self.hot_temp_f,
            "humid_rh": self.humid_rh,
            "current_day": self._current_day,
        }

    @staticmethod
    def from_state(
        inventory: StreamInventory,
        arrays: dict[str, np.ndarray],
        meta: dict,
    ) -> "StreamingFeatures":
        """Rebuild an extractor from :meth:`state_arrays` + :meth:`meta`."""
        extractor = StreamingFeatures(
            inventory,
            window_days=int(meta["window_days"]),
            hot_temp_f=float(meta["hot_temp_f"]),
            humid_rh=float(meta["humid_rh"]),
        )
        extractor._hw_ring = np.asarray(arrays["hw_ring"], dtype=np.int64).copy()
        extractor._hot_ring = np.asarray(arrays["hot_ring"], dtype=np.int64).copy()
        extractor.hw_total = np.asarray(arrays["hw_total"], dtype=np.int64).copy()
        extractor.disk_total = np.asarray(arrays["disk_total"], dtype=np.int64).copy()
        extractor.other_total = np.asarray(arrays["other_total"], dtype=np.int64).copy()
        extractor.last_hw_time = np.asarray(
            arrays["last_hw_time"], dtype=np.float64,
        ).copy()
        extractor.gap_sum = np.asarray(arrays["gap_sum"], dtype=np.float64).copy()
        extractor.gap_count = np.asarray(arrays["gap_count"], dtype=np.int64).copy()
        extractor.sensor_count = np.asarray(
            arrays["sensor_count"], dtype=np.int64,
        ).copy()
        extractor.hot_total = np.asarray(arrays["hot_total"], dtype=np.int64).copy()
        extractor.humid_total = np.asarray(
            arrays["humid_total"], dtype=np.int64,
        ).copy()
        extractor._current_day = int(meta["current_day"])
        return extractor


def save_feature_state(
    extractor: StreamingFeatures,
    path: str | pathlib.Path,
    events_seen: int = 0,
) -> pathlib.Path:
    """Serialize a mid-trace extractor to one ``.npz`` bundle."""
    path = pathlib.Path(path)
    arrays = {
        f"state.{name}": array
        for name, array in extractor.state_arrays().items()
    }
    meta = {
        "schema": PREDICT_CHECKPOINT_SCHEMA,
        "inventory_fingerprint": extractor.inventory.fingerprint(),
        "events_seen": int(events_seen),
        "extractor": extractor.meta(),
    }
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8,
    )
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    return path


def load_feature_state(
    path: str | pathlib.Path, inventory: StreamInventory,
) -> tuple[StreamingFeatures, int]:
    """Rebuild ``(extractor, events_seen)`` from a feature bundle.

    The bundle's inventory fingerprint must match ``inventory`` — a
    checkpoint resumed against a different fleet raises
    :class:`~repro.errors.DataError`.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise DataError(f"no such feature checkpoint: {path}")
    with np.load(path) as bundle:
        if "meta_json" not in bundle:
            raise DataError(f"{path} is not a feature checkpoint")
        raw = bytes(bundle["meta_json"].tobytes())
        arrays = {
            key.split(".", 1)[1]: bundle[key]
            for key in bundle.files
            if key.startswith("state.")
        }
    try:
        meta = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise DataError(f"{path}: corrupt checkpoint metadata ({error})") from None
    if meta.get("schema") != PREDICT_CHECKPOINT_SCHEMA:
        raise DataError(
            f"{path}: feature checkpoint schema {meta.get('schema')!r} != "
            f"{PREDICT_CHECKPOINT_SCHEMA}"
        )
    if meta["inventory_fingerprint"] != inventory.fingerprint():
        raise DataError(
            f"{path}: checkpoint was taken against a different inventory "
            f"(fingerprint {meta['inventory_fingerprint']} != "
            f"{inventory.fingerprint()})"
        )
    extractor = StreamingFeatures.from_state(
        inventory, arrays, meta["extractor"],
    )
    return extractor, int(meta["events_seen"])
