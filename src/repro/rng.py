"""Deterministic random-number stream management.

A simulation run touches randomness in many places (weather noise, sensor
noise, failure sampling, repair durations, ticket classification).  To
keep runs reproducible *and* stable under code evolution, each consumer
asks for a named stream derived from the master seed; adding a new
consumer does not perturb the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stream_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a master seed and a name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory of named, independently-seeded numpy Generators.

    Example:
        >>> rngs = RngRegistry(seed=7)
        >>> weather_rng = rngs.stream("weather")
        >>> failures_rng = rngs.stream("failures")

    Asking twice for the same name returns the *same* generator object so
    that sequential draws within a subsystem advance a single stream.
    """

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(_stream_seed(self.seed, name))
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (ignores the cache).

        Useful in tests that want identical draw sequences twice.
        """
        return np.random.default_rng(_stream_seed(self.seed, name))

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry whose streams are independent of ours."""
        return RngRegistry(_stream_seed(self.seed, f"registry:{name}") % (2**63))
