"""The report pipeline's stage catalogue.

One declarative place where ``simulate → aggregate → decisions →
render`` is spelled out as :class:`~repro.pipeline.core.Stage` objects:

* ``simulate`` — the run itself, persisted with the run-cache bundle
  format (``codec="run"``), keyed by the config fingerprint and the
  engine source;
* ``summary`` — the run's one-line summary (lets ``repro report`` print
  its header on a warm store without materializing the run);
* ``rack_day:{all,hardware,disk}`` — the flattened λ/μ rack-day tables
  (memory-only: cheap to rebuild, expensive to serialize);
* ``event_blocks`` — the run's full event trace as one columnar
  :class:`~repro.stream.blocks.BlockSegment` (``codec="blocks"``: an
  uncompressed ``.npz`` the store memory-maps back on a warm hit);
* ``provisioner:{W}h`` / ``component_provisioner:{W}h`` — the Q1
  decision models;
* ``fielddata:sev=S`` — the degradation payloads behind the
  ``fielddata`` experiment and the noise sweep (``codec="json"``);
* ``predict:{features,train,score}`` — the failure-prediction sub-DAG;
  the snapshot dataset and fitted model stay memory-only while the
  scored evaluation payload persists as JSON;
* ``autonomics:compare`` — the closed-loop policy shootout (same seed
  replayed under each built-in controller), persisted as JSON;
* ``render:{experiment}`` — one text artifact per registry entry, with
  dependencies taken from the experiment's declared ``stages``.

Every stage declares the source modules that should invalidate it via
``code=``; see ``docs/pipeline.md`` for the keying rules.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from ..autonomics.experiment import (
    DEFAULT_POLICIES,
    compute_autonomics_payload,
)
from ..cache import config_fingerprint
from ..decisions.component_spares import ComponentProvisioner
from ..decisions.spares import SpareProvisioner
from ..errors import ConfigError
from ..failures.engine import simulate
from ..failures.tickets import FaultType, HARDWARE_FAULTS
from ..fielddata.robustness import DEFAULT_SEVERITIES, noise_point_payload
from ..predict.dataset import build_feature_dataset
from ..predict.experiment import (
    DEFAULT_HORIZON_DAYS,
    DEFAULT_SAMPLE_EVERY,
    compute_predict_payload,
)
from ..predict.model import train_predictor
from ..reporting.context import (
    SIMULATE_STAGE,
    SUMMARY_STAGE,
    AnalysisContext,
    autonomics_stage,
    component_provisioner_stage,
    fielddata_stage,
    predict_stage,
    provisioner_stage,
    rack_day_stage,
)
from ..reporting.experiments import Experiment, get_experiment, EXPERIMENTS
from ..stream.blocks import BlockSegment, blocks_from_result
from ..telemetry.aggregate import build_rack_day_table
from .core import ArtifactStore, Pipeline, Stage, StageContext, StageExecution

if TYPE_CHECKING:
    from ..config import SimulationConfig

#: Prefix of per-experiment rendering stages.
RENDER_PREFIX = "render:"

#: The run's columnar event trace (a memory-mappable block segment).
EVENT_BLOCKS_STAGE = "event_blocks"

#: Spare-provisioning windows the catalogue always carries (daily and
#: hourly — the two the paper's Q1 artifacts use).
PROVISIONER_WINDOWS = (24.0, 1.0)


def render_stage_name(experiment_id: str) -> str:
    """Stage name of one experiment's rendered text."""
    return RENDER_PREFIX + experiment_id


def simulate_stage(config: "SimulationConfig") -> Stage:
    """The root stage: run (or load) the simulation for ``config``."""
    def run(inputs: dict, ctx: StageContext) -> Any:
        return simulate(ctx.runtime["config"])

    return Stage(
        name=SIMULATE_STAGE,
        run=run,
        fingerprint_inputs={"config": config_fingerprint(config)},
        runtime={"config": config},
        code=("repro.failures.engine",),
        codec="run",
    )


def summary_stage() -> Stage:
    """The run's one-line summary, cached as text."""
    def run(inputs: dict, ctx: StageContext) -> str:
        return inputs[SIMULATE_STAGE].summary()

    return Stage(
        name=SUMMARY_STAGE,
        run=run,
        deps=(SIMULATE_STAGE,),
        codec="text",
    )


def event_blocks_stage() -> Stage:
    """The run's events flattened once into a columnar block segment.

    Downstream consumers (streaming replays, the rack-day table's block
    path, external tooling) iterate the cached segment without
    re-merging the run's logs; on a warm store the artifact comes back
    memory-mapped, so a multi-year trace costs no resident memory.
    """
    def run(inputs: dict, ctx: StageContext) -> BlockSegment:
        return BlockSegment.from_blocks(
            blocks_from_result(inputs[SIMULATE_STAGE]),
        )

    return Stage(
        name=EVENT_BLOCKS_STAGE,
        run=run,
        deps=(SIMULATE_STAGE,),
        code=("repro.stream.blocks",),
        codec="blocks",
    )


def _rack_day_stages() -> Iterable[Stage]:
    code = ("repro.telemetry.aggregate",)

    def run_all(inputs: dict, ctx: StageContext) -> Any:
        return build_rack_day_table(inputs[SIMULATE_STAGE])

    def run_hardware(inputs: dict, ctx: StageContext) -> Any:
        return build_rack_day_table(
            inputs[SIMULATE_STAGE], faults=list(HARDWARE_FAULTS), include_mu=True,
        )

    def run_disk(inputs: dict, ctx: StageContext) -> Any:
        return build_rack_day_table(
            inputs[SIMULATE_STAGE], faults=[FaultType.DISK],
        )

    yield Stage(rack_day_stage("all"), run_all,
                deps=(SIMULATE_STAGE,), code=code)
    yield Stage(rack_day_stage("hardware"), run_hardware,
                deps=(SIMULATE_STAGE,), code=code)
    yield Stage(rack_day_stage("disk"), run_disk,
                deps=(SIMULATE_STAGE,), code=code)


def _provisioner_stage(window_hours: float) -> Stage:
    def run(inputs: dict, ctx: StageContext) -> Any:
        return SpareProvisioner(inputs[SIMULATE_STAGE],
                                window_hours=window_hours)

    return Stage(
        provisioner_stage(window_hours), run,
        deps=(SIMULATE_STAGE,),
        fingerprint_inputs={"window_hours": window_hours},
        code=("repro.decisions.spares",),
    )


def _component_provisioner_stage(window_hours: float) -> Stage:
    def run(inputs: dict, ctx: StageContext) -> Any:
        return ComponentProvisioner(inputs[SIMULATE_STAGE],
                                    window_hours=window_hours)

    return Stage(
        component_provisioner_stage(window_hours), run,
        deps=(SIMULATE_STAGE,),
        fingerprint_inputs={"window_hours": window_hours},
        code=("repro.decisions.component_spares",),
    )


def fielddata_payload_stage(severity: float) -> Stage:
    """One field-data degradation payload (shared with the noise sweep)."""
    def run(inputs: dict, ctx: StageContext) -> dict:
        return noise_point_payload(inputs[SIMULATE_STAGE], severity)

    return Stage(
        fielddata_stage(severity), run,
        deps=(SIMULATE_STAGE,),
        fingerprint_inputs={"severity": severity},
        code=(
            "repro.fielddata.corruption",
            "repro.fielddata.cleaning",
            "repro.fielddata.robustness",
        ),
        codec="json",
    )


def _predict_stages() -> Iterable[Stage]:
    """The failure-prediction sub-DAG: features → train → score.

    Features and the fitted model stay memory-only (cheap to rebuild,
    awkward to serialize); the scored payload is the JSON artifact the
    ``predict`` experiment and the service layer read.
    """
    params = {
        "horizon_days": DEFAULT_HORIZON_DAYS,
        "sample_every": DEFAULT_SAMPLE_EVERY,
    }

    def run_features(inputs: dict, ctx: StageContext) -> Any:
        return build_feature_dataset(
            inputs[SIMULATE_STAGE],
            horizon_days=DEFAULT_HORIZON_DAYS,
            sample_every=DEFAULT_SAMPLE_EVERY,
        )

    def run_train(inputs: dict, ctx: StageContext) -> Any:
        return train_predictor(
            inputs[predict_stage("features")],
            horizon_days=DEFAULT_HORIZON_DAYS,
        )

    def run_score(inputs: dict, ctx: StageContext) -> dict:
        return compute_predict_payload(
            inputs[SIMULATE_STAGE],
            dataset=inputs[predict_stage("features")],
            trained=inputs[predict_stage("train")],
        )

    yield Stage(
        predict_stage("features"), run_features,
        deps=(SIMULATE_STAGE,),
        fingerprint_inputs=dict(params),
        code=("repro.predict.features", "repro.predict.dataset"),
    )
    yield Stage(
        predict_stage("train"), run_train,
        deps=(predict_stage("features"),),
        fingerprint_inputs=dict(params),
        code=("repro.predict.model",),
    )
    yield Stage(
        predict_stage("score"), run_score,
        deps=(SIMULATE_STAGE, predict_stage("features"),
              predict_stage("train")),
        fingerprint_inputs=dict(params),
        code=("repro.predict.scoring", "repro.predict.experiment"),
        codec="json",
    )


def _autonomics_stages(config: "SimulationConfig") -> Iterable[Stage]:
    """The closed-loop policy shootout as a content-addressed artifact.

    The what-if engine replays the *config* (fresh sessions per
    policy), so like the root simulate stage this one is keyed by the
    config fingerprint and carries the config at runtime rather than
    depending on the batch result.
    """
    def run_compare(inputs: dict, ctx: StageContext) -> dict:
        return compute_autonomics_payload(ctx.runtime["config"])

    yield Stage(
        autonomics_stage("compare"), run_compare,
        fingerprint_inputs={
            "config": config_fingerprint(config),
            "policies": list(DEFAULT_POLICIES),
        },
        runtime={"config": config},
        code=(
            "repro.autonomics.whatif",
            "repro.autonomics.controller",
            "repro.autonomics.experiment",
        ),
        codec="json",
    )


def _render_stage(experiment: Experiment,
                  render_params: Mapping[str, Any] | None) -> Stage:
    def run(inputs: dict, ctx: StageContext) -> str:
        context = AnalysisContext(inputs[SIMULATE_STAGE],
                                  artifacts=ctx.pipeline)
        return experiment.render(context)

    return Stage(
        render_stage_name(experiment.experiment_id), run,
        deps=(SIMULATE_STAGE,) + experiment.stages,
        fingerprint_inputs={
            "experiment": experiment.experiment_id,
            "params": dict(render_params or {}),
        },
        code=experiment.code,
        codec="text",
    )


def analysis_stages(config: "SimulationConfig") -> list[Stage]:
    """Every non-render stage: simulation, summary, tables, decisions."""
    stages: list[Stage] = [simulate_stage(config), summary_stage()]
    stages.append(event_blocks_stage())
    stages.extend(_rack_day_stages())
    stages.extend(_provisioner_stage(w) for w in PROVISIONER_WINDOWS)
    stages.append(_component_provisioner_stage(24.0))
    stages.extend(fielddata_payload_stage(s) for s in DEFAULT_SEVERITIES)
    stages.extend(_predict_stages())
    stages.extend(_autonomics_stages(config))
    return stages


def build_report_pipeline(
    config: "SimulationConfig",
    store: ArtifactStore | None = None,
    experiment_ids: Iterable[str] | None = None,
    render_params: Mapping[str, Any] | None = None,
    observer: Callable[[StageExecution], None] | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> Pipeline:
    """The full report DAG for ``config``.

    Args:
        config: simulation configuration keying the root stage.
        store: artifact store (default: fresh memory-only).
        experiment_ids: registry ids to build render stages for
            (default: all); unknown ids raise
            :class:`~repro.errors.DataError`.
        render_params: extra rendering parameters mixed into every
            render stage's key (a render-only knob: changing it re-runs
            render stages and nothing upstream).
        observer: forwarded to :class:`~repro.pipeline.core.Pipeline`.
        clock: wall-time source for execution records.
    """
    ids = sorted(EXPERIMENTS) if experiment_ids is None else list(experiment_ids)
    stages = analysis_stages(config)
    catalogue = {stage.name for stage in stages}
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        missing = [dep for dep in experiment.stages if dep not in catalogue]
        if missing:
            raise ConfigError(
                f"experiment {experiment_id!r} declares stage deps "
                f"{missing} absent from the analysis catalogue"
            )
        stages.append(_render_stage(experiment, render_params))
    return Pipeline(stages, store=store, observer=observer, clock=clock)
