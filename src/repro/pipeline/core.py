"""Content-addressed stage DAG: declarative artifacts with provenance.

The paper's workflow is one pipeline — ``simulate → flatten/clean →
aggregate(λ, μ) → fit → decisions → render`` — but the repo used to
drive it four different ways, each re-deriving intermediates from
scratch with caching only at whole-run granularity
(:class:`~repro.cache.RunCache`).  This module generalizes that cache
into a per-stage artifact store plus a small declarative DAG:

* a :class:`Stage` names an artifact, its dependencies, the inputs that
  fingerprint it, and the function that computes it;
* an :class:`ArtifactStore` holds computed artifacts in memory and — for
  stages with a ``codec`` — on disk, addressed by a content key derived
  from the stage's fingerprint inputs, its parents' keys and the
  fingerprints of the source modules it declares via ``code=``;
* a :class:`Pipeline` resolves stage keys *without* materializing
  artifacts (keys are recursive hashes, not artifact hashes), so a warm
  run touches disk only for the stages a caller actually asks for, and
  editing one module re-runs exactly the stages downstream of it.

Every ``get`` records a :class:`StageExecution` — key, parent keys,
outcome (``memory``/``disk``/``computed``) and wall time from an
injected clock — forming the provenance manifest surfaced by the
``repro pipeline`` CLI subcommand.
"""

from __future__ import annotations

import hashlib
import importlib.util
import itertools
import json
import os
import pathlib
import re
import shutil
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from ..cache import DEFAULT_MAX_ENTRIES, load_run_bundle, save_run_bundle
from ..errors import ConfigError, DataError

# Bump when the key payload or on-disk entry layout changes; keys embed
# it, so old entries are simply never looked up again.
PIPELINE_SCHEMA = 1

# Codecs an on-disk stage may declare.  ``None`` (no codec) keeps the
# artifact memory-only.
CODECS = ("run", "json", "text", "blocks")

_SOURCE_FINGERPRINTS: dict[str, str] = {}


def source_fingerprint(module_name: str) -> str:
    """Content hash of a module's source file.

    Keys embed these for every module a stage declares via ``code=``, so
    editing e.g. ``repro.decisions.spares`` invalidates the provisioner
    stages (and everything downstream) while leaving the simulate stage
    warm.  Results are cached per process; tests monkeypatch this
    function to simulate code edits without touching files.
    """
    cached = _SOURCE_FINGERPRINTS.get(module_name)
    if cached is not None:
        return cached
    spec = importlib.util.find_spec(module_name)
    if spec is None or spec.origin is None:
        raise ConfigError(f"cannot fingerprint module {module_name!r}: no source")
    digest = hashlib.sha256(pathlib.Path(spec.origin).read_bytes()).hexdigest()
    _SOURCE_FINGERPRINTS[module_name] = digest
    return digest


def clear_source_fingerprints() -> None:
    """Drop the per-process fingerprint cache (test hook)."""
    _SOURCE_FINGERPRINTS.clear()


@dataclass(frozen=True)
class Stage:
    """One node of the artifact DAG.

    Attributes:
        name: unique artifact name, e.g. ``"simulate"`` or
            ``"provisioner:24h"``.
        run: ``run(inputs, ctx)`` computing the artifact; ``inputs``
            maps each dependency name to its artifact, ``ctx`` is a
            :class:`StageContext`.
        deps: names of upstream stages whose artifacts this stage reads.
        fingerprint_inputs: JSON-serializable parameters that determine
            the artifact (config fingerprint, window hours, severities…).
            Anything influencing the output must appear here or in
            ``deps``/``code``.
        runtime: non-keyed execution context (e.g. the live config
            object the ``run`` codec needs to rebuild a fleet).  Never
            hashed.
        code: dotted module names whose source content participates in
            the key via :func:`source_fingerprint`.
        codec: on-disk representation — ``"run"`` (simulation bundle),
            ``"json"``, ``"text"``, ``"blocks"`` (a flattened
            :class:`~repro.stream.blocks.BlockSegment`, reloaded
            memory-mapped) — or None for memory-only artifacts.
    """

    name: str
    run: Callable[[dict[str, Any], "StageContext"], Any]
    deps: tuple[str, ...] = ()
    fingerprint_inputs: Mapping[str, Any] = field(default_factory=dict)
    runtime: Mapping[str, Any] = field(default_factory=dict)
    code: tuple[str, ...] = ()
    codec: str | None = None

    def __post_init__(self) -> None:
        if self.codec is not None and self.codec not in CODECS:
            raise ConfigError(
                f"stage {self.name!r}: unknown codec {self.codec!r}; "
                f"have {CODECS}"
            )


@dataclass(frozen=True)
class StageContext:
    """Execution context handed to a stage's ``run`` callable."""

    pipeline: "Pipeline"
    stage: Stage

    @property
    def runtime(self) -> Mapping[str, Any]:
        """The stage's non-keyed runtime mapping."""
        return self.stage.runtime


@dataclass(frozen=True)
class StageExecution:
    """Provenance record of one stage resolution within a pipeline.

    ``outcome`` is ``"memory"`` (artifact already in the store's memory
    tier), ``"disk"`` (decoded from the artifact store) or
    ``"computed"`` (the ``run`` callable actually executed).
    """

    order: int
    stage: str
    key: str
    parents: tuple[str, ...]
    outcome: str
    wall_s: float

    def to_json(self) -> dict:
        """Plain-dict form for the provenance manifest."""
        return {
            "order": self.order,
            "stage": self.stage,
            "key": self.key,
            "parents": list(self.parents),
            "outcome": self.outcome,
            "wall_s": self.wall_s,
        }


def execution_from_json(payload: Mapping[str, Any]) -> StageExecution:
    """Rebuild a :class:`StageExecution` from its ``to_json`` form.

    Used to merge execution records shipped back from worker processes
    into the parent's provenance manifest.
    """
    return StageExecution(
        order=int(payload["order"]),
        stage=str(payload["stage"]),
        key=str(payload["key"]),
        parents=tuple(payload["parents"]),
        outcome=str(payload["outcome"]),
        wall_s=float(payload["wall_s"]),
    )


def _stage_dirname(name: str) -> str:
    """Filesystem-safe directory name for a stage.

    Stage names embed parameters (``provisioner:24h``); collapsing the
    punctuation keeps the store portable.  Collisions between sanitized
    names are harmless: entries stay distinct because the stage name is
    part of every content key.
    """
    return re.sub(r"[^A-Za-z0-9._-]", "-", name)


#: Staged-but-unpublished entry directories carry this hidden prefix.
_TMP_PREFIX = ".tmp-"

#: Per-process staging counter: combined with the pid it gives every
#: put() a unique staging directory, so concurrent writers — threads in
#: one process or many processes — never share one (itertools.count is
#: atomic under the GIL).
_TMP_COUNTER = itertools.count()

#: Staged directories older than this are wreckage of a crashed writer
#: and get swept by prune; younger ones may belong to a live concurrent
#: writer mid-publication and are left alone.
TMP_SWEEP_AGE_S = 3600.0


def _entry_mtime(entry: pathlib.Path) -> float:
    """meta.json mtime, or 0 if a concurrent prune already removed it."""
    try:
        return (entry / "meta.json").stat().st_mtime
    except OSError:
        return 0.0


class ArtifactStore:
    """Two-tier (memory + optional disk) store of stage artifacts.

    Generalizes :class:`~repro.cache.RunCache` from one opaque run blob
    to per-stage content-addressed entries.  Layout on disk::

        <root>/<stage-dir>/<key>/{artifact.*, meta.json}

    The ``run`` codec reuses the exact :class:`RunCache` bundle format
    via :func:`~repro.cache.save_run_bundle` /
    :func:`~repro.cache.load_run_bundle`.

    Args:
        root: directory for persisted artifacts, or None for a
            memory-only store (codec'd stages then simply recompute in
            fresh processes).
        clock: source of ``created`` timestamps in entry metadata —
            injected, never read inline (tests replay eviction order).
        max_entries: per-stage bound enforced after each disk write.
    """

    def __init__(
        self,
        root: str | pathlib.Path | None = None,
        clock: Callable[[], float] = time.time,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ):
        self.root = pathlib.Path(root) if root is not None else None
        self._clock = clock
        self.max_entries = max_entries
        self._memory: dict[tuple[str, str], Any] = {}

    # -- addressing ---------------------------------------------------

    def stage_dir(self, stage_name: str) -> pathlib.Path:
        """Directory holding all persisted entries of one stage."""
        if self.root is None:
            raise ConfigError("memory-only ArtifactStore has no stage_dir")
        return self.root / _stage_dirname(stage_name)

    def entry_dir(self, stage_name: str, key: str) -> pathlib.Path:
        """Directory holding one persisted artifact."""
        return self.stage_dir(stage_name) / key

    # -- lookup -------------------------------------------------------

    def fetch(self, stage: Stage, key: str) -> tuple[str, Any] | None:
        """``(tier, artifact)`` for a stored artifact, or None on miss.

        ``tier`` is ``"memory"`` or ``"disk"``.  A corrupt disk entry
        (truncated write, garbled payload) is evicted and counts as a
        miss — the store self-heals exactly like the run cache.
        """
        if (stage.name, key) in self._memory:
            return "memory", self._memory[(stage.name, key)]
        if self.root is None or stage.codec is None:
            return None
        entry = self.entry_dir(stage.name, key)
        if not (entry / "meta.json").exists():
            if entry.exists():
                shutil.rmtree(entry, ignore_errors=True)
            return None
        try:
            meta = json.loads((entry / "meta.json").read_text())
            if not isinstance(meta, dict) or meta.get("key") != key:
                raise DataError(f"artifact entry {entry} metadata is corrupt")
            artifact = self._decode(stage, entry, meta)
        except (OSError, ValueError, KeyError, DataError):
            shutil.rmtree(entry, ignore_errors=True)
            return None
        self._memory[(stage.name, key)] = artifact
        return "disk", artifact

    def _decode(self, stage: Stage, entry: pathlib.Path, meta: dict) -> Any:
        if stage.codec == "run":
            config = stage.runtime.get("config")
            if config is None:
                raise ConfigError(
                    f"stage {stage.name!r}: 'run' codec needs runtime['config']"
                )
            return load_run_bundle(entry, config, meta)
        if stage.codec == "json":
            return json.loads((entry / "artifact.json").read_text())
        if stage.codec == "text":
            return (entry / "artifact.txt").read_text()
        if stage.codec == "blocks":
            from ..stream.blocks import BlockSegment

            return BlockSegment.load(entry / "artifact.npz")
        raise ConfigError(f"stage {stage.name!r}: unknown codec {stage.codec!r}")

    # -- storage ------------------------------------------------------

    def prime(self, stage_name: str, key: str, artifact: Any) -> None:
        """Seed the memory tier with an externally computed artifact.

        Trust-based: callers that already hold e.g. a freshly simulated
        result hand it to the pipeline instead of recomputing.  Memory
        only — nothing is persisted.
        """
        self._memory[(stage_name, key)] = artifact

    def put(self, stage: Stage, key: str, artifact: Any) -> None:
        """Store an artifact (memory always; disk when codec'd).

        Disk publication is atomic: the entry is staged under a hidden
        per-process temp directory and renamed into place as the last
        step, so a concurrent reader observes either no entry or a
        complete one.  Two processes racing on the same key resolve to
        clean first-writer-wins — the loser's staged copy (identical
        content, since keys are content addresses) is discarded.
        """
        self._memory[(stage.name, key)] = artifact
        if self.root is None or stage.codec is None:
            return
        entry = self.entry_dir(stage.name, key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        tmp = entry.parent / (
            f"{_TMP_PREFIX}{os.getpid()}-{next(_TMP_COUNTER)}-{key}"
        )
        meta = {"stage": stage.name, "key": key, "schema": PIPELINE_SCHEMA}
        if stage.codec == "run":
            save_run_bundle(tmp, artifact, meta, clock=self._clock)
        else:
            tmp.mkdir()
            if stage.codec == "json":
                (tmp / "artifact.json").write_text(
                    json.dumps(artifact, indent=2, sort_keys=True, default=str)
                )
            elif stage.codec == "blocks":
                artifact.save(tmp / "artifact.npz")
            else:
                (tmp / "artifact.txt").write_text(artifact)
            meta["created"] = self._clock()
            (tmp / "meta.json").write_text(json.dumps(meta, indent=2))
        self._publish(tmp, entry)
        if self.max_entries:
            self.prune_stage(stage.name, self.max_entries)

    def _publish(self, tmp: pathlib.Path, entry: pathlib.Path) -> None:
        """Rename a fully staged entry into place, losing races cleanly."""
        try:
            os.replace(tmp, entry)
            return
        except OSError:
            pass
        # The target already exists: either a concurrent writer finished
        # first (their entry carries the same content — keep it) or a
        # pre-atomic partial entry lingers (clear it and retry once).
        if not (entry / "meta.json").exists():
            shutil.rmtree(entry, ignore_errors=True)
            try:
                os.replace(tmp, entry)
                return
            except OSError:  # pragma: no cover - double race
                pass
        shutil.rmtree(tmp, ignore_errors=True)

    # -- maintenance --------------------------------------------------

    def stage_entries(self, stage_name: str) -> list[pathlib.Path]:
        """Persisted entries of one stage, oldest first."""
        directory = self.stage_dir(stage_name)
        if not directory.exists():
            return []
        found = [
            path for path in directory.iterdir()
            if not path.name.startswith(_TMP_PREFIX)
            and (path / "meta.json").exists()
        ]
        return sorted(found, key=_entry_mtime)

    def prune_stage(self, stage_name: str,
                    max_entries: int = DEFAULT_MAX_ENTRIES) -> int:
        """Evict oldest entries of one stage beyond ``max_entries``."""
        if max_entries < 0:
            raise DataError(f"max_entries must be >= 0, got {max_entries}")
        entries = self.stage_entries(stage_name)
        excess = entries[:max(0, len(entries) - max_entries)]
        directory = self.stage_dir(stage_name)
        if directory.exists():
            # Also sweep wreckage invisible to stage_entries: published
            # entries missing meta.json (pre-atomic partial writes) and
            # staged temp directories whose writer crashed long ago.
            # Young temp directories belong to live concurrent writers.
            excess.extend(
                path for path in directory.iterdir()
                if path.is_dir() and self._sweepable(path)
            )
        for entry in excess:
            shutil.rmtree(entry, ignore_errors=True)
        return len(excess)

    def _sweepable(self, path: pathlib.Path) -> bool:
        """Whether one stage subdirectory is prune-sweep wreckage."""
        if not path.name.startswith(_TMP_PREFIX):
            return not (path / "meta.json").exists()
        try:
            age = self._clock() - path.stat().st_mtime
        except OSError:
            # A concurrent writer renamed its staging directory into
            # place (or cleaned it up) between iterdir and stat.
            return False
        return age > TMP_SWEEP_AGE_S

    def prune(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> int:
        """Prune every persisted stage; returns total entries removed."""
        if self.root is None or not self.root.exists():
            return 0
        removed = 0
        for directory in sorted(self.root.iterdir()):
            if directory.is_dir():
                removed += self.prune_stage(directory.name, max_entries)
        return removed

    def clear(self) -> None:
        """Drop the memory tier and remove every persisted entry."""
        self._memory.clear()
        if self.root is not None and self.root.exists():
            shutil.rmtree(self.root, ignore_errors=True)


class Pipeline:
    """A validated stage DAG bound to one artifact store.

    Args:
        stages: the stage catalogue; names must be unique, dependencies
            must resolve within the catalogue, and the graph must be
            acyclic (all checked eagerly, raising
            :class:`~repro.errors.ConfigError`).
        store: artifact store; defaults to a fresh memory-only store.
        clock: wall-time source for execution records — injected so
            provenance tests are deterministic.
        observer: optional callable receiving each
            :class:`StageExecution` as it is recorded.
    """

    def __init__(
        self,
        stages: Iterable[Stage],
        store: ArtifactStore | None = None,
        clock: Callable[[], float] = time.perf_counter,
        observer: Callable[[StageExecution], None] | None = None,
    ):
        self.stages: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self.stages:
                raise ConfigError(f"duplicate stage name {stage.name!r}")
            self.stages[stage.name] = stage
        self._order = self._toposort()
        self.store = store if store is not None else ArtifactStore()
        self._clock = clock
        self._observer = observer
        self._keys: dict[str, str] = {}
        self._done: dict[str, Any] = {}
        self.executions: list[StageExecution] = []

    def _toposort(self) -> list[str]:
        for stage in self.stages.values():
            for dep in stage.deps:
                if dep not in self.stages:
                    raise ConfigError(
                        f"stage {stage.name!r} depends on unknown stage {dep!r}"
                    )
        order: list[str] = []
        state: dict[str, int] = {}  # 1 = visiting, 2 = done

        def visit(name: str, chain: tuple[str, ...]) -> None:
            mark = state.get(name)
            if mark == 2:
                return
            if mark == 1:
                cycle = " -> ".join(chain + (name,))
                raise ConfigError(f"stage dependency cycle: {cycle}")
            state[name] = 1
            for dep in self.stages[name].deps:
                visit(dep, chain + (name,))
            state[name] = 2
            order.append(name)

        for name in self.stages:
            visit(name, ())
        return order

    # -- introspection ------------------------------------------------

    def has_stage(self, name: str) -> bool:
        """True when ``name`` is in the catalogue."""
        return name in self.stages

    def stage(self, name: str) -> Stage:
        """Stage by name (raises ConfigError for unknown names)."""
        if name not in self.stages:
            raise ConfigError(
                f"unknown stage {name!r}; have {sorted(self.stages)}"
            )
        return self.stages[name]

    @property
    def order(self) -> list[str]:
        """Stage names in topological (dependency-first) order."""
        return list(self._order)

    def sinks(self) -> list[str]:
        """Stages no other stage depends on, in topological order."""
        depended = {dep for s in self.stages.values() for dep in s.deps}
        return [name for name in self._order if name not in depended]

    # -- keying -------------------------------------------------------

    def key(self, name: str) -> str:
        """Content key of a stage, computed recursively over the DAG.

        Keys hash the stage name, its ``fingerprint_inputs``, its
        parents' keys and its declared code fingerprints — never the
        artifact bytes — so a fully warm run resolves every key without
        loading a single artifact.
        """
        if name in self._keys:
            return self._keys[name]
        stage = self.stage(name)
        payload = {
            "stage": stage.name,
            "inputs": dict(stage.fingerprint_inputs),
            "parents": {dep: self.key(dep) for dep in stage.deps},
            "code": {module: source_fingerprint(module)
                     for module in stage.code},
            "schema": PIPELINE_SCHEMA,
        }
        serialized = json.dumps(payload, sort_keys=True,
                                separators=(",", ":"), default=str)
        key = hashlib.sha256(serialized.encode("utf-8")).hexdigest()[:32]
        self._keys[name] = key
        return key

    # -- execution ----------------------------------------------------

    def prime(self, name: str, artifact: Any) -> None:
        """Hand the pipeline an externally computed artifact for ``name``."""
        self.store.prime(name, self.key(name), artifact)

    def get(self, name: str) -> Any:
        """Resolve one artifact, computing upstream stages as needed.

        Records exactly one :class:`StageExecution` per stage per
        pipeline lifetime; repeated ``get`` of a resolved stage returns
        the memoized artifact silently.
        """
        if name in self._done:
            return self._done[name]
        stage = self.stage(name)
        key = self.key(name)
        start = self._clock()
        hit = self.store.fetch(stage, key)
        if hit is not None:
            outcome, artifact = hit
        else:
            inputs = {dep: self.get(dep) for dep in stage.deps}
            start = self._clock()  # exclude upstream time from this record
            artifact = stage.run(inputs, StageContext(pipeline=self, stage=stage))
            self.store.put(stage, key, artifact)
            outcome = "computed"
        execution = StageExecution(
            order=len(self.executions) + 1,
            stage=name,
            key=key,
            parents=tuple(self.key(dep) for dep in stage.deps),
            outcome=outcome,
            wall_s=self._clock() - start,
        )
        self.executions.append(execution)
        if self._observer is not None:
            self._observer(execution)
        self._done[name] = artifact
        return artifact

    def run(self, targets: Iterable[str] | None = None) -> dict[str, Any]:
        """Resolve ``targets`` (default: every sink) → {name: artifact}."""
        names = list(targets) if targets is not None else self.sinks()
        return {name: self.get(name) for name in names}

    # -- provenance ---------------------------------------------------

    def manifest(self, extra_executions: Iterable[StageExecution] | None = None,
                 ) -> dict:
        """Provenance manifest: catalogue, keys and execution records."""
        from .. import __version__

        executions = list(self.executions)
        if extra_executions:
            executions = sorted(
                executions + list(extra_executions),
                key=lambda e: (e.order, e.stage),
            )
        return {
            "schema": PIPELINE_SCHEMA,
            "version": __version__,
            "stages": {
                name: {
                    "key": self.key(name),
                    "deps": list(stage.deps),
                    "code": list(stage.code),
                    "codec": stage.codec,
                }
                for name, stage in self.stages.items()
            },
            "executions": [e.to_json() for e in executions],
        }

    def write_manifest(
        self,
        path: str | pathlib.Path | None = None,
        extra_executions: Iterable[StageExecution] | None = None,
    ) -> pathlib.Path:
        """Write the manifest JSON; defaults to ``<store.root>/manifest.json``."""
        if path is None:
            if self.store.root is None:
                raise ConfigError(
                    "cannot write a manifest without a store root or path"
                )
            path = self.store.root / "manifest.json"
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self.manifest(extra_executions=extra_executions)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path
