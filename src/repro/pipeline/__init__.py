"""Content-addressed stage DAG with incremental recompute.

Public surface of the unified artifact pipeline: the core model
(:class:`Stage`, :class:`ArtifactStore`, :class:`Pipeline`, provenance
records) plus the report stage catalogue
(:func:`build_report_pipeline`).  See ``docs/pipeline.md``.
"""

from .core import (
    CODECS,
    PIPELINE_SCHEMA,
    ArtifactStore,
    Pipeline,
    Stage,
    StageContext,
    StageExecution,
    clear_source_fingerprints,
    execution_from_json,
    source_fingerprint,
)
from .stages import (
    PROVISIONER_WINDOWS,
    RENDER_PREFIX,
    analysis_stages,
    build_report_pipeline,
    fielddata_payload_stage,
    render_stage_name,
    simulate_stage,
    summary_stage,
)

__all__ = [
    "CODECS",
    "PIPELINE_SCHEMA",
    "PROVISIONER_WINDOWS",
    "RENDER_PREFIX",
    "ArtifactStore",
    "Pipeline",
    "Stage",
    "StageContext",
    "StageExecution",
    "analysis_stages",
    "build_report_pipeline",
    "clear_source_fingerprints",
    "execution_from_json",
    "fielddata_payload_stage",
    "render_stage_name",
    "simulate_stage",
    "source_fingerprint",
    "summary_stage",
]
